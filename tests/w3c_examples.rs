//! The worked examples from the W3C XPath 1.0 Recommendation (§2.5 and the
//! abbreviated-syntax list) — the paper defers its semantics to this
//! document, so its examples double as a conformance suite. Each query is
//! evaluated against a purpose-built document and the result checked both
//! for expected cardinality and for cross-engine agreement.

use gkp_xpath::core::Context;
use gkp_xpath::{Document, Engine};

fn doc() -> Document {
    Document::parse_str(
        r#"<doc>
          <chapter type="intro"><title>One</title><para>p1</para><para>p2</para></chapter>
          <chapter><title>Two</title><para security="secret">p3</para></chapter>
          <chapter><title>Three</title><section><para>p4</para></section></chapter>
          <chapter><title>Four</title></chapter>
          <chapter><title>Five</title><chapter><title>Nested</title></chapter></chapter>
          <appendix><title>App</title><para>ap</para></appendix>
          <employee name="Jane" secretary="yes" assistant="yes"/>
          <employee name="Bob" secretary="yes"/>
        </doc>"#,
    )
    .unwrap()
}

fn check(q: &str, expect_count: usize) {
    let d = doc();
    let engine = Engine::new(&d);
    let e = engine.prepare(q).unwrap();
    let v = engine
        .evaluate_all_agree(&e, Context::of(d.root()), 2_000_000)
        .unwrap_or_else(|err| panic!("{q}: {err}"));
    let n = v.as_node_set().map_or(usize::MAX, gkp_xpath::xml::NodeSet::len);
    assert_eq!(n, expect_count, "{q}");
}

#[test]
fn abbreviated_syntax_examples() {
    // From the W3C list of abbreviated-syntax examples (adapted counts for
    // our document).
    check("//doc/chapter", 5); // para is in chapters only via doc
    check("/doc/chapter[5]/section[1]", 0);
    check("/doc/chapter[5]", 1);
    check("//para", 5);
    check("//chapter//para", 4);
    check("/descendant::para", 5);
    check("//chapter/title", 6); // includes the nested chapter's title
    check("/doc/chapter/title", 5);
    check("//@security", 1);
    check("//para[@security = 'secret']", 1);
    check("//employee[@secretary and @assistant]", 1);
    check("//employee[@secretary][@assistant]", 1);
    check("//employee[@secretary]", 2);
    check("//chapter[title = 'Two']", 1);
    check("//chapter[title]", 6);
    check("/doc/chapter[position() = last()]", 1);
    check("/doc/chapter[position() = last() - 1]", 1);
    check("//para[1]", 4); // first para of each parent (incl. section, appendix)
    check("//para[last()]", 4);
    check("/doc/*", 8);
    check("//*", 23);
    check(".//title", 7);
}

#[test]
fn unabbreviated_axis_examples() {
    // §2.5 "Here are some examples of location paths using the
    // unabbreviated syntax".
    check("child::para", 0); // root has no para child
    check("/child::doc/child::chapter", 5);
    check("/descendant::para", 5);
    check("/descendant-or-self::node()/child::para", 5);
    check("//chapter/child::*", 11); // titles + paras + section + nested chapter
    check("//section/ancestor::chapter", 1);
    check("//section/ancestor-or-self::*", 3); // section, chapter, doc
    check("//para/following-sibling::para", 1);
    check("//para/preceding-sibling::para", 1);
    check("/child::doc/child::chapter[position() = 2]/child::title", 1);
    check("//self::para", 5);
    check("/descendant::para[attribute::security = 'secret']/parent::chapter", 1);
}

#[test]
fn positional_and_boolean_combinations() {
    check("/doc/chapter[position() < 3]", 2);
    check("/doc/chapter[position() mod 2 = 1]", 3);
    check("/doc/chapter[title and para]", 2);
    check("/doc/chapter[title or appendix]", 5);
    check("/doc/chapter[not(para) and not(section)]", 2);
    check("//chapter[chapter]", 1); // the one containing a nested chapter
    check("//title[../para]", 3); // titles whose parent also has a para... chapters 1,2 + appendix
}

/// The function-library edge cases the Recommendation spells out verbatim
/// (§4.2 string functions, §4.4 number functions).
#[test]
fn spec_function_edge_cases() {
    let d = doc();
    let engine = Engine::new(&d);
    let eval = |q: &str| engine.evaluate(q).unwrap().to_string();

    // §4.2: substring rounds its arguments and intersects positions.
    assert_eq!(eval("substring('12345', 1.5, 2.6)"), "234");
    assert_eq!(eval("substring('12345', 0, 3)"), "12");
    assert_eq!(eval("substring('12345', 0 div 0, 3)"), "");
    assert_eq!(eval("substring('12345', 1, 0 div 0)"), "");
    assert_eq!(eval("substring('12345', -42, 1 div 0)"), "12345");
    assert_eq!(eval("substring('12345', -1 div 0, 1 div 0)"), "");
    assert_eq!(eval("substring('12345', 2)"), "2345");
    // §4.2: starts-with / contains / substring-before / substring-after.
    assert_eq!(eval("starts-with('pineapple', 'pine')"), "true");
    assert_eq!(eval("contains('pineapple', 'apple')"), "true");
    assert_eq!(eval("substring-before('1999/04/01', '/')"), "1999");
    assert_eq!(eval("substring-after('1999/04/01', '/')"), "04/01");
    assert_eq!(eval("substring-after('1999/04/01', '19')"), "99/04/01");
    // §4.2: translate's two behaviours (replace and delete).
    assert_eq!(eval("translate('bar', 'abc', 'ABC')"), "BAr");
    assert_eq!(eval("translate('--aaa--', 'abc-', 'ABC')"), "AAA");
    // §4.2: normalize-space and string-length.
    assert_eq!(eval("normalize-space('  a  b  ')"), "a b");
    assert_eq!(eval("string-length('pineapple')"), "9");
    // §4.4: round's special cases (round(-0.5) is negative zero).
    assert_eq!(eval("round(2.5)"), "3");
    assert_eq!(eval("round(-2.5)"), "-2");
    assert_eq!(eval("floor(2.6)"), "2");
    assert_eq!(eval("ceiling(2.2)"), "3");
    assert_eq!(eval("floor(-2.2)"), "-3");
    assert_eq!(eval("ceiling(-2.6)"), "-2");
    // §3.5 numeric semantics: IEEE 754 with NaN/Infinity spellings.
    assert_eq!(eval("1 div 0"), "Infinity");
    assert_eq!(eval("-1 div 0"), "-Infinity");
    assert_eq!(eval("0 div 0"), "NaN");
    assert_eq!(eval("5 mod 2"), "1");
    assert_eq!(eval("5 mod -2"), "1");
    assert_eq!(eval("-5 mod 2"), "-1");
    assert_eq!(eval("-5 mod -2"), "-1");
    // §4.3 boolean conversions.
    assert_eq!(eval("boolean(0 div 0)"), "false");
    assert_eq!(eval("boolean(-0)"), "false");
    assert_eq!(eval("boolean('false')"), "true", "non-empty string is true");
    assert_eq!(eval("number('  12.5 ')"), "12.5");
    assert_eq!(eval("number('12.5x')"), "NaN");
    assert_eq!(eval("number(true())"), "1");
}

/// lang() per §4.3: case-insensitive, sublanguage suffixes, inheritance.
#[test]
fn spec_lang_function() {
    let d = Document::parse_str(
        r#"<doc xml:lang="en"><p/><q xml:lang="EN-US"><r/></q><s xml:lang="de"/></doc>"#,
    )
    .unwrap();
    let engine = Engine::new(&d);
    assert_eq!(engine.select("//p[lang('en')]").unwrap().len(), 1);
    assert_eq!(engine.select("//q[lang('en')]").unwrap().len(), 1, "en-us matches en");
    assert_eq!(engine.select("//r[lang('en-us')]").unwrap().len(), 1, "inherited");
    assert_eq!(engine.select("//s[lang('en')]").unwrap().len(), 0);
    assert_eq!(engine.select("//*[lang('de')]").unwrap().len(), 1);
}

/// Union expressions and the `|` examples of §2 / §3.3.
#[test]
fn union_examples() {
    check("//para | //title", 12);
    check("/doc/chapter[1]/title | /doc/appendix/title", 2);
    check("//employee/@secretary | //employee/@assistant", 3);
    // Unions keep document order and deduplicate.
    let d = doc();
    let engine = Engine::new(&d);
    let u = engine.select("//para | //para | /doc/chapter[1]//*").unwrap();
    let ids = u.to_vec();
    assert!(ids.windows(2).all(|w| w[0] < w[1]), "document order, no duplicates");
}

#[test]
fn string_values_of_examples() {
    let d = doc();
    let engine = Engine::new(&d);
    assert_eq!(engine.evaluate("string(/doc/chapter[1]/title)").unwrap().to_string(), "One");
    assert_eq!(
        engine.evaluate("normalize-space(string(//appendix))").unwrap().to_string(),
        "Appap" // no whitespace between </title> and <para>
    );
    assert_eq!(engine.evaluate("count(//employee/@*)").unwrap().to_string(), "5");
    assert_eq!(
        engine.evaluate("string(//employee[@assistant]/@name)").unwrap().to_string(),
        "Jane"
    );
}
