//! Integration tests for the two-phase query API: `Compiler`,
//! `CompiledQuery` (document- and thread-independence), and `QueryCache`
//! (hit/miss/eviction, concurrent sharing).

use std::sync::Arc;
use std::thread;

use gkp_xpath::core::Context;
use gkp_xpath::xml::generate::{doc_bookstore, doc_figure8};
use gkp_xpath::{CompiledQuery, Compiler, Document, Engine, QueryCache, Strategy};

/// `CompiledQuery` and `QueryCache` must be shareable across threads —
/// checked at compile time.
#[test]
fn compiled_query_is_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompiledQuery>();
    assert_send_sync::<QueryCache>();
    assert_send_sync::<Compiler>();
}

/// One compiled query, four threads, two different documents: every
/// evaluation agrees with a per-document `Strategy::TopDown` reference.
#[test]
fn one_compilation_many_threads_many_documents() {
    let queries = [
        "//b/c",                    // auto → CoreXPath
        "count(//*[@id])",          // scalar
        "//*[position() = last()]", // positional, OptMinContext
    ];
    for q in queries {
        let compiled = Arc::new(CompiledQuery::compile(q).unwrap());
        let docs = Arc::new(vec![doc_figure8(), doc_bookstore()]);

        // Per-document reference values via the explicit TopDown strategy.
        let references: Vec<String> = docs
            .iter()
            .map(|d| Engine::new(d).evaluate_with(q, Strategy::TopDown).unwrap().to_string())
            .collect();

        let mut handles = Vec::new();
        for t in 0..4 {
            let compiled = Arc::clone(&compiled);
            let docs = Arc::clone(&docs);
            handles.push(thread::spawn(move || {
                // Each thread hits both documents repeatedly.
                (0..25)
                    .map(|i| {
                        let d = &docs[(t + i) % docs.len()];
                        compiled.evaluate_root(d).unwrap().to_string()
                    })
                    .collect::<Vec<_>>()
            }));
        }
        for (t, h) in handles.into_iter().enumerate() {
            for (i, got) in h.join().expect("thread panicked").into_iter().enumerate() {
                let want = &references[(t + i) % references.len()];
                assert_eq!(&got, want, "{q}: thread {t}, iteration {i}");
            }
        }
    }
}

/// The same compiled plan produces per-document results in document order
/// through `evaluate_many`.
#[test]
fn evaluate_many_is_per_document() {
    let d1 = doc_bookstore();
    let d2 = doc_figure8();
    let q = CompiledQuery::compile("count(//*)").unwrap();
    let batch = q.evaluate_many(&[&d1, &d2, &d1]).unwrap();
    assert_eq!(batch[0], batch[2]);
    assert_ne!(batch[0], batch[1]);
}

/// Explicit fragment strategies reject outside queries when the plan is
/// built — before any document exists.
#[test]
fn unsupported_fragment_surfaces_at_compile_time() {
    use gkp_xpath::core::EvalError;
    for s in [Strategy::CoreXPath, Strategy::XPatterns, Strategy::Streaming] {
        let err = Compiler::new()
            .default_strategy(s)
            .compile("count(//book)")
            .expect_err("count() is outside every linear fragment");
        assert!(matches!(err, EvalError::UnsupportedFragment(_)), "{s:?}: {err}");
    }
    // Compile-time success implies artifacts are ready: evaluation of a
    // streaming query involves no further compilation.
    let sq =
        Compiler::new().default_strategy(Strategy::Streaming).compile("//book[author]").unwrap();
    assert!(sq.plan().automaton().is_some());
    assert_eq!(sq.select(&doc_bookstore()).unwrap().len(), 4);
}

/// Hit/miss/eviction accounting of the shared cache.
#[test]
fn query_cache_hit_miss_eviction() {
    // Single shard ⇒ exact global LRU order.
    let cache = QueryCache::with_shards(2, 1);
    let c = Compiler::new();

    assert!(cache.is_empty());
    cache.get_or_compile(&c, "//a").unwrap();
    cache.get_or_compile(&c, "//b").unwrap();
    assert_eq!(cache.stats().misses, 2);
    assert_eq!(cache.stats().hits, 0);
    assert_eq!(cache.len(), 2);

    // Hits refresh recency.
    cache.get_or_compile(&c, "//a").unwrap();
    assert_eq!(cache.stats().hits, 1);

    // Capacity 2: inserting a third evicts the LRU entry (//b).
    cache.get_or_compile(&c, "//c").unwrap();
    assert_eq!(cache.stats().evictions, 1);
    assert_eq!(cache.len(), 2);
    cache.get_or_compile(&c, "//a").unwrap();
    assert_eq!(cache.stats().hits, 2, "//a survived the eviction");
    cache.get_or_compile(&c, "//b").unwrap();
    assert_eq!(cache.stats().misses, 4, "//b was evicted and recompiled");

    // Different compiler options are distinct cache keys.
    let opt = Compiler::new().optimize(true);
    cache.get_or_compile(&opt, "//a").unwrap();
    assert_eq!(cache.stats().misses, 5);

    cache.clear();
    assert!(cache.is_empty());
}

/// A cache shared by concurrent workers compiles each query exactly once
/// (no eviction pressure, pre-warmed to avoid racing first sight).
#[test]
fn query_cache_shared_across_threads() {
    let cache = Arc::new(QueryCache::new(64));
    let compiler = Compiler::new();
    let queries = ["//b", "//b/c", "count(//d)", "//*[@id]"];
    for q in queries {
        cache.get_or_compile(&compiler, q).unwrap();
    }

    thread::scope(|s| {
        for _ in 0..4 {
            let cache = Arc::clone(&cache);
            let compiler = compiler.clone();
            s.spawn(move || {
                let d = doc_figure8();
                for _ in 0..10 {
                    for q in queries {
                        let compiled = cache.get_or_compile(&compiler, q).unwrap();
                        compiled.evaluate_root(&d).unwrap();
                    }
                }
            });
        }
    });

    let stats = cache.stats();
    assert_eq!(stats.misses, queries.len() as u64, "each query compiled exactly once");
    assert_eq!(stats.hits, 4 * 10 * queries.len() as u64);
    assert_eq!(stats.entries, queries.len());
}

/// The compiled-query path and the legacy Engine facade agree.
#[test]
fn facade_and_compiled_query_agree() {
    let doc = doc_bookstore();
    let engine = Engine::new(&doc);
    for q in [
        "//book[author]",
        "//book[title = 'XPath Processing']",
        "count(//book[@year > 1990])",
        "string(//magazine/title)",
    ] {
        let via_engine = engine.evaluate(q).unwrap();
        let via_compiled = CompiledQuery::compile(q).unwrap().evaluate_root(&doc).unwrap();
        assert!(via_engine.semantically_equal(&via_compiled), "{q}");
    }
}

/// Compiler options round-trip: budget bounds naive, bindings inline,
/// evaluation from an explicit context works.
#[test]
fn compiler_options_and_contexts() {
    use gkp_xpath::core::EvalError;
    use gkp_xpath::syntax::Bindings;

    let doc = doc_bookstore();

    // naive_budget bounds the exponential baseline.
    let q = Compiler::new()
        .default_strategy(Strategy::Naive)
        .naive_budget(5)
        .compile("//book/ancestor::*/descendant::*")
        .unwrap();
    assert!(matches!(q.evaluate_root(&doc), Err(EvalError::BudgetExhausted)));

    // Bindings are inlined during the static phase.
    let b = Bindings::new().string("t", "DB Monthly");
    let q = Compiler::new().bindings(&b).compile("//magazine[title = $t]").unwrap();
    assert_eq!(q.select(&doc).unwrap().len(), 1);

    // Explicit contexts: count authors of a specific book.
    let q = CompiledQuery::compile("count(author)").unwrap();
    let b1 = doc.element_by_id("b1").unwrap();
    assert_eq!(q.evaluate(&doc, Context::of(b1)).unwrap().to_string(), "3");
}

/// A compiled query built from one document's text works on a document
/// parsed later — there is no hidden document state.
#[test]
fn compiled_query_outlives_documents() {
    let q = CompiledQuery::compile("count(//b)").unwrap();
    for n in [1usize, 3, 7] {
        let xml = format!("<a>{}</a>", "<b/>".repeat(n));
        let d = Document::parse_str(&xml).unwrap();
        assert_eq!(q.evaluate_root(&d).unwrap().to_string(), n.to_string());
        drop(d);
    }
}
