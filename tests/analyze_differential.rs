//! Differential enforcement of the static analyzer's verdicts
//! (`xpath_core::analyze`): every claim the analyzer makes must be backed
//! by the evaluators it talks about.
//!
//! * **Empty ⇒ ∅**: a query marked provably-empty evaluates to the empty
//!   node set on random documents under every general strategy, from
//!   every context tried.
//! * **Rewrites are bit-identical**: the reverse-axis-free IR selects the
//!   same nodes, in the same document order, as the original on the
//!   backend-differential document shapes.
//! * **`Streamable` means it**: a streaming-classified plan agrees with
//!   the tree-based oracle on the streaming-differential inputs.
//! * **Corpus coverage**: every query in the BENCH and w3c corpora gets a
//!   `QueryReport`, and the checked-in corpus files stay in sync with the
//!   tests they mirror.

use gkp_xpath::core::analyze::{analyze, Severity, Streamability};
use gkp_xpath::core::plan::{execute_adhoc, Plan};
use gkp_xpath::core::{Context, Strategy, Value};
use gkp_xpath::syntax::parse_normalized;
use gkp_xpath::xml::generate::{doc_balanced, doc_bookstore, doc_random, RandomDocConfig};
use gkp_xpath::{Compiler, Document};

/// The general (non-fragment) strategies: they accept every query, so the
/// analyzer's context-free verdicts can be checked against all of them.
const GENERAL: &[Strategy] = &[
    Strategy::Naive,
    Strategy::DataPool,
    Strategy::BottomUp,
    Strategy::TopDown,
    Strategy::MinContext,
    Strategy::OptMinContext,
];

fn contexts(doc: &Document) -> Vec<Context> {
    let mut out = vec![Context::of(doc.root())];
    if let Some(el) = doc.document_element() {
        out.push(Context::of(el));
        // A deeper, arbitrary context: emptiness verdicts are
        // context-free, so any node must do.
        if let Some(deep) = doc.children(el).last() {
            out.push(Context::of(deep));
        }
    }
    out
}

fn node_set(v: Value) -> gkp_xpath::xml::NodeSet {
    match v {
        Value::NodeSet(s) => s,
        other => panic!("expected a node set, got {other:?}"),
    }
}

#[test]
fn provably_empty_queries_select_nothing_everywhere() {
    let corpus = [
        "/parent::*",
        "/ancestor::a",
        "/following::a",
        "/@id",
        "/self::a",
        "//b/self::c",
        "//b/self::text()",
        "//@id/child::*",
        "//@id/self::node()",
        "//@id/@x",
        "//text()/child::*",
        "//comment()/@x",
        "//a/parent::text()",
        "//a[false()]",
        "//a[0]",
        "//a[b and false()]",
        "//a[not(true())]",
        "//a[count(b) = //text()/child::*]",
    ];
    let docs: Vec<Document> = (0..6u64)
        .map(|seed| doc_random(seed, &RandomDocConfig { elements: 40, ..Default::default() }))
        .chain([doc_bookstore(), doc_balanced(3, 4, &["a", "b", "c", "d"])])
        .collect();
    for q in corpus {
        let e = parse_normalized(q).unwrap();
        let report = analyze(&e);
        assert!(report.is_empty_query(), "{q} must be provably empty: {report:?}");
        for doc in &docs {
            for ctx in contexts(doc) {
                for &s in GENERAL {
                    let got = node_set(execute_adhoc(&e, s, None, doc, ctx).unwrap());
                    assert!(
                        got.is_empty(),
                        "{q} under {s:?} from {:?} selected {} nodes — analyzer verdict is wrong",
                        ctx.node,
                        got.len()
                    );
                }
            }
        }
    }
}

#[test]
fn analyzer_never_marks_nonempty_results_empty() {
    // The converse guard on satisfiable shapes: whenever any strategy
    // finds nodes, the analyzer must NOT have claimed emptiness. (Vacuous
    // for truly empty results — soundness only cuts one way.)
    let corpus = [
        "//a",
        "//@id/..",
        "//text()/self::node()",
        "//text()/following::*",
        "//a/self::*",
        "//a[not(b)]",
        "//chapter[title = 'Two']",
    ];
    let docs: Vec<Document> = (0..6u64)
        .map(|seed| doc_random(seed, &RandomDocConfig { elements: 40, ..Default::default() }))
        .collect();
    for q in corpus {
        let e = parse_normalized(q).unwrap();
        let report = analyze(&e);
        for doc in &docs {
            let got = node_set(
                execute_adhoc(&e, Strategy::TopDown, None, doc, Context::of(doc.root())).unwrap(),
            );
            if !got.is_empty() {
                assert!(!report.is_empty_query(), "{q} found nodes yet was marked empty");
            }
        }
    }
}

#[test]
fn reverse_axis_rewrites_are_bit_identical() {
    let corpus = [
        "//c/parent::a",
        "//d/ancestor::b",
        "//c/ancestor-or-self::*",
        "//b/preceding-sibling::a",
        "//c/preceding::a",
        "//b[c]/parent::a[b]",
        "//a/parent::*/child::b",
        "//b/ancestor::a/descendant::d",
        "//d/parent::c/parent::b",
        "//author/parent::book",
        // NOT here: `//c[preceding::a]/descendant::d` — its reverse axis
        // sits inside a predicate (a relative path), where the
        // forwardization rules don't apply.
    ];
    let docs: Vec<Document> = (0..10u64)
        .map(|seed| doc_random(seed, &RandomDocConfig { elements: 60, ..Default::default() }))
        .chain([doc_bookstore(), doc_balanced(4, 5, &["a", "b", "c", "d"])])
        .collect();
    for q in corpus {
        let e = parse_normalized(q).unwrap();
        let report = analyze(&e);
        let f =
            report.forward_expr.as_ref().unwrap_or_else(|| panic!("{q}: forwardize should apply"));
        // The rewrite is reverse-axis-free on its spine by construction;
        // re-analysis of the rewritten IR must not rewrite again.
        assert!(analyze(f).forward_expr.is_none(), "{q}: rewrite of a rewrite");
        for doc in &docs {
            for ctx in contexts(doc) {
                let want = node_set(execute_adhoc(&e, Strategy::TopDown, None, doc, ctx).unwrap());
                for &s in GENERAL {
                    let got = node_set(execute_adhoc(f, s, None, doc, ctx).unwrap());
                    assert_eq!(
                        got.to_vec(),
                        want.to_vec(),
                        "{q}: rewritten form diverges under {s:?} (rewrite: {f})"
                    );
                }
            }
        }
    }
}

#[test]
fn streaming_classification_matches_the_matcher() {
    // Forward shapes (classified Streamable or NeedsBuffering as written)
    // plus reverse shapes that stream only via the rewrite: a
    // Streaming-strategy plan must agree with the tree-based oracle.
    let corpus = [
        "/self::node()",
        "/descendant-or-self::node()",
        "/child::*[self::a]",
        "/descendant::*[self::b[child::c]]",
        "/descendant::a[not(self::a[child::b])]",
        "/descendant::text()",
        "/child::a/descendant-or-self::node()/child::b",
        "//a/b",
        "//a[b]",
        "//b[1]",
        "//c/parent::a",
        "//d/ancestor::b[c]",
    ];
    for q in corpus {
        let e = parse_normalized(q).unwrap();
        let report = analyze(&e);
        assert!(
            !matches!(report.streamability, Streamability::InMemoryOnly(_)),
            "{q} should be streamable (possibly via rewrite): {report:?}"
        );
        let plan = Plan::build(e.clone(), Strategy::Streaming, None).unwrap();
        for seed in 0..8u64 {
            let doc = doc_random(seed, &RandomDocConfig { elements: 35, ..Default::default() });
            let ctx = Context::of(doc.root());
            let want = node_set(execute_adhoc(&e, Strategy::TopDown, None, &doc, ctx).unwrap());
            let got = node_set(plan.execute(&doc, ctx).unwrap());
            assert_eq!(got.to_vec(), want.to_vec(), "{q} seed {seed}: stream diverges from tree");
        }
    }
}

fn corpus_queries(content: &str) -> Vec<&str> {
    content.lines().map(str::trim).filter(|l| !l.is_empty() && !l.starts_with('#')).collect()
}

#[test]
fn every_corpus_query_gets_a_clean_report() {
    let compiler = Compiler::new();
    for (name, content) in [
        ("queries/bench_axes.txt", include_str!("../queries/bench_axes.txt")),
        ("queries/w3c_examples.txt", include_str!("../queries/w3c_examples.txt")),
    ] {
        let queries = corpus_queries(content);
        assert!(!queries.is_empty(), "{name} is empty");
        for q in queries {
            let compiled =
                compiler.compile(q).unwrap_or_else(|e| panic!("{name}: {q} fails to compile: {e}"));
            let report = compiled.report();
            // The corpora are maintained queries: anything error-severity
            // (unknown function, etc.) is a corpus bug, and the lint CI
            // step would fail on it too.
            assert_ne!(
                report.max_severity(),
                Some(Severity::Error),
                "{name}: {q} has error-severity diagnostics: {:?}",
                report.diagnostics
            );
        }
    }
}

#[test]
fn corpus_files_stay_in_sync_with_the_tests_they_mirror() {
    // Every query exercised by tests/w3c_examples.rs through check(...)
    // must appear in the w3c corpus file the lint CI step consumes.
    let source = include_str!("w3c_examples.rs");
    let corpus = corpus_queries(include_str!("../queries/w3c_examples.txt"));
    let mut missing = Vec::new();
    for line in source.lines() {
        if let Some(rest) = line.trim().strip_prefix("check(\"") {
            if let Some(end) = rest.find('"') {
                let q = &rest[..end];
                if !corpus.contains(&q) {
                    missing.push(q);
                }
            }
        }
    }
    assert!(missing.is_empty(), "queries missing from queries/w3c_examples.txt: {missing:?}");

    // The bench corpus mirrors BENCH_QUERIES (bench_axes.rs and
    // backend_differential.rs carry the same list).
    let bench = corpus_queries(include_str!("../queries/bench_axes.txt"));
    let source = include_str!("backend_differential.rs");
    for q in &bench {
        assert!(
            source.contains(&format!("\"{q}\"")),
            "{q} in queries/bench_axes.txt but not in tests/backend_differential.rs"
        );
    }
    assert_eq!(bench.len(), 7, "the BENCH corpus has seven shapes");
}

#[test]
fn bench_corpus_contains_a_short_circuiting_query() {
    // Acceptance: at least one BENCH query must short-circuit through the
    // constant-empty plan node, and --explain must show it (the CLI side
    // is covered in tests/cli.rs).
    let compiler = Compiler::new();
    let bench = corpus_queries(include_str!("../queries/bench_axes.txt"));
    let folded: Vec<_> = bench
        .iter()
        .filter(|q| compiler.compile(q).unwrap().report().const_result.is_some())
        .copied()
        .collect();
    assert!(!folded.is_empty(), "no BENCH query const-folds");
    let x = gkp_xpath::core::explain::explain(&parse_normalized(folded[0]).unwrap(), 1000);
    assert!(x.report.contains("const:"), "{}", x.report);
}
