//! Exhaustive checks of the Core XPath backward semantics `S←`
//! (Definition 10.2, Theorem 10.4): for every axis and several predicate
//! shapes, `S←[[π]]` must equal `{x | S↓[[π]]({x}) ≠ ∅}` — computed here by
//! evaluating the path from every node with the general engine.

use gkp_xpath::core::corexpath::{compile_xpatterns, CoreXPathEvaluator};
use gkp_xpath::core::topdown::TopDownEvaluator;
use gkp_xpath::core::{Context, Value};
use gkp_xpath::xml::generate::{doc_bookstore, doc_figure8, doc_random, RandomDocConfig};
use gkp_xpath::{Document, NodeId};

/// Brute-force S← via the top-down engine: evaluate π at every node and
/// keep those with non-empty results.
fn brute_force_matches(doc: &Document, q: &str) -> Vec<NodeId> {
    let e = gkp_xpath::syntax::parse_normalized(q).unwrap();
    let td = TopDownEvaluator::new(doc);
    doc.all_nodes()
        .filter(|&n| match td.evaluate(&e, Context::of(n)) {
            Ok(Value::NodeSet(s)) => !s.is_empty(),
            other => panic!("{q} at {n:?}: {other:?}"),
        })
        .collect()
}

fn check(doc: &Document, q: &str) {
    let e = gkp_xpath::syntax::parse_normalized(q).unwrap();
    let compiled = compile_xpatterns(&e).unwrap_or_else(|err| panic!("{q}: {err}"));
    let ev = CoreXPathEvaluator::new(doc);
    let fast = ev.matching_contexts(&compiled);
    let brute = brute_force_matches(doc, q);
    assert_eq!(fast.to_vec(), brute, "S← mismatch for {q}");
}

/// Theorem 10.4 on relative single-step paths, one per axis.
#[test]
fn single_step_every_axis() {
    let docs = [doc_figure8(), doc_bookstore()];
    for d in &docs {
        for q in [
            "self::b",
            "child::c",
            "parent::b",
            "descendant::d",
            "ancestor::b",
            "descendant-or-self::c",
            "ancestor-or-self::a",
            "following::d",
            "preceding::c",
            "following-sibling::d",
            "preceding-sibling::c",
            "attribute::id",
            "child::text()",
            "child::node()",
            "self::*",
        ] {
            check(d, q);
        }
    }
}

/// Multi-step paths mixing antagonist axes.
#[test]
fn multi_step_paths() {
    let docs = [doc_figure8(), doc_bookstore()];
    for d in &docs {
        for q in [
            "child::c/following-sibling::d",
            "parent::b/parent::a",
            "descendant::c/ancestor::b",
            "following::d/preceding::c",
            "ancestor::*/child::b",
            "child::*/child::*/child::*",
            "preceding-sibling::*/descendant::c",
            "attribute::id/parent::*",
        ] {
            check(d, q);
        }
    }
}

/// Paths with boolean predicate structure (and/or/not, nesting).
#[test]
fn predicated_paths() {
    let docs = [doc_figure8(), doc_bookstore()];
    for d in &docs {
        for q in [
            "child::b[child::c]",
            "child::b[not(child::c)]",
            "descendant::*[child::c and child::d]",
            "descendant::*[child::c or not(following::*)]",
            "child::b[child::c[following-sibling::d]]",
            "descendant::d[not(preceding-sibling::c[child::zzz])]",
        ] {
            check(d, q);
        }
    }
}

/// Absolute paths inside predicates use the dom/root operation.
#[test]
fn absolute_paths() {
    let d = doc_figure8();
    for q in [
        "/child::a",
        "/descendant::d",
        "/descendant::zzz",
        "descendant::b[/descendant::d]",
        "descendant::b[/descendant::zzz]",
    ] {
        check(&d, q);
    }
}

/// XPatterns `=s` comparisons, both orientations and numeric form.
#[test]
fn eq_s_paths() {
    let d = doc_figure8();
    for q in [
        "child::*[child::c = '21 22']",
        "descendant::*[child::d = 100]",
        "descendant::d[self::* = 100]",
        "child::b[descendant::* = '23 24']",
    ] {
        check(&d, q);
    }
}

/// Random documents: S← equals brute force on a query battery.
#[test]
fn backward_on_random_documents() {
    let queries = [
        "child::b[child::c]",
        "descendant::*[following-sibling::a]",
        "ancestor::*[not(child::d)]",
        "following::c/parent::*",
        "preceding::*[child::a or child::b]",
        "self::a[descendant::c]",
    ];
    for seed in 0..10 {
        let cfg = RandomDocConfig { elements: 25, ..RandomDocConfig::default() };
        let d = doc_random(seed, &cfg);
        for q in queries {
            check(&d, q);
        }
    }
}

/// The forward semantics S→ with a non-trivial context set equals the
/// union of per-node evaluations (Theorem 10.4 third equation).
#[test]
fn forward_set_semantics() {
    let d = doc_bookstore();
    let e = gkp_xpath::syntax::parse_normalized("child::book[child::author]/child::title").unwrap();
    let compiled = compile_xpatterns(&e).unwrap();
    let ev = CoreXPathEvaluator::new(&d);
    let td = TopDownEvaluator::new(&d);
    let contexts: Vec<NodeId> = d.all_nodes().filter(|n| n.0 % 3 == 0).collect();
    let fast = ev.evaluate(&compiled, &contexts);
    let mut brute: Vec<NodeId> = Vec::new();
    for &x in &contexts {
        if let Value::NodeSet(s) = td.evaluate(&e, Context::of(x)).unwrap() {
            brute.extend(s);
        }
    }
    brute.sort_unstable();
    brute.dedup();
    assert_eq!(fast.to_vec(), brute);
}
