//! Batch differential suite: `QuerySet::evaluate_all` must be
//! bit-identical to N independent `CompiledQuery::evaluate` calls — same
//! values, same node sets, same per-query errors — for random query
//! batches (duplicates included) on the six BENCH query shapes, across
//! every evaluation mode (cost-picked, lock-step-shared, per-query
//! sharded, serial) and thread budget. CI runs this suite at
//! `GKP_THREADS=1` and `GKP_THREADS=4`; explicit 1- and 4-thread builds
//! below cover both budgets regardless of the environment.

use std::sync::Arc;

use gkp_xpath::axes::{BatchMode, CostModel};
use gkp_xpath::xml::generate::{doc_balanced, doc_bookstore, doc_random, RandomDocConfig};
use gkp_xpath::xml::rng::Rng;
use gkp_xpath::{Compiler, Document, QuerySetBuilder, Value};

/// The six query shapes benchmarked in BENCH_axes.json.
const BENCH_QUERIES: &[&str] = &[
    "//a//c",
    "//a//b//c//d",
    "//b[following::c]",
    "//c[preceding::a]/descendant::d",
    "//*[not(ancestor::b)]",
    "//a[descendant::d]/following::b",
];

/// Extra pool entries: shared prefixes of the BENCH shapes (guaranteed
/// memo hits), XPatterns features, and non-fragment queries that must run
/// their normal engines inside any batch.
const EXTRA_QUERIES: &[&str] = &[
    "//a//b",
    "//a//b//c",
    "//b[following::c]/child::*",
    "count(//c)",
    "//b[position() = last()]",
    "//*[c = '100']",
];

/// A memo-friendly model (probes near-free) and a memo-hostile one
/// (probes absurd): pinned modes must agree under both.
fn models() -> [CostModel; 2] {
    [
        CostModel { memo_probe_ns: 1e-9, fingerprint_word_ns: 1e-9, ..CostModel::CALIBRATED },
        CostModel { memo_probe_ns: 1e12, ..CostModel::CALIBRATED },
    ]
}

fn assert_batches_match(doc: &Document, batch: &[&str], label: &str) {
    let compiler = Compiler::new();
    let independent: Vec<Result<Value, _>> =
        batch.iter().map(|q| compiler.compile(q).unwrap().evaluate_root(doc)).collect();
    let modes = [
        None,
        Some(BatchMode::LockStepShared),
        Some(BatchMode::PerQuerySharded),
        Some(BatchMode::Serial),
    ];
    for mode in modes {
        for threads in [1u32, 4] {
            for model in models() {
                let mut builder = QuerySetBuilder::new()
                    .queries(batch.iter().copied())
                    .threads(threads)
                    .cost_model(model);
                if let Some(m) = mode {
                    builder = builder.mode(m);
                }
                let set = builder.build().unwrap();
                let out = set.evaluate_all(doc);
                assert_eq!(out.len(), batch.len(), "{label}");
                for (i, (got, want)) in out.results().iter().zip(&independent).enumerate() {
                    match (got, want) {
                        (Ok(g), Ok(w)) => assert_eq!(
                            g, w,
                            "{label}: {:?} diverges on {:?} ({threads} threads)",
                            mode, batch[i]
                        ),
                        (g, w) => panic!(
                            "{label}: result kinds diverge on {:?}: {g:?} vs {w:?}",
                            batch[i]
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn batches_agree_on_bench_query_shapes() {
    let docs = [doc_balanced(4, 5, &["a", "b", "c", "d"]), doc_bookstore()];
    for doc in &docs {
        // The whole corpus as one batch, and with every query duplicated.
        assert_batches_match(doc, BENCH_QUERIES, "bench corpus");
        let doubled: Vec<&str> =
            BENCH_QUERIES.iter().chain(BENCH_QUERIES.iter()).copied().collect();
        assert_batches_match(doc, &doubled, "bench corpus doubled");
    }
}

#[test]
fn random_batches_agree_on_random_documents() {
    let pool: Vec<&str> = BENCH_QUERIES.iter().chain(EXTRA_QUERIES.iter()).copied().collect();
    for seed in 0..6u64 {
        let doc = doc_random(seed, &RandomDocConfig { elements: 60, ..RandomDocConfig::default() });
        let mut rng = Rng::seed_from_u64(seed * 31 + 7);
        // Random batch sizes with replacement, so duplicates occur.
        let size = rng.random_range(2usize..=12);
        let batch: Vec<&str> =
            (0..size).map(|_| pool[rng.random_range(0usize..pool.len())]).collect();
        assert_batches_match(&doc, &batch, &format!("random seed {seed} batch {batch:?}"));
    }
}

#[test]
fn lock_step_really_shares_on_duplicate_heavy_batches() {
    // A batch where every query repeats must serve at least one
    // application per duplicated fragment query from the memo.
    let doc = doc_balanced(4, 5, &["a", "b", "c", "d"]);
    let batch: Vec<&str> = BENCH_QUERIES.iter().chain(BENCH_QUERIES.iter()).copied().collect();
    let set = QuerySetBuilder::new()
        .queries(batch)
        .mode(BatchMode::LockStepShared)
        .threads(1)
        .build()
        .unwrap();
    let sharing = set.sharing();
    assert!(
        sharing.shared_units * 2 >= sharing.total_units,
        "duplicated corpus must share at least half its units: {sharing:?}"
    );
    let out = set.evaluate_all(&doc);
    assert!(
        out.stats().memo_hits >= out.stats().memo_misses,
        "a fully duplicated batch re-runs at most half its applications: {:?}",
        out.stats()
    );
    assert_eq!(set.planner_stats().memo_hits, out.stats().memo_hits);
}

#[test]
fn shared_handles_and_texts_mix_in_one_batch() {
    let doc = doc_bookstore();
    let compiler = Compiler::new();
    let cache = gkp_xpath::QueryCache::new(64);
    let handles = cache.get_or_compile_many(&compiler, &["//book[author]", "//book"]).unwrap();
    let mut builder = QuerySetBuilder::with_compiler(compiler.clone()).query("count(//book)");
    for h in &handles {
        builder = builder.compiled(Arc::clone(h));
    }
    let set = builder.build().unwrap();
    let out = set.evaluate_all(&doc);
    for (i, q) in ["count(//book)", "//book[author]", "//book"].iter().enumerate() {
        let want = compiler.compile(q).unwrap().evaluate_root(&doc).unwrap();
        assert_eq!(out.results()[i].as_ref().unwrap(), &want, "{q}");
    }
    // Batch evaluation leaves the cached handles' own planner tallies
    // untouched (shared passes are unattributable): decisions live on the
    // QuerySet.
    assert_eq!(out.len(), 3);
}

#[test]
fn non_root_contexts_agree_too() {
    let doc = doc_bookstore();
    let ctx_node = doc.document_element().unwrap_or(doc.root());
    let ctx = gkp_xpath::core::Context::of(ctx_node);
    let batch = ["descendant::book[author]", "child::*", "descendant::book[author]"];
    let compiler = Compiler::new();
    for mode in [BatchMode::LockStepShared, BatchMode::PerQuerySharded, BatchMode::Serial] {
        let set = QuerySetBuilder::new()
            .queries(batch)
            .mode(mode)
            .threads(4)
            .cost_model(models()[0])
            .build()
            .unwrap();
        let out = set.evaluate_all_at(&doc, ctx);
        for (q, got) in batch.iter().zip(out.results()) {
            let want = compiler.compile(q).unwrap().evaluate(&doc, ctx).unwrap();
            assert_eq!(got.as_ref().unwrap(), &want, "{q} under {mode:?}");
        }
    }
}
