//! Kernel-tier bit-identity: every operation in `xpath_xml::simd` must
//! return the same bits on the `Scalar`, `Unrolled` and (when the CPU
//! supports it) `Vector` tiers, on adversarial buffer shapes — empty,
//! single-word, unaligned tails straddling the 4-wide and 32-byte lane
//! boundaries, all-ones, alternating masks, and zero-holed words (the
//! fingerprint skips zero words, so holes probe the lane masking).
//!
//! Deterministic splitmix64-driven cases always run; a `proptest` section
//! rides behind the same optional feature as `tests/robustness.rs`.

use gkp_xpath::xml::rng::splitmix64;
use gkp_xpath::xml::simd;
use gkp_xpath::xml::NodeId;

/// The tiers to cross-check: vector only where the CPU supports it
/// (`effective` would silently downgrade it, hiding a missing case).
fn tiers() -> Vec<simd::Tier> {
    let mut t = vec![simd::Tier::Scalar, simd::Tier::Unrolled];
    if simd::vector_available() {
        t.push(simd::Tier::Vector);
    }
    t
}

/// A deterministic word buffer of length `len` with shape `kind`.
fn words(seed: u64, len: usize, kind: u64) -> Vec<u64> {
    (0..len as u64)
        .map(|i| {
            let w = splitmix64(seed ^ splitmix64(i));
            match kind % 5 {
                0 => w,
                1 => u64::MAX,
                2 => 0xAAAA_AAAA_AAAA_AAAA,
                // Zero-holed: ~1/3 of words vanish entirely.
                3 => w * u64::from(!w.is_multiple_of(3)),
                _ => w & splitmix64(w),
            }
        })
        .collect()
}

/// Lengths that straddle every dispatch boundary: the 4-word unroll, the
/// 4-lane AVX2 step, and the 8-lane AVX-512 fingerprint step.
const LENGTHS: &[usize] = &[0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 100];

#[test]
fn unary_ops_are_bit_identical_across_tiers() {
    for &len in LENGTHS {
        for kind in 0..5 {
            let w = words(splitmix64(len as u64 ^ kind), len, kind);
            let pop = simd::popcount_with(simd::Tier::Scalar, &w);
            let fp = simd::fingerprint_words_with(simd::Tier::Scalar, &w);
            for tier in tiers() {
                assert_eq!(simd::popcount_with(tier, &w), pop, "popcount {tier:?} len {len}");
                assert_eq!(
                    simd::fingerprint_words_with(tier, &w),
                    fp,
                    "fingerprint {tier:?} len {len} kind {kind}"
                );
            }
        }
    }
}

#[test]
fn binary_ops_are_bit_identical_across_tiers() {
    for &len in LENGTHS {
        for &other in &[len, len / 2, len + 3] {
            let a = words(0xA5A5 ^ len as u64, len, 0);
            let b = words(0x5A5A ^ other as u64, other, 4);
            // Reference results from the scalar tier.
            let mut or_ref = a.clone();
            let or_count = simd::or_assign_count_with(simd::Tier::Scalar, &mut or_ref, &b);
            let mut andnot_ref = a.clone();
            let andnot_count =
                simd::andnot_assign_count_with(simd::Tier::Scalar, &mut andnot_ref, &b);
            let mut and_into_ref = vec![0u64; len];
            let and_into_count =
                simd::and_into_count_with(simd::Tier::Scalar, &a, &b, &mut and_into_ref);
            let mut andnot_into_ref = vec![0u64; len];
            let andnot_into_count =
                simd::andnot_into_count_with(simd::Tier::Scalar, &a, &b, &mut andnot_into_ref);
            for tier in tiers() {
                let mut dst = a.clone();
                assert_eq!(simd::or_assign_count_with(tier, &mut dst, &b), or_count);
                assert_eq!(dst, or_ref, "or {tier:?} len {len}/{other}");
                let mut dst = a.clone();
                assert_eq!(simd::andnot_assign_count_with(tier, &mut dst, &b), andnot_count);
                assert_eq!(dst, andnot_ref, "andnot {tier:?} len {len}/{other}");
                let mut out = vec![0u64; len];
                assert_eq!(simd::and_into_count_with(tier, &a, &b, &mut out), and_into_count);
                assert_eq!(out, and_into_ref, "and_into {tier:?} len {len}/{other}");
                let mut out = vec![0u64; len];
                assert_eq!(simd::andnot_into_count_with(tier, &a, &b, &mut out), andnot_into_count);
                assert_eq!(out, andnot_into_ref, "andnot_into {tier:?} len {len}/{other}");
            }
        }
    }
}

#[test]
fn id_run_writer_is_bit_identical_across_tiers() {
    // Runs crossing the 8-lane step, 1-element runs, and empty runs.
    let cases: &[(u32, u32)] = &[(0, 0), (0, 1), (5, 13), (60, 68), (100, 356), (7, 7), (1, 64)];
    for &(lo, hi) in cases {
        let mut reference: Vec<NodeId> = vec![NodeId(42)];
        simd::extend_id_run_with(simd::Tier::Scalar, &mut reference, lo, hi);
        for tier in tiers() {
            let mut out: Vec<NodeId> = vec![NodeId(42)];
            simd::extend_id_run_with(tier, &mut out, lo, hi);
            assert_eq!(out, reference, "extend_id_run {tier:?} [{lo}, {hi})");
        }
    }
}

// The property tests need the external `proptest` crate, which is not
// vendored in this offline workspace; see Cargo.toml. The deterministic
// tests above always run.
#[cfg(feature = "proptest")]
mod props {
    use proptest::prelude::*;

    use gkp_xpath::xml::simd;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// Popcount and fingerprint agree across tiers on arbitrary words.
        #[test]
        fn unary_ops_agree(w in prop::collection::vec(any::<u64>(), 0..200)) {
            let pop = simd::popcount_with(simd::Tier::Scalar, &w);
            let fp = simd::fingerprint_words_with(simd::Tier::Scalar, &w);
            for tier in super::tiers() {
                prop_assert_eq!(simd::popcount_with(tier, &w), pop);
                prop_assert_eq!(simd::fingerprint_words_with(tier, &w), fp);
            }
        }

        /// The fused assign-and-count ops agree across tiers on arbitrary
        /// word buffers of independent lengths.
        #[test]
        fn binary_ops_agree(
            a in prop::collection::vec(any::<u64>(), 0..120),
            b in prop::collection::vec(any::<u64>(), 0..120),
        ) {
            let mut or_ref = a.clone();
            let or_count = simd::or_assign_count_with(simd::Tier::Scalar, &mut or_ref, &b);
            let mut an_ref = a.clone();
            let an_count = simd::andnot_assign_count_with(simd::Tier::Scalar, &mut an_ref, &b);
            for tier in super::tiers() {
                let mut dst = a.clone();
                prop_assert_eq!(simd::or_assign_count_with(tier, &mut dst, &b), or_count);
                prop_assert_eq!(&dst, &or_ref);
                let mut dst = a.clone();
                prop_assert_eq!(simd::andnot_assign_count_with(tier, &mut dst, &b), an_count);
                prop_assert_eq!(&dst, &an_ref);
            }
        }
    }
}
