//! Snapshot differential suite: a document that goes through
//! parse → `snap::write` → mmap `snap::load` must be *bit-identical* to
//! the original in every observable way — structure accessors, string
//! values, ID/IDREF dereferencing, whole-query evaluation under every
//! strategy (root and non-root contexts), the lazy cursor paths and
//! batched evaluation. The same holds for the owned-buffer fallback
//! (`OpenOptions { mmap: false }`), so the two backings can never
//! diverge from each other either.

use gkp_xpath::core::{Context, Engine, NodeCursor, Strategy};
use gkp_xpath::xml::generate::{
    doc_balanced, doc_bookstore, doc_figure8, doc_idref_chain, doc_random, RandomDocConfig,
};
use gkp_xpath::xml::snap::{self, OpenOptions};
use gkp_xpath::xml::ParseOptions;
use gkp_xpath::{Compiler, Document, QuerySetBuilder};

/// Every evaluation strategy, including the fragment-restricted ones
/// (which must *reject* identically on both documents).
const STRATEGIES: &[Strategy] = &[
    Strategy::Naive,
    Strategy::DataPool,
    Strategy::BottomUp,
    Strategy::TopDown,
    Strategy::MinContext,
    Strategy::OptMinContext,
    Strategy::CoreXPath,
    Strategy::XPatterns,
    Strategy::Streaming,
    Strategy::Auto,
];

/// The BENCH_axes query shapes plus value-typed, id()- and text()-heavy
/// queries, so the text arena, the id table and the ref relation are all
/// exercised through the mapped backing.
const QUERIES: &[&str] = &[
    "//a//c",
    "//a//b//c//d",
    "//b[following::c]",
    "//c[preceding::a]/descendant::d",
    "//*[not(ancestor::b)]",
    "//a[descendant::d]/following::b",
    "//text()/child::*",
    "//*",
    "//@*",
    "//text()",
    "count(//*)",
    "string(/*)",
    "id('i1')",
    "id('i1 i3')/following-sibling::*",
    "//book[author]/title",
    "//*[@id]",
];

fn shapes() -> Vec<(String, Document)> {
    let mut shapes = vec![
        ("figure8".to_string(), doc_figure8()),
        ("bookstore".to_string(), doc_bookstore()),
        ("balanced".to_string(), doc_balanced(3, 5, &["a", "b", "c", "d"])),
        ("idref_chain".to_string(), doc_idref_chain(12)),
    ];
    for seed in 0..3 {
        let cfg = RandomDocConfig { elements: 120, ..RandomDocConfig::default() };
        shapes.push((format!("random{seed}"), doc_random(seed, &cfg)));
    }
    // A namespace-synthesizing parse, so namespace nodes cross the
    // snapshot boundary too.
    let ns_doc = Document::parse_str_opts(
        r#"<root xmlns="urn:d" xmlns:p="urn:p"><p:a x="1"><b/></p:a><c xmlns:q="urn:q"/></root>"#,
        ParseOptions { namespaces: true, ..Default::default() },
    )
    .unwrap();
    shapes.push(("namespaces".to_string(), ns_doc));
    shapes
}

/// Write `doc` to a fresh snapshot, deep-verify it, and reload it under
/// `opts`.
fn roundtrip(doc: &Document, tag: &str, opts: &OpenOptions) -> Document {
    let path = std::env::temp_dir().join(format!(
        "gkp_snapdiff_{tag}_{}_{}.gksnap",
        std::process::id(),
        opts.mmap
    ));
    snap::write(doc, &path).unwrap_or_else(|e| panic!("{tag}: write failed: {e}"));
    snap::verify(&path).unwrap_or_else(|e| panic!("{tag}: deep verify failed: {e}"));
    let loaded = snap::load_with(&path, opts).unwrap_or_else(|e| panic!("{tag}: load failed: {e}"));
    let _ = std::fs::remove_file(&path);
    loaded
}

/// Structural bit-identity: every accessor over every node.
fn assert_same_structure(tag: &str, a: &Document, b: &Document) {
    assert_eq!(a.len(), b.len(), "{tag}: node count");
    assert_eq!(a.id_policy(), b.id_policy(), "{tag}: id policy");
    for n in a.all_nodes() {
        assert_eq!(a.kind(n), b.kind(n), "{tag}: kind of {n:?}");
        assert_eq!(a.name(n), b.name(n), "{tag}: name of {n:?}");
        assert_eq!(a.value(n), b.value(n), "{tag}: value of {n:?}");
        assert_eq!(a.parent(n), b.parent(n), "{tag}: parent of {n:?}");
        assert_eq!(a.first_child(n), b.first_child(n), "{tag}: first_child of {n:?}");
        assert_eq!(a.next_sibling(n), b.next_sibling(n), "{tag}: next_sibling of {n:?}");
        assert_eq!(a.prev_sibling(n), b.prev_sibling(n), "{tag}: prev_sibling of {n:?}");
        assert_eq!(a.subtree_end(n), b.subtree_end(n), "{tag}: subtree_end of {n:?}");
        assert_eq!(a.string_value(n), b.string_value(n), "{tag}: strval of {n:?}");
    }
    assert_eq!(a.serialize(a.root()), b.serialize(b.root()), "{tag}: serialization");
    assert_eq!(
        a.refs().iter().collect::<Vec<_>>(),
        b.refs().iter().collect::<Vec<_>>(),
        "{tag}: ref relation"
    );
    for id in ["i0", "i1", "i5", "b1", "b2", "missing"] {
        assert_eq!(a.element_by_id(id), b.element_by_id(id), "{tag}: element_by_id({id})");
        assert_eq!(a.deref_ids(id), b.deref_ids(id), "{tag}: deref_ids({id})");
    }
}

/// Every strategy, every query, from the root context: identical values
/// (or identical rejection) on the parsed and the snapshot-loaded
/// document.
fn assert_same_queries(tag: &str, parsed: &Document, loaded: &Document, strategies: &[Strategy]) {
    let pe = Engine::new(parsed);
    let le = Engine::new(loaded);
    for &q in QUERIES {
        for &s in strategies {
            match (pe.evaluate_with(q, s), le.evaluate_with(q, s)) {
                (Ok(want), Ok(got)) => {
                    assert_eq!(want, got, "{tag}: {q} under {s:?}");
                }
                (Err(_), Err(_)) => {}
                (want, got) => {
                    panic!("{tag}: {q} under {s:?}: parsed {want:?} vs snapshot {got:?}")
                }
            }
        }
    }
}

/// Non-root contexts: evaluate relative queries from a sample of element
/// nodes on both documents.
fn assert_same_nonroot(tag: &str, parsed: &Document, loaded: &Document) {
    let pe = Engine::new(parsed);
    let le = Engine::new(loaded);
    let compiler = Compiler::new();
    let contexts: Vec<_> = parsed.all_nodes().filter(|&n| n.0 % 7 == 1).take(8).collect();
    for &ctx in &contexts {
        for q in ["descendant::*", "following::*[1]", "ancestor-or-self::*", "string(.)"] {
            let e = compiler.parse(q).unwrap();
            let want = pe.evaluate_expr(&e, Strategy::TopDown, Context::of(ctx));
            let got = le.evaluate_expr(&e, Strategy::TopDown, Context::of(ctx));
            match (want, got) {
                (Ok(w), Ok(g)) => assert_eq!(w, g, "{tag}: {q} at {ctx:?}"),
                (w, g) => panic!("{tag}: {q} at {ctx:?}: {w:?} vs {g:?}"),
            }
        }
    }
}

/// The lazy cursor layer (exists / first / bounded select) and batched
/// evaluation agree across the snapshot boundary.
fn assert_same_lazy_and_batch(tag: &str, parsed: &Document, loaded: &Document) {
    let compiler = Compiler::new();
    for q in ["//a//c", "//*", "//b[following::c]", "//text()"] {
        let c = compiler.compile(q).unwrap();
        assert_eq!(c.exists(parsed).unwrap(), c.exists(loaded).unwrap(), "{tag}: exists {q}");
        assert_eq!(c.first(parsed).unwrap(), c.first(loaded).unwrap(), "{tag}: first {q}");
        let take = |d: &Document, k| {
            let mut cur = c.select_lazy(d);
            let mut out = Vec::new();
            for _ in 0..k {
                match cur.next().unwrap() {
                    Some(n) => out.push(n),
                    None => break,
                }
            }
            out
        };
        assert_eq!(take(parsed, 5), take(loaded, 5), "{tag}: lazy take-5 of {q}");
    }
    let build = QuerySetBuilder::new().queries(QUERIES.iter().map(|q| (*q).to_string())).build();
    if let Ok(set) = build {
        let want = set.evaluate_all(parsed);
        let got = set.evaluate_all(loaded);
        for (i, (w, g)) in want.results().iter().zip(got.results()).enumerate() {
            match (w, g) {
                (Ok(w), Ok(g)) => assert_eq!(w, g, "{tag}: batch query #{i}"),
                (Err(_), Err(_)) => {}
                (w, g) => panic!("{tag}: batch query #{i}: {w:?} vs {g:?}"),
            }
        }
    }
}

#[test]
fn mapped_documents_are_bit_identical_to_parsed() {
    for (tag, doc) in shapes() {
        let mapped = roundtrip(&doc, &tag, &OpenOptions::default());
        assert_same_structure(&tag, &doc, &mapped);
        assert_same_queries(&tag, &doc, &mapped, STRATEGIES);
    }
}

#[test]
fn owned_fallback_matches_mapped_backing() {
    for (tag, doc) in shapes() {
        let mapped = roundtrip(&doc, &tag, &OpenOptions::default());
        let owned = roundtrip(&doc, &tag, &OpenOptions { mmap: false, verify: false });
        assert!(!owned.is_mapped(), "{tag}: mmap:false must use the owned backing");
        assert_same_structure(&tag, &mapped, &owned);
    }
}

#[test]
fn nonroot_contexts_agree_across_snapshot_boundary() {
    for (tag, doc) in shapes() {
        let mapped = roundtrip(&doc, &tag, &OpenOptions::default());
        assert_same_nonroot(&tag, &doc, &mapped);
    }
}

#[test]
fn lazy_cursor_and_batch_paths_agree() {
    for (tag, doc) in shapes() {
        let mapped = roundtrip(&doc, &tag, &OpenOptions::default());
        assert_same_lazy_and_batch(&tag, &doc, &mapped);
    }
}

#[test]
fn big_bench_shape_roundtrips() {
    // The BENCH document family at a smaller depth: still thousands of
    // nodes, same shape as the perf target.
    let doc = doc_balanced(4, 6, &["a", "b", "c", "d"]);
    doc.axis_index();
    let mapped = roundtrip(&doc, "balanced46", &OpenOptions::default());
    assert_same_structure("balanced46", &doc, &mapped);
    // Fast strategies only: the full strategy matrix already runs on the
    // small shapes, and the quadratic-and-worse engines would dominate
    // the suite's runtime here without adding snapshot coverage.
    assert_same_queries(
        "balanced46",
        &doc,
        &mapped,
        &[Strategy::TopDown, Strategy::CoreXPath, Strategy::Auto],
    );
}
