//! Axis-backend differential suite: the Bulk, Direct, Alg32 (per-node
//! reference), Adaptive and sharded Parallel backends (1, 2 and 8
//! shards) must return identical node-sets — same content **and** same
//! document order — on the six BENCH_axes query shapes and on random
//! documents, from root and non-root contexts alike. §3's
//! interchangeability claim, enforced at the evaluator level for the
//! cost-based planner and the parallel CVT layer (which additionally
//! runs under a forced always-shard cost model so every pass really
//! crosses the scoped thread pool).

use gkp_xpath::axes::CostModel;
use gkp_xpath::core::corexpath::{compile, AxisBackend, CoreXPathEvaluator};
use gkp_xpath::syntax::parse_normalized;
use gkp_xpath::xml::generate::{doc_balanced, doc_bookstore, doc_random, RandomDocConfig};
use gkp_xpath::xml::NodeSet;
use gkp_xpath::Document;

/// The seven query shapes benchmarked in BENCH_axes.json (the last is
/// provably empty — the analyzer's constant-empty short-circuit rides the
/// same corpus).
const BENCH_QUERIES: &[&str] = &[
    "//a//c",
    "//a//b//c//d",
    "//b[following::c]",
    "//c[preceding::a]/descendant::d",
    "//*[not(ancestor::b)]",
    "//a[descendant::d]/following::b",
    "//text()/child::*",
];

const BACKENDS: &[(&str, AxisBackend)] = &[
    ("direct", AxisBackend::Direct),
    ("alg32", AxisBackend::Alg32),
    ("bulk", AxisBackend::Bulk),
    ("adaptive", AxisBackend::Adaptive),
    ("parallel-1", AxisBackend::Parallel(1)),
    ("parallel-2", AxisBackend::Parallel(2)),
    ("parallel-8", AxisBackend::Parallel(8)),
];

fn assert_backends_agree(doc: &Document, queries: &[&str], label: &str) {
    let reference = CoreXPathEvaluator::with_backend(doc, AxisBackend::Direct);
    // Adaptive additionally runs under models forced to each extreme so
    // both the sparse and the dense kernel routes are differentially
    // covered regardless of the calibrated crossovers.
    let forced_sparse = CoreXPathEvaluator::new(doc)
        .with_cost_model(CostModel { dense_word_ns: 1e9, ..CostModel::CALIBRATED });
    let forced_dense = CoreXPathEvaluator::new(doc).with_cost_model(CostModel {
        dense_word_ns: 1e-9,
        chain_ns: 1e9,
        ..CostModel::CALIBRATED
    });
    // The parallel backend additionally runs under a forced always-shard
    // model (spawn and merge free): on these small documents the
    // calibrated gate would refuse every spawn, so this is what actually
    // drives each pass across the scoped pool and through the
    // range-split / word-parallel-merge path.
    let forced_shard =
        CoreXPathEvaluator::with_backend(doc, AxisBackend::Parallel(8)).with_cost_model(
            CostModel { spawn_ns: 1e-9, merge_word_ns: 1e-9, ..CostModel::CALIBRATED },
        );
    let contexts = [doc.root(), doc.document_element().unwrap_or(doc.root())];
    for q in queries {
        let e = parse_normalized(q).unwrap_or_else(|err| panic!("{q}: {err}"));
        let c = compile(&e).unwrap_or_else(|err| panic!("{q}: {err}"));
        for ctx in contexts {
            let want: NodeSet = reference.evaluate(&c, &[ctx]);
            let want_ids: Vec<_> = want.iter().collect();
            assert!(
                want_ids.windows(2).all(|w| w[0] < w[1]),
                "{label}: reference out of document order for {q}"
            );
            for (name, backend) in BACKENDS {
                let ev = CoreXPathEvaluator::with_backend(doc, *backend);
                let got = ev.evaluate(&c, &[ctx]);
                assert_eq!(
                    got.to_vec(),
                    want_ids,
                    "{label}: backend {name} diverges on {q} from {ctx:?}"
                );
            }
            for (name, ev) in [
                ("forced-sparse", &forced_sparse),
                ("forced-dense", &forced_dense),
                ("forced-shard", &forced_shard),
            ] {
                assert_eq!(
                    ev.evaluate(&c, &[ctx]).to_vec(),
                    want_ids,
                    "{label}: adaptive({name}) diverges on {q} from {ctx:?}"
                );
            }
        }
    }
    // A one-word universe (≤ 64 ids) legitimately never splits — word
    // alignment collapses every range — so only larger documents must
    // show sharded passes under the always-shard model.
    if doc.len() > 64 {
        assert!(
            forced_shard.kernel_counts().sharded_passes > 0,
            "{label}: the always-shard model never actually sharded a pass"
        );
    }
}

#[test]
fn backends_agree_on_bench_query_shapes() {
    // The same document family the benchmark runs on, scaled down enough
    // to keep the per-node reference fast.
    let doc = doc_balanced(4, 5, &["a", "b", "c", "d"]);
    assert_backends_agree(&doc, BENCH_QUERIES, "balanced");
    assert_backends_agree(&doc_bookstore(), BENCH_QUERIES, "bookstore");
}

#[test]
fn backends_agree_on_random_documents() {
    let queries = [
        "//a/descendant::c",
        "//b/following::*",
        "//c/preceding::*",
        "//d/ancestor::*",
        "//*[not(following-sibling::b)]",
        "//a[child::b or descendant::d]/preceding-sibling::*",
        "//*[not(ancestor::b)]/child::c",
    ];
    for seed in 0..12u64 {
        let cfg = RandomDocConfig { elements: 70, ..RandomDocConfig::default() };
        let doc = doc_random(seed, &cfg);
        assert_backends_agree(&doc, &queries, &format!("random seed {seed}"));
    }
}

#[test]
fn adaptive_kernel_decisions_cover_both_routes() {
    // On the benchmark document family, a descendant-heavy query from the
    // root must exercise the dense kernel, and a narrow query the sparse
    // side — guarding against a planner wedged on one route.
    let doc = doc_balanced(4, 6, &["a", "b", "c", "d"]);
    let ev = CoreXPathEvaluator::new(&doc);
    for q in BENCH_QUERIES {
        let c = compile(&parse_normalized(q).unwrap()).unwrap();
        ev.evaluate(&c, &[doc.root()]);
    }
    let counts = ev.kernel_counts();
    assert!(counts.bulk_dense > 0, "no dense kernel picks across the bench corpus: {counts:?}");
    assert!(counts.bulk_sparse > 0, "no sparse kernel picks across the bench corpus: {counts:?}");
}
