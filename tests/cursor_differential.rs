//! Cursor differential suite: the lazy/budgeted fourth tier
//! (`exists`/`first`, `take(k)` prefixes, and full drains through
//! `select_lazy`) must be **bit-identical** — same content and same
//! document order — to the materialized `select` on the BENCH_axes query
//! shapes and on random documents, from root and non-root contexts, for
//! both the lazy block-synchronous pipeline and the materializing
//! fallback. Cancellation must surface promptly as
//! [`EvalError::Cancelled`] on every evaluation strategy, leave the
//! cursor re-pollable (never poisoned), and leak no recycling-shelf
//! buffers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use gkp_xpath::core::Context;
use gkp_xpath::xml::generate::{doc_balanced, doc_bookstore, doc_random, RandomDocConfig};
use gkp_xpath::{Compiler, Document, EvalBudget, EvalError, NodeCursor, NodeSet, Strategy, Value};

/// The seven query shapes benchmarked in BENCH_axes.json (mirrored by
/// `tests/backend_differential.rs`): streamable spines, witness-predicate
/// shapes the lazy pipeline must route through `pred_holds`, and
/// reverse-axis shapes that exercise the materializing fallback.
const BENCH_QUERIES: &[&str] = &[
    "//a//c",
    "//a//b//c//d",
    "//b[following::c]",
    "//c[preceding::a]/descendant::d",
    "//*[not(ancestor::b)]",
    "//a[descendant::d]/following::b",
    "//text()/child::*",
];

/// Drive every cursor entry point against the materialized reference.
fn assert_cursor_matches(doc: &Document, queries: &[&str], label: &str) {
    let compiler = Compiler::new();
    let contexts = [doc.root(), doc.document_element().unwrap_or(doc.root())];
    for q in queries {
        let c = compiler.compile(q).unwrap_or_else(|e| panic!("{q}: {e}"));
        for ctx_node in contexts {
            let ctx = Context::of(ctx_node);
            let want = c.select_at(doc, ctx).unwrap_or_else(|e| panic!("{q}: {e}"));
            let want_ids: Vec<_> = want.iter().collect();
            assert!(
                want_ids.windows(2).all(|w| w[0] < w[1]),
                "{label}: reference out of document order for {q}"
            );

            // exists / first early-exits.
            assert_eq!(
                c.exists_at(doc, ctx).unwrap(),
                !want.is_empty(),
                "{label}: exists() diverges on {q} from {ctx_node:?}"
            );
            assert_eq!(
                c.first_at(doc, ctx).unwrap(),
                want.first(),
                "{label}: first() diverges on {q} from {ctx_node:?}"
            );

            // take(k) prefixes, pulled in deliberately awkward block sizes.
            for k in [1usize, 2, 7] {
                let mut cur = c.select_lazy_with(doc, ctx, EvalBudget::unlimited(), Some(k));
                let mut out = NodeSet::new();
                loop {
                    let room = k - out.len();
                    if room == 0 || cur.next_block(&mut out, room).unwrap() == 0 {
                        break;
                    }
                }
                let got: Vec<_> = out.iter().collect();
                assert_eq!(
                    got[..],
                    want_ids[..want_ids.len().min(k)],
                    "{label}: take({k}) diverges on {q} from {ctx_node:?}"
                );
            }

            // Full drain through collect_set.
            let mut cur = c.select_lazy_at(doc, ctx);
            assert_eq!(
                cur.collect_set().unwrap(),
                want,
                "{label}: full drain diverges on {q} from {ctx_node:?}"
            );

            // Item-at-a-time drain: strict document order, no duplicates.
            let mut cur = c.select_lazy_at(doc, ctx);
            let mut singles = Vec::new();
            while let Some(x) = cur.next().unwrap() {
                singles.push(x);
            }
            assert_eq!(
                singles, want_ids,
                "{label}: next() drain diverges on {q} from {ctx_node:?}"
            );
        }
    }
}

#[test]
fn cursor_matches_evaluate_on_bench_query_shapes() {
    let doc = doc_balanced(4, 5, &["a", "b", "c", "d"]);
    assert_cursor_matches(&doc, BENCH_QUERIES, "balanced");
    assert_cursor_matches(&doc_bookstore(), BENCH_QUERIES, "bookstore");
}

#[test]
fn cursor_matches_evaluate_on_random_documents() {
    let queries = [
        "//a/descendant::c",
        "//b/following::*",
        "//d/ancestor::*",
        "//*[not(following-sibling::b)]",
        "//a[child::b or descendant::d]/child::*",
        "//*[not(ancestor::b)]/child::c",
    ];
    for seed in 0..12u64 {
        let cfg = RandomDocConfig { elements: 70, ..RandomDocConfig::default() };
        let doc = doc_random(seed, &cfg);
        assert_cursor_matches(&doc, &queries, &format!("random seed {seed}"));
    }
}

#[test]
fn lazy_full_drain_matches_on_large_document() {
    // 87381 nodes: past the lazy-take crossover, so even hint-less full
    // drains route through the block-synchronous pipeline — the drain
    // must still be bit-identical to the materialized evaluation.
    let doc = doc_balanced(4, 8, &["a", "b", "c", "d"]);
    let compiler = Compiler::new();
    for q in ["//a//c", "//b[following::c]"] {
        let c = compiler.compile(q).unwrap();
        let want = c.select(&doc).unwrap();
        let mut cur = c.select_lazy(&doc);
        assert!(cur.is_lazy(), "{q}: expected the lazy pipeline at |D| = {}", doc.len());
        assert_eq!(cur.collect_set().unwrap(), want, "{q}: lazy drain diverges");
    }
}

#[test]
fn cancellation_surfaces_promptly_across_strategies() {
    let doc = doc_balanced(4, 5, &["a", "b", "c", "d"]);
    let q = "//a//b//c//d";
    for strat in [
        Strategy::Naive,
        Strategy::DataPool,
        Strategy::BottomUp,
        Strategy::TopDown,
        Strategy::MinContext,
        Strategy::OptMinContext,
        Strategy::CoreXPath,
        Strategy::Streaming,
    ] {
        let c = Compiler::new().default_strategy(strat).compile(q).unwrap();
        assert_eq!(c.strategy(), strat, "{q} did not resolve to the forced strategy");
        let cancel = Arc::new(AtomicBool::new(true));
        let budget = EvalBudget::unlimited().with_cancel(cancel.clone());
        let err = c.evaluate_with(&doc, Context::of(doc.root()), &budget).unwrap_err();
        assert!(
            matches!(err, EvalError::Cancelled),
            "{strat:?}: pre-set cancel flag surfaced as {err:?}"
        );
        // Clearing the flag un-poisons everything: the same compiled
        // query and the same budget now evaluate to the full answer.
        cancel.store(false, Ordering::SeqCst);
        let v = c.evaluate_with(&doc, Context::of(doc.root()), &budget).unwrap();
        assert!(
            matches!(v, Value::NodeSet(ref s) if !s.is_empty()),
            "{strat:?}: post-cancel evaluation returned {v:?}"
        );
    }
}

#[test]
fn expired_deadline_surfaces_as_deadline_exceeded() {
    let doc = doc_balanced(4, 5, &["a", "b", "c", "d"]);
    let c = Compiler::new().compile("//a//c").unwrap();
    let budget = EvalBudget::timeout(Duration::ZERO);
    std::thread::sleep(Duration::from_millis(2));
    let err = c.evaluate_with(&doc, Context::of(doc.root()), &budget).unwrap_err();
    assert!(matches!(err, EvalError::DeadlineExceeded), "got {err:?}");
}

#[test]
fn cancelled_cursor_is_repollable_and_leaks_no_shelf_buffers() {
    use gkp_xpath::xml::pool;

    // threads(1) keeps every pass on this thread: the shelf counters
    // below are thread-local, and scoped workers would bring their own.
    let doc = doc_balanced(4, 6, &["a", "b", "c", "d"]);
    let compiler = Compiler::new().threads(1);
    let c = compiler.compile("//a//c").unwrap();
    let want = c.select(&doc).unwrap();

    // A pre-set flag cancels the very first pull; the cursor is NOT
    // poisoned — clearing the flag lets the same cursor drain fully.
    // take_hint = Some(1) forces the lazy pipeline even on this
    // below-crossover document, so the cancellation path under test is
    // the block-synchronous window loop itself.
    let cancel = Arc::new(AtomicBool::new(true));
    let budget = EvalBudget::unlimited().with_cancel(cancel.clone());
    let mut cur = c.select_lazy_with(&doc, Context::of(doc.root()), budget, Some(1));
    assert!(cur.is_lazy(), "take-hinted cursor should route through the lazy pipeline");
    let mut out = NodeSet::new();
    let err = cur.next_block(&mut out, 8).unwrap_err();
    assert!(matches!(err, EvalError::Cancelled), "got {err:?}");
    assert!(out.is_empty(), "a cancelled pull must not emit partial output");
    cancel.store(false, Ordering::SeqCst);
    assert_eq!(cur.collect_set().unwrap(), want, "cursor poisoned by cancellation");

    // Shelf-leak guard: repeated deterministic cancelled evaluations
    // (flag set before the first poll) reach an allocation steady state
    // — every buffer taken before the cancellation fired flows back to
    // the thread-local shelves, so shelf misses stop growing. A leak on
    // the error path would empty the shelves and make misses climb
    // forever.
    let cancel = Arc::new(AtomicBool::new(true));
    let budget = EvalBudget::unlimited().with_cancel(cancel.clone());
    let ctx = Context::of(doc.root());
    let cancelled_round = || {
        let mut cur = c.select_lazy_with(&doc, ctx, budget.clone(), Some(1));
        let mut out = NodeSet::new();
        assert!(cur.next_block(&mut out, usize::MAX).is_err());
        assert!(c.evaluate_with(&doc, ctx, &budget).is_err());
    };
    let mut rounds = 0;
    loop {
        let before = pool::stats().misses;
        cancelled_round();
        rounds += 1;
        if pool::stats().misses == before {
            break;
        }
        assert!(rounds < 50, "cancelled evaluation never reached shelf steady state");
    }
    let before = pool::stats().misses;
    for _ in 0..10 {
        cancelled_round();
    }
    assert_eq!(
        pool::stats().misses - before,
        0,
        "cancelled evaluations leak recycling-shelf buffers"
    );
}
