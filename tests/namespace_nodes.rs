//! End-to-end coverage of namespace nodes: the data model includes them
//! (§4) even though the parser does not synthesize them (DESIGN.md
//! substitution 2) — documents built with `DocumentBuilder` exercise the
//! `namespace` axis, its filtering behaviour, and agreement across engines.

use gkp_xpath::core::{Context, Strategy};
use gkp_xpath::{DocumentBuilder, Engine, NodeKind};

fn doc_with_namespaces() -> gkp_xpath::Document {
    let mut b = DocumentBuilder::new();
    b.open_element("root");
    b.namespace("xsl", "http://www.w3.org/1999/XSL/Transform");
    b.namespace("fo", "http://www.w3.org/1999/XSL/Format");
    b.attribute("version", "1.0");
    b.open_element("xsl:template");
    b.namespace("xsl", "http://www.w3.org/1999/XSL/Transform");
    b.attribute("match", "para");
    b.leaf("fo:block", "body");
    b.close_element();
    b.close_element();
    b.finish()
}

#[test]
fn namespace_axis_selects_namespace_nodes() {
    let d = doc_with_namespaces();
    let engine = Engine::new(&d);
    let root_el = d.document_element().unwrap();
    let ns = engine.select_at("namespace::*", root_el).unwrap();
    assert_eq!(ns.len(), 2);
    for n in &ns {
        assert_eq!(d.kind(n), NodeKind::Namespace);
    }
    // Name test on the namespace axis matches the prefix.
    let xsl = engine.select_at("namespace::xsl", root_el).unwrap();
    assert_eq!(xsl.len(), 1);
    assert_eq!(d.value(xsl.get(0).unwrap()), Some("http://www.w3.org/1999/XSL/Transform"));
}

#[test]
fn other_axes_filter_namespace_nodes() {
    let d = doc_with_namespaces();
    let engine = Engine::new(&d);
    // child/descendant/node() never yield namespace nodes (§4).
    for q in ["//node()", "/root/node()", "//*", "/descendant-or-self::node()"] {
        let hits = engine.select(q).unwrap();
        assert!(
            hits.iter().all(|n| d.kind(n) != NodeKind::Namespace),
            "{q} leaked a namespace node"
        );
        assert!(
            hits.iter().all(|n| d.kind(n) != NodeKind::Attribute),
            "{q} leaked an attribute node"
        );
    }
    // The attribute axis likewise excludes namespace nodes.
    let root_el = d.document_element().unwrap();
    let attrs = engine.select_at("attribute::*", root_el).unwrap();
    assert_eq!(attrs.len(), 1);
    assert_eq!(d.name(attrs.get(0).unwrap()), Some("version"));
}

#[test]
fn all_engines_agree_with_namespace_nodes_present() {
    let d = doc_with_namespaces();
    let engine = Engine::new(&d);
    for q in [
        "count(//*)",
        "//*[@match = 'para']",
        "string(//fo:block)",
        "count(/root/namespace::*)",
        "//*[namespace::xsl]",
        "namespace::*/parent::*",
    ] {
        let e = engine.prepare(q).unwrap();
        engine
            .evaluate_all_agree(&e, Context::of(d.root()), 1_000_000)
            .unwrap_or_else(|err| panic!("{q}: {err}"));
    }
}

#[test]
fn namespace_parent_is_owner_element() {
    let d = doc_with_namespaces();
    let engine = Engine::new(&d);
    let root_el = d.document_element().unwrap();
    let ns = engine.select_at("namespace::*", root_el).unwrap();
    let parent = engine.select_at("parent::*", ns.get(0).unwrap()).unwrap();
    assert_eq!(parent.to_vec(), vec![root_el]);
}

#[test]
fn prefixed_names_and_ns_wildcards() {
    let d = doc_with_namespaces();
    let engine = Engine::new(&d);
    // QName node tests match the full prefixed name.
    assert_eq!(engine.select("//xsl:template").unwrap().len(), 1);
    assert_eq!(engine.select("//fo:block").unwrap().len(), 1);
    // NCName:* matches any name with the prefix.
    assert_eq!(engine.select("//xsl:*").unwrap().len(), 1);
    assert_eq!(engine.select("//zz:*").unwrap().len(), 0);
}

#[test]
fn parser_synthesized_namespace_nodes() {
    // With ParseOptions::namespaces, the parser itself builds namespace
    // nodes from xmlns declarations (the paper's footnote-6 exercise).
    let d = gkp_xpath::Document::parse_str_opts(
        r#"<x:root xmlns:x="urn:x" xmlns="urn:default">
             <x:item xmlns:y="urn:y"><leaf/></x:item>
             <x:item/>
           </x:root>"#,
        gkp_xpath::xml::ParseOptions { namespaces: true, ..Default::default() },
    )
    .unwrap();
    let engine = Engine::new(&d);
    // Root element: default + x + implicit xml.
    let root_el = d.document_element().unwrap();
    assert_eq!(engine.select_at("namespace::*", root_el).unwrap().len(), 3);
    // First item adds y; the inherited declarations are still in scope.
    let items = engine.select("//x:item").unwrap();
    assert_eq!(items.len(), 2);
    assert_eq!(engine.select_at("namespace::*", items.get(0).unwrap()).unwrap().len(), 4);
    assert_eq!(engine.select_at("namespace::y", items.get(0).unwrap()).unwrap().len(), 1);
    // The second item does not see y.
    assert_eq!(engine.select_at("namespace::y", items.get(1).unwrap()).unwrap().len(), 0);
    // The leaf inherits all four from its ancestors.
    let leaf = engine.select("//leaf").unwrap();
    assert_eq!(engine.select_at("namespace::*", leaf.get(0).unwrap()).unwrap().len(), 4);
    // xmlns declarations are not attributes in this mode.
    assert_eq!(engine.select("//@*").unwrap().len(), 0);
    // All engines agree on namespace-axis queries over the parsed document.
    for q in ["count(//namespace::*)", "//*[namespace::y]", "string(//namespace::x)"] {
        let e = engine.prepare(q).unwrap();
        engine
            .evaluate_all_agree(&e, Context::of(d.root()), 1_000_000)
            .unwrap_or_else(|err| panic!("{q}: {err}"));
    }
}

#[test]
fn optimizer_engine_agrees() {
    let d = doc_with_namespaces();
    let plain = Engine::new(&d);
    let opt = Engine::with_optimizer(&d);
    for q in ["//fo:block", "//*[@match = 'para']/.", "count(//*) + 1 * 2"] {
        let a = plain.evaluate(q).unwrap();
        let b = opt.evaluate(q).unwrap();
        assert!(a.semantically_equal(&b), "{q}: {a:?} vs {b:?}");
    }
    // The optimizer visibly rewrites.
    let e = opt.prepare("//fo:block").unwrap();
    assert_eq!(e.to_string(), "/descendant::fo:block");
    let s = plain.prepare("//fo:block").unwrap();
    assert_eq!(s.to_string(), "/descendant-or-self::node()/child::fo:block");
}

#[test]
fn strategy_matrix_on_namespace_doc() {
    let d = doc_with_namespaces();
    let engine = Engine::new(&d);
    let reference =
        engine.evaluate_with("count(//node()) + count(//@*)", Strategy::TopDown).unwrap();
    for s in [
        Strategy::Naive,
        Strategy::DataPool,
        Strategy::BottomUp,
        Strategy::MinContext,
        Strategy::OptMinContext,
    ] {
        let v = engine.evaluate_with("count(//node()) + count(//@*)", s).unwrap();
        assert!(v.semantically_equal(&reference), "{s:?}");
    }
}
