//! Empirical complexity assertions — the paper's headline claims as tests.
//! Wall-clock checks use generous margins; where possible we assert on the
//! naive evaluator's deterministic step counter instead of time.

use std::time::{Duration, Instant};

use gkp_xpath::core::naive::NaiveEvaluator;
use gkp_xpath::core::pool::PoolEvaluator;
use gkp_xpath::core::{Context, Strategy};
use gkp_xpath::xml::generate::{doc_flat, doc_flat_text};
use gkp_xpath::Engine;

fn exp1_query(k: usize) -> String {
    let mut q = String::from("//a/b");
    for _ in 0..k {
        q.push_str("/parent::a/b");
    }
    q
}

/// §2: the naive recurrence Time(|Q|) = |D|^|Q| — on DOC(2) each
/// antagonist step multiplies the step count by the branching factor 2.
#[test]
fn naive_step_counts_follow_the_recurrence() {
    let d = doc_flat(2);
    let mut counts = Vec::new();
    for k in 4..10 {
        let e = gkp_xpath::syntax::parse_normalized(&exp1_query(k)).unwrap();
        let ev = NaiveEvaluator::new(&d);
        ev.evaluate(&e, Context::of(d.root())).unwrap();
        counts.push(ev.steps_applied() as f64);
    }
    for w in counts.windows(2) {
        let ratio = w[1] / w[0];
        assert!((1.7..2.3).contains(&ratio), "expected ~2x per step, got {counts:?}");
    }
}

/// §2 on wider documents: the branching factor tracks |D|.
#[test]
fn naive_branching_scales_with_document() {
    // On DOC(i) the same query family multiplies by ~i per step.
    for i in [3usize, 5] {
        let d = doc_flat(i);
        let steps: Vec<f64> = (3..6)
            .map(|k| {
                let e = gkp_xpath::syntax::parse_normalized(&exp1_query(k)).unwrap();
                let ev = NaiveEvaluator::new(&d);
                ev.evaluate(&e, Context::of(d.root())).unwrap();
                ev.steps_applied() as f64
            })
            .collect();
        let ratio = steps[1] / steps[0];
        assert!(
            (i as f64 * 0.7..i as f64 * 1.3).contains(&ratio),
            "DOC({i}): expected ~{i}x per step, ratios from {steps:?}"
        );
    }
}

/// Theorem 9.2: the data pool's step count grows linearly, not
/// exponentially, in query size.
#[test]
fn pool_step_counts_are_linear_in_query_size() {
    let d = doc_flat(2);
    let mut counts = Vec::new();
    for k in [5usize, 10, 20, 40] {
        let e = gkp_xpath::syntax::parse_normalized(&exp1_query(k)).unwrap();
        let ev = PoolEvaluator::new(&d);
        ev.evaluate(&e, Context::of(d.root())).unwrap();
        counts.push(ev.stats().steps_applied as f64);
    }
    // Doubling the query size should roughly double (not square) the steps.
    for w in counts.windows(2) {
        let ratio = w[1] / w[0];
        assert!(ratio < 3.0, "pool steps not linear: {counts:?}");
    }
}

/// Theorem 10.5: Core XPath time is close to linear in |D| (allow 4x
/// per doubling for allocator noise on a loaded machine).
#[test]
fn core_xpath_linear_in_data() {
    let q = "//b[not(following-sibling::b) or c]";
    let mut times = Vec::new();
    for n in [8_000usize, 16_000, 32_000] {
        let d = doc_flat(n);
        let engine = Engine::new(&d);
        let e = engine.prepare(q).unwrap();
        // Warm-up + best-of-3 to damp noise.
        let mut best = Duration::MAX;
        for _ in 0..3 {
            let t = Instant::now();
            engine.evaluate_expr(&e, Strategy::CoreXPath, Context::of(d.root())).unwrap();
            best = best.min(t.elapsed());
        }
        times.push(best.as_secs_f64());
    }
    for w in times.windows(2) {
        assert!(w[1] < w[0] * 4.0 + 0.005, "not linear-ish: {times:?}");
    }
}

/// §7: the top-down engine handles the paper's hardest workload (Table
/// VII's Experiment-2 queries) in time linear in query depth.
#[test]
fn topdown_linear_in_query_depth() {
    fn exp2_query(depth: usize) -> String {
        let mut inner = String::from("parent::a/child::* = 'c'");
        for _ in 1..depth {
            inner = format!("parent::a/child::*[{inner}] = 'c'");
        }
        format!("//*[{inner}]")
    }
    let d = doc_flat_text(100);
    let engine = Engine::new(&d);
    let mut times = Vec::new();
    for depth in [10usize, 20, 40] {
        let e = engine.prepare(&exp2_query(depth)).unwrap();
        let mut best = Duration::MAX;
        for _ in 0..3 {
            let t = Instant::now();
            engine.evaluate_expr(&e, Strategy::TopDown, Context::of(d.root())).unwrap();
            best = best.min(t.elapsed());
        }
        times.push(best.as_secs_f64());
    }
    // Doubling depth should at most ~quadruple time (linear + noise), and
    // must certainly not square it.
    for w in times.windows(2) {
        assert!(w[1] < w[0] * 5.0 + 0.01, "not linear-ish in depth: {times:?}");
    }
}

/// Streaming memory bound: spine candidates never exceed the element
/// nesting depth (candidates are open ancestors of the current position),
/// regardless of document width.
#[test]
fn streaming_candidates_bounded_by_depth() {
    use gkp_xpath::core::streaming::{self, StreamMatcher};

    // Wide, shallow document: 20,000 entries at depth 2, each a candidate
    // of the predicate query at some point — but never more than one open.
    let wide = doc_flat_text(20_000);
    let q = streaming::compile_str("//b[child::text()]").unwrap();
    let mut m = StreamMatcher::new(&q);
    for ev in wide.events() {
        m.on_event(&ev);
    }
    assert!(m.peak_candidates() <= 2, "wide doc: peak {}", m.peak_candidates());
    let hits = m.finish();
    assert_eq!(hits.len(), 20_000);

    // Deep document: every <b> on the path is simultaneously a candidate,
    // so the peak tracks the depth exactly — the documented worst case.
    let deep = gkp_xpath::xml::generate::doc_deep_path(300);
    let q = streaming::compile_str("//b[descendant::b]").unwrap();
    let mut m = StreamMatcher::new(&q);
    for ev in deep.events() {
        m.on_event(&ev);
    }
    let peak = m.peak_candidates();
    assert!(peak <= 300, "deep doc: peak {peak}");
    assert_eq!(m.finish().len(), 299);
}

/// Pre/post-plane construction is a single linear pass: 16x the nodes must
/// cost far less than 16²x the time.
#[test]
fn plane_construction_is_linear() {
    use gkp_xpath::axes::PrePostPlane;
    let small = doc_flat(4_000);
    let large = doc_flat(64_000);
    let time = |d: &gkp_xpath::Document| {
        let mut best = Duration::MAX;
        for _ in 0..3 {
            let t = Instant::now();
            std::hint::black_box(PrePostPlane::new(d));
            best = best.min(t.elapsed());
        }
        best.as_secs_f64()
    };
    let (ts, tl) = (time(&small), time(&large));
    assert!(tl < ts * 80.0 + 0.01, "not linear-ish: {ts} -> {tl}");
}

/// All polynomial engines finish the full antagonist suite that stalls the
/// naive engine within its budget.
#[test]
fn polynomial_engines_survive_the_antagonist_suite() {
    let d = doc_flat(4);
    let engine = Engine::new(&d);
    let q = exp1_query(30);
    let e = engine.prepare(&q).unwrap();
    // Naive: blown budget.
    let naive = NaiveEvaluator::with_budget(&d, 500_000);
    assert!(naive.evaluate(&e, Context::of(d.root())).is_err());
    // Everything else: instant.
    for s in [
        Strategy::DataPool,
        Strategy::BottomUp,
        Strategy::TopDown,
        Strategy::MinContext,
        Strategy::OptMinContext,
        Strategy::CoreXPath,
    ] {
        let t = Instant::now();
        let v = engine.evaluate_expr(&e, s, Context::of(d.root())).unwrap();
        assert_eq!(v.as_node_set().unwrap().len(), 4, "{s:?}");
        assert!(t.elapsed() < Duration::from_secs(5), "{s:?} too slow");
    }
}
