//! Property-based differential testing: generate random XPath expressions
//! and random documents, and require all algorithms of the paper to agree
//! with the top-down reference. Also checks the parser/pretty-printer
//! round-trip on the generated queries.

#![cfg(feature = "proptest")] // needs the external proptest crate; see Cargo.toml

use proptest::prelude::*;

use gkp_xpath::core::Context;
use gkp_xpath::syntax::{
    normalize, parse, Axis, BinaryOp, Expr, KindTest, LocationPath, NodeTest, PathStart, Step,
};
use gkp_xpath::xml::generate::{doc_random, RandomDocConfig};
use gkp_xpath::Engine;

fn arb_axis() -> impl Strategy<Value = Axis> {
    prop::sample::select(vec![
        Axis::Child,
        Axis::Descendant,
        Axis::Parent,
        Axis::Ancestor,
        Axis::DescendantOrSelf,
        Axis::AncestorOrSelf,
        Axis::Following,
        Axis::Preceding,
        Axis::FollowingSibling,
        Axis::PrecedingSibling,
        Axis::SelfAxis,
        Axis::Attribute,
    ])
}

fn arb_node_test() -> impl Strategy<Value = NodeTest> {
    prop_oneof![
        prop::sample::select(vec!["a", "b", "c", "d", "id"])
            .prop_map(|n| NodeTest::Name(n.to_string())),
        Just(NodeTest::Wildcard),
        Just(NodeTest::Kind(KindTest::Node)),
        Just(NodeTest::Kind(KindTest::Text)),
    ]
}

fn arb_scalar() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0..5i32).prop_map(|v| Expr::Number(v as f64)),
        prop::sample::select(vec!["", "100", "c", "13 14"])
            .prop_map(|s| Expr::Literal(s.to_string())),
        Just(Expr::call("position", vec![])),
        Just(Expr::call("last", vec![])),
        Just(Expr::call("true", vec![])),
    ]
}

fn arb_path(depth: u32) -> impl Strategy<Value = LocationPath> {
    let step = (arb_axis(), arb_node_test(), arb_predicates(depth))
        .prop_map(|(axis, test, predicates)| Step { axis, test, predicates });
    (any::<bool>(), prop::collection::vec(step, 1..3)).prop_map(|(abs, steps)| LocationPath {
        start: if abs { PathStart::Root } else { PathStart::ContextNode },
        steps,
    })
}

fn arb_predicates(depth: u32) -> impl Strategy<Value = Vec<Expr>> {
    if depth == 0 {
        Just(Vec::new()).boxed()
    } else {
        prop::collection::vec(arb_expr(depth - 1), 0..2).boxed()
    }
}

fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    if depth == 0 {
        prop_oneof![arb_scalar(), arb_path(0).prop_map(Expr::Path)].boxed()
    } else {
        let leaf = prop_oneof![arb_scalar(), arb_path(depth).prop_map(Expr::Path)];
        let op = prop::sample::select(vec![
            BinaryOp::Or,
            BinaryOp::And,
            BinaryOp::Eq,
            BinaryOp::Ne,
            BinaryOp::Lt,
            BinaryOp::Ge,
            BinaryOp::Add,
            BinaryOp::Mul,
            BinaryOp::Union,
        ]);
        prop_oneof![
            3 => leaf,
            2 => (op, arb_expr(depth - 1), arb_expr(depth - 1)).prop_filter_map(
                "union operands must be node sets",
                |(op, l, r)| {
                    if op == BinaryOp::Union
                        && !(matches!(l, Expr::Path(_)) && matches!(r, Expr::Path(_)))
                    {
                        None
                    } else {
                        Some(Expr::binary(op, l, r))
                    }
                }
            ),
            1 => arb_path(depth - 1).prop_map(|p| Expr::call("count", vec![Expr::Path(p)])),
            1 => arb_path(depth - 1).prop_map(|p| Expr::call("boolean", vec![Expr::Path(p)])),
            1 => arb_expr(depth - 1).prop_map(|e| Expr::call("not", vec![Expr::call(
                "boolean", vec![coerce_boolable(e)])])),
        ]
        .boxed()
    }
}

/// boolean() accepts any type; keep as-is.
fn coerce_boolable(e: Expr) -> Expr {
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// All algorithms agree with the top-down reference on random queries
    /// over random documents.
    #[test]
    fn engines_agree_on_random_queries(
        qexpr in arb_expr(2),
        seed in 0u64..500,
    ) {
        let cfg = RandomDocConfig { elements: 18, ..RandomDocConfig::default() };
        let doc = doc_random(seed, &cfg);
        let engine = Engine::new(&doc);
        // Normalize like the public API does.
        let normalized = normalize::normalize(&qexpr).unwrap();
        engine
            .evaluate_all_agree(&normalized, Context::of(doc.root()), 400_000)
            .unwrap_or_else(|err| panic!("query {normalized} (from {qexpr:?}): {err}"));
    }

    /// Display → parse round-trips the random ASTs.
    #[test]
    fn display_parse_roundtrip(qexpr in arb_expr(2)) {
        let printed = qexpr.to_string();
        let reparsed = parse(&printed)
            .unwrap_or_else(|e| panic!("reparse {printed:?}: {e}"));
        prop_assert_eq!(&qexpr, &reparsed, "printed as {}", printed);
    }

    /// Normalization is idempotent on random ASTs.
    #[test]
    fn normalize_idempotent(qexpr in arb_expr(2)) {
        let once = normalize::normalize(&qexpr).unwrap();
        let twice = normalize::normalize(&once).unwrap();
        prop_assert_eq!(once, twice);
    }

    /// The rewrite pass preserves semantics: optimized and original queries
    /// produce the same value under the top-down reference evaluator.
    #[test]
    fn rewrites_preserve_semantics(
        qexpr in arb_expr(2),
        seed in 0u64..500,
    ) {
        use gkp_xpath::core::Strategy;
        let cfg = RandomDocConfig { elements: 18, ..RandomDocConfig::default() };
        let doc = doc_random(seed, &cfg);
        let engine = Engine::new(&doc);
        let normalized = normalize::normalize(&qexpr).unwrap();
        let optimized = gkp_xpath::syntax::rewrite::optimize(&normalized);
        let ctx = Context::of(doc.root());
        let a = engine.evaluate_expr(&normalized, Strategy::TopDown, ctx).unwrap();
        let b = engine.evaluate_expr(&optimized, Strategy::TopDown, ctx).unwrap();
        prop_assert!(
            a.semantically_equal(&b),
            "query {} → {} differs: {:?} vs {:?}",
            normalized, optimized, a, b
        );
    }
}
