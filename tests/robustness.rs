//! Robustness: the lexer, parser and XML parser must reject garbage with
//! errors — never panic — and evaluation must fail cleanly on type errors.

use gkp_xpath::{Document, Engine};

// The property tests need the external `proptest` crate, which is not
// vendored in this offline workspace; see Cargo.toml. The deterministic
// tests below always run.
#[cfg(feature = "proptest")]
mod props {
    use proptest::prelude::*;

    use gkp_xpath::{Document, Engine};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The XPath parser never panics on arbitrary input.
        #[test]
        fn xpath_parser_never_panics(s in ".{0,60}") {
            let _ = gkp_xpath::syntax::parse(&s);
        }

        /// The XPath parser never panics on plausible-looking query fragments.
        #[test]
        fn xpath_parser_never_panics_on_querylike(
            s in "[a-z/@\\[\\]():*.'= |0-9$!<>+-]{0,40}"
        ) {
            let _ = gkp_xpath::syntax::parse(&s);
        }

        /// The XML parser never panics on arbitrary input.
        #[test]
        fn xml_parser_never_panics(s in ".{0,80}") {
            let _ = Document::parse_str(&s);
        }

        /// The XML parser never panics on markup-looking input.
        #[test]
        fn xml_parser_never_panics_on_markuplike(
            s in "[a-z<>/='\"! \\-\\?\\[\\]&;#x0-9]{0,60}"
        ) {
            let _ = Document::parse_str(&s);
        }

        /// Whatever parses also evaluates without panicking (errors allowed).
        #[test]
        fn parsed_queries_evaluate_or_error(
            s in "(//)?[abc](\\[[0-9]\\])?(/[abc])*"
        ) {
            if let Ok(_e) = gkp_xpath::syntax::parse(&s) {
                let doc = Document::parse_str("<a><b><c/></b></a>").unwrap();
                let engine = Engine::new(&doc);
                let _ = engine.evaluate(&s);
            }
        }

        /// The DTD internal-subset parser never panics on arbitrary input.
        #[test]
        fn dtd_parser_never_panics(s in ".{0,80}") {
            let _ = gkp_xpath::xml::dtd::parse_doctype_body(&s, 0);
        }

        /// The DTD parser never panics on declaration-looking input.
        #[test]
        fn dtd_parser_never_panics_on_decl_like(
            s in "[a-zA-Z <>!\\[\\]()|,*+?#'\"%;-]{0,70}"
        ) {
            let _ = gkp_xpath::xml::dtd::parse_doctype_body(&s, 0);
        }

        /// Documents with DOCTYPE prologs never panic the full parser.
        #[test]
        fn doctype_documents_never_panic(
            body in "[a-z <>!\\[\\]()|,*+?#'\"-]{0,50}"
        ) {
            let _ = Document::parse_str(&format!("<!DOCTYPE {body}><a/>"));
        }
    }
}

#[test]
fn type_errors_are_reported_not_panicked() {
    let doc = Document::parse_str("<a><b/></a>").unwrap();
    let engine = Engine::new(&doc);
    // Predicates on a non-node-set primary.
    assert!(engine.evaluate("(1)[2]").is_err());
    // count of a scalar.
    assert!(engine.evaluate("count(1)").is_err());
    // union of scalars.
    assert!(engine.evaluate("1 | 2").is_err());
    // unknown function.
    assert!(engine.evaluate("frobnicate()").is_err());
    // unbound variable (normalization rejects it).
    assert!(engine.evaluate("//a[$x]").is_err());
    // wrong arity.
    assert!(engine.evaluate("concat('a')").is_err());
    assert!(engine.evaluate("substring('a')").is_err());
}

#[test]
fn malformed_xml_is_reported() {
    for bad in [
        "",
        "<",
        "<a",
        "<a>",
        "<a></b>",
        "<a><b></a></b>",
        "text only",
        "<a>&bogus;</a>",
        "<a x></a>",
        "<a x=1></a>",
        "<a/><a/>",
        "<a>&#xZZ;</a>",
    ] {
        assert!(Document::parse_str(bad).is_err(), "{bad:?} should be rejected");
    }
}

#[test]
fn deeply_nested_documents_parse() {
    // Deep nesting must not overflow the parser (recursion depth = element
    // depth; 1000 is far beyond the paper's documents).
    let depth = 1000;
    let mut s = String::new();
    for _ in 0..depth {
        s.push_str("<d>");
    }
    for _ in 0..depth {
        s.push_str("</d>");
    }
    let d = Document::parse_str(&s).unwrap();
    assert_eq!(d.len(), depth + 1);
    // And deep queries evaluate.
    let engine = Engine::new(&d);
    assert_eq!(engine.evaluate("count(//d)").unwrap().to_string(), depth.to_string());
}

#[test]
fn large_flat_documents() {
    let d = gkp_xpath::xml::generate::doc_flat(50_000);
    let engine = Engine::new(&d);
    assert_eq!(engine.evaluate("count(//b)").unwrap().to_string(), "50000");
    assert_eq!(engine.select("//b[not(following-sibling::b)]").unwrap().len(), 1);
}
