//! Allocation-discipline regression test: after a warm-up round, repeated
//! `CompiledQuery::evaluate` and `QuerySet::evaluate_all` calls perform
//! **zero** heap allocations — every transient buffer comes from the
//! thread-local recycling shelves (`xpath_xml::pool`) threaded through
//! the `NodeSet` algebra, the bulk axis kernels, and the batch scratch
//! arena (`xpath_core::pool::NodeSetArena`).
//!
//! The counting `#[global_allocator]` is the one place outside
//! `xpath_xml::simd` where the workspace's `unsafe_code = deny` lint is
//! overridden: `GlobalAlloc` is an `unsafe` trait by definition, and this
//! implementation only counts and forwards to `System`.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use gkp_xpath::core::engine::Strategy;
use gkp_xpath::xml::generate::{doc_balanced, doc_bookstore};
use gkp_xpath::{BatchMode, CompiledQuery, Compiler, Document, QuerySet, QuerySetBuilder};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn evaluate_everything(docs: &[Document], queries: &[CompiledQuery], sets: &[QuerySet]) -> usize {
    let mut total = 0;
    for doc in docs {
        for q in queries {
            let v = q.evaluate_root(doc).unwrap_or_else(|e| panic!("{}: {e}", q.text()));
            total += usize::from(!matches!(v, gkp_xpath::Value::NodeSet(ref s) if s.is_empty()));
        }
        for set in sets {
            let out = set.evaluate_all(doc);
            assert_eq!(out.len(), set.len());
            for r in out.results() {
                assert!(r.is_ok());
            }
        }
    }
    total
}

// The allocation counter is process-global, so this file holds a single
// test: the measurement window must be free of harness noise from
// concurrently running tests in the same binary.
#[test]
fn steady_state_evaluation_is_allocation_free() {
    let docs = [doc_bookstore(), doc_balanced(4, 5, &["section", "book", "author", "title"])];

    // Fragment-engine queries only: the general engines (bottom-up CVT,
    // streaming, …) materialize data-dependent per-node tables; the
    // zero-allocation guarantee targets the compile-once / evaluate-many
    // fragment paths. `threads(1)` keeps every pass on this thread —
    // scoped workers would bring their own (cold) shelves.
    let compiler = Compiler::new().threads(1);
    let queries: Vec<CompiledQuery> = [
        "//book[author]",
        "//book[author]/title",
        "/descendant::section/child::book[child::author or not(following::*)]",
        "//section/book[title = 'XPath Processing']",
        "//*[not(ancestor::book)]/author",
        "//book/ancestor::section",
    ]
    .iter()
    .map(|q| {
        let c = compiler.compile(q).unwrap();
        assert!(
            matches!(c.strategy(), Strategy::CoreXPath | Strategy::XPatterns),
            "{q} must resolve to a fragment engine, got {:?}",
            c.strategy()
        );
        c
    })
    .collect();

    // One lock-step batch (shared memo + arena scratch) and one serial
    // batch (independent evaluations through the pooled result vector).
    let batch_queries =
        ["//book[author]", "//book[author]/title", "//section/book", "//book[author]"];
    let sets = [
        QuerySetBuilder::with_compiler(compiler.clone())
            .queries(batch_queries)
            .threads(1)
            .mode(BatchMode::LockStepShared)
            .build()
            .unwrap(),
        QuerySetBuilder::with_compiler(compiler)
            .queries(batch_queries)
            .threads(1)
            .mode(BatchMode::Serial)
            .build()
            .unwrap(),
    ];

    // Warm-up until quiescent: the shelves recycle buffers LIFO across
    // paths of different sizes, so a buffer may still grow (one realloc)
    // the first time the rotation hands it to a larger pass. Capacities
    // only ever grow, so the process converges; require a fully
    // allocation-free round before starting the measurement.
    let mut warm_rounds = 0;
    loop {
        let before = allocations();
        evaluate_everything(&docs, &queries, &sets);
        warm_rounds += 1;
        if allocations() == before {
            break;
        }
        assert!(warm_rounds < 50, "warm-up failed to reach a steady state in {warm_rounds} rounds");
    }

    let before = allocations();
    let mut total = 0;
    for _ in 0..10 {
        total += evaluate_everything(&docs, &queries, &sets);
    }
    let delta = allocations() - before;
    assert!(total > 0, "evaluations must produce non-empty results");
    assert_eq!(
        delta, 0,
        "steady-state evaluation allocated {delta} times across 10 rounds \
         (expected zero: every transient buffer should come from the shelves)"
    );
}
