//! Concurrency proof for [`DocumentStore`]'s generational reload: N
//! reader threads query through the store while a writer republishes
//! the snapshot under the same name. Snapshot isolation must hold —
//! a handle obtained before a publish keeps reading the generation it
//! pinned, every *freshly opened* handle is a complete, internally
//! consistent snapshot (never a torn generation), and dropping old
//! generations releases their mappings (no leak of cache entries).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use gkp_xpath::core::store::DocumentStore;
use gkp_xpath::{CompiledQuery, Document};

/// A generation-`g` document: `<gen n="g">` with `g % 7 + 1` `<item>`
/// children, each carrying the generation in an attribute. Every
/// internal consistency probe below can recompute the expected answer
/// from `n` alone, so a reader can detect any mixing of generations.
fn gen_doc(g: u64) -> Document {
    let items = (g % 7) + 1;
    let mut xml = format!(r#"<gen n="{g}">"#);
    for i in 0..items {
        xml.push_str(&format!(r#"<item g="{g}" i="{i}"/>"#));
    }
    xml.push_str("</gen>");
    Document::parse_str(&xml).expect("valid XML")
}

fn attr_n(doc: &Document) -> u64 {
    let q = CompiledQuery::compile("string(/gen/@n)").unwrap();
    match q.evaluate_root(doc).unwrap() {
        gkp_xpath::Value::String(s) => s.parse().expect("numeric @n"),
        other => panic!("unexpected value {other:?}"),
    }
}

/// The invariant a torn generation would break: the item count, every
/// item's `@g`, and the root's `@n` must all describe the same `g`.
fn assert_consistent(doc: &Document) -> u64 {
    let g = attr_n(doc);
    let count_q = CompiledQuery::compile("count(/gen/item)").unwrap();
    let count = match count_q.evaluate_root(doc).unwrap() {
        gkp_xpath::Value::Number(n) => n as u64,
        other => panic!("unexpected value {other:?}"),
    };
    assert_eq!(count, (g % 7) + 1, "item count of generation {g}");
    let mismatched_q = CompiledQuery::compile(&format!("count(/gen/item[@g != {g}])")).unwrap();
    match mismatched_q.evaluate_root(doc).unwrap() {
        gkp_xpath::Value::Number(n) => {
            assert_eq!(n, 0.0, "items from a foreign generation inside generation {g}");
        }
        other => panic!("unexpected value {other:?}"),
    }
    g
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("gkp_store_conc_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn readers_stay_consistent_across_concurrent_republish() {
    const READERS: usize = 4;
    const PUBLISHES: u64 = 40;

    let dir = temp_dir("republish");
    let store = Arc::new(DocumentStore::open(&dir).unwrap());
    store.publish("live", &gen_doc(0)).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let max_seen = Arc::new(AtomicU64::new(0));
    let reads = Arc::new(AtomicU64::new(0));

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            let max_seen = Arc::clone(&max_seen);
            let reads = Arc::clone(&reads);
            thread::spawn(move || {
                let mut last = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let doc = store.open_doc("live").expect("open current generation");
                    let g = assert_consistent(&doc);
                    // Generations are published in order, so a reader
                    // can never travel back in time.
                    assert!(g >= last, "generation went backwards: {last} -> {g}");
                    last = g;
                    max_seen.fetch_max(g, Ordering::Relaxed);
                    reads.fetch_add(1, Ordering::Relaxed);
                }
                last
            })
        })
        .collect();

    // Writer: republish generations 1..=PUBLISHES over the same name
    // while holding a handle to generation 0 the whole time — snapshot
    // isolation must keep it readable and unchanged throughout.
    let pinned = store.open_doc("live").unwrap();
    for g in 1..=PUBLISHES {
        store.publish("live", &gen_doc(g)).unwrap();
        assert_eq!(attr_n(&pinned), 0, "pinned old handle must keep its generation");
        thread::yield_now();
    }
    // Let readers observe the final generation before stopping them.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while max_seen.load(Ordering::Relaxed) < PUBLISHES && std::time::Instant::now() < deadline {
        thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    for reader in readers {
        reader.join().expect("reader panicked");
    }

    assert_eq!(max_seen.load(Ordering::Relaxed), PUBLISHES, "readers reached the last publish");
    assert!(reads.load(Ordering::Relaxed) > 0);
    let stats = store.stats();
    assert_eq!(stats.publishes, PUBLISHES + 1);
    assert!(stats.reloads >= 1, "at least one reader open must have observed a generation change");
    // No cache-entry leak: one name stays one cache entry no matter how
    // many generations went through it (old mappings are dropped when
    // their last handle goes away; the cache holds only the newest).
    drop(pinned);
    let final_doc = store.open_doc("live").unwrap();
    assert_eq!(assert_consistent(&final_doc), PUBLISHES);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn open_doc_from_many_threads_shares_one_mapping() {
    let dir = temp_dir("share");
    let store = Arc::new(DocumentStore::open(&dir).unwrap());
    store.publish("d", &gen_doc(3)).unwrap();

    let handles: Vec<_> = (0..8)
        .map(|_| {
            let store = Arc::clone(&store);
            thread::spawn(move || store.open_doc("d").unwrap())
        })
        .collect();
    let docs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    // All concurrent opens of one generation share a single Arc'd
    // mapping (the cache lock is held across the load).
    for doc in &docs[1..] {
        assert!(Arc::ptr_eq(&docs[0], doc), "every open shares the same document");
    }
    let stats = store.stats();
    assert_eq!(stats.misses, 1, "exactly one thread loaded; the rest hit the cache");
    assert_eq!(stats.hits, 7);
    let _ = std::fs::remove_dir_all(&dir);
}
