//! Serializer round-trip properties: `parse(serialize(d))` is structurally
//! identical to `d`, and serialization is a fixed point thereafter.

use gkp_xpath::{Document, NodeKind};

// The property tests need the external `proptest` crate, which is not
// vendored in this offline workspace; see Cargo.toml. The deterministic
// tests below always run.
#[cfg(feature = "proptest")]
mod props {
    use proptest::prelude::*;

    use gkp_xpath::xml::generate::{doc_random, RandomDocConfig};
    use gkp_xpath::{Document, NodeId};

    /// Structural equality: same shape, kinds, names, values, in document
    /// order.
    fn structurally_equal(a: &Document, b: &Document) -> bool {
        if a.len() != b.len() {
            return false;
        }
        a.all_nodes().all(|n| {
            let m = NodeId(n.0);
            a.kind(n) == b.kind(m)
                && a.name(n) == b.name(m)
                && a.value(n) == b.value(m)
                && a.parent(n) == b.parent(m)
                && a.next_sibling(n) == b.next_sibling(m)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Random documents survive serialize → parse unchanged.
        #[test]
        fn roundtrip_random_docs(seed in 0u64..10_000) {
            let cfg = RandomDocConfig { elements: 40, ..RandomDocConfig::default() };
            let d = doc_random(seed, &cfg);
            let text = d.serialize(d.root());
            let d2 = Document::parse_str(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            prop_assert!(structurally_equal(&d, &d2), "{}", text);
            // Serialization is a fixed point after one round trip.
            prop_assert_eq!(d2.serialize(d2.root()), text);
        }

        /// Attribute values with arbitrary quotable content round-trip.
        #[test]
        fn attribute_escaping(v in "[ -~]{0,24}") {
            let mut b = gkp_xpath::DocumentBuilder::new();
            b.open_element("a");
            b.attribute("t", &v);
            b.close_element();
            let d = b.finish();
            let text = d.serialize(d.root());
            let d2 = Document::parse_str(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            let a = d2.document_element().unwrap();
            let got = d2.value(d2.attribute(a, "t").unwrap()).unwrap();
            prop_assert_eq!(got, v.as_str(), "via {}", text);
        }

        /// Text content (including markup characters) round-trips.
        #[test]
        fn text_escaping(v in "[ -~]{1,32}") {
            let mut b = gkp_xpath::DocumentBuilder::new();
            b.open_element("a");
            b.text(&v);
            b.close_element();
            let d = b.finish();
            let text = d.serialize(d.root());
            let d2 = Document::parse_str(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
            prop_assert_eq!(d2.string_value(d2.root()), v.as_str(), "via {}", text);
        }

        /// Unicode text round-trips.
        #[test]
        fn unicode_text(v in "\\PC{1,16}") {
            let mut b = gkp_xpath::DocumentBuilder::new();
            b.open_element("a");
            b.text(&v);
            b.close_element();
            let d = b.finish();
            let text = d.serialize(d.root());
            let d2 = Document::parse_str(&text).unwrap_or_else(|e| panic!("{text:?}: {e}"));
            prop_assert_eq!(d2.string_value(d2.root()), v.as_str());
        }
    }
}

#[test]
fn escaping_edge_cases() {
    for v in ["&", "<", ">", "\"", "'", "&amp;", "]]>", "a<b>&c\"d'e"] {
        let mut b = gkp_xpath::DocumentBuilder::new();
        b.open_element("x");
        b.attribute("t", v);
        b.text(v);
        b.close_element();
        let d = b.finish();
        let text = d.serialize(d.root());
        let d2 = Document::parse_str(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        let x = d2.document_element().unwrap();
        assert_eq!(d2.value(d2.attribute(x, "t").unwrap()), Some(v), "attr via {text}");
        assert_eq!(d2.string_value(x), v, "text via {text}");
    }
}

#[test]
fn mixed_content_with_comments_and_pis() {
    let src = r#"<a>pre<!-- c --><b k="1">mid</b><?pi data?>post</a>"#;
    let d = Document::parse_str(src).unwrap();
    let text = d.serialize(d.root());
    let d2 = Document::parse_str(&text).unwrap();
    assert_eq!(d.len(), d2.len());
    assert_eq!(d2.string_value(d2.root()), "premidpost");
    let kinds: Vec<NodeKind> = d2.all_nodes().map(|n| d2.kind(n)).collect();
    let expect: Vec<NodeKind> = d.all_nodes().map(|n| d.kind(n)).collect();
    assert_eq!(kinds, expect);
}
