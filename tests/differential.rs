//! Differential testing: all eight algorithms must agree on a broad query
//! corpus across documents of different shapes.

use gkp_xpath::core::Context;
use gkp_xpath::xml::generate::{
    doc_ab_groups, doc_balanced, doc_bookstore, doc_deep_path, doc_figure8, doc_flat,
    doc_flat_text, doc_idref_chain, doc_random, RandomDocConfig,
};
use gkp_xpath::{Document, Engine};

/// The shared query corpus. Everything here is valid full XPath; fragments
/// vary so all dispatch routes get exercised.
const CORPUS: &[&str] = &[
    // Paths and axes.
    "//a",
    "//b/c",
    "//*",
    "/child::*/child::*",
    "//b/parent::*",
    "//c/ancestor::*",
    "//a/descendant-or-self::b",
    "//b/following::c",
    "//c/preceding::b",
    "//b/following-sibling::*",
    "//c/preceding-sibling::*",
    "//b/ancestor-or-self::node()",
    "//text()",
    "//comment()",
    "//@*",
    "//@id/parent::*",
    "//node()",
    // Predicates.
    "//b[c]",
    "//b[not(c)]",
    "//*[@id]",
    "//b[1]",
    "//b[2]",
    "//b[last()]",
    "//b[position() != last()]",
    "//b[position() = 2 or position() = last()]",
    "//*[c and d]",
    "//*[c][d]",
    "//b[c[2]]",
    "//*[self::b or self::c]",
    "//*[count(child::*) > 1]",
    "//*[count(*) = 2][1]",
    // Comparisons of all type pairs.
    "//*[c = '100']",
    "//*[c = 100]",
    "//*[d > 50]",
    "//*[c != d]",
    "//*[string-length(c) > 2]",
    "//*[. = '100']",
    "//*[@id > 10]",
    "//*[true() = c]",
    // Functions.
    "count(//b)",
    "count(//b) + count(//c) * 2",
    "sum(//d)",
    "string(//c)",
    "concat(name(/*), '-', string(count(//*)))",
    "boolean(//zzz)",
    "not(boolean(//b))",
    "normalize-space(string(//c[1]))",
    "substring(string(//c), 2, 3)",
    "translate(string(//c[1]), '0123456789', 'abcdefghij')",
    "floor(sum(//d) div 7)",
    "ceiling(count(//*) div 2)",
    "round(sum(//d) * 0.01)",
    "string-length(string(//c[1]))",
    "starts-with(string(//c[1]), '1')",
    "contains(string(/), '100')",
    "number('42') + 1",
    "number(//d[1])",
    // id machinery.
    "id('12 24')",
    "id('12')/parent::*",
    "id(//c)",
    // Unions and filters.
    "//b | //c",
    "(//b | //c)[3]",
    "(//c)[last()]",
    "(//b/c | //b/d)[2]/parent::*",
    // Arithmetic edge cases.
    "1 div 0",
    "-1 div 0",
    "0 div 0",
    "5 mod 2",
    "5.5 mod -2",
    "-5 mod 2",
    "2 * 3 - 4 div 2",
    "-(count(//b))",
    // Positional arithmetic in predicates.
    "//*[position() = last() - 1]",
    "//*[position() mod 2 = 1][position() <= 3]",
    "//b[position() > count(//c) div 2]",
];

fn check_doc(doc: &Document) {
    let engine = Engine::new(doc);
    for q in CORPUS {
        let e = match engine.prepare(q) {
            Ok(e) => e,
            Err(err) => panic!("{q}: {err}"),
        };
        engine
            .evaluate_all_agree(&e, Context::of(doc.root()), 3_000_000)
            .unwrap_or_else(|err| panic!("{q} on {doc:?}: {err}"));
    }
}

#[test]
fn corpus_on_flat_docs() {
    check_doc(&doc_flat(5));
    check_doc(&doc_flat_text(4));
}

#[test]
fn corpus_on_figure8() {
    check_doc(&doc_figure8());
}

#[test]
fn corpus_on_bookstore() {
    check_doc(&doc_bookstore());
}

#[test]
fn corpus_on_deep_path() {
    check_doc(&doc_deep_path(12));
}

#[test]
fn corpus_on_balanced_tree() {
    check_doc(&doc_balanced(3, 3, &["a", "b", "c", "d"]));
}

#[test]
fn corpus_on_ab_groups() {
    check_doc(&doc_ab_groups(4, 5));
}

#[test]
fn corpus_on_idref_chain() {
    check_doc(&doc_idref_chain(9));
}

#[test]
fn corpus_on_random_documents() {
    for seed in 0..12 {
        let cfg = RandomDocConfig { elements: 30, ..RandomDocConfig::default() };
        check_doc(&doc_random(seed, &cfg));
    }
}

#[test]
fn corpus_on_namespace_synthesized_document() {
    // Namespace nodes in the tree must not perturb any algorithm: they are
    // filtered by every axis except `namespace` (§4).
    let doc = Document::parse_str_opts(
        r#"<a xmlns:p="urn:p" id="12">
             <b xmlns:q="urn:q"><c id="24">100</c><c>7</c></b>
             <b><d>50</d><d>51</d></b>
           </a>"#,
        gkp_xpath::xml::ParseOptions { namespaces: true, ..Default::default() },
    )
    .unwrap();
    check_doc(&doc);
}

#[test]
fn corpus_on_dtd_document() {
    // DTD-declared IDs, defaults and entities feed the same corpus.
    let doc = Document::parse_str(
        r#"<!DOCTYPE a [
             <!ATTLIST b id ID #IMPLIED kind CDATA "plain">
             <!ENTITY h "100">
           ]>
           <a><b id="12"><c>&h;</c><d>24</d></b><b id="24"><c>7</c></b></a>"#,
    )
    .unwrap();
    check_doc(&doc);
}

#[test]
fn corpus_from_non_root_contexts() {
    // Differential agreement must also hold for relative queries from
    // arbitrary context nodes.
    let doc = doc_figure8();
    let engine = Engine::new(&doc);
    let queries = [
        "child::*",
        "parent::*",
        "following-sibling::*[1]",
        "preceding-sibling::*[last()]",
        "count(ancestor::*)",
        "descendant::*[position() = 2]",
        "string(.)",
        "../*",
        ".//d",
        "self::node()",
    ];
    for node in doc.all_nodes() {
        for q in queries {
            let e = engine.prepare(q).unwrap();
            engine
                .evaluate_all_agree(&e, Context::of(node), 1_000_000)
                .unwrap_or_else(|err| panic!("{q} at {node:?}: {err}"));
        }
    }
}
