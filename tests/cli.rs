//! End-to-end tests of the `xpq` command-line tool: spawn the real binary
//! and check stdout/stderr/exit codes for each mode.

use std::io::Write;
use std::process::{Command, Stdio};

const XML: &str = r#"<library><book year="1994"><title>Foundations</title></book><book year="2002"><title>XPath</title></book></library>"#;

fn xpq(args: &[&str], stdin: &str) -> (String, String, i32) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_xpq"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn xpq");
    // If the query is rejected before stdin is read (parse errors exit
    // early), the pipe closes and the write fails with EPIPE — fine.
    let _ = child.stdin.as_mut().unwrap().write_all(stdin.as_bytes());
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn node_set_query_prints_string_values() {
    let (stdout, _, code) = xpq(&["//title"], XML);
    assert_eq!(code, 0);
    assert_eq!(stdout, "Foundations\nXPath\n");
}

#[test]
fn scalar_query_prints_value() {
    let (stdout, _, code) = xpq(&["count(//book)"], XML);
    assert_eq!(code, 0);
    assert_eq!(stdout.trim(), "2");
}

#[test]
fn attribute_results_show_name_and_value() {
    let (stdout, _, code) = xpq(&["//book[2]/@year"], XML);
    assert_eq!(code, 0);
    assert_eq!(stdout.trim(), "@year=2002");
}

#[test]
fn serialize_mode_prints_xml() {
    let (stdout, _, code) = xpq(&["--serialize", "//book[1]"], XML);
    assert_eq!(code, 0);
    assert!(stdout.contains("<book year=\"1994\"><title>Foundations</title></book>"), "{stdout}");
}

#[test]
fn classify_mode() {
    let (stdout, _, code) = xpq(&["-c", "//book[title]"], "");
    assert_eq!(code, 0);
    assert!(stdout.to_lowercase().contains("core"), "{stdout}");
    let (stdout, _, _) = xpq(&["-c", "//book[position() = last()]"], "");
    assert!(!stdout.to_lowercase().starts_with("core xpath"), "{stdout}");
}

#[test]
fn normalize_mode() {
    let (stdout, _, code) = xpq(&["-n", "//a[5]"], "");
    assert_eq!(code, 0);
    assert_eq!(stdout.trim(), "/descendant-or-self::node()/child::a[position() = 5]");
}

#[test]
fn explain_mode_reports_streamability() {
    let (stdout, _, code) = xpq(&["--explain", "//book[title]"], "");
    assert_eq!(code, 0);
    assert!(stdout.contains("streaming: yes"), "{stdout}");
    // Reverse axes now stream through the analyzer's rewrite; only
    // queries outside the rewritten forward fragment stay in-memory.
    let (stdout, _, _) = xpq(&["--explain", "//book/parent::*"], "");
    assert!(stdout.contains("streaming: yes, buffered"), "{stdout}");
    assert!(stdout.contains("rewrite:"), "{stdout}");
    let (stdout, _, _) = xpq(&["--explain", "//title/preceding::book"], "");
    assert!(stdout.contains("streaming: no"), "{stdout}");
}

#[test]
fn explain_shows_the_constant_empty_short_circuit() {
    let (stdout, _, code) = xpq(&["--explain", "//text()/child::*"], "");
    assert_eq!(code, 0);
    assert!(stdout.contains("const:"), "{stdout}");
    assert!(stdout.contains("short-circuits"), "{stdout}");
    assert!(stdout.contains("lint:"), "{stdout}");
}

#[test]
fn lint_mode_reports_diagnostics_and_exit_codes() {
    // Warnings (provably empty) exit 0.
    let (stdout, _, code) = xpq(&["--lint", "//text()/child::*"], "");
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("warning[empty-query]"), "{stdout}");
    assert!(stdout.contains("lint: 1 analyzed"), "{stdout}");
    // Errors (unknown function) exit 1.
    let (stdout, _, code) = xpq(&["--lint", "//a[string-join(b, ',')]"], "");
    assert_eq!(code, 1);
    assert!(stdout.contains("error[unknown-function]"), "{stdout}");
    // An unparseable corpus member is an error diagnostic, not an abort:
    // the rest of the batch is still checked.
    let (stdout, _, code) = xpq(&["--lint", "-e", "(((", "-e", "//a/b"], "");
    assert_eq!(code, 1);
    assert!(stdout.contains("error[parse-error]"), "{stdout}");
    assert!(stdout.contains("# //a/b"), "{stdout}");
    // Clean queries report their classification and exit 0.
    let (stdout, _, code) = xpq(&["--lint", "-e", "//a/b", "-e", "//author/parent::book"], "");
    assert_eq!(code, 0);
    assert!(stdout.contains("streamability: streamable"), "{stdout}");
    assert!(stdout.contains("info[reverse-axes-rewritten]"), "{stdout}");
}

#[test]
fn lint_json_is_machine_readable() {
    let (stdout, _, code) =
        xpq(&["--lint", "--json", "-e", "//text()/child::*", "-e", "//a/b"], "");
    assert_eq!(code, 0);
    assert!(stdout.contains("\"satisfiable\": false"), "{stdout}");
    assert!(stdout.contains("\"streamability\": \"streamable\""), "{stdout}");
    assert!(stdout.contains("\"code\": \"empty-query\""), "{stdout}");
    assert!(stdout.contains("\"summary\""), "{stdout}");
    assert!(stdout.contains("\"provably_empty\": 1"), "{stdout}");
    // Quotes inside query text are escaped.
    let (stdout, _, _) = xpq(&["--lint", "--json", "//a[b = \"x\"]"], "");
    assert!(stdout.contains("\\\"x\\\""), "{stdout}");
    // --json without --lint is a usage error.
    let (_, stderr, code) = xpq(&["--json", "//a"], "");
    assert_eq!(code, 2);
    assert!(stderr.contains("--json requires --lint"), "{stderr}");
}

#[test]
fn explicit_strategies_agree() {
    for s in ["naive", "pool", "bottomup", "topdown", "mincontext", "optmincontext", "auto"] {
        let (stdout, stderr, code) = xpq(&["-s", s, "count(//book)"], XML);
        assert_eq!(code, 0, "{s}: {stderr}");
        assert_eq!(stdout.trim(), "2", "{s}");
    }
    // Fragment strategies on fragment queries ("streaming" aliases "stream").
    for s in ["corexpath", "xpatterns", "stream", "streaming"] {
        let (stdout, _, code) = xpq(&["-s", s, "//title"], XML);
        assert_eq!(code, 0, "{s}");
        assert_eq!(stdout, "Foundations\nXPath\n", "{s}");
    }
}

#[test]
fn fragment_strategy_rejects_outside_queries() {
    let (_, stderr, code) = xpq(&["-s", "corexpath", "count(//book)"], XML);
    assert_ne!(code, 0);
    assert!(stderr.contains("unsupported"), "{stderr}");
}

#[test]
fn verify_mode_runs_the_oracle() {
    let (stdout, stderr, code) = xpq(&["--verify", "//book[1]/title"], XML);
    assert_eq!(code, 0, "{stderr}");
    assert!(stderr.contains("all algorithms agree"), "{stderr}");
    assert_eq!(stdout.trim(), "Foundations");
}

#[test]
fn stats_and_time_flags() {
    let (_, stderr, code) = xpq(&["--stats", "--time", "//title"], XML);
    assert_eq!(code, 0);
    assert!(stderr.contains("nodes: "), "{stderr}");
    assert!(stderr.contains("evaluate: "), "{stderr}");
}

#[test]
fn ns_flag_enables_namespace_nodes() {
    let doc = r#"<a xmlns:p="urn:p"><p:b>x</p:b></a>"#;
    let (stdout, _, code) = xpq(&["--ns", "count(//namespace::*)"], doc);
    assert_eq!(code, 0);
    // a and p:b each carry p + implicit xml.
    assert_eq!(stdout.trim(), "4");
    // Without --ns, xmlns stays an attribute and no namespace nodes exist.
    let (stdout, _, _) = xpq(&["count(//namespace::*)"], doc);
    assert_eq!(stdout.trim(), "0");
}

#[test]
fn bad_query_and_bad_xml_fail_cleanly() {
    let (_, stderr, code) = xpq(&["//["], XML);
    assert_eq!(code, 2);
    assert!(stderr.contains("query error"), "{stderr}");
    let (_, stderr, code) = xpq(&["//a"], "<a><b></a>");
    assert_eq!(code, 1);
    assert!(stderr.contains("XML error"), "{stderr}");
}

#[test]
fn optimize_flag_rewrites_normalized_output() {
    // Without -O: `//` normalizes to the two-step descendant-or-self form.
    let (plain, _, code) = xpq(&["-n", "//b/self::node()"], "");
    assert_eq!(code, 0);
    // With -O the rewrite pass merges `//` steps and drops `self::node()`.
    let (opt, _, code) = xpq(&["-O", "-n", "//b/self::node()"], "");
    assert_eq!(code, 0);
    assert_ne!(plain, opt, "rewrite should change the printed form");
    assert!(!opt.contains("self::node()"), "{opt}");
    // Results agree either way.
    let (a, _, _) = xpq(&["//book/title"], XML);
    let (b, _, _) = xpq(&["--optimize", "//book/title"], XML);
    assert_eq!(a, b);
}

#[test]
fn repeat_flag_reuses_the_compiled_query() {
    let (stdout, stderr, code) = xpq(&["--repeat", "50", "--time", "count(//book)"], XML);
    assert_eq!(code, 0, "{stderr}");
    assert_eq!(stdout.trim(), "2", "result printed once, not per run");
    assert!(stderr.contains("compile: "), "{stderr}");
    assert!(stderr.contains("50 runs"), "{stderr}");
    // Repeats go through a pre-warmed QueryCache: one compile, hits after.
    assert!(stderr.contains("cache: 49 hits, 1 misses"), "{stderr}");
    // Invalid counts are rejected.
    let (_, stderr, code) = xpq(&["-r", "0", "//book"], XML);
    assert_eq!(code, 2);
    assert!(stderr.contains("invalid repeat count"), "{stderr}");
}

#[test]
fn verbose_reports_fragment_and_strategy() {
    let (_, stderr, code) = xpq(&["-v", "//title"], XML);
    assert_eq!(code, 0);
    assert!(stderr.contains("fragment:"), "{stderr}");
    assert!(stderr.contains("strategy:"), "{stderr}");
    assert!(stderr.contains("threads:"), "{stderr}");
}

#[test]
fn threads_flag_caps_the_shard_budget_without_changing_results() {
    let (serial, _, code) = xpq(&["--threads", "1", "//title"], XML);
    assert_eq!(code, 0);
    let (wide, stderr, code) = xpq(&["-T", "8", "-v", "//title"], XML);
    assert_eq!(code, 0);
    assert_eq!(wide, serial, "thread budget must not change results");
    assert!(stderr.contains("threads:  8"), "{stderr}");
    // Invalid counts are rejected.
    let (_, stderr, code) = xpq(&["-T", "many", "//title"], XML);
    assert_eq!(code, 2);
    assert!(stderr.contains("invalid thread count"), "{stderr}");
}

#[test]
fn explain_reports_the_parallel_spawn_gate() {
    let (stdout, _, code) = xpq(&["--explain", "//book[author]"], "");
    assert_eq!(code, 0);
    assert!(stdout.contains("parallel: budget"), "{stdout}");
}

#[test]
fn batch_expressions_evaluate_in_one_pass_with_headers() {
    let (stdout, _, code) = xpq(&["-e", "//title", "-e", "count(//book)"], XML);
    assert_eq!(code, 0);
    assert_eq!(stdout, "# //title\nFoundations\nXPath\n# count(//book)\n2\n");
}

#[test]
fn batch_results_match_independent_invocations() {
    let queries = ["//title", "count(//book)", "//book[@year > 2000]/title", "//title"];
    let mut args: Vec<&str> = Vec::new();
    for q in &queries {
        args.push("-e");
        args.push(q);
    }
    let (stdout, _, code) = xpq(&args, XML);
    assert_eq!(code, 0);
    let mut expected = String::new();
    for q in &queries {
        let (one, _, code) = xpq(&[q], XML);
        assert_eq!(code, 0, "{q}");
        expected.push_str(&format!("# {q}\n{one}"));
    }
    assert_eq!(stdout, expected, "batched output must equal N independent runs");
}

#[test]
fn batch_verbose_reports_mode_and_memo_hits() {
    // Shared prefixes + a 1-thread budget: the cost model picks lock-step
    // sharing on the duplicated steps.
    let (_, stderr, code) = xpq(
        &["-v", "-T", "1", "-e", "//book/title", "-e", "//book/title", "-e", "//book/@year"],
        XML,
    );
    assert_eq!(code, 0, "{stderr}");
    assert!(stderr.contains("batch: mode="), "{stderr}");
}

#[test]
fn query_file_feeds_the_batch() {
    let dir = std::env::temp_dir().join(format!("xpq-batch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("queries.txt");
    std::fs::write(&path, "# a comment\n//title\n\ncount(//book)\n").unwrap();
    let (stdout, stderr, code) = xpq(&["--query-file", path.to_str().unwrap()], XML);
    assert_eq!(code, 0, "{stderr}");
    assert_eq!(stdout, "# //title\nFoundations\nXPath\n# count(//book)\n2\n");
    // A missing file is a usage error.
    let (_, stderr, code) = xpq(&["--query-file", "/no/such/file"], XML);
    assert_eq!(code, 2);
    assert!(stderr.contains("cannot read"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_explain_reports_the_mode_decision() {
    let (stdout, _, code) = xpq(&["--explain", "-e", "//book[author]", "-e", "//book[author]"], "");
    assert_eq!(code, 0);
    assert!(stdout.contains("batch:"), "{stdout}");
    assert!(stdout.contains("batch mode @"), "{stdout}");
    assert!(stdout.contains("step units shared"), "{stdout}");
}

#[test]
fn batch_explain_sections_print_in_input_order() {
    let queries = ["//book[author]", "count(//book)", "//title", "//book[2]"];
    let mut args = vec!["--explain"];
    for q in &queries {
        args.push("-e");
        args.push(q);
    }
    let (stdout, _, code) = xpq(&args, "");
    assert_eq!(code, 0);
    // One `# query` header per member, in exactly the order given.
    let headers: Vec<&str> =
        stdout.lines().filter(|l| l.starts_with("# ")).map(|l| &l[2..]).collect();
    assert_eq!(headers, queries, "{stdout}");
    // --lint honors the same ordering contract.
    let mut args = vec!["--lint"];
    for q in &queries {
        args.push("-e");
        args.push(q);
    }
    let (stdout, _, _) = xpq(&args, "");
    let headers: Vec<&str> =
        stdout.lines().filter(|l| l.starts_with("# ")).map(|l| &l[2..]).collect();
    assert_eq!(headers, queries, "{stdout}");
}

#[test]
fn batch_per_query_errors_keep_the_rest() {
    // A query outside the requested fragment fails the whole compile...
    let (_, stderr, code) = xpq(&["-s", "corexpath", "-e", "//title", "-e", "count(//book)"], XML);
    assert_ne!(code, 0);
    assert!(stderr.contains("unsupported"), "{stderr}");
    // ...while a runtime-failing member (unknown functions surface at
    // evaluation time) only fails its own slot: the healthy result still
    // prints, the error goes to stderr, and the exit code reports it.
    let (stdout, stderr, code) = xpq(&["-e", "count(//book)", "-e", "bogus(//book)"], XML);
    assert_eq!(code, 1, "{stderr}");
    assert!(stdout.contains("# count(//book)\n2\n"), "{stdout}");
    assert!(stderr.contains("unknown function"), "{stderr}");
    // Scalar oddities are results, not errors.
    let (stdout, _, code) = xpq(&["-e", "count(//book)", "-e", "1 div 0"], XML);
    assert_eq!(code, 0);
    assert!(stdout.contains("Infinity") || stdout.contains("inf"), "{stdout}");
}
