//! Every worked example of the paper, executed end-to-end through every
//! evaluation algorithm.

use gkp_xpath::core::{Context, Strategy};
use gkp_xpath::xml::generate::{doc_figure8, doc_flat};
use gkp_xpath::{Engine, NodeId};

const ALL_STRATEGIES: &[Strategy] = &[
    Strategy::Naive,
    Strategy::DataPool,
    Strategy::BottomUp,
    Strategy::TopDown,
    Strategy::MinContext,
    Strategy::OptMinContext,
];

fn expect_nodes(engine: &Engine<'_>, q: &str, ctx: Context, expect: &[NodeId]) {
    for &s in ALL_STRATEGIES {
        let e = engine.prepare(q).unwrap();
        let v =
            engine.evaluate_expr(&e, s, ctx).unwrap_or_else(|err| panic!("{s:?} on {q}: {err}"));
        assert_eq!(
            v.as_node_set().map(gkp_xpath::xml::NodeSet::to_vec),
            Some(expect.to_vec()),
            "{s:?} on {q}"
        );
    }
}

/// Example 6.4 / 7.3: `descendant::b/following-sibling::*[position() !=
/// last()]` over DOC(4) with context ⟨a,1,1⟩ yields {b2, b3}.
#[test]
fn example_6_4_and_7_3() {
    let d = doc_flat(4);
    let engine = Engine::new(&d);
    let a = d.document_element().unwrap();
    let bs: Vec<NodeId> = d.children(a).collect();
    expect_nodes(
        &engine,
        "descendant::b/following-sibling::*[position() != last()]",
        Context::of(a),
        &[bs[1], bs[2]],
    );
}

/// Example 4.1: the typed node sets of DOC(4).
#[test]
fn example_4_1() {
    let d = doc_flat(4);
    let engine = Engine::new(&d);
    assert_eq!(engine.evaluate("count(//node()) + 1",).unwrap().to_string(), "6");
    assert_eq!(engine.evaluate("count(//*)").unwrap().to_string(), "5");
    assert_eq!(engine.evaluate("count(//a)").unwrap().to_string(), "1");
    assert_eq!(engine.evaluate("count(//b)").unwrap().to_string(), "4");
}

/// Example 8.1: the §8 running example over the Figure 8 document.
#[test]
fn example_8_1() {
    let d = doc_figure8();
    let engine = Engine::new(&d);
    let expect: Vec<NodeId> =
        ["13", "14", "21", "22", "23", "24"].iter().map(|i| d.element_by_id(i).unwrap()).collect();
    expect_nodes(
        &engine,
        "/descendant::*/descendant::*[position() > last() * 0.5 or string(self::*) = '100']",
        Context::of(d.element_by_id("10").unwrap()),
        &expect,
    );
}

/// Example 8.3: the outermost-path node sets X, Y, Z of the §8 query.
#[test]
fn example_8_3_intermediate_sets() {
    let d = doc_figure8();
    let engine = Engine::new(&d);
    // Y = nodes selected by /descendant::* — all 9 elements.
    assert_eq!(engine.select("/descendant::*").unwrap().len(), 9);
    // After the second descendant step (before the predicate): 8 nodes.
    assert_eq!(engine.select("/descendant::*/descendant::*").unwrap().len(), 8);
}

/// Example 10.3-style Core XPath query through the algebraic evaluator and
/// the general engines.
#[test]
fn example_10_3_shape() {
    let d = doc_figure8();
    let engine = Engine::new(&d);
    let q = "/descendant::b/child::c[child::d or not(following::*)]";
    let general = engine.evaluate_with(q, Strategy::TopDown).unwrap();
    let core = engine.evaluate_with(q, Strategy::CoreXPath).unwrap();
    assert_eq!(general, core);
}

/// Example 11.2: the full OptMinContext walkthrough, result
/// {x11, x12, x13, x14, x22}.
#[test]
fn example_11_2() {
    let d = doc_figure8();
    let engine = Engine::new(&d);
    let expect: Vec<NodeId> =
        ["11", "12", "13", "14", "22"].iter().map(|i| d.element_by_id(i).unwrap()).collect();
    expect_nodes(
        &engine,
        "/child::a/descendant::*[boolean(following::d[(position() != last()) and \
         (preceding-sibling::*/preceding::* = 100)]/following::d)]",
        Context::of(d.root()),
        &expect,
    );
}

/// The experiment queries of §2 produce the values the paper describes.
#[test]
fn section_2_experiment_queries() {
    // Experiment 1 on DOC(2): every query returns both b's.
    let d = doc_flat(2);
    let engine = Engine::new(&d);
    let a = d.document_element().unwrap();
    let bs: Vec<NodeId> = d.children(a).collect();
    for k in 0..6 {
        let mut q = String::from("//a/b");
        for _ in 0..k {
            q.push_str("/parent::a/b");
        }
        expect_nodes(&engine, &q, Context::of(d.root()), &bs);
    }
    // Experiment 3 discussion: on DOC(2) the count predicate holds (2 > 1).
    expect_nodes(&engine, "//a/b[count(parent::a/b) > 1]", Context::of(d.root()), &bs);
}

/// Footnote example for Theorem 10.7 (the `ref` relation document).
#[test]
fn theorem_10_7_ref_document() {
    let d = gkp_xpath::Document::parse_str(
        r#"<t id="1"> 3 <t id="2"> 1 </t> <t id="3"> 1 2 </t> </t>"#,
    )
    .unwrap();
    let engine = Engine::new(&d);
    // id of node 3's content {1, 2}.
    let hits = engine.select("id('1 2')").unwrap();
    assert_eq!(hits.len(), 2);
    // id() through the function and through the XPatterns axis agree.
    let via_fn = engine.evaluate_with("id(//t[not(child::t)])", Strategy::TopDown).unwrap();
    let via_core = engine.evaluate_with("id(//t[not(child::t)])", Strategy::XPatterns).unwrap();
    assert_eq!(via_fn, via_core);
}
