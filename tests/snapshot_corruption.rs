//! Snapshot corruption suite: every damaged-file shape must fail with a
//! clean, typed [`SnapError`] — never a panic, never UB, never a
//! wrong-but-successful open. Covers the required cases (truncation,
//! flipped stored checksum, wrong magic, future version, out-of-bounds
//! section offsets), payload damage under deep verification, and the
//! `xpq --snapshot` CLI surface (nonzero exit, diagnostic on stderr).

use std::path::PathBuf;
use std::process::Command;

use gkp_xpath::xml::generate::doc_bookstore;
use gkp_xpath::xml::snap::{self, SnapError, FORMAT_VERSION};

/// Byte offsets from the version-1 header layout (`snap` module docs).
const OFF_VERSION: usize = 8;
const OFF_HEADER_CHECKSUM: usize = 40;
const HEADER_LEN: usize = 48;
const DIR_ENTRY_LEN: usize = 32;
const ENTRY_OFFSET: usize = 8;
const ENTRY_CHECKSUM: usize = 24;

/// A pristine snapshot of the bookstore document as raw bytes.
fn pristine() -> Vec<u8> {
    let path = temp("pristine");
    snap::write(&doc_bookstore(), &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    bytes
}

fn temp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gkp_snapcorrupt_{tag}_{}.gksnap", std::process::id()))
}

/// Write `bytes` to a temp snapshot, quick-open it, clean up, and return
/// the result.
fn open_bytes(tag: &str, bytes: &[u8]) -> Result<(), SnapError> {
    let path = temp(tag);
    std::fs::write(&path, bytes).unwrap();
    let result = snap::load(&path).map(|_| ());
    let _ = std::fs::remove_file(&path);
    result
}

/// Re-seal the header checksum after tampering with header or directory
/// fields, so validation proceeds past it to the targeted check.
fn reseal(bytes: &mut [u8]) {
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let dir_end = HEADER_LEN + count * DIR_ENTRY_LEN;
    let mut covered = Vec::with_capacity(40 + count * DIR_ENTRY_LEN);
    covered.extend_from_slice(&bytes[0..40]);
    covered.extend_from_slice(&bytes[HEADER_LEN..dir_end]);
    let sum = snap::checksum(&covered);
    bytes[OFF_HEADER_CHECKSUM..OFF_HEADER_CHECKSUM + 8].copy_from_slice(&sum.to_le_bytes());
}

#[test]
fn pristine_snapshot_opens_and_deep_verifies() {
    let path = temp("ok");
    let doc = doc_bookstore();
    snap::write(&doc, &path).unwrap();
    snap::verify(&path).unwrap();
    let loaded = snap::load(&path).unwrap();
    assert_eq!(loaded.len(), doc.len());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncated_files_fail_clean() {
    let good = pristine();
    // Every truncation point from an empty file up through a cut in the
    // last section: quick open must fail with a typed error (Truncated
    // when the total-length field disagrees; Io for the empty-read edge),
    // never panic.
    for keep in [0, 1, 16, 47, HEADER_LEN, good.len() / 2, good.len() - 1] {
        match open_bytes("trunc", &good[..keep]) {
            Err(SnapError::Truncated { expected, actual }) => {
                assert_eq!(actual, keep as u64, "truncated to {keep}");
                // Below a full header the reader can only promise the
                // header length; past it, the total-length field names
                // the real size.
                let want = if keep < HEADER_LEN { HEADER_LEN as u64 } else { good.len() as u64 };
                assert_eq!(expected, want, "truncated to {keep}");
            }
            Err(other) => panic!("truncated to {keep}: wrong error {other}"),
            Ok(()) => panic!("truncated to {keep}: opened successfully"),
        }
    }
}

#[test]
fn flipped_stored_checksum_fails_header_validation() {
    // The per-section checksums live in the directory, which the header
    // checksum covers: flipping a stored checksum byte must already fail
    // the quick open (this is what makes the deep-verify checksums
    // tamper-evident without an O(file) scan at open time).
    let mut bad = pristine();
    bad[HEADER_LEN + ENTRY_CHECKSUM] ^= 0x01;
    match open_bytes("flip_dirsum", &bad) {
        Err(SnapError::ChecksumMismatch(what)) => assert_eq!(what, "header/directory"),
        other => panic!("wrong outcome: {other:?}"),
    }
    // Same for a flip anywhere in the covered header fields.
    let mut bad = pristine();
    bad[24] ^= 0x40; // node count
    assert!(matches!(open_bytes("flip_nodes", &bad), Err(SnapError::ChecksumMismatch(_))));
}

#[test]
fn wrong_magic_fails() {
    let mut bad = pristine();
    bad[0] = b'X';
    assert!(matches!(open_bytes("magic", &bad), Err(SnapError::BadMagic)));
}

#[test]
fn future_version_fails() {
    let mut bad = pristine();
    bad[OFF_VERSION..OFF_VERSION + 4].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    reseal(&mut bad);
    match open_bytes("version", &bad) {
        Err(SnapError::UnsupportedVersion(v)) => assert_eq!(v, FORMAT_VERSION + 1),
        other => panic!("wrong outcome: {other:?}"),
    }
}

#[test]
fn out_of_bounds_section_offsets_fail() {
    let good = pristine();
    // Point the first section past the end of the file; re-seal so the
    // header checksum passes and the bounds check is what fires.
    let mut bad = good.clone();
    let at = HEADER_LEN + ENTRY_OFFSET;
    bad[at..at + 8].copy_from_slice(&(good.len() as u64).to_le_bytes());
    reseal(&mut bad);
    assert!(
        matches!(open_bytes("oob", &bad), Err(SnapError::SectionOutOfBounds(_))),
        "offset past EOF must be rejected"
    );
    // A misaligned offset is equally out of contract (mapped arrays
    // require natural alignment).
    let mut bad = good.clone();
    let old = u64::from_le_bytes(bad[at..at + 8].try_into().unwrap());
    bad[at..at + 8].copy_from_slice(&(old + 1).to_le_bytes());
    reseal(&mut bad);
    assert!(
        matches!(open_bytes("misaligned", &bad), Err(SnapError::SectionOutOfBounds(_))),
        "misaligned offset must be rejected"
    );
    // Length overflowing the file end.
    let mut bad = good;
    let at_len = HEADER_LEN + 16;
    bad[at_len..at_len + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    reseal(&mut bad);
    assert!(
        matches!(
            open_bytes("len_overflow", &bad),
            Err(SnapError::SectionOutOfBounds(_) | SnapError::Malformed(_))
        ),
        "overflowing length must be rejected"
    );
}

#[test]
fn payload_damage_is_caught_by_deep_verify() {
    // Flip one byte in the middle of the file body (outside header +
    // directory). The quick open is O(header) by design and may succeed;
    // deep verification must catch the damaged section checksum.
    let mut bad = pristine();
    let mid = bad.len() - 16;
    bad[mid] ^= 0xFF;
    let path = temp("payload");
    std::fs::write(&path, &bad).unwrap();
    match snap::verify(&path) {
        Err(SnapError::ChecksumMismatch(_) | SnapError::Malformed(_)) => {}
        other => panic!("deep verify must reject payload damage, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
}

/// `xpq --snapshot <corrupt>` and `xpq snapshot verify <corrupt>` exit
/// nonzero with a diagnostic — the CLI contract for damaged stores.
#[test]
fn xpq_rejects_corrupt_snapshots() {
    let xpq = env!("CARGO_BIN_EXE_xpq");
    let mut bad = pristine();
    bad[0] = b'X';
    let path = temp("cli");
    std::fs::write(&path, &bad).unwrap();

    let out =
        Command::new(xpq).args(["//*", "--snapshot", path.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success(), "corrupt --snapshot must exit nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("snapshot error"), "diagnostic expected, got: {stderr}");

    let out =
        Command::new(xpq).args(["snapshot", "verify", path.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success(), "snapshot verify must exit nonzero on damage");

    // Truncated file through the CLI as well.
    let good = pristine();
    std::fs::write(&path, &good[..good.len() / 2]).unwrap();
    let out =
        Command::new(xpq).args(["//*", "--snapshot", path.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success(), "truncated --snapshot must exit nonzero");

    let _ = std::fs::remove_file(&path);
}

/// A healthy snapshot through the CLI: `--snapshot` output matches the
/// XML parse path query-for-query.
#[test]
fn xpq_snapshot_output_matches_parse_path() {
    let xpq = env!("CARGO_BIN_EXE_xpq");
    let doc = doc_bookstore();
    let xml_path = std::env::temp_dir().join(format!("gkp_snapcli_{}.xml", std::process::id()));
    std::fs::write(&xml_path, doc.serialize(doc.root())).unwrap();
    let snap_path = temp("cli_ok");

    let out = Command::new(xpq)
        .args(["snapshot", "build", xml_path.to_str().unwrap(), snap_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    for q in ["//book/title", "count(//*)", "//@*", "string(//book[1])"] {
        let from_xml = Command::new(xpq).args([q, xml_path.to_str().unwrap()]).output().unwrap();
        let from_snap = Command::new(xpq)
            .args([q, "--snapshot", snap_path.to_str().unwrap()])
            .output()
            .unwrap();
        assert!(from_xml.status.success() && from_snap.status.success(), "{q}");
        assert_eq!(from_xml.stdout, from_snap.stdout, "{q}: snapshot diverges from parse");
    }

    let _ = std::fs::remove_file(&xml_path);
    let _ = std::fs::remove_file(&snap_path);
}
