//! Figure 9 / Figure 11 fidelity: the context-value tables of the §8
//! running example (Example 8.1) over the Figure 8 document, materialized
//! by the bottom-up evaluator and checked row by row against the paper.

use gkp_xpath::core::bottomup::BottomUpEvaluator;
use gkp_xpath::core::relev::{relev, Relev};
use gkp_xpath::core::{Context, Value};
use gkp_xpath::syntax::parse_normalized;
use gkp_xpath::xml::generate::doc_figure8;
use gkp_xpath::{Document, NodeId};

fn x(d: &Document, id: &str) -> NodeId {
    d.element_by_id(id).unwrap()
}

/// Figure 9, table E2 = descendant::* — at the root it selects all nine
/// elements; at x10 the eight below it.
#[test]
fn table_e2_descendant_star() {
    let d = doc_figure8();
    let ev = BottomUpEvaluator::new(&d);
    let t = ev.table(&parse_normalized("descendant::*").unwrap()).unwrap();
    let at_root = t.value_at(Context::of(d.root())).unwrap();
    assert_eq!(at_root.as_node_set().unwrap().len(), 9);
    let at_x10 = t.value_at(Context::of(x(&d, "10"))).unwrap();
    assert_eq!(at_x10.as_node_set().unwrap().len(), 8);
}

/// Figure 9, table E3: descendant::* with the E5 predicate — the paper's
/// values at x10, x11, x21.
#[test]
fn table_e3_with_predicate() {
    let d = doc_figure8();
    let ev = BottomUpEvaluator::new(&d);
    let q = "descendant::*[position() > last() * 0.5 or string(self::*) = '100']";
    let t = ev.table(&parse_normalized(q).unwrap()).unwrap();
    // x10 → {x14, x21, x22, x23, x24}
    assert_eq!(
        t.value_at(Context::of(x(&d, "10"))).unwrap(),
        &Value::NodeSet(
            vec![x(&d, "14"), x(&d, "21"), x(&d, "22"), x(&d, "23"), x(&d, "24")].into()
        )
    );
    // x11 → {x13, x14}
    assert_eq!(
        t.value_at(Context::of(x(&d, "11"))).unwrap(),
        &Value::NodeSet(vec![x(&d, "13"), x(&d, "14")].into())
    );
    // x21 → {x23, x24}
    assert_eq!(
        t.value_at(Context::of(x(&d, "21"))).unwrap(),
        &Value::NodeSet(vec![x(&d, "23"), x(&d, "24")].into())
    );
    // x12 (a leaf) → {}
    assert_eq!(t.value_at(Context::of(x(&d, "12"))).unwrap(), &Value::NodeSet(vec![].into()));
}

/// Figure 11, table E7 (reduced to the relevant context {cn}):
/// `string(self::*) = '100'` is true exactly at x14 and x24.
#[test]
fn table_e7_string_comparison() {
    let d = doc_figure8();
    let ev = BottomUpEvaluator::new(&d);
    let e = parse_normalized("string(self::*) = '100'").unwrap();
    assert_eq!(relev(&e), Relev::CN, "E7's relevant context is {{cn}}");
    let t = ev.table(&e).unwrap();
    for id in ["11", "12", "13", "21", "22", "23"] {
        assert_eq!(t.value_at(Context::of(x(&d, id))).unwrap(), &Value::Boolean(false), "x{id}");
    }
    for id in ["14", "24"] {
        assert_eq!(t.value_at(Context::of(x(&d, id))).unwrap(), &Value::Boolean(true), "x{id}");
    }
}

/// Figure 11, table E6 (reduced to {cp, cs}): `position() > last() * 0.5`.
/// The paper's rows: (4,8) → false, (5,8) → true, (1,3) → false,
/// (2,3) → true.
#[test]
fn table_e6_positional() {
    let d = doc_figure8();
    let ev = BottomUpEvaluator::new(&d);
    let e = parse_normalized("position() > last() * 0.5").unwrap();
    assert_eq!(relev(&e), Relev::CP.union(Relev::CS));
    let t = ev.table(&e).unwrap();
    let at = |k, n| t.value_at(Context::new(d.root(), k, n)).unwrap().clone();
    assert_eq!(at(4, 8), Value::Boolean(false));
    assert_eq!(at(5, 8), Value::Boolean(true));
    assert_eq!(at(8, 8), Value::Boolean(true));
    assert_eq!(at(1, 3), Value::Boolean(false));
    assert_eq!(at(2, 3), Value::Boolean(true));
    assert_eq!(at(3, 3), Value::Boolean(true));
}

/// Figure 11, tables E8/E9/E12/E13: position(), last()*0.5, last(), 0.5.
#[test]
fn scalar_leaf_tables() {
    let d = doc_figure8();
    let ev = BottomUpEvaluator::new(&d);

    let t8 = ev.table(&parse_normalized("position()").unwrap()).unwrap();
    assert_eq!(t8.relevance(), Relev::CP);
    assert_eq!(t8.value_at(Context::new(d.root(), 3, 8)).unwrap(), &Value::Number(3.0));

    let t9 = ev.table(&parse_normalized("last() * 0.5").unwrap()).unwrap();
    assert_eq!(t9.relevance(), Relev::CS);
    assert_eq!(t9.value_at(Context::new(d.root(), 1, 8)).unwrap(), &Value::Number(4.0));
    assert_eq!(t9.value_at(Context::new(d.root(), 1, 3)).unwrap(), &Value::Number(1.5));

    let t12 = ev.table(&parse_normalized("last()").unwrap()).unwrap();
    assert_eq!(t12.relevance(), Relev::CS);
    assert_eq!(t12.value_at(Context::new(d.root(), 2, 8)).unwrap(), &Value::Number(8.0));

    let t13 = ev.table(&parse_normalized("0.5").unwrap()).unwrap();
    assert_eq!(t13.relevance(), Relev::NONE);
    assert_eq!(t13.len(), 1);
}

/// Figure 11, table E10 (reduced to {cn}): string(self::*) — the string
/// values of the Figure 8 elements.
#[test]
fn table_e10_string_values() {
    let d = doc_figure8();
    let ev = BottomUpEvaluator::new(&d);
    let t = ev.table(&parse_normalized("string(self::*)").unwrap()).unwrap();
    let expect = [
        ("11", "21 2223 24100"),
        ("12", "21 22"),
        ("13", "23 24"),
        ("14", "100"),
        ("21", "11 1213 14100"),
        ("22", "11 12"),
        ("23", "13 14"),
        ("24", "100"),
    ];
    for (id, s) in expect {
        assert_eq!(
            t.value_at(Context::of(x(&d, id))).unwrap(),
            &Value::String(s.to_string()),
            "x{id}"
        );
    }
}

/// Figure 11, table E14 (reduced to {cn}): self::* maps every element to
/// its own singleton.
#[test]
fn table_e14_self() {
    let d = doc_figure8();
    let ev = BottomUpEvaluator::new(&d);
    let t = ev.table(&parse_normalized("self::*").unwrap()).unwrap();
    for id in ["10", "11", "12", "22", "24"] {
        assert_eq!(
            t.value_at(Context::of(x(&d, id))).unwrap(),
            &Value::NodeSet(vec![x(&d, id)].into()),
            "x{id}"
        );
    }
    // At the root (not an element) the self::* step yields ∅.
    assert_eq!(t.value_at(Context::of(d.root())).unwrap(), &Value::NodeSet(vec![].into()));
}

/// The full E5 predicate table (all three context components relevant), at
/// the rows the paper displays: ⟨x14,4,8⟩ true, ⟨x21,5,8⟩ true,
/// ⟨x13,3,8⟩ false, ⟨x13,2,3⟩ true.
#[test]
fn table_e5_full_context() {
    let d = doc_figure8();
    let ev = BottomUpEvaluator::new(&d);
    let e = parse_normalized("position() > last() * 0.5 or string(self::*) = '100'").unwrap();
    assert_eq!(relev(&e), Relev::ALL);
    let t = ev.table(&e).unwrap();
    let at = |id: &str, k, n| t.value_at(Context::new(x(&d, id), k, n)).unwrap().clone();
    assert_eq!(at("14", 4, 8), Value::Boolean(true), "true via strval");
    assert_eq!(at("21", 5, 8), Value::Boolean(true), "true via position");
    assert_eq!(at("13", 3, 8), Value::Boolean(false));
    assert_eq!(at("13", 2, 3), Value::Boolean(true));
    assert_eq!(at("12", 1, 8), Value::Boolean(false));
}
