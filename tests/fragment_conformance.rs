//! Fragment-lattice conformance: classified queries must (a) be accepted
//! by the corresponding specialized evaluator, (b) produce the same answer
//! as the general engines, and (c) respect the Figure 1 subsumption order.

use gkp_xpath::core::fragment::{classify, Fragment};
use gkp_xpath::core::{corexpath, wadler, Context, Strategy};
use gkp_xpath::xml::generate::{doc_bookstore, doc_figure8, doc_idref_chain};
use gkp_xpath::{Document, Engine};

/// Queries with their expected classification.
const CLASSIFIED: &[(&str, Fragment)] = &[
    // Core XPath.
    ("//a/b", Fragment::CoreXPath),
    ("/descendant::a/child::b[child::c]", Fragment::CoreXPath),
    ("//b[not(following::*) and (c or d)]", Fragment::CoreXPath),
    ("//d/ancestor-or-self::*", Fragment::CoreXPath),
    ("//*[self::b][not(preceding-sibling::c)]", Fragment::CoreXPath),
    ("//b[//c]", Fragment::CoreXPath),
    // XPatterns.
    ("//b[c = '100']", Fragment::XPatterns),
    ("id('11')/child::*", Fragment::XPatterns),
    ("//*[. = '100']", Fragment::XPatterns),
    ("//b[d = 100][not(c)]", Fragment::XPatterns),
    // Extended Wadler.
    ("//b[position() != last()]", Fragment::ExtendedWadler),
    ("//*[position() = 1 or position() = last()]", Fragment::ExtendedWadler),
    ("//b[position() > last() * 0.5]", Fragment::ExtendedWadler),
    ("//*[c = '100' and position() != 1]", Fragment::ExtendedWadler),
    // Full XPath.
    ("//b[count(c) > 1]", Fragment::FullXPath),
    ("//b[c = d]", Fragment::FullXPath),
    ("sum(//d)", Fragment::FullXPath),
    ("//*[string(c) = '100']", Fragment::FullXPath),
    ("//*[string-length(.) > 3]", Fragment::FullXPath),
];

#[test]
fn classification_matches_expectations() {
    for (q, expect) in CLASSIFIED {
        let e = gkp_xpath::syntax::parse_normalized(q).unwrap();
        let got = classify(&e).fragment;
        assert_eq!(got, *expect, "{q}");
    }
}

#[test]
fn subsumption_order_holds() {
    // Core XPath queries must be accepted by every wider fragment; and a
    // query accepted by a narrower fragment must be accepted by wider ones.
    for (q, frag) in CLASSIFIED {
        let e = gkp_xpath::syntax::parse_normalized(q).unwrap();
        match frag {
            Fragment::CoreXPath => {
                assert!(corexpath::is_core_xpath(&e), "{q}");
                assert!(corexpath::is_xpatterns(&e), "{q} (Core ⊆ XPatterns)");
                assert!(wadler::is_extended_wadler(&e), "{q} (Core ⊆ Wadler)");
            }
            Fragment::XPatterns => {
                assert!(!corexpath::is_core_xpath(&e), "{q}");
                assert!(corexpath::is_xpatterns(&e), "{q}");
            }
            Fragment::ExtendedWadler => {
                assert!(!corexpath::is_xpatterns(&e), "{q}");
                assert!(wadler::is_extended_wadler(&e), "{q}");
            }
            Fragment::FullXPath => {
                assert!(!corexpath::is_xpatterns(&e), "{q}");
                assert!(!wadler::is_extended_wadler(&e), "{q}");
            }
        }
    }
}

fn check_specialized_agreement(doc: &Document) {
    let engine = Engine::new(doc);
    for (q, frag) in CLASSIFIED {
        let e = engine.prepare(q).unwrap();
        let reference =
            engine.evaluate_expr(&e, Strategy::TopDown, Context::of(doc.root())).unwrap();
        // Auto must give the same answer through whatever specialized route.
        let auto = engine.evaluate_expr(&e, Strategy::Auto, Context::of(doc.root())).unwrap();
        assert!(reference.semantically_equal(&auto), "{q}: auto disagrees");
        // The explicitly specialized engine must accept and agree.
        match frag {
            Fragment::CoreXPath => {
                let v =
                    engine.evaluate_expr(&e, Strategy::CoreXPath, Context::of(doc.root())).unwrap();
                assert!(reference.semantically_equal(&v), "{q}: core disagrees");
            }
            Fragment::XPatterns => {
                let v =
                    engine.evaluate_expr(&e, Strategy::XPatterns, Context::of(doc.root())).unwrap();
                assert!(reference.semantically_equal(&v), "{q}: xpatterns disagrees");
            }
            Fragment::ExtendedWadler | Fragment::FullXPath => {
                let v = engine
                    .evaluate_expr(&e, Strategy::OptMinContext, Context::of(doc.root()))
                    .unwrap();
                assert!(reference.semantically_equal(&v), "{q}: optmincontext disagrees");
            }
        }
    }
}

#[test]
fn specialized_evaluators_agree_on_figure8() {
    check_specialized_agreement(&doc_figure8());
}

#[test]
fn specialized_evaluators_agree_on_bookstore() {
    check_specialized_agreement(&doc_bookstore());
}

#[test]
fn specialized_evaluators_agree_on_idref_chain() {
    check_specialized_agreement(&doc_idref_chain(7));
}

#[test]
fn auto_dispatch_picks_the_advertised_strategy() {
    let doc = doc_figure8();
    let engine = Engine::new(&doc);
    for (q, frag) in CLASSIFIED {
        let e = engine.prepare(q).unwrap();
        let strategy = engine.auto_strategy(&e);
        let expected = match frag {
            Fragment::CoreXPath => Strategy::CoreXPath,
            Fragment::XPatterns => Strategy::XPatterns,
            Fragment::ExtendedWadler | Fragment::FullXPath => Strategy::OptMinContext,
        };
        assert_eq!(strategy, expected, "{q}");
    }
}
