//! Value-model semantics: XPath number formatting/parsing laws, unicode
//! string functions, and coercion edge cases across engines.

use gkp_xpath::{Document, Engine};

// The property tests need the external `proptest` crate, which is not
// vendored in this offline workspace; see Cargo.toml. The deterministic
// tests below always run.
#[cfg(feature = "proptest")]
mod props {
    use proptest::prelude::*;

    use gkp_xpath::core::value::{number_to_string, str_to_number};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// to_number(to_string(v)) = v for finite doubles without exponent
        /// blowup (XPath's decimal notation is exact for these).
        #[test]
        fn number_string_roundtrip(v in -1.0e12f64..1.0e12) {
            let s = number_to_string(v);
            let back = str_to_number(&s);
            // Parsing the shortest-roundtrip decimal form recovers v exactly.
            prop_assert_eq!(back, v, "{} -> {}", v, s);
        }

        /// number_to_string never produces exponent notation.
        #[test]
        fn no_exponent_notation(v in prop::num::f64::ANY) {
            let s = number_to_string(v);
            prop_assert!(!s.contains('e') && !s.contains('E'), "{} -> {}", v, s);
        }

        /// str_to_number accepts exactly the XPath Number grammar.
        #[test]
        fn number_grammar(s in "-?[0-9]{1,10}(\\.[0-9]{0,8})?") {
            prop_assert!(!str_to_number(&s).is_nan(), "{s}");
        }

        /// Whitespace-trimmed parsing.
        #[test]
        fn number_whitespace(v in 0u32..100000) {
            let s = format!("  {v} \t");
            prop_assert_eq!(str_to_number(&s), v as f64);
        }
    }
}

#[test]
fn unicode_string_functions() {
    let d = Document::parse_str("<a motto=\"zażółć gęślą jaźń\">日本語テキスト</a>").unwrap();
    let engine = Engine::new(&d);
    // string-length counts characters, not bytes.
    assert_eq!(engine.evaluate("string-length(/a)").unwrap().to_string(), "7");
    assert_eq!(engine.evaluate("string-length(/a/@motto)").unwrap().to_string(), "17");
    // substring operates on characters.
    assert_eq!(engine.evaluate("substring(/a, 3, 2)").unwrap().to_string(), "語テ");
    // translate handles non-ASCII replacements.
    assert_eq!(
        engine.evaluate("translate(/a/@motto, 'ażółęą', 'azolea')").unwrap().to_string(),
        // ć, ś, ź, ń are not in the from-set and pass through.
        "zazolć geśla jaźń"
    );
    // contains/starts-with over unicode.
    assert_eq!(engine.evaluate("contains(/a, '語テ')").unwrap().to_string(), "true");
    assert_eq!(engine.evaluate("starts-with(/a, '日本')").unwrap().to_string(), "true");
}

#[test]
fn coercion_chains() {
    let d = Document::parse_str("<a><b> 42 </b><c>x</c><d></d></a>").unwrap();
    let engine = Engine::new(&d);
    // nset → string → number with whitespace.
    assert_eq!(engine.evaluate("number(//b)").unwrap().to_string(), "42");
    assert_eq!(engine.evaluate("number(//c)").unwrap().to_string(), "NaN");
    assert_eq!(engine.evaluate("number(//d)").unwrap().to_string(), "NaN");
    assert_eq!(engine.evaluate("number(//zzz)").unwrap().to_string(), "NaN");
    // boolean of empty-string element is false; of whitespace is true.
    assert_eq!(engine.evaluate("boolean(string(//d))").unwrap().to_string(), "false");
    assert_eq!(engine.evaluate("boolean(string(//b))").unwrap().to_string(), "true");
    // string of boolean of number...
    assert_eq!(engine.evaluate("string(boolean(number(//b)))").unwrap().to_string(), "true");
    assert_eq!(engine.evaluate("string(number(boolean(//zzz)))").unwrap().to_string(), "0");
    // Arithmetic propagates NaN.
    assert_eq!(engine.evaluate("number(//c) + 1").unwrap().to_string(), "NaN");
    // Infinity formatting.
    assert_eq!(engine.evaluate("1 div 0").unwrap().to_string(), "Infinity");
    assert_eq!(engine.evaluate("-1 div 0").unwrap().to_string(), "-Infinity");
    assert_eq!(engine.evaluate("0 div 0").unwrap().to_string(), "NaN");
    assert_eq!(engine.evaluate("string(1 div 0)").unwrap().to_string(), "Infinity");
}

#[test]
fn comparison_type_matrix_via_queries() {
    let d = Document::parse_str("<a><b>1</b><b>2</b><c>true</c></a>").unwrap();
    let engine = Engine::new(&d);
    let t = |q: &str| engine.evaluate(q).unwrap().to_boolean();
    // nset vs nset.
    assert!(t("//b = //b"));
    assert!(t("//b != //b"), "two distinct values exist");
    assert!(!t("//c != //c"), "single value: no differing pair");
    // nset vs number / string / boolean.
    assert!(t("//b = 2"));
    assert!(t("//b < 2"));
    assert!(!t("//b > 2"));
    assert!(t("//b = '1'"));
    assert!(t("//b = true()"));
    assert!(t("//zzz = false()"));
    // booleans dominate =.
    assert!(t("'x' = true()"));
    assert!(t("0 = false()"));
    // numbers beat strings for =.
    assert!(t("'1' = 1"));
    assert!(!t("'01' = '1'"), "string vs string compares textually");
    assert!(t("'01' = 1"), "string vs number compares numerically");
}
