//! Property-based differential testing of the streaming matcher: random
//! forward Core XPath queries over random documents must agree with the
//! tree-based Core XPath algebra (and with the general engines, which the
//! engine oracle covers elsewhere).

use gkp_xpath::core::corexpath::{CoreDialect, CoreXPathEvaluator};
use gkp_xpath::core::streaming;
use gkp_xpath::xml::generate::{doc_random, RandomDocConfig};
use gkp_xpath::Document;

// The property tests (and their query generators) need the external
// `proptest` crate, which is not vendored in this offline workspace; see
// Cargo.toml. The deterministic regression corpus below always runs.
#[cfg(feature = "proptest")]
mod props {
    use proptest::prelude::*;

    use gkp_xpath::core::corexpath::compile_xpatterns;
    use gkp_xpath::core::streaming;
    use gkp_xpath::syntax::parse_normalized;
    use gkp_xpath::xml::generate::{doc_random, RandomDocConfig};

    use super::tree_eval;

    // ---- random streamable query generator ----

    fn arb_forward_axis() -> impl Strategy<Value = &'static str> {
        prop::sample::select(vec!["child", "descendant", "descendant-or-self", "self"])
    }

    /// Spine axes additionally allow `following` / `following-sibling` (armed
    /// forward transitions; not allowed inside predicates).
    fn arb_spine_axis() -> impl Strategy<Value = &'static str> {
        prop_oneof![
            4 => arb_forward_axis(),
            1 => prop::sample::select(vec!["following", "following-sibling"]),
        ]
    }

    fn arb_test() -> impl Strategy<Value = String> {
        prop_oneof![
            prop::sample::select(vec!["a", "b", "c", "d", "zzz"]).prop_map(str::to_string),
            Just("*".to_string()),
            Just("node()".to_string()),
            Just("text()".to_string()),
        ]
    }

    /// A relative forward path (predicate body), depth-bounded.
    fn arb_pred_path(depth: u32) -> BoxedStrategy<String> {
        let step = (arb_forward_axis(), arb_test()).prop_map(|(a, t)| format!("{a}::{t}"));
        let steps = prop::collection::vec(step, 1..3).prop_map(|ss| ss.join("/"));
        if depth == 0 {
            steps.boxed()
        } else {
            (steps, arb_pred(depth - 1), any::<bool>())
                .prop_map(|(ss, p, with_pred)| if with_pred { format!("{ss}[{p}]") } else { ss })
                .boxed()
        }
    }

    /// A predicate expression: boolean closure over paths and `= s` tests.
    fn arb_pred(depth: u32) -> BoxedStrategy<String> {
        let leaf = prop_oneof![
            arb_pred_path(depth),
            (arb_pred_path(0), prop::sample::select(vec!["7", "100", "xyz"]))
                .prop_map(|(p, s)| format!("{p} = '{s}'")),
        ];
        if depth == 0 {
            leaf.boxed()
        } else {
            let inner = arb_pred(depth - 1);
            prop_oneof![
                4 => leaf,
                1 => inner.clone().prop_map(|p| format!("not({p})")),
                1 => (arb_pred(depth - 1), arb_pred(depth - 1))
                    .prop_map(|(l, r)| format!("({l}) and ({r})")),
                1 => (arb_pred(depth - 1), arb_pred(depth - 1))
                    .prop_map(|(l, r)| format!("({l}) or ({r})")),
            ]
            .boxed()
        }
    }

    /// An absolute streamable query: spine of forward steps, predicates on the
    /// last step only.
    fn arb_query() -> impl Strategy<Value = String> {
        let step = (arb_spine_axis(), arb_test()).prop_map(|(a, t)| format!("{a}::{t}"));
        (prop::collection::vec(step, 1..4), prop::option::of(arb_pred(1))).prop_map(
            |(steps, pred)| {
                let spine = steps.join("/");
                match pred {
                    Some(p) => format!("/{spine}[{p}]"),
                    None => format!("/{spine}"),
                }
            },
        )
    }

    proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Random streamable queries agree with the tree-based evaluator on
    /// random documents.
    #[test]
    fn stream_equals_tree(seed in 0u64..10_000, q in arb_query()) {
        let cfg = RandomDocConfig { elements: 35, ..RandomDocConfig::default() };
        let doc = doc_random(seed, &cfg);
        // The generator can exceed streamability only via MAX_STEPS (it
        // cannot); compile must succeed.
        let sq = streaming::compile_str(&q).unwrap_or_else(|e| panic!("{q}: {e}"));
        let got = streaming::evaluate_stream(&sq, &doc);
        prop_assert_eq!(got, tree_eval(&doc, &q), "query {} seed {}", q, seed);
    }

    /// The generated queries really are in the advertised fragment, and the
    /// compile is deterministic.
    #[test]
    fn generator_stays_in_fragment(q in arb_query()) {
        let e = parse_normalized(&q).unwrap_or_else(|e| panic!("{q}: {e}"));
        let core = compile_xpatterns(&e).unwrap_or_else(|e| panic!("{q}: {e}"));
        prop_assert!(streaming::is_streamable(&core), "{}", q);
    }
    }
}

fn tree_eval(doc: &Document, q: &str) -> gkp_xpath::xml::NodeSet {
    CoreXPathEvaluator::new(doc)
        .evaluate_str(q, CoreDialect::XPatterns, &[doc.root()])
        .unwrap_or_else(|e| panic!("{q}: {e}"))
}

/// Deterministic regression corpus distilled from past shrink results and
/// tricky shapes (ε-acceptance, nested negation, leaf targets).
#[test]
fn regression_corpus() {
    let queries = [
        "/self::node()",
        "/descendant-or-self::node()",
        "/child::*[self::a]",
        "/descendant::*[self::b[child::c]]",
        "/descendant::a[not(self::a[child::b])]",
        "/descendant::text()",
        "/child::a/descendant-or-self::node()/child::b",
        "/descendant::*[not(child::* = '7') and (child::c or self::d)]",
    ];
    for seed in 0..25u64 {
        let cfg = RandomDocConfig { elements: 30, ..RandomDocConfig::default() };
        let doc = doc_random(seed, &cfg);
        for q in queries {
            let sq = streaming::compile_str(q).unwrap_or_else(|e| panic!("{q}: {e}"));
            assert_eq!(
                streaming::evaluate_stream(&sq, &doc),
                tree_eval(&doc, q),
                "query {q} seed {seed}"
            );
        }
    }
}
