//! Integration tests of the query server over a real Unix socket:
//! concurrent clients, per-request deadlines as structured errors
//! (never dropped connections or torn response lines), live `stats`,
//! and graceful drain on shutdown.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use gkp_xpath::core::serve::{Json, ServeConfig, Server};
use gkp_xpath::xml::generate::doc_balanced;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gkp_serveit_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    fn connect(sock: &PathBuf) -> Client {
        let deadline = Instant::now() + Duration::from_secs(10);
        let stream = loop {
            match UnixStream::connect(sock) {
                Ok(s) => break s,
                Err(_) if Instant::now() < deadline => thread::sleep(Duration::from_millis(10)),
                Err(e) => panic!("cannot connect to {}: {e}", sock.display()),
            }
        };
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { reader, writer: stream }
    }

    fn roundtrip(&mut self, request: &str) -> Json {
        self.writer.write_all(request.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed the connection instead of responding");
        Json::parse(line.trim()).expect("response line is complete JSON, never torn")
    }
}

/// Start a server over a fresh store (one published balanced document)
/// on a Unix socket in the store's parent dir. Returns the server, the
/// socket path, and the accept-loop thread handle.
fn start(tag: &str) -> (Arc<Server>, PathBuf, thread::JoinHandle<std::io::Result<()>>) {
    let dir = temp_dir(tag);
    let mut config = ServeConfig::new(dir.join("store"));
    config.read_timeout = Duration::from_millis(25);
    config.drain_timeout = Duration::from_secs(10);
    // This box may report a single core; these tests probe protocol
    // correctness under concurrency, not admission control, so give
    // every client a permit.
    config.permits = 16;
    let server = Arc::new(Server::new(config).unwrap());
    // Small document: these tests probe the wire protocol, not
    // evaluator throughput (bench_serve covers that), and they run in
    // debug builds on possibly single-core CI.
    server.store().publish("bench", &doc_balanced(3, 4, &["a", "b", "c", "d"])).unwrap();
    let sock = dir.join("xpq.sock");
    let accept = {
        let server = Arc::clone(&server);
        let sock = sock.clone();
        thread::spawn(move || server.serve_unix(&sock))
    };
    (server, sock, accept)
}

fn finish(
    server: &Arc<Server>,
    accept: thread::JoinHandle<std::io::Result<()>>,
    sock: &std::path::Path,
) {
    server.begin_shutdown();
    accept.join().expect("accept loop panicked").expect("accept loop I/O");
    assert!(!sock.exists(), "socket file is removed on drain");
    let dir = sock.parent().unwrap();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn concurrent_clients_get_exact_unmixed_responses() {
    const CLIENTS: usize = 8;
    const REQUESTS: usize = 25;

    let (server, sock, accept) = start("concurrent");
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let sock = sock.clone();
            thread::spawn(move || {
                let mut client = Client::connect(&sock);
                for r in 0..REQUESTS {
                    let id = c * 1000 + r;
                    // Mix single and batch requests across clients.
                    let request = if c % 2 == 0 {
                        format!(r#"{{"id":{id},"doc":"bench","query":"count(//c)"}}"#)
                    } else {
                        format!(
                            r#"{{"id":{id},"doc":"bench","queries":["count(//c)","count(//d)"]}}"#
                        )
                    };
                    let resp = client.roundtrip(&request);
                    // The response is for *this* request (ids echo
                    // back exactly — no cross-connection mixing).
                    assert_eq!(resp.get("id").unwrap().as_u64(), Some(id as u64));
                    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
                    let results = resp.get("results").unwrap().as_arr().unwrap();
                    for result in results {
                        assert_eq!(result.get("ok"), Some(&Json::Bool(true)));
                        assert!(result.get("value").unwrap().as_f64().unwrap() > 0.0);
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client panicked");
    }
    let stats = server.metrics();
    assert_eq!(
        stats.requests.load(std::sync::atomic::Ordering::Relaxed),
        (CLIENTS * REQUESTS) as u64
    );
    finish(&server, accept, &sock);
}

#[test]
fn deadline_trips_are_structured_and_connection_survives() {
    let (server, sock, accept) = start("deadline");
    let mut client = Client::connect(&sock);
    let resp =
        client.roundtrip(r#"{"id":1,"doc":"bench","query":"//c[@id]//d//a","timeout_ms":0}"#);
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "transport-level ok");
    let result = &resp.get("results").unwrap().as_arr().unwrap()[0];
    assert_eq!(result.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(
        result.get("error").unwrap().get("kind").unwrap().as_str(),
        Some("deadline_exceeded")
    );
    // Same connection keeps working after the trip.
    let resp = client.roundtrip(r#"{"id":2,"doc":"bench","query":"count(//a)"}"#);
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(resp.get("id").unwrap().as_u64(), Some(2));
    finish(&server, accept, &sock);
}

#[test]
fn stats_over_the_wire_reflect_served_requests() {
    let (server, sock, accept) = start("stats");
    let mut client = Client::connect(&sock);
    for _ in 0..3 {
        client.roundtrip(r#"{"doc":"bench","query":"count(//b)"}"#);
    }
    let resp = client.roundtrip(r#"{"op":"stats"}"#);
    let stats = resp.get("stats").unwrap();
    assert_eq!(stats.get("server").unwrap().get("requests").unwrap().as_u64(), Some(4));
    assert_eq!(stats.get("server").unwrap().get("connections").unwrap().as_u64(), Some(1));
    assert_eq!(stats.get("cache").unwrap().get("hits").unwrap().as_u64(), Some(2));
    let eval_latency = stats.get("latency").unwrap().get("eval").unwrap();
    assert_eq!(eval_latency.get("count").unwrap().as_u64(), Some(3));
    assert!(eval_latency.get("p99_us").unwrap().as_u64().unwrap() > 0);
    finish(&server, accept, &sock);
}

#[test]
fn shutdown_op_drains_and_returns_clean() {
    let (server, sock, accept) = start("shutdown");
    let mut client = Client::connect(&sock);
    let resp = client.roundtrip(r#"{"op":"shutdown"}"#);
    assert_eq!(resp.get("shutting_down"), Some(&Json::Bool(true)));
    accept.join().expect("accept loop panicked").expect("clean drain");
    assert!(server.shutting_down());
    assert!(!sock.exists());
    let dir = sock.parent().unwrap().to_path_buf();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn oversized_line_is_rejected_structurally() {
    let dir = temp_dir("oversize");
    let mut config = ServeConfig::new(dir.join("store"));
    config.read_timeout = Duration::from_millis(25);
    config.max_line_bytes = 256;
    let server = Arc::new(Server::new(config).unwrap());
    server.store().publish("bench", &doc_balanced(2, 3, &["a", "b"])).unwrap();
    let sock = dir.join("xpq.sock");
    let accept = {
        let server = Arc::clone(&server);
        let sock = sock.clone();
        thread::spawn(move || server.serve_unix(&sock))
    };
    let mut client = Client::connect(&sock);
    let huge = format!(r#"{{"doc":"bench","query":"{}"}}"#, "x".repeat(1024));
    let resp = client.roundtrip(&huge);
    assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(resp.get("error").unwrap().get("kind").unwrap().as_str(), Some("line_too_long"));
    finish(&server, accept, &sock);
}
