//! Calibrated cost model for **adaptive axis-kernel selection**.
//!
//! `BENCH_axes.json` showed that no single axis kernel wins everywhere:
//! the set-at-a-time word-parallel kernels of [`crate::bulk`] beat the
//! per-node loops by up to ~9×10⁵× on dense interval axes, but on very
//! sparse inputs the fixed cost of materializing a dense bitset over the
//! whole id space (`O(|dom|/64)` words to allocate, fill, type-strip and
//! re-adapt) loses to simply writing the few result ids into a sorted
//! vector. This module makes the pick *cost-based* instead of hard-wired,
//! in the spirit of cost-based XPath operator selection (Gottlob, Orsi &
//! Pieris's rewriting-and-optimization line of work): estimate the cost of
//! each applicable kernel from **input density × axis shape × document
//! size** and run the cheapest.
//!
//! # The model
//!
//! Three kernel classes exist per axis application (see [`Kernel`]):
//!
//! * **per-node** — the `fast::axis_from` enumeration loop per input node,
//!   merged at the end; cost ≈ `chain_ns · |S| · est_chain_len`
//!   (pointer-chasing axes only: ancestors, siblings);
//! * **bulk-sparse** — the set-at-a-time staircase walk writing its
//!   (disjoint, ascending) ranges straight into a sorted vector; cost ≈
//!   `input_ns · |S| + sparse_out_ns · |output|`;
//! * **bulk-dense** — the word-parallel bitset kernel; cost ≈
//!   `input_ns · |S| + dense_word_ns · ⌈|dom|/64⌉` (the word term covers
//!   allocation, range fills, the §4 type strip and the final adapt scan).
//!
//! For the interval axes (`descendant`, `following`, `preceding`) the
//! planner does not need to *guess* the output size: a `O(|S|)` staircase
//! pre-pass computes the exact output cardinality before any
//! materialization, so the sparse-vs-dense choice is made on exact data.
//! For the pointer-chasing axes the chain lengths are unknown until
//! walked, so the calibrated `est_chain_len` stands in.
//!
//! # Calibration
//!
//! The default constants ([`CostModel::CALIBRATED`]) were measured by
//! `bench_axes --calibrate` on the reference 21846-node balanced document
//! (see `crates/bench/src/bin/bench_axes.rs`) and baked in. They are
//! deliberately coarse — the planner only needs the *crossovers* right,
//! and those sit an order of magnitude apart. Deployments on very
//! different hardware can re-run `bench_axes --calibrate` and override at
//! runtime via the [`COST_ENV`] environment variable
//! (`GKP_AXIS_COST=dense_word_ns=2.2,sparse_out_ns=1.1,…`). Parsing is
//! strict: unknown keys, unparsable values and non-positive numbers are
//! rejected and reported through [`CostModel::env_diagnostics`] (surfaced
//! once by `xpq -v`), so a typo'd calibration override never falls back
//! to the defaults silently; keys not mentioned keep their defaults.
//! [`CostModel::global`] reads the variable once per process.
//!
//! # Sharded parallel passes
//!
//! The same model gates the parallel CVT evaluation layer
//! (`xpath_core::parallel`): [`CostModel::pick_shards`] weighs the
//! divisible portion of a pass against the per-worker spawn cost
//! ([`CostModel::spawn_ns`]) and the word-parallel merge at the join
//! ([`CostModel::merge_word_ns`]), per pass — small passes stay serial.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use xpath_syntax::Axis;

/// Environment variable overriding the calibrated constants at runtime:
/// a comma-separated `key=value` list over the [`CostModel`] field names,
/// e.g. `GKP_AXIS_COST=dense_word_ns=2.2,chain_ns=4.0`.
pub const COST_ENV: &str = "GKP_AXIS_COST";

/// Hard cap on the shard count any single pass can split into,
/// regardless of the requested thread budget: CVT passes are
/// memory-bound, so fan-out beyond this buys nothing, and the cap keeps
/// [`CostModel::pick_shards`] O(1) and the per-pass spawn count bounded
/// even for absurd `--threads` requests.
pub const MAX_SHARDS: usize = 64;

/// Which kernel the planner picked for one axis application.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Kernel {
    /// Per-node `axis_from` enumeration, merged into a sorted vector.
    PerNode,
    /// Set-at-a-time staircase/pointer walk writing a sorted vector.
    BulkSparse,
    /// Set-at-a-time word-parallel kernel over a dense bitset.
    BulkDense,
}

impl Kernel {
    /// Stable snake_case name (used in `BENCH_axes.json` provenance and
    /// the CLI planner report).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::PerNode => "per_node",
            Kernel::BulkSparse => "bulk_sparse",
            Kernel::BulkDense => "bulk_dense",
        }
    }
}

/// Calibrated per-operation costs, in nanoseconds. See the
/// [module docs](self) for the model each constant feeds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Cost per bitset word touched by the dense kernels, covering
    /// allocation + fill + type strip + adapt scan (~3 passes).
    pub dense_word_ns: f64,
    /// Cost per output node written on the sparse vector paths.
    pub sparse_out_ns: f64,
    /// Cost per input node of the staircase / dispatch walk.
    pub input_ns: f64,
    /// Cost per link of a per-node pointer-chain walk (incl. the final
    /// sort+dedup merge amortized per element).
    pub chain_ns: f64,
    /// Assumed average chain length (tree depth / sibling-run length)
    /// when the real lengths are unknown before walking.
    pub est_chain_len: f64,
    /// Cost of spawning + joining one scoped worker thread for a sharded
    /// pass (`std::thread::scope`). Gates the parallel CVT layer: a pass
    /// shards only when the divisible work saved exceeds this per extra
    /// worker.
    pub spawn_ns: f64,
    /// Cost per bitset word per extra shard merged at a join (the
    /// word-parallel union of per-shard results, plus each shard's scan
    /// over its zero prefix/suffix words).
    pub merge_word_ns: f64,
    /// Fixed cost of one batched-evaluation memo-table probe (key build,
    /// hash-map lookup, and the result clone a hit hands back). Gates the
    /// lock-step-shared batch mode: memoizing only pays when duplicated
    /// axis passes across the batch save more than every pass's probe.
    pub memo_probe_ns: f64,
    /// Cost per bitset word of fingerprinting a memo key's input set
    /// (`NodeSet::fingerprint`: one splitmix64 chain over nonzero words).
    pub fingerprint_word_ns: f64,
}

impl CostModel {
    /// Constants measured by `bench_axes --calibrate` (balanced 4-ary
    /// depth-7 document, 21846 nodes, x86-64; 2026-08 pass, after the
    /// tiered word-sweep kernels landed in `xpath_xml::simd`). The
    /// vectorized sweeps pulled the per-word costs down ~3× relative to
    /// the 2026-07 pass (`dense_word_ns` 2.6 → 0.9, `sparse_out_ns`
    /// 1.4 → 0.25, `merge_word_ns` 0.25 → 0.5 re-measured), which moves
    /// every dense-vs-sparse crossover toward the dense kernels. The
    /// fingerprint is vectorized too (AVX-512 where available), but its
    /// multiply chain keeps it near `dense_word_ns` per word — the reason
    /// [`CostModel::shared_pass_ns`] must count the avoided pass's input
    /// term, not just its word sweep.
    pub const CALIBRATED: CostModel = CostModel {
        dense_word_ns: 0.9,
        sparse_out_ns: 0.25,
        input_ns: 0.75,
        chain_ns: 7.4,
        est_chain_len: 12.0,
        spawn_ns: 18_000.0,
        merge_word_ns: 0.5,
        memo_probe_ns: 30.0,
        fingerprint_word_ns: 0.85,
    };

    /// [`CostModel::CALIBRATED`] with any [`COST_ENV`] overrides applied,
    /// discarding the parse diagnostics (see [`CostModel::from_env_report`]).
    pub fn from_env() -> CostModel {
        CostModel::from_env_report().0
    }

    /// [`CostModel::CALIBRATED`] with any [`COST_ENV`] overrides applied,
    /// plus one diagnostic line per rejected entry — how a typo'd
    /// calibration override becomes visible instead of silently falling
    /// back to the defaults.
    pub fn from_env_report() -> (CostModel, Vec<String>) {
        let mut m = CostModel::CALIBRATED;
        let diagnostics = match std::env::var(COST_ENV) {
            Ok(spec) => m
                .apply_overrides(&spec)
                .into_iter()
                .map(|why| format!("{COST_ENV}: ignored {why}"))
                .collect(),
            Err(_) => Vec::new(),
        };
        (m, diagnostics)
    }

    /// Apply a `key=value,key=value` override spec in place, parsing
    /// **strictly**: an entry is applied only if its key names a
    /// [`CostModel`] field and its value is a positive finite number.
    /// Every rejected entry (unknown key, unparsable or non-positive
    /// value, missing `=`) keeps the calibrated default and is returned as
    /// a diagnostic message; empty segments (trailing commas) are allowed.
    #[must_use = "rejected entries are reported, not silently dropped"]
    pub fn apply_overrides(&mut self, spec: &str) -> Vec<String> {
        let mut rejected = Vec::new();
        for part in spec.split(',') {
            if part.trim().is_empty() {
                continue;
            }
            let Some((key, value)) = part.split_once('=') else {
                rejected.push(format!("entry {:?}: expected key=value", part.trim()));
                continue;
            };
            let (key, value) = (key.trim(), value.trim());
            let slot = match key {
                "dense_word_ns" => &mut self.dense_word_ns,
                "sparse_out_ns" => &mut self.sparse_out_ns,
                "input_ns" => &mut self.input_ns,
                "chain_ns" => &mut self.chain_ns,
                "est_chain_len" => &mut self.est_chain_len,
                "spawn_ns" => &mut self.spawn_ns,
                "merge_word_ns" => &mut self.merge_word_ns,
                "memo_probe_ns" => &mut self.memo_probe_ns,
                "fingerprint_word_ns" => &mut self.fingerprint_word_ns,
                _ => {
                    rejected.push(format!("unknown key {key:?}"));
                    continue;
                }
            };
            match value.parse::<f64>() {
                Ok(v) if v.is_finite() && v > 0.0 => *slot = v,
                _ => rejected
                    .push(format!("key {key:?}: value {value:?} is not a positive finite number")),
            }
        }
        rejected
    }

    /// The process-wide model: [`CostModel::from_env_report`] computed
    /// once.
    pub fn global() -> &'static CostModel {
        &global_with_diagnostics().0
    }

    /// Diagnostics from the one-time [`COST_ENV`] parse behind
    /// [`CostModel::global`]: one line per rejected entry, empty when the
    /// variable was unset or fully valid. `xpq -v` prints these.
    pub fn env_diagnostics() -> &'static [String] {
        &global_with_diagnostics().1
    }

    /// Estimated cost of a dense word-parallel materialization over
    /// `universe` ids with `input_len` staircase inputs.
    pub fn dense_cost(&self, universe: u32, input_len: usize) -> f64 {
        self.dense_word_ns * (universe as f64 / 64.0) + self.input_ns * input_len as f64
    }

    /// Estimated cost of the sparse staircase writing `output_len` ids.
    pub fn sparse_cost(&self, input_len: usize, output_len: usize) -> f64 {
        self.input_ns * input_len as f64 + self.sparse_out_ns * output_len as f64
    }

    /// Estimated cost of the per-node chain walk over `input_len` nodes.
    pub fn chain_cost(&self, input_len: usize) -> f64 {
        self.chain_ns * input_len as f64 * self.est_chain_len
    }

    /// Pick the interval-axis kernel given the **exact** output
    /// cardinality from the staircase pre-pass. Outputs at or above the
    /// [`NodeSet`](xpath_xml::NodeSet) dense threshold stay dense
    /// regardless of cost (downstream set algebra is word-parallel on
    /// them); below it the cheaper materialization wins.
    pub fn pick_interval(&self, universe: u32, input_len: usize, output_len: usize) -> Kernel {
        use xpath_xml::NodeSet;
        if output_len as u64 * NodeSet::DENSE_DEN >= universe as u64 * NodeSet::DENSE_NUM {
            return Kernel::BulkDense;
        }
        if self.sparse_cost(input_len, output_len) < self.dense_cost(universe, input_len) {
            Kernel::BulkSparse
        } else {
            Kernel::BulkDense
        }
    }

    /// Pick the pointer-chasing kernel (ancestors / siblings): tiny
    /// inputs walk per node; anything else pays the dense marking pass.
    pub fn pick_chain(&self, universe: u32, input_len: usize) -> Kernel {
        if self.chain_cost(input_len) < self.dense_cost(universe, 0) {
            Kernel::PerNode
        } else {
            Kernel::BulkDense
        }
    }

    /// The input size at which [`CostModel::pick_chain`] switches from
    /// the per-node walk to dense marking, for a given universe.
    pub fn chain_crossover(&self, universe: u32) -> usize {
        let denom = self.chain_ns * self.est_chain_len;
        (self.dense_cost(universe, 0) / denom).ceil() as usize
    }

    /// The output cardinality at which [`CostModel::pick_interval`]
    /// switches from the sparse staircase to the dense kernel (input
    /// terms cancel; capped at the `NodeSet` dense threshold).
    pub fn interval_crossover(&self, universe: u32) -> usize {
        use xpath_xml::NodeSet;
        let by_cost = self.dense_word_ns * (universe as f64 / 64.0) / self.sparse_out_ns;
        let by_repr = (universe as u64 * NodeSet::DENSE_NUM).div_ceil(NodeSet::DENSE_DEN) as usize;
        (by_cost.ceil() as usize).min(by_repr)
    }

    // ----- sharded parallel passes -----

    /// How many shards a pass should run on, at most `max_threads`
    /// (itself clamped to [`MAX_SHARDS`] — a pass never splits further
    /// than that no matter how large a thread budget the caller requests,
    /// which also bounds this search loop). `divisible_ns` is the
    /// estimated pass cost that splits evenly across shards;
    /// `per_shard_ns` is the fixed extra cost each additional shard adds
    /// (its own materialization plus the word-parallel merge at the
    /// join). Returns 1 — the planner *refuses to spawn* — whenever no
    /// shard count beats running the pass serially on the caller's
    /// thread.
    pub fn pick_shards(&self, divisible_ns: f64, per_shard_ns: f64, max_threads: usize) -> usize {
        let mut best = (divisible_ns, 1usize);
        for k in 2..=max_threads.clamp(1, MAX_SHARDS) {
            let extra = (k - 1) as f64;
            let cost = divisible_ns / k as f64 + (self.spawn_ns + per_shard_ns) * extra;
            if cost < best.0 {
                best = (cost, k);
            }
        }
        best.1
    }

    /// Calibrated per-row cost estimate for a bottom-up CVT row pass (one
    /// per-node axis enumeration + predicate filtering per row) — the
    /// chain-walk estimate stands in, as row costs are unknown before the
    /// pass runs.
    pub fn cvt_row_ns(&self) -> f64 {
        self.chain_ns * self.est_chain_len
    }

    /// The row count at which a bottom-up CVT row pass first shards
    /// (2 shards beat serial: the halved work must repay one spawn).
    pub fn row_shard_crossover(&self) -> usize {
        (2.0 * self.spawn_ns / self.cvt_row_ns()).ceil() as usize
    }

    /// The input cardinality at which a set-at-a-time axis pass over
    /// `universe` ids first shards: the halved input scan must repay one
    /// spawn plus one extra dense materialization + merge.
    pub fn axis_shard_crossover(&self, universe: u32) -> usize {
        let words = universe as f64 / 64.0;
        let per_shard = (self.dense_word_ns + self.merge_word_ns) * words;
        (2.0 * (self.spawn_ns + per_shard) / self.input_ns).ceil() as usize
    }

    // ----- batched multi-query evaluation -----

    /// Estimated overhead one memoized step unit adds in lock-step-shared
    /// batch evaluation: a memo probe plus fingerprinting the input set
    /// (bounded by the universe's word count).
    pub fn memo_unit_ns(&self, universe: u32) -> f64 {
        self.memo_probe_ns + self.fingerprint_word_ns * (universe as f64 / 64.0)
    }

    /// Estimated cost of one full axis pass over a `universe`-id document —
    /// what a memo hit in a lock-step-shared batch avoids re-running:
    /// the dense kernel's word sweep **plus** its per-input dispatch scan
    /// (a shared pass walks its whole input set, up to the universe).
    /// Before the vectorized kernels the word term dominated and the
    /// input term was noise; now the sweep is ~3× cheaper and dropping
    /// the input term would price an avoided pass at barely more than
    /// fingerprinting its key, gating off sharing that measures ~7×
    /// faster end to end (`BENCH_axes.json` `batch_eval`).
    pub fn shared_pass_ns(&self, universe: u32) -> f64 {
        self.dense_cost(universe, universe as usize)
    }

    /// Pick how a batch of `queries` compiled spines should evaluate over
    /// a `universe`-id document with a `threads` budget.
    ///
    /// `shared_units` is the number of step/predicate units the batch
    /// duplicates (identical spine prefixes or predicate paths across
    /// queries — each one a whole axis pass a shared memo table skips);
    /// `memo_units` is the total number of units that would pay a memo
    /// probe; `divisible_ns` is the estimated total evaluation work, the
    /// portion per-query sharding splits across workers.
    ///
    /// Each viable mode is costed end to end and the cheapest estimate
    /// wins: lock-step runs the batch's work minus the duplicated passes
    /// plus every unit's probe (viable only when that is a net saving);
    /// the fan-out runs `divisible_ns / k` plus `k − 1` spawns at the
    /// [`CostModel::pick_shards`]-chosen worker count (viable only when
    /// the gate approves a split). With a wide thread budget and thin
    /// sharing, fan-out can beat a net-positive memo; neither viable
    /// means serial — exactly N independent evaluations.
    pub fn pick_batch_mode(
        &self,
        queries: usize,
        shared_units: usize,
        memo_units: usize,
        divisible_ns: f64,
        universe: u32,
        threads: usize,
    ) -> BatchMode {
        if queries <= 1 {
            return BatchMode::Serial;
        }
        let saved = shared_units as f64 * self.shared_pass_ns(universe);
        let overhead = memo_units as f64 * self.memo_unit_ns(universe);
        let lock_step =
            (shared_units > 0 && saved > overhead).then_some(divisible_ns - saved + overhead);
        let sharded = (threads > 1)
            .then(|| self.pick_shards(divisible_ns, 0.0, threads.min(queries)))
            .filter(|&k| k > 1)
            .map(|k| divisible_ns / k as f64 + self.spawn_ns * (k - 1) as f64);
        match (lock_step, sharded) {
            (Some(l), Some(s)) if s < l => BatchMode::PerQuerySharded,
            (Some(_), _) => BatchMode::LockStepShared,
            (None, Some(_)) => BatchMode::PerQuerySharded,
            (None, None) => BatchMode::Serial,
        }
    }

    /// The duplicated-unit fraction at which [`CostModel::pick_batch_mode`]
    /// switches to lock-step sharing for a given universe: sharing pays
    /// once more than this fraction of the batch's step units repeat.
    pub fn batch_share_crossover(&self, universe: u32) -> f64 {
        (self.memo_unit_ns(universe) / self.shared_pass_ns(universe).max(f64::MIN_POSITIVE))
            .min(1.0)
    }

    // ----- lazy cursor evaluation -----

    /// Ids per window the lazy cursor pipeline (`xpath_core::cursor`)
    /// processes between budget checks. One window of per-candidate
    /// filtering is the minimum overhead a lazy evaluation pays before
    /// its first early exit can fire.
    pub const LAZY_BLOCK: u32 = 4096;

    /// Estimated per-candidate cost of the lazy pipeline's block filter:
    /// a pointer-chasing node-test probe plus the amortized share of
    /// per-candidate witness walks. As in [`CostModel::cvt_row_ns`], the
    /// chain-walk constant stands in — both are cache-missing pointer
    /// chases through the node arena.
    pub fn lazy_candidate_ns(&self) -> f64 {
        self.chain_ns
    }

    /// Estimated per-id cost of the materializing path: the name-table
    /// scan plus each id's share of the word-parallel sweeps.
    pub fn materialize_id_ns(&self) -> f64 {
        self.input_ns + self.dense_word_ns / 64.0
    }

    /// The universe size at which a **bounded** lazy take (`first()`,
    /// `exists()`, `take(k)`) starts beating full materialization even
    /// when the take is not a small fraction of the document: one
    /// [`CostModel::LAZY_BLOCK`] of per-candidate filtering versus the
    /// whole document's per-id materialization share.
    pub fn lazy_take_crossover(&self) -> u32 {
        (f64::from(Self::LAZY_BLOCK) * self.lazy_candidate_ns() / self.materialize_id_ns()).ceil()
            as u32
    }

    /// Should a cursor evaluation stream block-wise (`true`) or
    /// materialize once and drain (`false`)? `take_hint` is how many
    /// results the caller intends to pull — `Some(1)` for
    /// `first()`/`exists()`, `None` for an unbounded drain.
    ///
    /// A bounded take streams whenever it asks for a small fraction of
    /// the document (early exit skips most of the per-id work) or the
    /// document is past [`CostModel::lazy_take_crossover`]. An unbounded
    /// drain filters every candidate at [`CostModel::lazy_candidate_ns`]
    /// — more per id than the word-parallel sweeps — so it only streams
    /// on documents large enough that the caller abandoning mid-drain
    /// (the reason to hold a cursor at all) repays the difference.
    pub fn pick_lazy(&self, universe: u32, take_hint: Option<usize>) -> bool {
        match take_hint {
            Some(k) => {
                (k as u64) * 8 <= u64::from(universe) || universe >= self.lazy_take_crossover()
            }
            None => universe >= self.lazy_take_crossover(),
        }
    }
}

/// How a batched evaluation ([`pick_batch_mode`](CostModel::pick_batch_mode))
/// runs its queries.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BatchMode {
    /// All compiled spines advance lock-step per step, deduplicating
    /// identical `(axis, node-test, input-fingerprint)` applications
    /// through a per-evaluation memo table — each distinct axis pass over
    /// the document runs once for the whole batch.
    LockStepShared,
    /// The batch fans out one-query-per-worker across the scoped shard
    /// pool (`parallel::run_sharded`); each worker evaluates its chunk
    /// exactly as an independent evaluation would.
    PerQuerySharded,
    /// N independent evaluations on the caller's thread — the fallback
    /// when neither sharing nor spawning repays its overhead.
    Serial,
}

impl BatchMode {
    /// Stable snake_case name (used in `BENCH_axes.json` and the CLI
    /// batch report).
    pub fn name(self) -> &'static str {
        match self {
            BatchMode::LockStepShared => "lock_step_shared",
            BatchMode::PerQuerySharded => "per_query_sharded",
            BatchMode::Serial => "serial",
        }
    }
}

/// The one-time [`COST_ENV`] read behind [`CostModel::global`] /
/// [`CostModel::env_diagnostics`].
fn global_with_diagnostics() -> &'static (CostModel, Vec<String>) {
    static GLOBAL: OnceLock<(CostModel, Vec<String>)> = OnceLock::new();
    GLOBAL.get_or_init(CostModel::from_env_report)
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::CALIBRATED
    }
}

/// One line describing how the planner treats `axis` on a document of
/// `universe` nodes — the "which kernel and why" surfaced by
/// `xpq --explain`.
pub fn describe(axis: Axis, universe: u32, model: &CostModel) -> String {
    match axis {
        Axis::Descendant | Axis::DescendantOrSelf | Axis::Following | Axis::Preceding => {
            format!(
                "{}: staircase interval join; exact output from O(|S|) pre-pass, \
                 sorted-vec below {} result nodes, word-parallel bitset at or above",
                axis.name(),
                model.interval_crossover(universe)
            )
        }
        Axis::Ancestor | Axis::AncestorOrSelf | Axis::FollowingSibling | Axis::PrecedingSibling => {
            format!(
                "{}: pointer-chain walk; per-node loop for inputs below {} nodes, \
                 dense chain marking at or above",
                axis.name(),
                model.chain_crossover(universe)
            )
        }
        Axis::SelfAxis | Axis::Child | Axis::Parent | Axis::Attribute | Axis::Namespace => {
            format!("{}: link-array walk into a sorted vec (always sparse)", axis.name())
        }
        Axis::Id => format!("{}: ref-relation dereference (always sparse)", axis.name()),
    }
}

/// Thread-safe tally of planner decisions — shared by a
/// [`CompiledQuery`](../../xpath_core/query/struct.CompiledQuery.html)
/// across evaluations and aggregated by the query cache.
#[derive(Debug, Default)]
pub struct KernelCounters {
    per_node: AtomicU64,
    bulk_sparse: AtomicU64,
    bulk_dense: AtomicU64,
    sharded_passes: AtomicU64,
    shards_spawned: AtomicU64,
    memo_hits: AtomicU64,
}

impl KernelCounters {
    /// A zeroed tally.
    pub fn new() -> KernelCounters {
        KernelCounters::default()
    }

    /// Record one axis application that ran on `kernel`. Sharded passes
    /// record each shard's kernel individually (the per-shard planner
    /// decisions merge losslessly) plus one [`KernelCounters::record_sharded`].
    pub fn record(&self, kernel: Kernel) {
        let slot = match kernel {
            Kernel::PerNode => &self.per_node,
            Kernel::BulkSparse => &self.bulk_sparse,
            Kernel::BulkDense => &self.bulk_dense,
        };
        slot.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one pass that the parallel layer split across `shards`
    /// scoped workers.
    pub fn record_sharded(&self, shards: usize) {
        self.sharded_passes.fetch_add(1, Ordering::Relaxed);
        self.shards_spawned.fetch_add(shards as u64, Ordering::Relaxed);
    }

    /// Record one axis application a batched evaluation served from its
    /// shared memo table instead of re-running the pass.
    pub fn record_memo_hit(&self) {
        self.memo_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Merge another tally's counts into this one.
    pub fn merge(&self, counts: KernelCounts) {
        self.per_node.fetch_add(counts.per_node, Ordering::Relaxed);
        self.bulk_sparse.fetch_add(counts.bulk_sparse, Ordering::Relaxed);
        self.bulk_dense.fetch_add(counts.bulk_dense, Ordering::Relaxed);
        self.sharded_passes.fetch_add(counts.sharded_passes, Ordering::Relaxed);
        self.shards_spawned.fetch_add(counts.shards_spawned, Ordering::Relaxed);
        self.memo_hits.fetch_add(counts.memo_hits, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counts.
    pub fn snapshot(&self) -> KernelCounts {
        KernelCounts {
            per_node: self.per_node.load(Ordering::Relaxed),
            bulk_sparse: self.bulk_sparse.load(Ordering::Relaxed),
            bulk_dense: self.bulk_dense.load(Ordering::Relaxed),
            sharded_passes: self.sharded_passes.load(Ordering::Relaxed),
            shards_spawned: self.shards_spawned.load(Ordering::Relaxed),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
        }
    }
}

/// A plain snapshot of [`KernelCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCounts {
    /// Axis applications run on the per-node enumeration loop.
    pub per_node: u64,
    /// Axis applications run on the sparse (sorted-vec) bulk kernels.
    pub bulk_sparse: u64,
    /// Axis applications run on the dense word-parallel kernels.
    pub bulk_dense: u64,
    /// Passes the parallel layer split across scoped worker threads
    /// (each contributing one kernel record per shard above).
    pub sharded_passes: u64,
    /// Total shards those passes spawned.
    pub shards_spawned: u64,
    /// Axis applications a batched evaluation served from its shared memo
    /// table — whole passes that never ran because an identical
    /// `(axis, node-test, input-fingerprint)` application already had.
    pub memo_hits: u64,
}

impl KernelCounts {
    /// Total recorded axis applications (per-shard applications of a
    /// sharded pass each count once).
    pub fn total(&self) -> u64 {
        self.per_node + self.bulk_sparse + self.bulk_dense
    }

    /// Elementwise sum.
    pub fn plus(self, other: KernelCounts) -> KernelCounts {
        KernelCounts {
            per_node: self.per_node + other.per_node,
            bulk_sparse: self.bulk_sparse + other.bulk_sparse,
            bulk_dense: self.bulk_dense + other.bulk_dense,
            sharded_passes: self.sharded_passes + other.sharded_passes,
            shards_spawned: self.shards_spawned + other.shards_spawned,
            memo_hits: self.memo_hits + other.memo_hits,
        }
    }
}

impl std::fmt::Display for KernelCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} per-node, {} bulk-sparse, {} bulk-dense",
            self.per_node, self.bulk_sparse, self.bulk_dense
        )?;
        if self.sharded_passes > 0 {
            write!(f, "; {} sharded passes ({} shards)", self.sharded_passes, self.shards_spawned)?;
        }
        if self.memo_hits > 0 {
            write!(f, "; {} memo-shared", self.memo_hits)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overrides_parse_strictly_and_report_rejects() {
        let mut m = CostModel::CALIBRATED;
        let rejected =
            m.apply_overrides("dense_word_ns=5.5, chain_ns = 9 ,bogus=1,input_ns=oops,junk,");
        assert_eq!(m.dense_word_ns, 5.5);
        assert_eq!(m.chain_ns, 9.0);
        assert_eq!(m.input_ns, CostModel::CALIBRATED.input_ns, "bad value keeps default");
        // Every malformed entry is reported — nothing is dropped silently
        // (the trailing comma's empty segment is not an entry).
        assert_eq!(rejected.len(), 3, "{rejected:?}");
        assert!(rejected.iter().any(|r| r.contains("\"bogus\"")), "{rejected:?}");
        assert!(rejected.iter().any(|r| r.contains("\"oops\"")), "{rejected:?}");
        assert!(rejected.iter().any(|r| r.contains("key=value")), "{rejected:?}");
        // Non-positive and non-finite values are rejected with a report.
        let rejected = m.apply_overrides("sparse_out_ns=-1,est_chain_len=inf");
        assert_eq!(m.sparse_out_ns, CostModel::CALIBRATED.sparse_out_ns);
        assert_eq!(m.est_chain_len, CostModel::CALIBRATED.est_chain_len);
        assert_eq!(rejected.len(), 2, "{rejected:?}");
        // The spawn/merge constants are overridable like the rest.
        let rejected = m.apply_overrides("spawn_ns=100,merge_word_ns=0.5");
        assert!(rejected.is_empty(), "{rejected:?}");
        assert_eq!((m.spawn_ns, m.merge_word_ns), (100.0, 0.5));
    }

    #[test]
    fn interval_pick_follows_output_density() {
        let m = CostModel::CALIBRATED;
        let n = 21846;
        // Tiny output on a big universe: sparse staircase.
        assert_eq!(m.pick_interval(n, 79, 300), Kernel::BulkSparse);
        // Output at the NodeSet dense threshold: dense regardless of cost.
        assert_eq!(m.pick_interval(n, 79, (n / 16) as usize), Kernel::BulkDense);
        // Near-full output: dense.
        assert_eq!(m.pick_interval(n, 5000, n as usize - 1), Kernel::BulkDense);
        // Degenerate universe: a handful of words, sparse never pays.
        assert_eq!(m.pick_interval(64, 1, 0), Kernel::BulkSparse);
    }

    #[test]
    fn chain_pick_follows_input_size() {
        let m = CostModel::CALIBRATED;
        let n = 21846;
        assert_eq!(m.pick_chain(n, 1), Kernel::PerNode);
        assert_eq!(m.pick_chain(n, 500), Kernel::BulkDense);
        let cross = m.chain_crossover(n);
        assert!(cross > 1 && cross < 500, "crossover in a sane band, got {cross}");
        assert_eq!(m.pick_chain(n, cross - 1), Kernel::PerNode);
        assert_eq!(m.pick_chain(n, cross), Kernel::BulkDense);
    }

    #[test]
    fn crossovers_scale_with_document_size() {
        let m = CostModel::CALIBRATED;
        assert!(m.interval_crossover(1 << 20) > m.interval_crossover(1 << 12));
        assert!(m.chain_crossover(1 << 20) > m.chain_crossover(1 << 12));
    }

    #[test]
    fn counters_tally_and_merge() {
        let c = KernelCounters::new();
        c.record(Kernel::PerNode);
        c.record(Kernel::BulkDense);
        c.record(Kernel::BulkDense);
        let s = c.snapshot();
        assert_eq!((s.per_node, s.bulk_sparse, s.bulk_dense), (1, 0, 2));
        assert_eq!(s.total(), 3);
        c.merge(s);
        assert_eq!(c.snapshot().total(), 6);
        assert_eq!(s.plus(s).bulk_dense, 4);
        assert!(s.to_string().contains("per-node"));
    }

    #[test]
    fn sharded_passes_tally_losslessly() {
        let c = KernelCounters::new();
        // One pass sharded 4 ways: four per-shard kernel records plus the
        // shard provenance.
        c.record_sharded(4);
        for _ in 0..4 {
            c.record(Kernel::BulkDense);
        }
        let s = c.snapshot();
        assert_eq!((s.sharded_passes, s.shards_spawned, s.bulk_dense), (1, 4, 4));
        c.merge(s);
        let doubled = c.snapshot();
        assert_eq!((doubled.sharded_passes, doubled.shards_spawned), (2, 8));
        assert!(s.to_string().contains("1 sharded passes (4 shards)"), "{s}");
        // Serial tallies don't mention sharding at all.
        assert!(!KernelCounts::default().to_string().contains("sharded"));
    }

    #[test]
    fn pick_shards_gates_on_spawn_cost() {
        let m = CostModel::CALIBRATED;
        // A pass far below the spawn cost stays serial.
        assert_eq!(m.pick_shards(1_000.0, 0.0, 8), 1);
        // A pass worth many spawns splits, but never past the budget.
        assert!(m.pick_shards(100.0 * m.spawn_ns, 0.0, 4) > 1);
        assert!(m.pick_shards(1e12, 0.0, 4) <= 4);
        // A budget of one thread always refuses.
        assert_eq!(m.pick_shards(1e12, 0.0, 1), 1);
        // Per-shard merge cost pushes the crossover up.
        let cheap = m.pick_shards(4.0 * m.spawn_ns, 0.0, 4);
        let costly = m.pick_shards(4.0 * m.spawn_ns, 10.0 * m.spawn_ns, 4);
        assert!(costly <= cheap);
        // Forcing spawn/merge free makes sharding always win (the
        // always-shard model the differential suite uses).
        let free = CostModel { spawn_ns: 1e-9, merge_word_ns: 1e-9, ..m };
        assert_eq!(free.pick_shards(1.0, 0.0, 8), 8);
        // An absurd budget is clamped, not searched: the pick stays at
        // MAX_SHARDS and returns immediately.
        assert_eq!(free.pick_shards(1e18, 0.0, usize::MAX), MAX_SHARDS);
    }

    #[test]
    fn shard_crossovers_are_consistent_with_pick() {
        let m = CostModel::CALIBRATED;
        let rows = m.row_shard_crossover();
        assert!(rows > 0);
        assert_eq!(m.pick_shards((rows - 1) as f64 * m.cvt_row_ns(), 0.0, 2), 1);
        assert!(m.pick_shards((rows + 1) as f64 * m.cvt_row_ns(), 0.0, 2) > 1);
        let n = 1 << 20;
        let inputs = m.axis_shard_crossover(n);
        let words = n as f64 / 64.0;
        let per_shard = (m.dense_word_ns + m.merge_word_ns) * words;
        assert_eq!(m.pick_shards((inputs - 1) as f64 * m.input_ns, per_shard, 2), 1);
        assert!(m.pick_shards((inputs + 1) as f64 * m.input_ns, per_shard, 2) > 1);
        // Bigger universes merge more words, so the axis crossover grows.
        assert!(m.axis_shard_crossover(1 << 22) > m.axis_shard_crossover(1 << 16));
    }

    #[test]
    fn batch_mode_pick_follows_sharing_and_threads() {
        let m = CostModel::CALIBRATED;
        let n = 1 << 20;
        let pass = m.shared_pass_ns(n);
        // A single query is always serial, whatever else is true.
        assert_eq!(m.pick_batch_mode(1, 100, 100, 1e12, n, 8), BatchMode::Serial);
        // Heavy sharing: half the units repeat → lock-step wins.
        assert_eq!(m.pick_batch_mode(16, 48, 96, 96.0 * pass, n, 1), BatchMode::LockStepShared);
        // No sharing + one thread → serial.
        assert_eq!(m.pick_batch_mode(16, 0, 96, 96.0 * pass, n, 1), BatchMode::Serial);
        // No sharing + wide budget + work worth many spawns → sharded.
        assert_eq!(
            m.pick_batch_mode(16, 0, 96, 100.0 * m.spawn_ns, n, 4),
            BatchMode::PerQuerySharded
        );
        // No sharing + wide budget but tiny work → serial (spawn gate).
        assert_eq!(m.pick_batch_mode(16, 0, 16, 1_000.0, n, 4), BatchMode::Serial);
        // Thin sharing (net-positive, but small) on a wide budget: the
        // fan-out's estimated time beats lock-step and wins; the same
        // batch on one thread keeps lock-step.
        assert_eq!(m.pick_batch_mode(16, 20, 96, 96.0 * pass, n, 8), BatchMode::PerQuerySharded);
        assert_eq!(m.pick_batch_mode(16, 20, 96, 96.0 * pass, n, 1), BatchMode::LockStepShared);
        // Heavy sharing can still beat the fan-out when nearly everything
        // repeats and the remaining work is below the spawn repayment.
        let small = 1u32 << 14;
        let small_pass = m.shared_pass_ns(small);
        assert_eq!(
            m.pick_batch_mode(16, 95, 96, 96.0 * small_pass, small, 8),
            BatchMode::LockStepShared
        );
        // The crossover fraction is consistent with the pick: sharing just
        // above it flips to lock-step, just below it does not.
        let frac = m.batch_share_crossover(n);
        assert!(frac > 0.0 && frac < 1.0, "crossover fraction in (0,1), got {frac}");
        let units = 1000usize;
        let above = (frac * units as f64 * 1.1).ceil() as usize;
        let below = (frac * units as f64 * 0.9).floor() as usize;
        assert_eq!(m.pick_batch_mode(8, above, units, 0.0, n, 1), BatchMode::LockStepShared);
        assert_eq!(m.pick_batch_mode(8, below, units, 0.0, n, 1), BatchMode::Serial);
        // Forcing probes free makes any sharing win; forcing them absurd
        // never shares (the overrides the differential suite pins modes
        // with).
        let free = CostModel { memo_probe_ns: 1e-9, fingerprint_word_ns: 1e-9, ..m };
        assert_eq!(free.pick_batch_mode(2, 1, 1000, 0.0, n, 1), BatchMode::LockStepShared);
        let never = CostModel { memo_probe_ns: 1e12, ..m };
        assert_eq!(never.pick_batch_mode(16, 95, 96, 1_000.0, n, 1), BatchMode::Serial);
        // The new constants parse from GKP_AXIS_COST like the rest.
        let mut o = CostModel::CALIBRATED;
        let rejected = o.apply_overrides("memo_probe_ns=7,fingerprint_word_ns=0.2");
        assert!(rejected.is_empty(), "{rejected:?}");
        assert_eq!((o.memo_probe_ns, o.fingerprint_word_ns), (7.0, 0.2));
        assert_eq!(BatchMode::LockStepShared.name(), "lock_step_shared");
    }

    #[test]
    fn lazy_pick_follows_take_hint_and_crossover() {
        let m = CostModel::CALIBRATED;
        let cross = m.lazy_take_crossover();
        assert!(cross > CostModel::LAZY_BLOCK, "one block must cost more than its own ids");
        // first()/exists() stream on anything but trivially small docs:
        // pulling 1 of ≥8 candidates skips most of the per-id work.
        assert!(m.pick_lazy(64, Some(1)));
        assert!(m.pick_lazy(349_526, Some(1)));
        assert!(!m.pick_lazy(4, Some(1)), "a 4-node doc materializes in one gulp");
        // A bounded take that covers most of a small doc materializes;
        // past the crossover even full-width takes stream.
        assert!(!m.pick_lazy(100, Some(50)));
        assert!(m.pick_lazy(cross, Some(cross as usize)));
        // Unbounded drains materialize below the crossover and stream
        // above it.
        assert!(!m.pick_lazy(cross - 1, None));
        assert!(m.pick_lazy(cross, None));
    }

    #[test]
    fn memo_hits_tally_and_display() {
        let c = KernelCounters::new();
        c.record(Kernel::BulkDense);
        c.record_memo_hit();
        c.record_memo_hit();
        let s = c.snapshot();
        assert_eq!((s.total(), s.memo_hits), (1, 2), "memo hits are avoided passes, not runs");
        assert!(s.to_string().contains("2 memo-shared"), "{s}");
        c.merge(s);
        assert_eq!(c.snapshot().memo_hits, 4);
        assert_eq!(s.plus(s).memo_hits, 4);
        assert!(!KernelCounts::default().to_string().contains("memo"));
    }

    #[test]
    fn describe_names_the_kernel_and_the_crossover() {
        let m = CostModel::CALIBRATED;
        let d = describe(Axis::Descendant, 21846, &m);
        assert!(d.contains("staircase") && d.contains(&m.interval_crossover(21846).to_string()));
        let a = describe(Axis::Ancestor, 21846, &m);
        assert!(a.contains("per-node") && a.contains(&m.chain_crossover(21846).to_string()));
        assert!(describe(Axis::Child, 100, &m).contains("sorted vec"));
    }
}
