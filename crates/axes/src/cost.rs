//! Calibrated cost model for **adaptive axis-kernel selection**.
//!
//! `BENCH_axes.json` showed that no single axis kernel wins everywhere:
//! the set-at-a-time word-parallel kernels of [`crate::bulk`] beat the
//! per-node loops by up to ~9×10⁵× on dense interval axes, but on very
//! sparse inputs the fixed cost of materializing a dense bitset over the
//! whole id space (`O(|dom|/64)` words to allocate, fill, type-strip and
//! re-adapt) loses to simply writing the few result ids into a sorted
//! vector. This module makes the pick *cost-based* instead of hard-wired,
//! in the spirit of cost-based XPath operator selection (Gottlob, Orsi &
//! Pieris's rewriting-and-optimization line of work): estimate the cost of
//! each applicable kernel from **input density × axis shape × document
//! size** and run the cheapest.
//!
//! # The model
//!
//! Three kernel classes exist per axis application (see [`Kernel`]):
//!
//! * **per-node** — the `fast::axis_from` enumeration loop per input node,
//!   merged at the end; cost ≈ `chain_ns · |S| · est_chain_len`
//!   (pointer-chasing axes only: ancestors, siblings);
//! * **bulk-sparse** — the set-at-a-time staircase walk writing its
//!   (disjoint, ascending) ranges straight into a sorted vector; cost ≈
//!   `input_ns · |S| + sparse_out_ns · |output|`;
//! * **bulk-dense** — the word-parallel bitset kernel; cost ≈
//!   `input_ns · |S| + dense_word_ns · ⌈|dom|/64⌉` (the word term covers
//!   allocation, range fills, the §4 type strip and the final adapt scan).
//!
//! For the interval axes (`descendant`, `following`, `preceding`) the
//! planner does not need to *guess* the output size: a `O(|S|)` staircase
//! pre-pass computes the exact output cardinality before any
//! materialization, so the sparse-vs-dense choice is made on exact data.
//! For the pointer-chasing axes the chain lengths are unknown until
//! walked, so the calibrated `est_chain_len` stands in.
//!
//! # Calibration
//!
//! The default constants ([`CostModel::CALIBRATED`]) were measured by
//! `bench_axes --calibrate` on the reference 21846-node balanced document
//! (see `crates/bench/src/bin/bench_axes.rs`) and baked in. They are
//! deliberately coarse — the planner only needs the *crossovers* right,
//! and those sit an order of magnitude apart. Deployments on very
//! different hardware can re-run `bench_axes --calibrate` and override at
//! runtime via the [`COST_ENV`] environment variable
//! (`GKP_AXIS_COST=dense_word_ns=2.2,sparse_out_ns=1.1,…`); unknown or
//! malformed entries are ignored, keys not mentioned keep their defaults.
//! [`CostModel::global`] reads the variable once per process.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use xpath_syntax::Axis;

/// Environment variable overriding the calibrated constants at runtime:
/// a comma-separated `key=value` list over the [`CostModel`] field names,
/// e.g. `GKP_AXIS_COST=dense_word_ns=2.2,chain_ns=4.0`.
pub const COST_ENV: &str = "GKP_AXIS_COST";

/// Which kernel the planner picked for one axis application.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Kernel {
    /// Per-node `axis_from` enumeration, merged into a sorted vector.
    PerNode,
    /// Set-at-a-time staircase/pointer walk writing a sorted vector.
    BulkSparse,
    /// Set-at-a-time word-parallel kernel over a dense bitset.
    BulkDense,
}

impl Kernel {
    /// Stable snake_case name (used in `BENCH_axes.json` provenance and
    /// the CLI planner report).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::PerNode => "per_node",
            Kernel::BulkSparse => "bulk_sparse",
            Kernel::BulkDense => "bulk_dense",
        }
    }
}

/// Calibrated per-operation costs, in nanoseconds. See the
/// [module docs](self) for the model each constant feeds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Cost per bitset word touched by the dense kernels, covering
    /// allocation + fill + type strip + adapt scan (~3 passes).
    pub dense_word_ns: f64,
    /// Cost per output node written on the sparse vector paths.
    pub sparse_out_ns: f64,
    /// Cost per input node of the staircase / dispatch walk.
    pub input_ns: f64,
    /// Cost per link of a per-node pointer-chain walk (incl. the final
    /// sort+dedup merge amortized per element).
    pub chain_ns: f64,
    /// Assumed average chain length (tree depth / sibling-run length)
    /// when the real lengths are unknown before walking.
    pub est_chain_len: f64,
}

impl CostModel {
    /// Constants measured by `bench_axes --calibrate` (balanced 4-ary
    /// depth-7 document, 21846 nodes, x86-64; 2026-07 pass).
    pub const CALIBRATED: CostModel = CostModel {
        dense_word_ns: 2.6,
        sparse_out_ns: 1.4,
        input_ns: 0.7,
        chain_ns: 7.0,
        est_chain_len: 12.0,
    };

    /// [`CostModel::CALIBRATED`] with any [`COST_ENV`] overrides applied.
    pub fn from_env() -> CostModel {
        let mut m = CostModel::CALIBRATED;
        if let Ok(spec) = std::env::var(COST_ENV) {
            m.apply_overrides(&spec);
        }
        m
    }

    /// Apply a `key=value,key=value` override spec in place. Unknown keys
    /// and unparsable values are ignored (the calibrated default stands).
    pub fn apply_overrides(&mut self, spec: &str) {
        for part in spec.split(',') {
            let Some((key, value)) = part.split_once('=') else { continue };
            let Ok(v) = value.trim().parse::<f64>() else { continue };
            if !v.is_finite() || v <= 0.0 {
                continue;
            }
            match key.trim() {
                "dense_word_ns" => self.dense_word_ns = v,
                "sparse_out_ns" => self.sparse_out_ns = v,
                "input_ns" => self.input_ns = v,
                "chain_ns" => self.chain_ns = v,
                "est_chain_len" => self.est_chain_len = v,
                _ => {}
            }
        }
    }

    /// The process-wide model: [`CostModel::from_env`] computed once.
    pub fn global() -> &'static CostModel {
        static GLOBAL: OnceLock<CostModel> = OnceLock::new();
        GLOBAL.get_or_init(CostModel::from_env)
    }

    /// Estimated cost of a dense word-parallel materialization over
    /// `universe` ids with `input_len` staircase inputs.
    pub fn dense_cost(&self, universe: u32, input_len: usize) -> f64 {
        self.dense_word_ns * (universe as f64 / 64.0) + self.input_ns * input_len as f64
    }

    /// Estimated cost of the sparse staircase writing `output_len` ids.
    pub fn sparse_cost(&self, input_len: usize, output_len: usize) -> f64 {
        self.input_ns * input_len as f64 + self.sparse_out_ns * output_len as f64
    }

    /// Estimated cost of the per-node chain walk over `input_len` nodes.
    pub fn chain_cost(&self, input_len: usize) -> f64 {
        self.chain_ns * input_len as f64 * self.est_chain_len
    }

    /// Pick the interval-axis kernel given the **exact** output
    /// cardinality from the staircase pre-pass. Outputs at or above the
    /// [`NodeSet`](xpath_xml::NodeSet) dense threshold stay dense
    /// regardless of cost (downstream set algebra is word-parallel on
    /// them); below it the cheaper materialization wins.
    pub fn pick_interval(&self, universe: u32, input_len: usize, output_len: usize) -> Kernel {
        use xpath_xml::NodeSet;
        if output_len as u64 * NodeSet::DENSE_DEN >= universe as u64 * NodeSet::DENSE_NUM {
            return Kernel::BulkDense;
        }
        if self.sparse_cost(input_len, output_len) < self.dense_cost(universe, input_len) {
            Kernel::BulkSparse
        } else {
            Kernel::BulkDense
        }
    }

    /// Pick the pointer-chasing kernel (ancestors / siblings): tiny
    /// inputs walk per node; anything else pays the dense marking pass.
    pub fn pick_chain(&self, universe: u32, input_len: usize) -> Kernel {
        if self.chain_cost(input_len) < self.dense_cost(universe, 0) {
            Kernel::PerNode
        } else {
            Kernel::BulkDense
        }
    }

    /// The input size at which [`CostModel::pick_chain`] switches from
    /// the per-node walk to dense marking, for a given universe.
    pub fn chain_crossover(&self, universe: u32) -> usize {
        let denom = self.chain_ns * self.est_chain_len;
        (self.dense_cost(universe, 0) / denom).ceil() as usize
    }

    /// The output cardinality at which [`CostModel::pick_interval`]
    /// switches from the sparse staircase to the dense kernel (input
    /// terms cancel; capped at the `NodeSet` dense threshold).
    pub fn interval_crossover(&self, universe: u32) -> usize {
        use xpath_xml::NodeSet;
        let by_cost = self.dense_word_ns * (universe as f64 / 64.0) / self.sparse_out_ns;
        let by_repr = (universe as u64 * NodeSet::DENSE_NUM).div_ceil(NodeSet::DENSE_DEN) as usize;
        (by_cost.ceil() as usize).min(by_repr)
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::CALIBRATED
    }
}

/// One line describing how the planner treats `axis` on a document of
/// `universe` nodes — the "which kernel and why" surfaced by
/// `xpq --explain`.
pub fn describe(axis: Axis, universe: u32, model: &CostModel) -> String {
    match axis {
        Axis::Descendant | Axis::DescendantOrSelf | Axis::Following | Axis::Preceding => {
            format!(
                "{}: staircase interval join; exact output from O(|S|) pre-pass, \
                 sorted-vec below {} result nodes, word-parallel bitset at or above",
                axis.name(),
                model.interval_crossover(universe)
            )
        }
        Axis::Ancestor | Axis::AncestorOrSelf | Axis::FollowingSibling | Axis::PrecedingSibling => {
            format!(
                "{}: pointer-chain walk; per-node loop for inputs below {} nodes, \
                 dense chain marking at or above",
                axis.name(),
                model.chain_crossover(universe)
            )
        }
        Axis::SelfAxis | Axis::Child | Axis::Parent | Axis::Attribute | Axis::Namespace => {
            format!("{}: link-array walk into a sorted vec (always sparse)", axis.name())
        }
        Axis::Id => format!("{}: ref-relation dereference (always sparse)", axis.name()),
    }
}

/// Thread-safe tally of planner decisions — shared by a
/// [`CompiledQuery`](../../xpath_core/query/struct.CompiledQuery.html)
/// across evaluations and aggregated by the query cache.
#[derive(Debug, Default)]
pub struct KernelCounters {
    per_node: AtomicU64,
    bulk_sparse: AtomicU64,
    bulk_dense: AtomicU64,
}

impl KernelCounters {
    /// A zeroed tally.
    pub fn new() -> KernelCounters {
        KernelCounters::default()
    }

    /// Record one axis application that ran on `kernel`.
    pub fn record(&self, kernel: Kernel) {
        let slot = match kernel {
            Kernel::PerNode => &self.per_node,
            Kernel::BulkSparse => &self.bulk_sparse,
            Kernel::BulkDense => &self.bulk_dense,
        };
        slot.fetch_add(1, Ordering::Relaxed);
    }

    /// Merge another tally's counts into this one.
    pub fn merge(&self, counts: KernelCounts) {
        self.per_node.fetch_add(counts.per_node, Ordering::Relaxed);
        self.bulk_sparse.fetch_add(counts.bulk_sparse, Ordering::Relaxed);
        self.bulk_dense.fetch_add(counts.bulk_dense, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counts.
    pub fn snapshot(&self) -> KernelCounts {
        KernelCounts {
            per_node: self.per_node.load(Ordering::Relaxed),
            bulk_sparse: self.bulk_sparse.load(Ordering::Relaxed),
            bulk_dense: self.bulk_dense.load(Ordering::Relaxed),
        }
    }
}

/// A plain snapshot of [`KernelCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelCounts {
    /// Axis applications run on the per-node enumeration loop.
    pub per_node: u64,
    /// Axis applications run on the sparse (sorted-vec) bulk kernels.
    pub bulk_sparse: u64,
    /// Axis applications run on the dense word-parallel kernels.
    pub bulk_dense: u64,
}

impl KernelCounts {
    /// Total recorded axis applications.
    pub fn total(&self) -> u64 {
        self.per_node + self.bulk_sparse + self.bulk_dense
    }

    /// Elementwise sum.
    pub fn plus(self, other: KernelCounts) -> KernelCounts {
        KernelCounts {
            per_node: self.per_node + other.per_node,
            bulk_sparse: self.bulk_sparse + other.bulk_sparse,
            bulk_dense: self.bulk_dense + other.bulk_dense,
        }
    }
}

impl std::fmt::Display for KernelCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} per-node, {} bulk-sparse, {} bulk-dense",
            self.per_node, self.bulk_sparse, self.bulk_dense
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overrides_parse_and_ignore_garbage() {
        let mut m = CostModel::CALIBRATED;
        m.apply_overrides("dense_word_ns=5.5, chain_ns = 9 ,bogus=1,input_ns=oops,junk");
        assert_eq!(m.dense_word_ns, 5.5);
        assert_eq!(m.chain_ns, 9.0);
        assert_eq!(m.input_ns, CostModel::CALIBRATED.input_ns, "bad value ignored");
        // Non-positive and non-finite values are rejected.
        m.apply_overrides("sparse_out_ns=-1,est_chain_len=inf");
        assert_eq!(m.sparse_out_ns, CostModel::CALIBRATED.sparse_out_ns);
        assert_eq!(m.est_chain_len, CostModel::CALIBRATED.est_chain_len);
    }

    #[test]
    fn interval_pick_follows_output_density() {
        let m = CostModel::CALIBRATED;
        let n = 21846;
        // Tiny output on a big universe: sparse staircase.
        assert_eq!(m.pick_interval(n, 79, 300), Kernel::BulkSparse);
        // Output at the NodeSet dense threshold: dense regardless of cost.
        assert_eq!(m.pick_interval(n, 79, (n / 16) as usize), Kernel::BulkDense);
        // Near-full output: dense.
        assert_eq!(m.pick_interval(n, 5000, n as usize - 1), Kernel::BulkDense);
        // Degenerate universe: a handful of words, sparse never pays.
        assert_eq!(m.pick_interval(64, 1, 0), Kernel::BulkSparse);
    }

    #[test]
    fn chain_pick_follows_input_size() {
        let m = CostModel::CALIBRATED;
        let n = 21846;
        assert_eq!(m.pick_chain(n, 1), Kernel::PerNode);
        assert_eq!(m.pick_chain(n, 500), Kernel::BulkDense);
        let cross = m.chain_crossover(n);
        assert!(cross > 1 && cross < 500, "crossover in a sane band, got {cross}");
        assert_eq!(m.pick_chain(n, cross - 1), Kernel::PerNode);
        assert_eq!(m.pick_chain(n, cross), Kernel::BulkDense);
    }

    #[test]
    fn crossovers_scale_with_document_size() {
        let m = CostModel::CALIBRATED;
        assert!(m.interval_crossover(1 << 20) > m.interval_crossover(1 << 12));
        assert!(m.chain_crossover(1 << 20) > m.chain_crossover(1 << 12));
    }

    #[test]
    fn counters_tally_and_merge() {
        let c = KernelCounters::new();
        c.record(Kernel::PerNode);
        c.record(Kernel::BulkDense);
        c.record(Kernel::BulkDense);
        let s = c.snapshot();
        assert_eq!((s.per_node, s.bulk_sparse, s.bulk_dense), (1, 0, 2));
        assert_eq!(s.total(), 3);
        c.merge(s);
        assert_eq!(c.snapshot().total(), 6);
        assert_eq!(s.plus(s).bulk_dense, 4);
        assert!(s.to_string().contains("per-node"));
    }

    #[test]
    fn describe_names_the_kernel_and_the_crossover() {
        let m = CostModel::CALIBRATED;
        let d = describe(Axis::Descendant, 21846, &m);
        assert!(d.contains("staircase") && d.contains(&m.interval_crossover(21846).to_string()));
        let a = describe(Axis::Ancestor, 21846, &m);
        assert!(a.contains("per-node") && a.contains(&m.chain_crossover(21846).to_string()));
        assert!(describe(Axis::Child, 100, &m).contains("sorted vec"));
    }
}
