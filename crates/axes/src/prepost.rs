//! Pre/post-plane axis evaluation and structural joins.
//!
//! §3 of the paper remarks that "special algorithms for evaluating axes that
//! work more efficiently in practice have been proposed in the context of
//! structural joins (see e.g. [Al-Khalifa et al. 2002; Bruno et al. 2002])
//! and XML-frontends for relational database management systems [Grust
//! et al. 2004]", and that the axis-evaluation technique used by the CVT
//! algorithms is interchangeable. This module implements those two cited
//! techniques as a third interchangeable backend:
//!
//! * [`PrePostPlane`] — the pre/post-order *plane* encoding of Grust et al.
//!   Each node is a point `(pre, post)`; the four major axes are the four
//!   quadrants around the context node, and the remaining axes are derived
//!   windows (parent/level refinements). Windows are evaluated as range
//!   scans over the pre-sorted node table.
//! * [`stack_tree_join`] — the *Stack-Tree-Desc* structural merge join of
//!   Al-Khalifa et al.: given a candidate ancestor list and a candidate
//!   descendant list (both in document order), emit all ancestor/descendant
//!   pairs in `O(|A| + |D| + |output|)` time.
//!
//! Property tests (in the crate-level proptests and this module) assert that the
//! plane backend agrees with both the direct implementation
//! ([`crate::fast`]) and the Algorithm 3.2 reference ([`crate::typed`]) on
//! random documents, so the three backends are interchangeable in the sense
//! the paper requires.

use xpath_syntax::Axis;
use xpath_xml::{Document, NodeId, NodeKind};

/// The pre/post-order plane index of Grust et al. 2004.
///
/// `pre` ranks are the arena ids themselves (the builder emits nodes in
/// document order), so the index only materializes the `post` ranks and the
/// node levels. Construction is a single `O(|dom|)` traversal.
#[derive(Debug)]
pub struct PrePostPlane {
    /// `post[n]` — postorder rank of node `n` (0-based).
    post: Vec<u32>,
    /// `level[n]` — depth of node `n` (root has level 0).
    level: Vec<u32>,
}

impl PrePostPlane {
    /// Build the plane for a document in `O(|dom|)`.
    pub fn new(doc: &Document) -> PrePostPlane {
        let n = doc.len();
        let mut post = vec![0u32; n];
        let mut level = vec![0u32; n];
        let mut next_post = 0u32;
        // Iterative post-order traversal over firstchild/nextsibling.
        // State: (node, children_done).
        let mut stack: Vec<(NodeId, bool)> = vec![(doc.root(), false)];
        while let Some((node, done)) = stack.pop() {
            if done {
                post[node.index()] = next_post;
                next_post += 1;
            } else {
                stack.push((node, true));
                if let Some(p) = doc.parent(node) {
                    level[node.index()] = level[p.index()] + 1;
                }
                // Children pushed in reverse so the first child is visited
                // first (stack order).
                let kids: Vec<NodeId> = doc.children(node).collect();
                for k in kids.into_iter().rev() {
                    stack.push((k, false));
                }
            }
        }
        debug_assert_eq!(next_post as usize, n);
        PrePostPlane { post, level }
    }

    /// The preorder rank of `n` (identical to the arena id).
    #[inline]
    pub fn pre(&self, n: NodeId) -> u32 {
        n.0
    }

    /// The postorder rank of `n`.
    #[inline]
    pub fn post(&self, n: NodeId) -> u32 {
        self.post[n.index()]
    }

    /// The level (depth) of `n`; the root has level 0.
    #[inline]
    pub fn level(&self, n: NodeId) -> u32 {
        self.level[n.index()]
    }

    /// Plane test: is `a` a strict ancestor of `d`?
    ///
    /// In the plane, ancestors of `d` occupy the upper-left quadrant:
    /// `pre(a) < pre(d) ∧ post(a) > post(d)`.
    #[inline]
    pub fn is_ancestor(&self, a: NodeId, d: NodeId) -> bool {
        a.0 < d.0 && self.post(a) > self.post(d)
    }

    /// Plane test: is `y` in `following(x)` (lower-right quadrant,
    /// `pre(y) > pre(x) ∧ post(y) > post(x)`)? Untyped — the caller applies
    /// the §4 attribute/namespace filtering.
    #[inline]
    pub fn is_following(&self, x: NodeId, y: NodeId) -> bool {
        y.0 > x.0 && self.post(y) > self.post(x)
    }

    /// Typed per-node window: all `y` with `x χ y` in document order, with
    /// the §4 node-type filtering applied. Semantically identical to
    /// [`crate::fast::axis_from`]; evaluated by quadrant scans over the
    /// pre-sorted arena rather than by link chasing.
    pub fn window(&self, doc: &Document, axis: Axis, x: NodeId) -> Vec<NodeId> {
        let n = doc.len() as u32;
        let keep = |y: NodeId| !doc.kind(y).is_special_child();
        let mut out = Vec::new();
        match axis {
            Axis::SelfAxis => {
                if keep(x) {
                    out.push(x);
                }
            }
            Axis::Descendant => {
                // Lower-left quadrant of x: pre > pre(x), post < post(x).
                out.extend(
                    ((x.0 + 1)..n)
                        .map(NodeId)
                        .take_while(|&y| self.post(y) < self.post(x))
                        .filter(|&y| keep(y)),
                );
                // take_while is sound: descendants of x form the contiguous
                // pre range (pre(x), pre(x) + #desc], and the first
                // non-descendant in pre order has post > post(x).
            }
            Axis::DescendantOrSelf => {
                if keep(x) {
                    out.push(x);
                }
                out.extend(self.window(doc, Axis::Descendant, x));
            }
            Axis::Ancestor => {
                // Upper-left quadrant: pre < pre(x), post > post(x). There
                // are exactly level(x) such nodes; a full scan keeps the
                // backend honest to the plane formulation (range scan with
                // quadrant predicate).
                out.extend(
                    (0..x.0).map(NodeId).filter(|&y| self.post(y) > self.post(x) && keep(y)),
                );
            }
            Axis::AncestorOrSelf => {
                out.extend(
                    (0..x.0).map(NodeId).filter(|&y| self.post(y) > self.post(x) && keep(y)),
                );
                if keep(x) {
                    out.push(x);
                }
            }
            Axis::Following => {
                // Lower-right quadrant: pre > pre(x), post > post(x).
                out.extend(
                    ((x.0 + 1)..n).map(NodeId).filter(|&y| self.post(y) > self.post(x) && keep(y)),
                );
            }
            Axis::Preceding => {
                // Upper-left quadrant minus ancestors: pre < pre(x), post < post(x).
                out.extend(
                    (0..x.0).map(NodeId).filter(|&y| self.post(y) < self.post(x) && keep(y)),
                );
            }
            Axis::Child => {
                // Descendant window refined by level(y) = level(x) + 1.
                let want = self.level(x) + 1;
                out.extend(
                    ((x.0 + 1)..n)
                        .map(NodeId)
                        .take_while(|&y| self.post(y) < self.post(x))
                        .filter(|&y| self.level(y) == want && keep(y)),
                );
            }
            Axis::Attribute => {
                let want = self.level(x) + 1;
                out.extend(
                    ((x.0 + 1)..n)
                        .map(NodeId)
                        .take_while(|&y| self.post(y) < self.post(x))
                        .filter(|&y| self.level(y) == want && doc.kind(y) == NodeKind::Attribute),
                );
            }
            Axis::Namespace => {
                let want = self.level(x) + 1;
                out.extend(
                    ((x.0 + 1)..n)
                        .map(NodeId)
                        .take_while(|&y| self.post(y) < self.post(x))
                        .filter(|&y| self.level(y) == want && doc.kind(y) == NodeKind::Namespace),
                );
            }
            Axis::Parent => {
                // Ancestor window refined to level(x) - 1; the parent is the
                // ancestor with the largest pre, so scan backwards.
                if let Some(want) = self.level(x).checked_sub(1) {
                    let p = (0..x.0)
                        .rev()
                        .map(NodeId)
                        .find(|&y| self.post(y) > self.post(x) && self.level(y) == want);
                    out.extend(p);
                }
            }
            Axis::FollowingSibling => {
                // Following window refined by same level and same parent.
                // Siblings of x are the following nodes at level(x) whose
                // pre precedes the parent's subtree end; the take_while on
                // the parent's post bound realizes that window.
                if let Some(p) = doc.parent(x) {
                    out.extend(
                        ((x.0 + 1)..n)
                            .map(NodeId)
                            .take_while(|&y| self.post(y) < self.post(p))
                            .filter(|&y| {
                                self.level(y) == self.level(x)
                                    && self.post(y) > self.post(x)
                                    && keep(y)
                            }),
                    );
                }
            }
            Axis::PrecedingSibling => {
                if let Some(p) = doc.parent(x) {
                    out.extend(((p.0 + 1)..x.0).map(NodeId).filter(|&y| {
                        self.level(y) == self.level(x) && self.post(y) < self.post(x) && keep(y)
                    }));
                }
            }
            Axis::Id => {
                out.extend(doc.deref_ids(doc.string_value(x)));
            }
        }
        debug_assert!(out.windows(2).all(|w| w[0] < w[1]));
        out
    }

    /// Typed set-to-set axis function `χ(S)` evaluated on the plane.
    /// Semantically identical to [`crate::fast::eval_axis`]; the input must
    /// be sorted in document order and the result is sorted, duplicate-free.
    pub fn eval_axis(&self, doc: &Document, axis: Axis, set: &[NodeId]) -> Vec<NodeId> {
        debug_assert!(set.windows(2).all(|w| w[0] < w[1]), "input set must be sorted");
        let n = doc.len() as u32;
        let keep = |y: NodeId| !doc.kind(y).is_special_child();
        match axis {
            // The four quadrant axes admit set-level windows directly.
            Axis::Descendant | Axis::DescendantOrSelf => {
                // Union of pre intervals; intervals of a sorted set can only
                // nest or follow, so one left-to-right sweep suffices.
                let mut out = Vec::new();
                let mut next_free = 0u32;
                for &x in set {
                    let lo = (if axis == Axis::Descendant { x.0 + 1 } else { x.0 }).max(next_free);
                    let hi = self.subtree_end(x);
                    out.extend((lo..hi).map(NodeId).filter(|&y| keep(y)));
                    next_free = next_free.max(hi);
                }
                out
            }
            Axis::Following => {
                // following(S) is the lower-right quadrant of the point with
                // the smallest post bound: every pre ≥ min subtree_end.
                match set.iter().map(|&x| self.subtree_end(x)).min() {
                    Some(lo) => (lo..n).map(NodeId).filter(|&y| keep(y)).collect(),
                    None => Vec::new(),
                }
            }
            Axis::Preceding => {
                // preceding(S) is the upper-left quadrant of max(S) restricted
                // to post < post(max): pre < pre(max) ∧ post < post(max).
                match set.last() {
                    Some(&max) => (0..max.0)
                        .map(NodeId)
                        .filter(|&y| self.post(y) < self.post(max) && keep(y))
                        .collect(),
                    None => Vec::new(),
                }
            }
            Axis::Ancestor | Axis::AncestorOrSelf => {
                // Union of upper-left quadrants via a mark sweep (each node
                // tested against the quadrant of the set element that could
                // own it — realized with the stack-tree join below to stay
                // within the structural-join toolkit).
                let candidates: Vec<NodeId> = (0..n).map(NodeId).filter(|&y| keep(y)).collect();
                let mut out = join_ancestors(doc, &candidates, set);
                if axis == Axis::AncestorOrSelf {
                    let selfs: Vec<NodeId> = set.iter().copied().filter(|&x| keep(x)).collect();
                    out = union_sorted(&out, &selfs);
                }
                out
            }
            // Remaining axes: per-node windows + merge.
            _ => {
                let mut out: Vec<NodeId> = Vec::new();
                for &x in set {
                    let w = self.window(doc, axis, x);
                    out = union_sorted(&out, &w);
                }
                out
            }
        }
    }

    /// Exclusive end of the pre interval of `x`'s subtree, derived from the
    /// plane: `pre(x) + 1 + #descendants`, where `#descendants =
    /// pre(x) - (post(x) - level(x))` by the Grust et al. identity
    /// `pre(x) - post(x) + size(x) = level(x)`.
    #[inline]
    pub fn subtree_end(&self, x: NodeId) -> u32 {
        let size = self.post(x) + self.level(x) - x.0;
        x.0 + 1 + size
    }
}

/// Merge two sorted duplicate-free node lists into their sorted union.
pub fn union_sorted(a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// The *Stack-Tree-Desc* structural join of Al-Khalifa et al. 2002.
///
/// Given a candidate ancestor list `alist` and a candidate descendant list
/// `dlist`, both sorted in document order, returns every pair `(a, d)` with
/// `a` a **strict** ancestor of `d`, sorted by `(d, a)`. Runs in
/// `O(|alist| + |dlist| + |output|)` — worst-case optimal in the output.
pub fn stack_tree_join(
    doc: &Document,
    alist: &[NodeId],
    dlist: &[NodeId],
) -> Vec<(NodeId, NodeId)> {
    debug_assert!(alist.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(dlist.windows(2).all(|w| w[0] < w[1]));
    let mut out = Vec::new();
    let mut stack: Vec<NodeId> = Vec::new();
    let mut a_idx = 0usize;
    for &d in dlist {
        // Push every candidate ancestor that starts before d, maintaining
        // the stack invariant: entries are nested (each an ancestor of the
        // next).
        while a_idx < alist.len() && alist[a_idx] < d {
            let a = alist[a_idx];
            while let Some(&top) = stack.last() {
                if doc.subtree_end(top) <= a.0 {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push(a);
            a_idx += 1;
        }
        // Pop entries whose subtree ended before d; the remainder are
        // exactly the ancestors of d among the candidates.
        while let Some(&top) = stack.last() {
            if doc.subtree_end(top) <= d.0 {
                stack.pop();
            } else {
                break;
            }
        }
        for &a in &stack {
            out.push((a, d));
        }
    }
    out
}

/// Distinct descendants: the `d ∈ dlist` that have at least one strict
/// ancestor in `alist` (i.e. `descendant(alist) ∩ dlist`), in document
/// order. `O(|alist| + |dlist|)`.
pub fn join_descendants(doc: &Document, alist: &[NodeId], dlist: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut stack: Vec<NodeId> = Vec::new();
    let mut a_idx = 0usize;
    for &d in dlist {
        while a_idx < alist.len() && alist[a_idx] < d {
            let a = alist[a_idx];
            while let Some(&top) = stack.last() {
                if doc.subtree_end(top) <= a.0 {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push(a);
            a_idx += 1;
        }
        while let Some(&top) = stack.last() {
            if doc.subtree_end(top) <= d.0 {
                stack.pop();
            } else {
                break;
            }
        }
        if !stack.is_empty() {
            out.push(d);
        }
    }
    out
}

/// Distinct ancestors: the `a ∈ alist` that have at least one strict
/// descendant in `dlist` (i.e. `ancestor(dlist) ∩ alist`), in document
/// order. `O(|alist| + |dlist|)` by a two-pointer interval sweep.
pub fn join_ancestors(doc: &Document, alist: &[NodeId], dlist: &[NodeId]) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut d_idx = 0usize;
    for &a in alist {
        let end = doc.subtree_end(a);
        // Advance past descendants candidates entirely before a.
        while d_idx < dlist.len() && dlist[d_idx] <= a {
            d_idx += 1;
        }
        // a qualifies iff some d lies inside (a, end). dlist is sorted, so
        // the first candidate > a is the smallest possible witness; it is
        // not consumed here because it can witness several nested ancestors.
        if d_idx < dlist.len() && dlist[d_idx].0 < end {
            out.push(a);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fast;
    use xpath_xml::generate::{doc_bookstore, doc_figure8, doc_flat, doc_random, RandomDocConfig};

    fn plane_matches_fast(doc: &Document) {
        let plane = PrePostPlane::new(doc);
        for axis in Axis::STANDARD {
            for x in doc.all_nodes() {
                assert_eq!(
                    plane.window(doc, axis, x),
                    fast::eval_axis(doc, axis, &[x]),
                    "window {axis:?} from {x:?}"
                );
            }
            let evens: Vec<NodeId> = doc.all_nodes().filter(|n| n.0 % 2 == 0).collect();
            assert_eq!(
                plane.eval_axis(doc, axis, &evens),
                fast::eval_axis(doc, axis, &evens),
                "set {axis:?}"
            );
            let all: Vec<NodeId> = doc.all_nodes().collect();
            assert_eq!(
                plane.eval_axis(doc, axis, &all),
                fast::eval_axis(doc, axis, &all),
                "set-all {axis:?}"
            );
        }
    }

    #[test]
    fn plane_matches_fast_on_flat_doc() {
        plane_matches_fast(&doc_flat(6));
    }

    #[test]
    fn plane_matches_fast_on_figure8() {
        plane_matches_fast(&doc_figure8());
    }

    #[test]
    fn plane_matches_fast_on_bookstore() {
        plane_matches_fast(&doc_bookstore());
    }

    #[test]
    fn plane_matches_fast_on_random_docs() {
        for seed in 0..8 {
            let cfg = RandomDocConfig { elements: 30, ..RandomDocConfig::default() };
            plane_matches_fast(&doc_random(seed, &cfg));
        }
    }

    #[test]
    fn subtree_end_identity() {
        // Grust et al.: size(x) = post(x) + level(x) - pre(x), so the
        // plane-derived subtree_end must equal the stored one.
        for doc in [doc_flat(5), doc_figure8(), doc_bookstore()] {
            let plane = PrePostPlane::new(&doc);
            for x in doc.all_nodes() {
                assert_eq!(plane.subtree_end(x), doc.subtree_end(x), "{x:?}");
            }
        }
    }

    #[test]
    fn post_order_is_a_permutation() {
        let doc = doc_bookstore();
        let plane = PrePostPlane::new(&doc);
        let mut seen = vec![false; doc.len()];
        for x in doc.all_nodes() {
            let p = plane.post(x) as usize;
            assert!(!seen[p]);
            seen[p] = true;
        }
        assert!(seen.into_iter().all(|b| b));
    }

    #[test]
    fn ancestor_quadrant_test() {
        let doc = doc_figure8();
        let plane = PrePostPlane::new(&doc);
        for a in doc.all_nodes() {
            for d in doc.all_nodes() {
                assert_eq!(plane.is_ancestor(a, d), doc.is_ancestor(a, d), "{a:?} {d:?}");
            }
        }
    }

    #[test]
    fn following_quadrant_test() {
        let doc = doc_figure8();
        let plane = PrePostPlane::new(&doc);
        for x in doc.all_nodes() {
            for y in doc.all_nodes() {
                let expected = y > x && !doc.is_ancestor(x, y);
                assert_eq!(plane.is_following(x, y), expected, "{x:?} {y:?}");
            }
        }
    }

    /// Nested-loop oracle for the structural join.
    fn join_oracle(doc: &Document, alist: &[NodeId], dlist: &[NodeId]) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for &d in dlist {
            for &a in alist {
                if doc.is_ancestor(a, d) {
                    out.push((a, d));
                }
            }
        }
        out.sort_by_key(|&(a, d)| (d, a));
        out
    }

    #[test]
    fn stack_tree_join_matches_oracle() {
        for seed in 0..12 {
            let cfg = RandomDocConfig { elements: 25, ..RandomDocConfig::default() };
            let doc = doc_random(seed, &cfg);
            let alist: Vec<NodeId> = doc.all_nodes().filter(|n| n.0 % 3 != 2).collect();
            let dlist: Vec<NodeId> = doc.all_nodes().filter(|n| n.0 % 2 == 1).collect();
            let mut got = stack_tree_join(&doc, &alist, &dlist);
            got.sort_by_key(|&(a, d)| (d, a));
            assert_eq!(got, join_oracle(&doc, &alist, &dlist), "seed {seed}");
        }
    }

    #[test]
    fn join_descendants_and_ancestors_match_oracle() {
        for seed in 0..12 {
            let cfg = RandomDocConfig { elements: 25, ..RandomDocConfig::default() };
            let doc = doc_random(seed, &cfg);
            let alist: Vec<NodeId> = doc.all_nodes().filter(|n| n.0 % 3 == 0).collect();
            let dlist: Vec<NodeId> = doc.all_nodes().filter(|n| n.0 % 2 == 0).collect();
            let pairs = join_oracle(&doc, &alist, &dlist);
            let mut want_d: Vec<NodeId> = pairs.iter().map(|&(_, d)| d).collect();
            want_d.sort_unstable();
            want_d.dedup();
            assert_eq!(join_descendants(&doc, &alist, &dlist), want_d, "seed {seed} desc");
            let mut want_a: Vec<NodeId> = pairs.iter().map(|&(a, _)| a).collect();
            want_a.sort_unstable();
            want_a.dedup();
            assert_eq!(join_ancestors(&doc, &alist, &dlist), want_a, "seed {seed} anc");
        }
    }

    #[test]
    fn join_with_empty_inputs() {
        let doc = doc_figure8();
        let all: Vec<NodeId> = doc.all_nodes().collect();
        assert!(stack_tree_join(&doc, &[], &all).is_empty());
        assert!(stack_tree_join(&doc, &all, &[]).is_empty());
        assert!(join_descendants(&doc, &[], &all).is_empty());
        assert!(join_ancestors(&doc, &all, &[]).is_empty());
    }

    #[test]
    fn union_sorted_basics() {
        let a = [NodeId(1), NodeId(3), NodeId(5)];
        let b = [NodeId(2), NodeId(3), NodeId(6)];
        assert_eq!(
            union_sorted(&a, &b),
            vec![NodeId(1), NodeId(2), NodeId(3), NodeId(5), NodeId(6)]
        );
        assert_eq!(union_sorted(&[], &b), b.to_vec());
        assert_eq!(union_sorted(&a, &[]), a.to_vec());
    }
}
