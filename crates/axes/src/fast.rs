//! Direct (non-regex) axis evaluation.
//!
//! §3 notes that "the actual techniques for evaluating axes in our efficient
//! XPath processing algorithms will be interchangeable". This module is the
//! production implementation: per-node axis enumeration and linear-time
//! set-to-set axis functions built on the preorder/subtree-interval
//! representation. Property tests assert equivalence with the Algorithm 3.2
//! reference implementation in [`crate::regex`].

use xpath_syntax::Axis;
use xpath_xml::{Document, NodeId, NodeKind};

#[inline]
fn is_special(doc: &Document, n: NodeId) -> bool {
    doc.kind(n).is_special_child()
}

/// Typed per-node axis enumeration: all `y` with `x χ y`, in **document
/// order**, with the §4 node-type filtering applied (`attribute` /
/// `namespace` keep only their kind; every other axis drops both kinds).
pub fn axis_from(doc: &Document, axis: Axis, x: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    axis_from_into(doc, axis, x, &mut out);
    out
}

/// Like [`axis_from`], but appends into a reusable buffer (cleared first).
pub fn axis_from_into(doc: &Document, axis: Axis, x: NodeId, out: &mut Vec<NodeId>) {
    out.clear();
    match axis {
        Axis::SelfAxis => {
            // §4: non-dedicated axes remove attribute/namespace nodes from
            // their results — including `self`, per the paper's definition.
            if !is_special(doc, x) {
                out.push(x);
            }
        }
        Axis::Child => {
            out.extend(doc.children(x).filter(|&c| !is_special(doc, c)));
        }
        Axis::Attribute => {
            out.extend(doc.children(x).filter(|&c| doc.kind(c) == NodeKind::Attribute));
        }
        Axis::Namespace => {
            out.extend(doc.children(x).filter(|&c| doc.kind(c) == NodeKind::Namespace));
        }
        Axis::Parent => {
            if let Some(p) = doc.parent(x) {
                out.push(p);
            }
        }
        Axis::Ancestor => {
            let mut cur = doc.parent(x);
            while let Some(p) = cur {
                out.push(p);
                cur = doc.parent(p);
            }
            out.reverse();
        }
        Axis::AncestorOrSelf => {
            if !is_special(doc, x) {
                out.push(x);
            }
            let mut cur = doc.parent(x);
            while let Some(p) = cur {
                out.push(p);
                cur = doc.parent(p);
            }
            out.reverse();
        }
        Axis::Descendant => {
            out.extend(
                ((x.0 + 1)..doc.subtree_end(x)).map(NodeId).filter(|&d| !is_special(doc, d)),
            );
        }
        Axis::DescendantOrSelf => {
            out.extend((x.0..doc.subtree_end(x)).map(NodeId).filter(|&d| !is_special(doc, d)));
        }
        Axis::Following => {
            out.extend(
                (doc.subtree_end(x)..doc.len() as u32).map(NodeId).filter(|&d| !is_special(doc, d)),
            );
        }
        Axis::Preceding => {
            out.extend(
                (0..x.0).map(NodeId).filter(|&y| !is_special(doc, y) && doc.subtree_end(y) <= x.0),
            );
        }
        Axis::FollowingSibling => {
            let mut cur = doc.next_sibling(x);
            while let Some(s) = cur {
                if !is_special(doc, s) {
                    out.push(s);
                }
                cur = doc.next_sibling(s);
            }
        }
        Axis::PrecedingSibling => {
            let mut cur = doc.prev_sibling(x);
            while let Some(s) = cur {
                if !is_special(doc, s) {
                    out.push(s);
                }
                cur = doc.prev_sibling(s);
            }
            out.reverse();
        }
        Axis::Id => {
            // Exact semantics: deref_ids(strval(x)) (§10.2).
            out.extend(doc.deref_ids(doc.string_value(x)));
        }
    }
}

/// Typed set-to-set axis function `χ(S)` (Definition 3.1 with the §4 type
/// filtering). `set` must be sorted in document order; the result is sorted
/// and duplicate-free. Runs in `O(|dom|)` for every axis.
pub fn eval_axis(doc: &Document, axis: Axis, set: &[NodeId]) -> Vec<NodeId> {
    eval_axis_inner(doc, axis, set, true)
}

/// Untyped set-to-set axis function `χ0(S)` (§3) via the same direct
/// algorithms — used for inverse-axis computation and as a fast counterpart
/// to [`crate::regex::eval_axis_untyped`].
pub fn eval_axis_untyped_fast(doc: &Document, axis: Axis, set: &[NodeId]) -> Vec<NodeId> {
    eval_axis_inner(doc, axis, set, false)
}

fn keep(doc: &Document, n: NodeId, typed: bool) -> bool {
    !typed || !is_special(doc, n)
}

fn eval_axis_inner(doc: &Document, axis: Axis, set: &[NodeId], typed: bool) -> Vec<NodeId> {
    debug_assert!(set.windows(2).all(|w| w[0] < w[1]), "input set must be sorted");
    let mut out = Vec::new();
    match axis {
        Axis::SelfAxis => {
            out.extend(set.iter().copied().filter(|&x| keep(doc, x, typed)));
        }
        Axis::Child => {
            for &x in set {
                out.extend(doc.children(x).filter(|&c| keep(doc, c, typed)));
            }
            out.sort_unstable();
        }
        Axis::Attribute => {
            for &x in set {
                out.extend(doc.children(x).filter(|&c| doc.kind(c) == NodeKind::Attribute));
            }
            out.sort_unstable();
        }
        Axis::Namespace => {
            for &x in set {
                out.extend(doc.children(x).filter(|&c| doc.kind(c) == NodeKind::Namespace));
            }
            out.sort_unstable();
        }
        Axis::Parent => {
            out.extend(set.iter().filter_map(|&x| doc.parent(x)));
            out.sort_unstable();
            out.dedup();
        }
        Axis::Ancestor | Axis::AncestorOrSelf => {
            let mut mark = vec![false; doc.len()];
            for &x in set {
                let mut cur = if axis == Axis::AncestorOrSelf {
                    if keep(doc, x, typed) {
                        Some(x)
                    } else {
                        doc.parent(x)
                    }
                } else {
                    doc.parent(x)
                };
                while let Some(p) = cur {
                    if mark[p.index()] {
                        break; // everything above is already marked
                    }
                    mark[p.index()] = true;
                    cur = doc.parent(p);
                }
            }
            out.extend((0..doc.len() as u32).map(NodeId).filter(|n| mark[n.index()]));
        }
        Axis::Descendant | Axis::DescendantOrSelf => {
            // Merge the (sorted) preorder intervals.
            let mut next_free = 0u32;
            for &x in set {
                let lo = if axis == Axis::Descendant { x.0 + 1 } else { x.0 };
                let hi = doc.subtree_end(x);
                let lo = lo.max(next_free);
                for i in lo..hi {
                    let n = NodeId(i);
                    if keep(doc, n, typed) {
                        out.push(n);
                    }
                }
                next_free = next_free.max(hi);
            }
        }
        Axis::Following => {
            // following(S) = [min_{x∈S} subtree_end(x), |dom|).
            if let Some(&first) = set.first() {
                let lo = set.iter().map(|&x| doc.subtree_end(x)).min().unwrap_or(first.0);
                out.extend((lo..doc.len() as u32).map(NodeId).filter(|&n| keep(doc, n, typed)));
            }
        }
        Axis::Preceding => {
            // y ∈ preceding(S) iff ∃x∈S: y < x and y not an ancestor of x,
            // iff subtree_end(y) ≤ max(S) (preorder-interval argument).
            if let Some(&max) = set.last() {
                out.extend(
                    (0..max.0)
                        .map(NodeId)
                        .filter(|&y| keep(doc, y, typed) && doc.subtree_end(y) <= max.0),
                );
            }
        }
        Axis::FollowingSibling => {
            let mut mark = vec![false; doc.len()];
            for &x in set {
                let mut cur = doc.next_sibling(x);
                while let Some(s) = cur {
                    if mark[s.index()] {
                        break; // the rest of the sibling chain is marked
                    }
                    mark[s.index()] = true;
                    cur = doc.next_sibling(s);
                }
            }
            out.extend(
                (0..doc.len() as u32)
                    .map(NodeId)
                    .filter(|&n| mark[n.index()] && keep(doc, n, typed)),
            );
        }
        Axis::PrecedingSibling => {
            let mut mark = vec![false; doc.len()];
            for &x in set.iter().rev() {
                let mut cur = doc.prev_sibling(x);
                while let Some(s) = cur {
                    if mark[s.index()] {
                        break;
                    }
                    mark[s.index()] = true;
                    cur = doc.prev_sibling(s);
                }
            }
            out.extend(
                (0..doc.len() as u32)
                    .map(NodeId)
                    .filter(|&n| mark[n.index()] && keep(doc, n, typed)),
            );
        }
        Axis::Id => {
            let mut mark = vec![false; doc.len()];
            for &x in set {
                for y in doc.deref_ids(doc.string_value(x)) {
                    mark[y.index()] = true;
                }
            }
            out.extend((0..doc.len() as u32).map(NodeId).filter(|n| mark[n.index()]));
        }
    }
    debug_assert!(out.windows(2).all(|w| w[0] < w[1]), "output must be sorted+deduped");
    out
}

/// The inverse axis function `χ⁻¹(X)` of §10.1: all `y` such that some
/// `x ∈ X` satisfies `y χ x` under the *typed* axis `χ`. Used by the
/// backward semantics `S←` (Core XPath) and the bottom-up path propagation
/// of §11. Runs in `O(|dom|)`.
pub fn inverse_axis_set(doc: &Document, axis: Axis, set: &[NodeId]) -> Vec<NodeId> {
    match axis {
        Axis::Attribute => {
            // attribute⁻¹: owner elements of attribute nodes in X.
            let attrs: Vec<NodeId> =
                set.iter().copied().filter(|&x| doc.kind(x) == NodeKind::Attribute).collect();
            eval_axis_inner(doc, Axis::Parent, &attrs, false)
        }
        Axis::Namespace => {
            let nss: Vec<NodeId> =
                set.iter().copied().filter(|&x| doc.kind(x) == NodeKind::Namespace).collect();
            eval_axis_inner(doc, Axis::Parent, &nss, false)
        }
        Axis::Id => crate::id::id_inverse_ref(doc, set),
        _ => {
            // x χ_typed y iff y non-special ∧ x χ0 y. Therefore
            // χ⁻¹(X) = χ0⁻¹(X ∩ non-special), with no result filtering
            // (Lemma 10.1 on the untyped axes).
            let proper: Vec<NodeId> =
                set.iter().copied().filter(|&x| !is_special(doc, x)).collect();
            eval_axis_inner(doc, axis.inverse(), &proper, false)
        }
    }
}

/// Sort a node set by `<doc,χ` (§4): document order for forward axes,
/// reverse document order for reverse axes. Input must be sorted in
/// document order.
pub fn order_for_axis(axis: Axis, set: &mut [NodeId]) {
    if !axis.is_forward() {
        set.reverse();
    }
}

/// `idx_χ(x, S)`: the 1-based index of `x` in `S` with respect to `<doc,χ`
/// (§4). `S` must be sorted in document order.
pub fn idx_in(axis: Axis, x: NodeId, set: &[NodeId]) -> Option<usize> {
    let pos = set.binary_search(&x).ok()?;
    Some(if axis.is_forward() { pos + 1 } else { set.len() - pos })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::eval_axis_untyped;
    use xpath_xml::generate::{doc_bookstore, doc_figure8, doc_flat};
    use xpath_xml::Document;

    /// Typed reference implementation per §4, built on Algorithm 3.2.
    fn typed_reference(doc: &Document, axis: Axis, set: &[NodeId]) -> Vec<NodeId> {
        match axis {
            Axis::Attribute => {
                let mut v = eval_axis_untyped(doc, Axis::Child, set);
                v.retain(|&n| doc.kind(n) == NodeKind::Attribute);
                v
            }
            Axis::Namespace => {
                let mut v = eval_axis_untyped(doc, Axis::Child, set);
                v.retain(|&n| doc.kind(n) == NodeKind::Namespace);
                v
            }
            Axis::Id => eval_axis(doc, Axis::Id, set),
            _ => {
                let mut v = eval_axis_untyped(doc, axis, set);
                v.retain(|&n| !doc.kind(n).is_special_child());
                v
            }
        }
    }

    fn check_all_axes(doc: &Document) {
        for axis in Axis::STANDARD {
            for x in doc.all_nodes() {
                let fast_single = axis_from(doc, axis, x);
                let fast_set = eval_axis(doc, axis, &[x]);
                let reference = typed_reference(doc, axis, &[x]);
                assert_eq!(fast_set, reference, "{axis:?} from {x:?} (set)");
                let mut sorted_single = fast_single.clone();
                sorted_single.sort_unstable();
                assert_eq!(sorted_single, reference, "{axis:?} from {x:?} (single)");
            }
            // A couple of multi-node sets.
            let evens: Vec<NodeId> = doc.all_nodes().filter(|n| n.0 % 2 == 0).collect();
            assert_eq!(
                eval_axis(doc, axis, &evens),
                typed_reference(doc, axis, &evens),
                "{axis:?} on even set"
            );
        }
    }

    #[test]
    fn fast_matches_algorithm_3_2_on_flat_doc() {
        check_all_axes(&doc_flat(5));
    }

    #[test]
    fn fast_matches_algorithm_3_2_on_figure8() {
        check_all_axes(&doc_figure8());
    }

    #[test]
    fn fast_matches_algorithm_3_2_on_bookstore() {
        check_all_axes(&doc_bookstore());
    }

    #[test]
    fn inverse_axis_lemma_10_1() {
        // x ∈ χ(y) iff y ∈ χ⁻¹(x), for every standard axis and node pair.
        let doc = doc_figure8();
        for axis in Axis::STANDARD {
            for y in doc.all_nodes() {
                let forward = eval_axis(&doc, axis, &[y]);
                for x in doc.all_nodes() {
                    let back = inverse_axis_set(&doc, axis, &[x]);
                    assert_eq!(
                        forward.contains(&x),
                        back.contains(&y),
                        "{axis:?}: x={x:?} y={y:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn idx_forward_and_reverse() {
        let doc = doc_flat(4); // b's: 2,3,4,5
        let sibs = eval_axis(&doc, Axis::FollowingSibling, &[NodeId(2)]);
        assert_eq!(idx_in(Axis::FollowingSibling, NodeId(3), &sibs), Some(1));
        assert_eq!(idx_in(Axis::FollowingSibling, NodeId(5), &sibs), Some(3));
        let pre = eval_axis(&doc, Axis::PrecedingSibling, &[NodeId(5)]);
        // Reverse order: nearest sibling (4) has index 1.
        assert_eq!(idx_in(Axis::PrecedingSibling, NodeId(4), &pre), Some(1));
        assert_eq!(idx_in(Axis::PrecedingSibling, NodeId(2), &pre), Some(3));
        assert_eq!(idx_in(Axis::PrecedingSibling, NodeId(0), &pre), None);
    }

    #[test]
    fn attribute_axis_only_attributes() {
        let doc = doc_figure8();
        let a = doc.element_by_id("10").unwrap();
        let attrs = eval_axis(&doc, Axis::Attribute, &[a]);
        assert_eq!(attrs.len(), 1);
        assert_eq!(doc.kind(attrs[0]), NodeKind::Attribute);
        // child excludes the attribute.
        let kids = eval_axis(&doc, Axis::Child, &[a]);
        assert!(kids.iter().all(|&k| doc.kind(k) != NodeKind::Attribute));
        assert_eq!(kids.len(), 2);
    }

    #[test]
    fn order_for_axis_reverses_reverse_axes() {
        let mut v = vec![NodeId(1), NodeId(2), NodeId(3)];
        order_for_axis(Axis::Ancestor, &mut v);
        assert_eq!(v, vec![NodeId(3), NodeId(2), NodeId(1)]);
        let mut v = vec![NodeId(1), NodeId(2)];
        order_for_axis(Axis::Child, &mut v);
        assert_eq!(v, vec![NodeId(1), NodeId(2)]);
    }
}
