//! Typed axis evaluation via Algorithm 3.2 — the reference path.
//!
//! §4 lifts the untyped axes `χ0` of §3 to XPath's typed axes:
//!
//! ```text
//! attribute(S) := child0(S) ∩ T(attribute())
//! namespace(S) := child0(S) ∩ T(namespace())
//! χ(S)         := χ0(S) − (T(attribute()) ∪ T(namespace()))   otherwise
//! ```
//!
//! The fast implementation in [`crate::fast`] is the production equivalent;
//! this module exists so the faithful Table-I/Algorithm-3.2 pipeline is
//! runnable end-to-end and testable against it.

use xpath_syntax::Axis;
use xpath_xml::{Document, NodeId, NodeKind};

use crate::regex::eval_axis_untyped;

/// Typed `χ(S)` computed through Algorithm 3.2 (Lemma 3.3: `O(|dom|)`).
/// The result is sorted in document order.
pub fn eval_axis_alg32(doc: &Document, axis: Axis, set: &[NodeId]) -> Vec<NodeId> {
    match axis {
        Axis::Attribute => {
            let mut v = eval_axis_untyped(doc, Axis::Child, set);
            v.retain(|&n| doc.kind(n) == NodeKind::Attribute);
            v
        }
        Axis::Namespace => {
            let mut v = eval_axis_untyped(doc, Axis::Child, set);
            v.retain(|&n| doc.kind(n) == NodeKind::Namespace);
            v
        }
        Axis::Id => crate::id::id_set_exact(doc, set),
        _ => {
            let mut v = eval_axis_untyped(doc, axis, set);
            v.retain(|&n| !doc.kind(n).is_special_child());
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fast;
    use xpath_xml::generate::{doc_bookstore, doc_figure8};

    #[test]
    fn alg32_equals_fast_everywhere() {
        for doc in [doc_figure8(), doc_bookstore()] {
            for axis in Axis::STANDARD {
                for x in doc.all_nodes() {
                    assert_eq!(
                        eval_axis_alg32(&doc, axis, &[x]),
                        fast::eval_axis(&doc, axis, &[x]),
                        "{axis:?} at {x:?}"
                    );
                }
            }
        }
    }
}
