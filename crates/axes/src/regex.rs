//! Table I axis definitions as limited regular expressions over the
//! primitive tree relations, evaluated by Algorithm 3.2.
//!
//! The paper defines every axis in terms of `firstchild`, `nextsibling` and
//! their inverses:
//!
//! ```text
//! child             := firstchild.nextsibling*
//! parent            := (nextsibling⁻¹)*.firstchild⁻¹
//! descendant        := firstchild.(firstchild ∪ nextsibling)*
//! ancestor          := (firstchild⁻¹ ∪ nextsibling⁻¹)*.firstchild⁻¹
//! descendant-or-self := descendant ∪ self
//! ancestor-or-self  := ancestor ∪ self
//! following         := ancestor-or-self.nextsibling.nextsibling*.descendant-or-self
//! preceding         := ancestor-or-self.nextsibling⁻¹.(nextsibling⁻¹)*.descendant-or-self
//! following-sibling := nextsibling.nextsibling*
//! preceding-sibling := (nextsibling⁻¹)*.nextsibling⁻¹
//! ```
//!
//! These are the *untyped* axes `χ0` of §3; [`crate::typed`] layers the §4
//! node-type filtering on top. The evaluation functions mirror Algorithm 3.2
//! case by case and run in `O(|dom|)` (Lemma 3.3).

use xpath_syntax::Axis;
use xpath_xml::{Document, NodeId};

/// A primitive tree relation or its inverse.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Prim {
    /// `firstchild`
    FirstChild,
    /// `nextsibling`
    NextSibling,
    /// `firstchild⁻¹`
    FirstChildInv,
    /// `nextsibling⁻¹`
    NextSiblingInv,
}

impl Prim {
    /// Apply the (partial) function to a node.
    #[inline]
    pub fn apply(self, doc: &Document, n: NodeId) -> Option<NodeId> {
        match self {
            Prim::FirstChild => doc.first_child(n),
            Prim::NextSibling => doc.next_sibling(n),
            Prim::FirstChildInv => doc.first_child_inverse(n),
            Prim::NextSiblingInv => doc.prev_sibling(n),
        }
    }
}

/// The limited regular expressions of Table I. `Star` is only ever applied
/// to a union of primitive relations, exactly as in the paper.
#[derive(Clone, PartialEq, Debug)]
pub enum AxisRegex {
    /// The identity relation `self`.
    SelfRel,
    /// A primitive relation.
    Rel(Prim),
    /// Reference to another (earlier-defined) axis; the definitions are
    /// acyclic ("some axes are defined in terms of other axes, but these
    /// definitions are acyclic").
    Axis(Axis),
    /// Concatenation `e1.e2`.
    Concat(Vec<AxisRegex>),
    /// Union `χ1 ∪ χ2`.
    Union(Vec<AxisRegex>),
    /// `(R1 ∪ … ∪ Rn)*` — reflexive-transitive closure over primitive
    /// relations only.
    Star(Vec<Prim>),
}

/// `E(χ)`: the Table I regular expression defining axis `χ`.
///
/// # Panics
/// Panics for `Axis::Attribute`, `Axis::Namespace` and `Axis::Id`, which are
/// not defined by Table I (they are typed variants of `child` / a derived
/// relation; see [`crate::typed`]).
pub fn definition(axis: Axis) -> AxisRegex {
    use AxisRegex::{Concat, Rel, SelfRel, Star, Union};
    use Prim::*;
    match axis {
        Axis::SelfAxis => SelfRel,
        Axis::Child => Concat(vec![Rel(FirstChild), Star(vec![NextSibling])]),
        Axis::Parent => Concat(vec![Star(vec![NextSiblingInv]), Rel(FirstChildInv)]),
        Axis::Descendant => Concat(vec![Rel(FirstChild), Star(vec![FirstChild, NextSibling])]),
        Axis::Ancestor => {
            Concat(vec![Star(vec![FirstChildInv, NextSiblingInv]), Rel(FirstChildInv)])
        }
        Axis::DescendantOrSelf => Union(vec![AxisRegex::Axis(Axis::Descendant), SelfRel]),
        Axis::AncestorOrSelf => Union(vec![AxisRegex::Axis(Axis::Ancestor), SelfRel]),
        Axis::Following => Concat(vec![
            AxisRegex::Axis(Axis::AncestorOrSelf),
            Rel(NextSibling),
            Star(vec![NextSibling]),
            AxisRegex::Axis(Axis::DescendantOrSelf),
        ]),
        Axis::Preceding => Concat(vec![
            AxisRegex::Axis(Axis::AncestorOrSelf),
            Rel(NextSiblingInv),
            Star(vec![NextSiblingInv]),
            AxisRegex::Axis(Axis::DescendantOrSelf),
        ]),
        Axis::FollowingSibling => Concat(vec![Rel(NextSibling), Star(vec![NextSibling])]),
        Axis::PrecedingSibling => Concat(vec![Star(vec![NextSiblingInv]), Rel(NextSiblingInv)]),
        Axis::Attribute | Axis::Namespace | Axis::Id => {
            panic!("{axis:?} is not defined by Table I; use the typed axis engine")
        }
    }
}

/// Algorithm 3.2: evaluate the *untyped* axis function
/// `χ0(S) = {x | ∃x0 ∈ S : x0 χ x}` via the Table I regular expression.
/// Runs in `O(|dom|)` (Lemma 3.3); the result is sorted in document order.
pub fn eval_axis_untyped(doc: &Document, axis: Axis, set: &[NodeId]) -> Vec<NodeId> {
    let mut out = eval_regex(doc, &definition(axis), set);
    out.sort_unstable();
    out.dedup();
    out
}

/// `eval_E(χ)(S)` — dispatch on the regex shape, mirroring the cases of
/// Algorithm 3.2 (`eval_self`, `eval_R`, `eval_{e1.e2}`, `eval_{χ1∪χ2}`,
/// `eval_{(R1∪…∪Rn)*}`). Intermediate results may be unsorted.
fn eval_regex(doc: &Document, re: &AxisRegex, set: &[NodeId]) -> Vec<NodeId> {
    match re {
        // function eval_self(S) := S.
        AxisRegex::SelfRel => set.to_vec(),
        // function eval_R(S) := {R(x) | x ∈ S}.
        AxisRegex::Rel(r) => set.iter().filter_map(|&x| r.apply(doc, x)).collect(),
        AxisRegex::Axis(ax) => eval_regex(doc, &definition(*ax), set),
        // function eval_{e1.e2}(S) := eval_{e2}(eval_{e1}(S)).
        AxisRegex::Concat(parts) => {
            let mut cur = set.to_vec();
            for p in parts {
                cur = eval_regex(doc, p, &cur);
            }
            cur
        }
        // function eval_{χ1∪χ2}(S) := eval_{χ1}(S) ∪ eval_{χ2}(S).
        AxisRegex::Union(parts) => {
            let mut out = Vec::new();
            for p in parts {
                out.extend(eval_regex(doc, p, set));
            }
            out.sort_unstable();
            out.dedup();
            out
        }
        // function eval_{(R1∪…∪Rn)*}(S): worklist closure with a
        // direct-access membership structure ("naively, this could be an
        // array of bits, one for each member of dom").
        AxisRegex::Star(rels) => {
            let mut in_set = vec![false; doc.len()];
            let mut list: Vec<NodeId> = Vec::with_capacity(set.len());
            for &x in set {
                if !in_set[x.index()] {
                    in_set[x.index()] = true;
                    list.push(x);
                }
            }
            let mut i = 0;
            // "while there is a next element x in S' do append
            //  {Ri(x) | Ri(x) ≠ null, Ri(x) ∉ S'} to S'".
            while i < list.len() {
                let x = list[i];
                i += 1;
                for r in rels {
                    if let Some(y) = r.apply(doc, x) {
                        if !in_set[y.index()] {
                            in_set[y.index()] = true;
                            list.push(y);
                        }
                    }
                }
            }
            list
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_xml::generate::{doc_figure8, doc_flat};

    fn ids(v: &[NodeId]) -> Vec<u32> {
        v.iter().map(|n| n.0).collect()
    }

    #[test]
    fn child_of_root_doc2() {
        let d = doc_flat(2); // root=0, a=1, b=2, b=3
        let c = eval_axis_untyped(&d, Axis::Child, &[NodeId(0)]);
        assert_eq!(ids(&c), vec![1]);
        let c = eval_axis_untyped(&d, Axis::Child, &[NodeId(1)]);
        assert_eq!(ids(&c), vec![2, 3]);
    }

    #[test]
    fn descendant_and_ancestor_are_inverse() {
        let d = doc_figure8();
        for x in d.all_nodes() {
            let desc = eval_axis_untyped(&d, Axis::Descendant, &[x]);
            for &y in &desc {
                let anc = eval_axis_untyped(&d, Axis::Ancestor, &[y]);
                assert!(anc.contains(&x), "{x:?} should be ancestor of {y:?}");
            }
        }
    }

    #[test]
    fn following_preceding_partition() {
        // For any two distinct nodes x ≠ y in a document without attributes,
        // exactly one of: y ancestor of x, y descendant of x, y following x,
        // y preceding x.
        let d = doc_flat(4);
        for x in d.all_nodes() {
            let anc = eval_axis_untyped(&d, Axis::Ancestor, &[x]);
            let desc = eval_axis_untyped(&d, Axis::Descendant, &[x]);
            let fol = eval_axis_untyped(&d, Axis::Following, &[x]);
            let pre = eval_axis_untyped(&d, Axis::Preceding, &[x]);
            let total = anc.len() + desc.len() + fol.len() + pre.len();
            assert_eq!(total, d.len() - 1, "partition failed at {x:?}");
        }
    }

    #[test]
    fn sibling_axes() {
        let d = doc_flat(4); // b's are 2,3,4,5
        let f = eval_axis_untyped(&d, Axis::FollowingSibling, &[NodeId(3)]);
        assert_eq!(ids(&f), vec![4, 5]);
        let p = eval_axis_untyped(&d, Axis::PrecedingSibling, &[NodeId(3)]);
        assert_eq!(ids(&p), vec![2]);
    }

    #[test]
    fn self_axis() {
        let d = doc_flat(2);
        let s = eval_axis_untyped(&d, Axis::SelfAxis, &[NodeId(1), NodeId(3)]);
        assert_eq!(ids(&s), vec![1, 3]);
    }

    #[test]
    fn parent_of_root_is_empty() {
        let d = doc_flat(2);
        assert!(eval_axis_untyped(&d, Axis::Parent, &[NodeId(0)]).is_empty());
        assert_eq!(ids(&eval_axis_untyped(&d, Axis::Parent, &[NodeId(2)])), vec![1]);
    }

    #[test]
    fn or_self_variants() {
        let d = doc_flat(2);
        let dos = eval_axis_untyped(&d, Axis::DescendantOrSelf, &[NodeId(1)]);
        assert_eq!(ids(&dos), vec![1, 2, 3]);
        let aos = eval_axis_untyped(&d, Axis::AncestorOrSelf, &[NodeId(3)]);
        assert_eq!(ids(&aos), vec![0, 1, 3]);
    }

    #[test]
    fn set_input_unions_results() {
        let d = doc_flat(4);
        let f = eval_axis_untyped(&d, Axis::FollowingSibling, &[NodeId(2), NodeId(4)]);
        assert_eq!(ids(&f), vec![3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "not defined by Table I")]
    fn attribute_panics() {
        definition(Axis::Attribute);
    }
}
