//! The `id` axis of §10.2 and its linear-time encoding via the `ref`
//! relation (Theorem 10.7).
//!
//! Exact semantics: `id := {(x0, x) | x ∈ deref_ids(strval(x0))}`.
//!
//! Theorem 10.7 encodes this using the linear-size `ref` relation:
//!
//! ```text
//! id(S)    := {y | x ∈ descendant-or-self(S), (x, y) ∈ ref}
//! id⁻¹(S)  := ancestor-or-self({x | (x, y) ∈ ref, y ∈ S})
//! ```
//!
//! The encoding is exact for element/root source nodes whenever ID tokens
//! do not span text-node boundaries (i.e. no token of `strval(x)` is formed
//! by concatenating the tail of one text node with the head of the next),
//! and — because `ref` is built from text nodes, as in the theorem — it does
//! not see references held in attribute *values* (whose string value the
//! exact semantics does consult when the source node is the attribute
//! itself). All paper workloads and our generators satisfy both conditions
//! at element level; `id_set_exact` is the fallback with the literal
//! semantics.

use xpath_syntax::Axis;
use xpath_xml::{Document, NodeId};

use crate::fast::eval_axis;

/// Exact `id(S)`: `∪_{x∈S} deref_ids(strval(x))`, sorted.
pub fn id_set_exact(doc: &Document, set: &[NodeId]) -> Vec<NodeId> {
    eval_axis(doc, Axis::Id, set)
}

/// Theorem 10.7 `id(S)` via the `ref` relation, in `O(|D|)` time.
pub fn id_set_ref(doc: &Document, set: &[NodeId]) -> Vec<NodeId> {
    // Nodes x ∈ descendant-or-self(S) — computed untyped on purpose: text
    // nodes carry the references and are never attribute/namespace nodes,
    // while S itself may contain any kind.
    let mut in_dos = vec![false; doc.len()];
    for &s in set {
        for i in s.0..doc.subtree_end(s) {
            in_dos[i as usize] = true;
        }
    }
    let mut mark = vec![false; doc.len()];
    for (x, y) in doc.refs().iter() {
        if in_dos[x.index()] {
            mark[y.index()] = true;
        }
    }
    (0..doc.len() as u32).map(NodeId).filter(|n| mark[n.index()]).collect()
}

/// Theorem 10.7 `id⁻¹(S)`: `ancestor-or-self({x | (x,y) ∈ ref, y ∈ S})`,
/// in `O(|D|)` time.
pub fn id_inverse_ref(doc: &Document, set: &[NodeId]) -> Vec<NodeId> {
    let mut in_s = vec![false; doc.len()];
    for &s in set {
        in_s[s.index()] = true;
    }
    let mut mark = vec![false; doc.len()];
    for (x, y) in doc.refs().iter() {
        if in_s[y.index()] {
            // ancestor-or-self of x, with early exit on marked.
            let mut cur = Some(x);
            while let Some(c) = cur {
                if mark[c.index()] {
                    break;
                }
                mark[c.index()] = true;
                cur = doc.parent(c);
            }
        }
    }
    (0..doc.len() as u32).map(NodeId).filter(|n| mark[n.index()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_xml::generate::{doc_bookstore, doc_idref_chain};

    /// Nodes where the Theorem 10.7 encoding is specified to agree with the
    /// exact semantics: element and root sources (text-borne references).
    fn element_like(d: &xpath_xml::Document) -> Vec<xpath_xml::NodeId> {
        d.all_nodes()
            .filter(|&n| {
                matches!(d.kind(n), xpath_xml::NodeKind::Element | xpath_xml::NodeKind::Root)
            })
            .collect()
    }

    #[test]
    fn exact_and_ref_agree_on_chain() {
        let d = doc_idref_chain(8);
        for x in element_like(&d) {
            let exact = id_set_exact(&d, &[x]);
            let via_ref = id_set_ref(&d, &[x]);
            assert_eq!(exact, via_ref, "node {x:?}");
        }
    }

    #[test]
    fn exact_and_ref_agree_on_bookstore() {
        let d = doc_bookstore();
        for x in element_like(&d) {
            assert_eq!(id_set_exact(&d, &[x]), id_set_ref(&d, &[x]), "node {x:?}");
        }
    }

    #[test]
    fn ref_encoding_misses_attribute_sources_by_design() {
        // The exact semantics sees the id attribute's own value; the ref
        // relation (built from text nodes, per Theorem 10.7) does not.
        let d = doc_bookstore();
        let b1 = d.element_by_id("b1").unwrap();
        let id_attr = d.attribute(b1, "id").unwrap();
        assert_eq!(id_set_exact(&d, &[id_attr]), vec![b1]);
        assert!(id_set_ref(&d, &[id_attr]).is_empty());
    }

    #[test]
    fn inverse_is_consistent() {
        // y ∈ id(x) iff x ∈ id⁻¹(y) — for the ref-based encoding, where
        // id(x) uses descendant-or-self, so id⁻¹(y) contains ancestors of
        // the referencing text's parent.
        let d = doc_idref_chain(6);
        for x in d.all_nodes() {
            for y in id_set_ref(&d, &[x]) {
                let back = id_inverse_ref(&d, &[y]);
                assert!(back.contains(&x), "x={x:?} y={y:?}");
            }
        }
    }

    #[test]
    fn id_of_unreferenced_is_empty() {
        let d = doc_bookstore();
        // The magazine references nothing.
        let m = d.element_by_id("m1").unwrap();
        assert!(id_set_exact(&d, &[m]).is_empty());
        assert!(id_set_ref(&d, &[m]).is_empty());
    }

    #[test]
    fn id_from_related_element() {
        let d = doc_bookstore();
        let b2 = d.element_by_id("b2").unwrap();
        // b2's <related> lists "b1 b3".
        let targets = id_set_exact(&d, &[b2]);
        assert_eq!(targets, vec![d.element_by_id("b1").unwrap(), d.element_by_id("b3").unwrap()]);
    }
}
