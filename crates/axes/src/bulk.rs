//! Set-at-a-time axis evaluation over the structure-of-arrays
//! [`AxisIndex`](xpath_xml::AxisIndex) and the hybrid [`NodeSet`] — the
//! fourth interchangeable axis backend (§3: "the actual techniques for
//! evaluating axes … will be interchangeable").
//!
//! Where [`crate::fast`] enumerates per node and merges, this module
//! applies each axis to a whole set at once:
//!
//! * **interval axes** (`descendant`, `descendant-or-self`, `following`,
//!   `preceding`) are staircase joins over preorder intervals — covered
//!   intervals are skipped, ranges are written word-parallel into a dense
//!   bitset, and the §4 attribute/namespace filtering is a single
//!   word-parallel and-not with the index's `special` mask;
//! * **pointer axes** (`child`, `parent`, siblings, ancestors) walk the
//!   flat `u32` link arrays instead of the node records, marking into a
//!   dense set with early exit on already-marked chains;
//! * results adapt back to the sparse representation when the output is
//!   small ([`NodeSet::adapt`]).
//!
//! All functions take any `NodeSet` representation as input and agree
//! exactly with [`crate::fast::eval_axis`] / the Algorithm 3.2 reference
//! (property-tested below and in the workspace suites).

use xpath_syntax::Axis;
use xpath_xml::axis_index::NONE;
use xpath_xml::{pool, simd, Document, NodeId, NodeKind, NodeSet};

use crate::cost::{CostModel, Kernel};

/// Typed set-to-set axis function `χ(S)` (Definition 3.1 with §4 type
/// filtering), set-at-a-time. Output is in document order.
pub fn axis_set(doc: &Document, axis: Axis, set: &NodeSet) -> NodeSet {
    axis_set_inner(doc, axis, set, true)
}

/// Adaptive typed axis function: [`axis_set_planned`] under the
/// process-wide [`CostModel::global`], discarding the provenance. This is
/// the engine's default axis entry point.
pub fn axis_set_adaptive(doc: &Document, axis: Axis, set: &NodeSet) -> NodeSet {
    axis_set_planned(doc, axis, set, CostModel::global()).0
}

/// Cost-based adaptive axis dispatch: estimate each applicable kernel's
/// cost under `model` (input density × axis shape × document size, with an
/// exact-output staircase pre-pass for the interval axes) and run the
/// cheapest. Returns the result and which [`Kernel`] produced it.
///
/// Agrees exactly with [`axis_set`] on every input (differential-tested
/// here and in the workspace suites); only the materialization route —
/// and therefore the constant factor — differs.
pub fn axis_set_planned(
    doc: &Document,
    axis: Axis,
    set: &NodeSet,
    model: &CostModel,
) -> (NodeSet, Kernel) {
    planned_inner(doc, axis, set, true, model)
}

/// Adaptive inverse axis function: [`inverse_axis_set_planned`] under the
/// process-wide model, discarding the provenance.
pub fn inverse_axis_set_adaptive(doc: &Document, axis: Axis, set: &NodeSet) -> NodeSet {
    inverse_axis_set_planned(doc, axis, set, CostModel::global()).0
}

/// Cost-based adaptive dispatch for the inverse axis function `χ⁻¹(X)`
/// (§10.1, Lemma 10.1). Same reduction as [`inverse_axis_set`], with the
/// untyped inverse application routed through the planner.
pub fn inverse_axis_set_planned(
    doc: &Document,
    axis: Axis,
    set: &NodeSet,
    model: &CostModel,
) -> (NodeSet, Kernel) {
    match axis {
        Axis::Attribute | Axis::Namespace | Axis::Id => {
            (inverse_axis_set(doc, axis, set), Kernel::BulkSparse)
        }
        _ => {
            let ix = doc.axis_index();
            let mut proper = set.clone();
            proper.subtract_words(ix.special_words());
            planned_inner(doc, axis.inverse(), &proper, false, model)
        }
    }
}

/// Shard entry point for the parallel CVT layer
/// (`xpath_core::parallel`): the planned axis application restricted to
/// the input ids in `[lo, hi)`. Pure and side-effect free — every axis
/// function distributes over input union (`χ(S) = ∪ᵢ χ(S ∩ rangeᵢ)`), so
/// shards can run this concurrently over a partition of the id universe
/// and union the per-shard results word-parallel at the join.
pub fn axis_set_planned_range(
    doc: &Document,
    axis: Axis,
    set: &NodeSet,
    lo: u32,
    hi: u32,
    model: &CostModel,
) -> (NodeSet, Kernel) {
    axis_set_planned(doc, axis, &set.restrict_range(lo, hi), model)
}

/// [`axis_set_planned_range`] for the inverse axis function `χ⁻¹` — the
/// shard entry point behind the parallel `S←` passes.
pub fn inverse_axis_set_planned_range(
    doc: &Document,
    axis: Axis,
    set: &NodeSet,
    lo: u32,
    hi: u32,
    model: &CostModel,
) -> (NodeSet, Kernel) {
    inverse_axis_set_planned(doc, axis, &set.restrict_range(lo, hi), model)
}

/// Untyped set-to-set axis function `χ0(S)` (§3), set-at-a-time.
pub fn axis_set_untyped(doc: &Document, axis: Axis, set: &NodeSet) -> NodeSet {
    axis_set_inner(doc, axis, set, false)
}

/// The inverse axis function `χ⁻¹(X)` of §10.1 on the typed axes,
/// set-at-a-time (Lemma 10.1: reduce to the untyped inverse).
pub fn inverse_axis_set(doc: &Document, axis: Axis, set: &NodeSet) -> NodeSet {
    match axis {
        Axis::Attribute => {
            let attrs: NodeSet =
                set.iter().filter(|&x| doc.kind(x) == NodeKind::Attribute).collect();
            axis_set_inner(doc, Axis::Parent, &attrs, false)
        }
        Axis::Namespace => {
            let nss: NodeSet = set.iter().filter(|&x| doc.kind(x) == NodeKind::Namespace).collect();
            axis_set_inner(doc, Axis::Parent, &nss, false)
        }
        Axis::Id => {
            let v = set.to_vec();
            let out = NodeSet::from_sorted(crate::id::id_inverse_ref(doc, &v));
            pool::give_ids(v);
            out
        }
        _ => {
            // χ⁻¹(X) = χ0⁻¹(X ∩ non-special), no result filtering.
            let ix = doc.axis_index();
            let mut proper = set.clone();
            proper.subtract_words(ix.special_words());
            axis_set_inner(doc, axis.inverse(), &proper, false)
        }
    }
}

fn axis_set_inner(doc: &Document, axis: Axis, set: &NodeSet, typed: bool) -> NodeSet {
    let ix = doc.axis_index();
    let n = doc.len() as u32;
    let strip = |mut s: NodeSet| -> NodeSet {
        if typed {
            s.subtract_words(ix.special_words());
        }
        s.adapt()
    };
    match axis {
        Axis::SelfAxis => strip(set.clone()),
        Axis::Child => {
            // Children of distinct parents are disjoint, so the walk
            // never produces duplicates; track sortedness inline and
            // sort only when an out-of-order push actually happened
            // (nested parents interleave their child ranges).
            let mut out = pool::take_ids();
            let mut prev = NONE;
            let mut sorted = true;
            for x in set {
                let mut c = ix.first_child(x.0);
                while c != NONE {
                    if !typed || !ix.is_special(c) {
                        sorted &= prev == NONE || c > prev;
                        prev = c;
                        out.push(NodeId(c));
                    }
                    c = ix.next_sibling(c);
                }
            }
            if !sorted {
                out.sort_unstable();
            }
            NodeSet::from_sorted(out)
        }
        Axis::Attribute | Axis::Namespace => {
            let want =
                if axis == Axis::Attribute { NodeKind::Attribute } else { NodeKind::Namespace };
            let mut out = pool::take_ids();
            for x in set {
                let mut c = ix.first_child(x.0);
                while c != NONE {
                    if doc.kind(NodeId(c)) == want {
                        out.push(NodeId(c));
                    }
                    c = ix.next_sibling(c);
                }
            }
            NodeSet::from_unsorted(out)
        }
        Axis::Parent => {
            let mut out = pool::take_ids();
            out.extend(set.iter().map(|x| ix.parent(x.0)).filter(|&p| p != NONE).map(NodeId));
            out.sort_unstable();
            out.dedup();
            NodeSet::from_sorted(out)
        }
        Axis::Ancestor | Axis::AncestorOrSelf => {
            let mut out = NodeSet::empty_dense(n);
            for x in set {
                let mut cur = if axis == Axis::AncestorOrSelf {
                    if !typed || !ix.is_special(x.0) {
                        x.0
                    } else {
                        ix.parent(x.0)
                    }
                } else {
                    ix.parent(x.0)
                };
                while cur != NONE {
                    if out.contains(NodeId(cur)) {
                        break; // everything above is already marked
                    }
                    out.insert(NodeId(cur));
                    cur = ix.parent(cur);
                }
            }
            out.adapt()
        }
        Axis::Descendant | Axis::DescendantOrSelf => {
            // Staircase join over the (sorted) preorder intervals:
            // covered intervals are skipped, each surviving range is one
            // word-parallel fill.
            let mut out = NodeSet::empty_dense(n);
            let mut next_free = 0u32;
            for x in set {
                let lo = if axis == Axis::Descendant { x.0 + 1 } else { x.0 };
                let hi = ix.subtree_end(x.0);
                out.insert_range(lo.max(next_free), hi.max(next_free));
                next_free = next_free.max(hi);
            }
            strip(out)
        }
        Axis::Following => {
            // following(S) = [min_{x∈S} subtree_end(x), |dom|).
            let mut out = NodeSet::empty_dense(n);
            if let Some(lo) = set.iter().map(|x| ix.subtree_end(x.0)).min() {
                out.insert_range(lo, n);
            }
            strip(out)
        }
        Axis::Preceding => {
            // preceding(S) = preceding(max S) = [0, max) − ancestors(max):
            // for y < max, subtree_end(y) > max iff y is an ancestor of
            // max. One range fill plus a parent-chain walk.
            let mut out = NodeSet::empty_dense(n);
            if let Some(max) = set.last() {
                out.insert_range(0, max.0);
                let mut a = ix.parent(max.0);
                while a != NONE {
                    out.difference_with(&NodeSet::singleton(NodeId(a)));
                    a = ix.parent(a);
                }
            }
            strip(out)
        }
        Axis::FollowingSibling => {
            let mut out = NodeSet::empty_dense(n);
            for x in set {
                let mut s = ix.next_sibling(x.0);
                while s != NONE {
                    if out.contains(NodeId(s)) {
                        break; // the rest of the chain is marked
                    }
                    out.insert(NodeId(s));
                    s = ix.next_sibling(s);
                }
            }
            strip(out)
        }
        Axis::PrecedingSibling => {
            let mut out = NodeSet::empty_dense(n);
            let ids = set.to_vec();
            for &x in ids.iter().rev() {
                let mut s = ix.prev_sibling(x.0);
                while s != NONE {
                    if out.contains(NodeId(s)) {
                        break;
                    }
                    out.insert(NodeId(s));
                    s = ix.prev_sibling(s);
                }
            }
            pool::give_ids(ids);
            strip(out)
        }
        Axis::Id => {
            let mut out = NodeSet::empty_dense(n);
            for x in set {
                for y in doc.deref_ids(doc.string_value(x)) {
                    out.insert(y);
                }
            }
            out.adapt()
        }
    }
}

/// The planner's dispatch. The interval axes run a `O(|S|)` staircase
/// pre-pass to learn the exact output cardinality before choosing a
/// materialization; the pointer-chasing axes choose between the per-node
/// enumeration loop and dense chain marking from the calibrated chain
/// estimate; the link-array axes already materialize sparse vectors and
/// pass straight through.
fn planned_inner(
    doc: &Document,
    axis: Axis,
    set: &NodeSet,
    typed: bool,
    model: &CostModel,
) -> (NodeSet, Kernel) {
    let ix = doc.axis_index();
    let n = doc.len() as u32;
    match axis {
        Axis::Descendant | Axis::DescendantOrSelf => {
            // One staircase walk collecting the surviving (disjoint,
            // ascending) intervals and the exact output cardinality; the
            // materialization pick then runs over the recorded ranges, so
            // the subtree-interval lookups are never repeated.
            let mut ranges = pool::take_ranges();
            let mut m = 0u64;
            let mut next_free = 0u32;
            for x in set {
                let lo = if axis == Axis::Descendant { x.0 + 1 } else { x.0 };
                let hi = ix.subtree_end(x.0);
                let lo = lo.max(next_free);
                if lo < hi {
                    ranges.push((lo, hi));
                    m += (hi - lo) as u64;
                }
                next_free = next_free.max(hi);
            }
            let out = materialize_ranges(&ranges, m as usize, set.len(), n, ix, typed, model);
            pool::give_ranges(ranges);
            out
        }
        Axis::Following => {
            let Some(lo) = set.iter().map(|x| ix.subtree_end(x.0)).min() else {
                return (NodeSet::new(), Kernel::BulkSparse);
            };
            let ranges = [(lo, n)];
            materialize_ranges(&ranges, (n - lo) as usize, set.len(), n, ix, typed, model)
        }
        Axis::Preceding => {
            // preceding(S) = [0, max) − ancestors(max); output ≈ max.
            let Some(max) = set.last() else {
                return (NodeSet::new(), Kernel::BulkSparse);
            };
            match model.pick_interval(n, set.len(), max.0 as usize) {
                Kernel::BulkSparse | Kernel::PerNode => {
                    // Ancestor ids of max, ascending (parents descend).
                    let mut anc = pool::take_ids();
                    let mut a = ix.parent(max.0);
                    while a != NONE {
                        anc.push(NodeId(a));
                        a = ix.parent(a);
                    }
                    anc.reverse();
                    let mut out = pool::take_ids();
                    out.reserve(max.0 as usize);
                    let mut ai = 0usize;
                    for i in 0..max.0 {
                        if ai < anc.len() && anc[ai].0 == i {
                            ai += 1;
                            continue;
                        }
                        if !typed || !ix.is_special(i) {
                            out.push(NodeId(i));
                        }
                    }
                    pool::give_ids(anc);
                    (NodeSet::from_sorted(out), Kernel::BulkSparse)
                }
                Kernel::BulkDense => (axis_set_inner(doc, axis, set, typed), Kernel::BulkDense),
            }
        }
        Axis::Ancestor | Axis::AncestorOrSelf | Axis::FollowingSibling | Axis::PrecedingSibling
            if typed =>
        {
            match model.pick_chain(n, set.len()) {
                Kernel::PerNode => (per_node_union(doc, axis, set), Kernel::PerNode),
                _ => (axis_set_inner(doc, axis, set, typed), Kernel::BulkDense),
            }
        }
        // Untyped chains (inverse dispatch) and the link-array axes:
        // existing kernels, classified by what they materialize.
        Axis::Ancestor | Axis::AncestorOrSelf | Axis::FollowingSibling | Axis::PrecedingSibling => {
            (axis_set_inner(doc, axis, set, typed), Kernel::BulkDense)
        }
        Axis::SelfAxis
        | Axis::Child
        | Axis::Parent
        | Axis::Attribute
        | Axis::Namespace
        | Axis::Id => (axis_set_inner(doc, axis, set, typed), Kernel::BulkSparse),
    }
}

/// Materialize disjoint ascending `[lo, hi)` intervals under the cost
/// model's pick: below the crossover, write ids straight into a sorted
/// vector (the staircase-sparse kernel); at or above it, word-parallel
/// range fills into a dense bitset with the §4 type strip.
fn materialize_ranges(
    ranges: &[(u32, u32)],
    total: usize,
    input_len: usize,
    universe: u32,
    ix: &xpath_xml::AxisIndex,
    typed: bool,
    model: &CostModel,
) -> (NodeSet, Kernel) {
    match model.pick_interval(universe, input_len, total) {
        Kernel::BulkSparse | Kernel::PerNode => {
            let mut out = pool::take_ids();
            out.reserve(total);
            let specials = ix.special_words();
            for &(lo, hi) in ranges {
                if !typed {
                    simd::extend_id_run(&mut out, lo, hi);
                    continue;
                }
                // Typed strip, blockwise: 64-aligned blocks whose
                // special-mask word is zero — the common case outside
                // attribute-heavy regions — take the vectorized id-run
                // writer; blocks with special nodes filter per id.
                let mut i = lo;
                while i < hi {
                    let word = specials.get((i / 64) as usize).copied().unwrap_or(0);
                    if word == 0 && i % 64 == 0 {
                        let mut seg = (i + 64).min(hi);
                        while seg < hi
                            && seg % 64 == 0
                            && specials.get((seg / 64) as usize).copied().unwrap_or(0) == 0
                        {
                            seg = (seg + 64).min(hi);
                        }
                        simd::extend_id_run(&mut out, i, seg);
                        i = seg;
                    } else {
                        let seg = ((i / 64 + 1) * 64).min(hi);
                        if word == 0 {
                            simd::extend_id_run(&mut out, i, seg);
                        } else {
                            out.extend((i..seg).filter(|&j| !ix.is_special(j)).map(NodeId));
                        }
                        i = seg;
                    }
                }
            }
            (NodeSet::from_sorted(out), Kernel::BulkSparse)
        }
        Kernel::BulkDense => {
            let mut out = NodeSet::empty_dense(universe);
            for &(lo, hi) in ranges {
                out.insert_range(lo, hi);
            }
            if typed {
                out.subtract_words(ix.special_words());
            }
            (out.adapt(), Kernel::BulkDense)
        }
    }
}

/// The per-node fallback for sparse pointer-chasing inputs: enumerate
/// `axis_from` per source node and merge — exactly the seed's hot path,
/// which stays the cheapest plan when `|S| · chain` is far below the
/// document's word count.
fn per_node_union(doc: &Document, axis: Axis, set: &NodeSet) -> NodeSet {
    let mut out = pool::take_ids();
    let mut buf = pool::take_ids();
    for x in set {
        crate::fast::axis_from_into(doc, axis, x, &mut buf);
        out.extend_from_slice(&buf);
    }
    pool::give_ids(buf);
    NodeSet::from_unsorted(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::eval_axis_untyped;
    use xpath_xml::generate::{doc_bookstore, doc_figure8, doc_flat, doc_random, RandomDocConfig};
    use xpath_xml::rng::Rng;

    /// Typed reference implementation per §4, built on Algorithm 3.2.
    fn typed_reference(doc: &Document, axis: Axis, set: &[NodeId]) -> Vec<NodeId> {
        match axis {
            Axis::Attribute => {
                let mut v = eval_axis_untyped(doc, Axis::Child, set);
                v.retain(|&n| doc.kind(n) == NodeKind::Attribute);
                v
            }
            Axis::Namespace => {
                let mut v = eval_axis_untyped(doc, Axis::Child, set);
                v.retain(|&n| doc.kind(n) == NodeKind::Namespace);
                v
            }
            Axis::Id => crate::fast::eval_axis(doc, Axis::Id, set),
            _ => {
                let mut v = eval_axis_untyped(doc, axis, set);
                v.retain(|&n| !doc.kind(n).is_special_child());
                v
            }
        }
    }

    /// The calibrated model plus two adversarial ones that force each
    /// extreme, so every kernel's route is exercised on every input.
    fn planner_models() -> [(&'static str, CostModel); 3] {
        let force_sparse = CostModel { dense_word_ns: 1e9, ..CostModel::CALIBRATED };
        let force_dense = CostModel { dense_word_ns: 1e-9, chain_ns: 1e9, ..CostModel::CALIBRATED };
        [("calibrated", CostModel::CALIBRATED), ("sparse", force_sparse), ("dense", force_dense)]
    }

    fn check_doc(doc: &Document, seed: u64) {
        let mut rng = Rng::seed_from_u64(seed);
        let n = doc.len() as u32;
        // A spread of densities: singletons, sparse, dense, full.
        let mut sets: Vec<Vec<NodeId>> =
            vec![doc.all_nodes().collect(), doc.all_nodes().filter(|x| x.0 % 7 == 1).collect()];
        for p in [0.02, 0.3, 0.8] {
            sets.push((0..n).filter(|_| rng.random_bool(p)).map(NodeId).collect());
        }
        for x in doc.all_nodes().take(8) {
            sets.push(vec![x]);
        }
        for ids in sets {
            let sparse = NodeSet::from_sorted(ids.clone());
            let dense = sparse.clone().densify(n);
            for axis in Axis::STANDARD {
                let reference = typed_reference(doc, axis, &ids);
                let fast = crate::fast::eval_axis(doc, axis, &ids);
                assert_eq!(fast, reference, "fast vs alg3.2 {axis:?} seed {seed}");
                for (repr, input) in [("sparse", &sparse), ("dense", &dense)] {
                    let got = axis_set(doc, axis, input);
                    assert_eq!(
                        got.to_vec(),
                        reference,
                        "bulk({repr}) vs reference {axis:?} seed {seed} |S|={}",
                        ids.len()
                    );
                    let ids_out: Vec<u32> = got.iter().map(|x| x.0).collect();
                    assert!(ids_out.windows(2).all(|w| w[0] < w[1]), "doc order {axis:?}");
                    // The adaptive planner agrees under every model,
                    // including ones forced to each extreme kernel.
                    for (name, model) in planner_models() {
                        let (planned, kernel) = axis_set_planned(doc, axis, input, &model);
                        assert_eq!(
                            planned.to_vec(),
                            reference,
                            "planned({repr},{name})={kernel:?} {axis:?} seed {seed}"
                        );
                    }
                }
                // Untyped agrees with Algorithm 3.2's untyped semantics.
                if !matches!(axis, Axis::Attribute | Axis::Namespace | Axis::Id) {
                    assert_eq!(
                        axis_set_untyped(doc, axis, &sparse).to_vec(),
                        eval_axis_untyped(doc, axis, &ids),
                        "untyped {axis:?} seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn bulk_matches_reference_on_fixed_docs() {
        check_doc(&doc_flat(6), 1);
        check_doc(&doc_figure8(), 2);
        check_doc(&doc_bookstore(), 3);
    }

    #[test]
    fn bulk_matches_reference_on_random_docs() {
        for seed in 0..8 {
            let cfg = RandomDocConfig { elements: 45, ..RandomDocConfig::default() };
            let doc = doc_random(seed, &cfg);
            check_doc(&doc, seed);
        }
    }

    #[test]
    fn bulk_inverse_matches_fast_inverse() {
        for seed in 0..4 {
            let cfg = RandomDocConfig { elements: 35, ..RandomDocConfig::default() };
            let doc = doc_random(seed, &cfg);
            let n = doc.len() as u32;
            let ids: Vec<NodeId> = doc.all_nodes().filter(|x| x.0 % 3 != 2).collect();
            let sparse = NodeSet::from_sorted(ids.clone());
            let dense = sparse.clone().densify(n);
            for axis in Axis::STANDARD {
                let want = crate::fast::inverse_axis_set(&doc, axis, &ids);
                assert_eq!(inverse_axis_set(&doc, axis, &sparse).to_vec(), want, "{axis:?}");
                assert_eq!(inverse_axis_set(&doc, axis, &dense).to_vec(), want, "{axis:?} dense");
                for (name, model) in planner_models() {
                    let (planned, kernel) = inverse_axis_set_planned(&doc, axis, &sparse, &model);
                    assert_eq!(
                        planned.to_vec(),
                        want,
                        "planned inverse({name})={kernel:?} {axis:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn shard_entry_points_reassemble_every_axis() {
        // χ(S) = ∪ᵢ χ(S ∩ rangeᵢ) over any word-aligned partition, for the
        // forward and the inverse axis functions alike.
        use xpath_xml::nodeset::shard_ranges;
        let doc = doc_random(11, &RandomDocConfig { elements: 60, ..RandomDocConfig::default() });
        let n = doc.len() as u32;
        let ids: Vec<NodeId> = doc.all_nodes().filter(|x| x.0 % 2 == 0).collect();
        let model = CostModel::CALIBRATED;
        for set in [NodeSet::from_sorted(ids.clone()), NodeSet::from_sorted(ids).densify(n)] {
            for axis in Axis::STANDARD {
                let (want_fwd, _) = axis_set_planned(&doc, axis, &set, &model);
                let (want_inv, _) = inverse_axis_set_planned(&doc, axis, &set, &model);
                for shards in [2usize, 3, 8] {
                    let ranges = shard_ranges(n, shards);
                    let fwd = NodeSet::union_shards(ranges.iter().map(|&(lo, hi)| {
                        axis_set_planned_range(&doc, axis, &set, lo, hi, &model).0
                    }));
                    assert_eq!(fwd, want_fwd, "{axis:?} forward, {shards} shards");
                    let inv = NodeSet::union_shards(ranges.iter().map(|&(lo, hi)| {
                        inverse_axis_set_planned_range(&doc, axis, &set, lo, hi, &model).0
                    }));
                    assert_eq!(inv, want_inv, "{axis:?} inverse, {shards} shards");
                }
            }
        }
    }

    #[test]
    fn interval_axes_produce_dense_sets_on_dense_inputs() {
        let doc = doc_flat(200);
        let all: NodeSet = doc.all_nodes().collect();
        let desc = axis_set(&doc, Axis::DescendantOrSelf, &all);
        assert!(desc.is_dense(), "a full descendant sweep should stay dense");
        let one = axis_set(&doc, Axis::Child, &NodeSet::singleton(doc.root()));
        assert!(!one.is_dense(), "tiny results adapt to the sparse repr");
    }
}
