//! Set-at-a-time axis evaluation over the structure-of-arrays
//! [`AxisIndex`](xpath_xml::AxisIndex) and the hybrid [`NodeSet`] — the
//! fourth interchangeable axis backend (§3: "the actual techniques for
//! evaluating axes … will be interchangeable").
//!
//! Where [`crate::fast`] enumerates per node and merges, this module
//! applies each axis to a whole set at once:
//!
//! * **interval axes** (`descendant`, `descendant-or-self`, `following`,
//!   `preceding`) are staircase joins over preorder intervals — covered
//!   intervals are skipped, ranges are written word-parallel into a dense
//!   bitset, and the §4 attribute/namespace filtering is a single
//!   word-parallel and-not with the index's `special` mask;
//! * **pointer axes** (`child`, `parent`, siblings, ancestors) walk the
//!   flat `u32` link arrays instead of the node records, marking into a
//!   dense set with early exit on already-marked chains;
//! * results adapt back to the sparse representation when the output is
//!   small ([`NodeSet::adapt`]).
//!
//! All functions take any `NodeSet` representation as input and agree
//! exactly with [`crate::fast::eval_axis`] / the Algorithm 3.2 reference
//! (property-tested below and in the workspace suites).

use xpath_syntax::Axis;
use xpath_xml::axis_index::NONE;
use xpath_xml::{Document, NodeId, NodeKind, NodeSet};

/// Typed set-to-set axis function `χ(S)` (Definition 3.1 with §4 type
/// filtering), set-at-a-time. Output is in document order.
pub fn axis_set(doc: &Document, axis: Axis, set: &NodeSet) -> NodeSet {
    axis_set_inner(doc, axis, set, true)
}

/// Untyped set-to-set axis function `χ0(S)` (§3), set-at-a-time.
pub fn axis_set_untyped(doc: &Document, axis: Axis, set: &NodeSet) -> NodeSet {
    axis_set_inner(doc, axis, set, false)
}

/// The inverse axis function `χ⁻¹(X)` of §10.1 on the typed axes,
/// set-at-a-time (Lemma 10.1: reduce to the untyped inverse).
pub fn inverse_axis_set(doc: &Document, axis: Axis, set: &NodeSet) -> NodeSet {
    match axis {
        Axis::Attribute => {
            let attrs: NodeSet =
                set.iter().filter(|&x| doc.kind(x) == NodeKind::Attribute).collect();
            axis_set_inner(doc, Axis::Parent, &attrs, false)
        }
        Axis::Namespace => {
            let nss: NodeSet = set.iter().filter(|&x| doc.kind(x) == NodeKind::Namespace).collect();
            axis_set_inner(doc, Axis::Parent, &nss, false)
        }
        Axis::Id => {
            let v = set.to_vec();
            NodeSet::from_sorted(crate::id::id_inverse_ref(doc, &v))
        }
        _ => {
            // χ⁻¹(X) = χ0⁻¹(X ∩ non-special), no result filtering.
            let ix = doc.axis_index();
            let mut proper = set.clone();
            proper.subtract_words(ix.special_words());
            axis_set_inner(doc, axis.inverse(), &proper, false)
        }
    }
}

fn axis_set_inner(doc: &Document, axis: Axis, set: &NodeSet, typed: bool) -> NodeSet {
    let ix = doc.axis_index();
    let n = doc.len() as u32;
    let strip = |mut s: NodeSet| -> NodeSet {
        if typed {
            s.subtract_words(ix.special_words());
        }
        s.adapt()
    };
    match axis {
        Axis::SelfAxis => strip(set.clone()),
        Axis::Child => {
            let mut out = Vec::new();
            for x in set {
                let mut c = ix.first_child(x.0);
                while c != NONE {
                    if !typed || !ix.is_special(c) {
                        out.push(NodeId(c));
                    }
                    c = ix.next_sibling(c);
                }
            }
            NodeSet::from_unsorted(out)
        }
        Axis::Attribute | Axis::Namespace => {
            let want =
                if axis == Axis::Attribute { NodeKind::Attribute } else { NodeKind::Namespace };
            let mut out = Vec::new();
            for x in set {
                let mut c = ix.first_child(x.0);
                while c != NONE {
                    if doc.kind(NodeId(c)) == want {
                        out.push(NodeId(c));
                    }
                    c = ix.next_sibling(c);
                }
            }
            NodeSet::from_unsorted(out)
        }
        Axis::Parent => {
            let mut out: Vec<NodeId> =
                set.iter().map(|x| ix.parent(x.0)).filter(|&p| p != NONE).map(NodeId).collect();
            out.sort_unstable();
            out.dedup();
            NodeSet::from_sorted(out)
        }
        Axis::Ancestor | Axis::AncestorOrSelf => {
            let mut out = NodeSet::empty_dense(n);
            for x in set {
                let mut cur = if axis == Axis::AncestorOrSelf {
                    if !typed || !ix.is_special(x.0) {
                        x.0
                    } else {
                        ix.parent(x.0)
                    }
                } else {
                    ix.parent(x.0)
                };
                while cur != NONE {
                    if out.contains(NodeId(cur)) {
                        break; // everything above is already marked
                    }
                    out.insert(NodeId(cur));
                    cur = ix.parent(cur);
                }
            }
            out.adapt()
        }
        Axis::Descendant | Axis::DescendantOrSelf => {
            // Staircase join over the (sorted) preorder intervals:
            // covered intervals are skipped, each surviving range is one
            // word-parallel fill.
            let mut out = NodeSet::empty_dense(n);
            let mut next_free = 0u32;
            for x in set {
                let lo = if axis == Axis::Descendant { x.0 + 1 } else { x.0 };
                let hi = ix.subtree_end(x.0);
                out.insert_range(lo.max(next_free), hi.max(next_free));
                next_free = next_free.max(hi);
            }
            strip(out)
        }
        Axis::Following => {
            // following(S) = [min_{x∈S} subtree_end(x), |dom|).
            let mut out = NodeSet::empty_dense(n);
            if let Some(lo) = set.iter().map(|x| ix.subtree_end(x.0)).min() {
                out.insert_range(lo, n);
            }
            strip(out)
        }
        Axis::Preceding => {
            // preceding(S) = preceding(max S) = [0, max) − ancestors(max):
            // for y < max, subtree_end(y) > max iff y is an ancestor of
            // max. One range fill plus a parent-chain walk.
            let mut out = NodeSet::empty_dense(n);
            if let Some(max) = set.last() {
                out.insert_range(0, max.0);
                let mut a = ix.parent(max.0);
                while a != NONE {
                    out.difference_with(&NodeSet::singleton(NodeId(a)));
                    a = ix.parent(a);
                }
            }
            strip(out)
        }
        Axis::FollowingSibling => {
            let mut out = NodeSet::empty_dense(n);
            for x in set {
                let mut s = ix.next_sibling(x.0);
                while s != NONE {
                    if out.contains(NodeId(s)) {
                        break; // the rest of the chain is marked
                    }
                    out.insert(NodeId(s));
                    s = ix.next_sibling(s);
                }
            }
            strip(out)
        }
        Axis::PrecedingSibling => {
            let mut out = NodeSet::empty_dense(n);
            let ids = set.to_vec();
            for &x in ids.iter().rev() {
                let mut s = ix.prev_sibling(x.0);
                while s != NONE {
                    if out.contains(NodeId(s)) {
                        break;
                    }
                    out.insert(NodeId(s));
                    s = ix.prev_sibling(s);
                }
            }
            strip(out)
        }
        Axis::Id => {
            let mut out = NodeSet::empty_dense(n);
            for x in set {
                for y in doc.deref_ids(doc.string_value(x)) {
                    out.insert(y);
                }
            }
            out.adapt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::eval_axis_untyped;
    use xpath_xml::generate::{doc_bookstore, doc_figure8, doc_flat, doc_random, RandomDocConfig};
    use xpath_xml::rng::Rng;

    /// Typed reference implementation per §4, built on Algorithm 3.2.
    fn typed_reference(doc: &Document, axis: Axis, set: &[NodeId]) -> Vec<NodeId> {
        match axis {
            Axis::Attribute => {
                let mut v = eval_axis_untyped(doc, Axis::Child, set);
                v.retain(|&n| doc.kind(n) == NodeKind::Attribute);
                v
            }
            Axis::Namespace => {
                let mut v = eval_axis_untyped(doc, Axis::Child, set);
                v.retain(|&n| doc.kind(n) == NodeKind::Namespace);
                v
            }
            Axis::Id => crate::fast::eval_axis(doc, Axis::Id, set),
            _ => {
                let mut v = eval_axis_untyped(doc, axis, set);
                v.retain(|&n| !doc.kind(n).is_special_child());
                v
            }
        }
    }

    fn check_doc(doc: &Document, seed: u64) {
        let mut rng = Rng::seed_from_u64(seed);
        let n = doc.len() as u32;
        // A spread of densities: singletons, sparse, dense, full.
        let mut sets: Vec<Vec<NodeId>> =
            vec![doc.all_nodes().collect(), doc.all_nodes().filter(|x| x.0 % 7 == 1).collect()];
        for p in [0.02, 0.3, 0.8] {
            sets.push((0..n).filter(|_| rng.random_bool(p)).map(NodeId).collect());
        }
        for x in doc.all_nodes().take(8) {
            sets.push(vec![x]);
        }
        for ids in sets {
            let sparse = NodeSet::from_sorted(ids.clone());
            let dense = sparse.clone().densify(n);
            for axis in Axis::STANDARD {
                let reference = typed_reference(doc, axis, &ids);
                let fast = crate::fast::eval_axis(doc, axis, &ids);
                assert_eq!(fast, reference, "fast vs alg3.2 {axis:?} seed {seed}");
                for (repr, input) in [("sparse", &sparse), ("dense", &dense)] {
                    let got = axis_set(doc, axis, input);
                    assert_eq!(
                        got.to_vec(),
                        reference,
                        "bulk({repr}) vs reference {axis:?} seed {seed} |S|={}",
                        ids.len()
                    );
                    let ids_out: Vec<u32> = got.iter().map(|x| x.0).collect();
                    assert!(ids_out.windows(2).all(|w| w[0] < w[1]), "doc order {axis:?}");
                }
                // Untyped agrees with Algorithm 3.2's untyped semantics.
                if !matches!(axis, Axis::Attribute | Axis::Namespace | Axis::Id) {
                    assert_eq!(
                        axis_set_untyped(doc, axis, &sparse).to_vec(),
                        eval_axis_untyped(doc, axis, &ids),
                        "untyped {axis:?} seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn bulk_matches_reference_on_fixed_docs() {
        check_doc(&doc_flat(6), 1);
        check_doc(&doc_figure8(), 2);
        check_doc(&doc_bookstore(), 3);
    }

    #[test]
    fn bulk_matches_reference_on_random_docs() {
        for seed in 0..8 {
            let cfg = RandomDocConfig { elements: 45, ..RandomDocConfig::default() };
            let doc = doc_random(seed, &cfg);
            check_doc(&doc, seed);
        }
    }

    #[test]
    fn bulk_inverse_matches_fast_inverse() {
        for seed in 0..4 {
            let cfg = RandomDocConfig { elements: 35, ..RandomDocConfig::default() };
            let doc = doc_random(seed, &cfg);
            let n = doc.len() as u32;
            let ids: Vec<NodeId> = doc.all_nodes().filter(|x| x.0 % 3 != 2).collect();
            let sparse = NodeSet::from_sorted(ids.clone());
            let dense = sparse.clone().densify(n);
            for axis in Axis::STANDARD {
                let want = crate::fast::inverse_axis_set(&doc, axis, &ids);
                assert_eq!(inverse_axis_set(&doc, axis, &sparse).to_vec(), want, "{axis:?}");
                assert_eq!(inverse_axis_set(&doc, axis, &dense).to_vec(), want, "{axis:?} dense");
            }
        }
    }

    #[test]
    fn interval_axes_produce_dense_sets_on_dense_inputs() {
        let doc = doc_flat(200);
        let all: NodeSet = doc.all_nodes().collect();
        let desc = axis_set(&doc, Axis::DescendantOrSelf, &all);
        assert!(desc.is_dense(), "a full descendant sweep should stay dense");
        let one = axis_set(&doc, Axis::Child, &NodeSet::singleton(doc.root()));
        assert!(!one.is_dense(), "tiny results adapt to the sparse repr");
    }
}
