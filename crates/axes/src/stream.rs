//! Resumable, early-exit axis expansion for the lazy cursor layer
//! (`xpath_core::cursor`).
//!
//! Every **forward** axis is *preorder-monotone*: each output id is ≥ its
//! input id (`self` maps a node to itself; `child`, `descendant`,
//! `following`, `following-sibling`, `attribute` and `namespace` all
//! produce nodes strictly after their input in document order). So a
//! pipeline of forward steps can be evaluated **block-synchronously**
//! over the id space: once every input with id `< hi` has been fed, the
//! outputs with id `< hi` are final — no later input can add one.
//!
//! A [`StepStreamer`] is the resumable per-step kernel behind that
//! invariant: it accepts input nodes one at a time **in ascending id
//! order** and accumulates the raw axis image into a dense word-block
//! set, using exactly the same staircase / chain-walk routes as the
//! materializing kernels in [`crate::bulk`] (covered-interval skipping
//! via the `next_free` watermark, marked-chain early exit, inline
//! special-child filtering on `child`). The cursor layer then reads one
//! `[lo, hi)` word-block window at a time, applies the §4 type strip and
//! the node test per block, and stops pulling as soon as its caller is
//! satisfied — the early-exit path never pays for document regions past
//! the last block it needed.
//!
//! Reverse axes are not preorder-monotone (an `ancestor` output precedes
//! its input), so they are not streamable here; the cursor layer
//! materializes those spines instead ([`is_streamable`] is the gate, and
//! the analyzer's verdict surfaces in `xpq --explain`).

use xpath_syntax::Axis;
use xpath_xml::axis_index::NONE;
use xpath_xml::{Document, NodeId, NodeKind, NodeSet};

/// Can a forward spine step over `axis` be evaluated block-synchronously
/// (every output id ≥ the input id)? Reverse axes, `parent` (output
/// *precedes* input), and the `id` axis (targets anywhere in the
/// document) are not.
pub fn is_streamable(axis: Axis) -> bool {
    matches!(
        axis,
        Axis::SelfAxis
            | Axis::Child
            | Axis::Attribute
            | Axis::Namespace
            | Axis::Descendant
            | Axis::DescendantOrSelf
            | Axis::Following
            | Axis::FollowingSibling
    )
}

/// Resumable set-at-a-time expansion of one forward axis: feed input
/// nodes in ascending id order with [`StepStreamer::push`]; after every
/// input `< hi` has been pushed, `expanded() ∩ [0, hi)` is the final
/// (untyped, except `child`/`attribute`/`namespace`'s inline filtering)
/// axis image below `hi` — the block-synchronous invariant the lazy
/// cursor pipeline is built on.
///
/// The accumulated image is a dense bitset (pooled words, recycled on
/// drop); interval axes write word-parallel range fills, pointer axes
/// walk the flat link arrays with the same early exits as
/// [`crate::bulk::axis_set`].
#[derive(Clone, Debug)]
pub struct StepStreamer {
    axis: Axis,
    expanded: NodeSet,
    /// Staircase watermark for `descendant`/`descendant-or-self`:
    /// covered subtree intervals are skipped exactly as in the bulk
    /// kernel (inputs arrive ascending, so nested subtrees are always
    /// covered by the time they arrive).
    next_free: u32,
    /// Current low bound of the `following` image `[follow_lo, n)`;
    /// starts at `n` (empty) and only ever decreases.
    follow_lo: u32,
}

impl StepStreamer {
    /// A streamer for `axis` over `doc`, or `None` if the axis is not
    /// [`is_streamable`].
    pub fn new(doc: &Document, axis: Axis) -> Option<StepStreamer> {
        if !is_streamable(axis) {
            return None;
        }
        let n = doc.len() as u32;
        Some(StepStreamer { axis, expanded: NodeSet::empty_dense(n), next_free: 0, follow_lo: n })
    }

    /// The axis this streamer expands.
    pub fn axis(&self) -> Axis {
        self.axis
    }

    /// Does the accumulated image still need the §4 type strip
    /// (subtracting attribute/namespace nodes)? `child` filters specials
    /// inline and `attribute`/`namespace` *produce* special nodes, so
    /// only the interval axes and `self`/`following-sibling` answer
    /// `true`.
    pub fn needs_type_strip(&self) -> bool {
        !matches!(self.axis, Axis::Child | Axis::Attribute | Axis::Namespace)
    }

    /// Feed one input node. Inputs must arrive in ascending id order
    /// across all `push` calls (the caller's block pipeline guarantees
    /// this; the staircase and chain early exits rely on it).
    pub fn push(&mut self, doc: &Document, x: NodeId) {
        let ix = doc.axis_index();
        match self.axis {
            Axis::SelfAxis => {
                self.expanded.insert(x);
            }
            Axis::Child => {
                let mut c = ix.first_child(x.0);
                while c != NONE {
                    if !ix.is_special(c) {
                        self.expanded.insert(NodeId(c));
                    }
                    c = ix.next_sibling(c);
                }
            }
            Axis::Attribute | Axis::Namespace => {
                let want = if self.axis == Axis::Attribute {
                    NodeKind::Attribute
                } else {
                    NodeKind::Namespace
                };
                let mut c = ix.first_child(x.0);
                while c != NONE {
                    if doc.kind(NodeId(c)) == want {
                        self.expanded.insert(NodeId(c));
                    }
                    c = ix.next_sibling(c);
                }
            }
            Axis::Descendant | Axis::DescendantOrSelf => {
                let lo = if self.axis == Axis::Descendant { x.0 + 1 } else { x.0 };
                let hi = ix.subtree_end(x.0);
                self.expanded.insert_range(lo.max(self.next_free), hi.max(self.next_free));
                self.next_free = self.next_free.max(hi);
            }
            Axis::Following => {
                // following(S) = [min subtree_end, n): a new input can
                // only lower the bound, adding one prefix range.
                let t = ix.subtree_end(x.0);
                if t < self.follow_lo {
                    self.expanded.insert_range(t, self.follow_lo);
                    self.follow_lo = t;
                }
            }
            Axis::FollowingSibling => {
                let mut s = ix.next_sibling(x.0);
                while s != NONE {
                    if self.expanded.contains(NodeId(s)) {
                        break; // the rest of the chain is marked
                    }
                    self.expanded.insert(NodeId(s));
                    s = ix.next_sibling(s);
                }
            }
            // `new` refuses every other axis.
            _ => unreachable!("non-streamable axis in StepStreamer"),
        }
    }

    /// The raw axis image of every input pushed so far (before the §4
    /// type strip — see [`StepStreamer::needs_type_strip`] — and before
    /// any node test). `expanded() ∩ [0, hi)` is final once all inputs
    /// `< hi` are in.
    pub fn expanded(&self) -> &NodeSet {
        &self.expanded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bulk;
    use xpath_xml::generate::{doc_bookstore, doc_figure8, doc_random, RandomDocConfig};

    const STREAMABLE: &[Axis] = &[
        Axis::SelfAxis,
        Axis::Child,
        Axis::Attribute,
        Axis::Namespace,
        Axis::Descendant,
        Axis::DescendantOrSelf,
        Axis::Following,
        Axis::FollowingSibling,
    ];

    /// Strip + adapt the streamer image the way the bulk kernel would,
    /// so the two are content-comparable.
    fn finished(doc: &Document, s: &StepStreamer) -> NodeSet {
        let mut out = s.expanded().clone();
        if s.needs_type_strip() {
            out.subtract_words(doc.axis_index().special_words());
        }
        out.adapt()
    }

    #[test]
    fn reverse_axes_are_refused() {
        let d = doc_figure8();
        for axis in [Axis::Parent, Axis::Ancestor, Axis::Preceding, Axis::PrecedingSibling] {
            assert!(!is_streamable(axis));
            assert!(StepStreamer::new(&d, axis).is_none());
        }
    }

    #[test]
    fn streamed_image_matches_bulk_kernel() {
        let docs = [
            doc_figure8(),
            doc_bookstore(),
            doc_random(7, &RandomDocConfig { elements: 60, ..RandomDocConfig::default() }),
        ];
        for doc in &docs {
            let inputs: Vec<NodeId> = doc.all_nodes().filter(|x| x.0 % 3 != 1).collect();
            let input_set = NodeSet::from_sorted(inputs.clone());
            for &axis in STREAMABLE {
                let want = bulk::axis_set(doc, axis, &input_set);
                let mut s = StepStreamer::new(doc, axis).unwrap();
                for &x in &inputs {
                    s.push(doc, x);
                }
                assert_eq!(finished(doc, &s), want, "{axis:?}");
            }
        }
    }

    #[test]
    fn block_synchronous_prefix_is_final() {
        // After pushing only the inputs < hi, the image below hi must
        // already equal the full evaluation's image below hi — the
        // invariant that lets the cursor emit a block and never revisit.
        let doc = doc_random(3, &RandomDocConfig { elements: 80, ..RandomDocConfig::default() });
        let n = doc.len() as u32;
        let inputs: Vec<NodeId> = doc.all_nodes().filter(|x| x.0 % 2 == 0).collect();
        let full = NodeSet::from_sorted(inputs.clone());
        for &axis in STREAMABLE {
            let want_full = bulk::axis_set(&doc, axis, &full);
            for hi in [1u32, n / 4, n / 2, n] {
                let mut s = StepStreamer::new(&doc, axis).unwrap();
                for &x in inputs.iter().filter(|x| x.0 < hi) {
                    s.push(&doc, x);
                }
                assert_eq!(
                    finished(&doc, &s).restrict_range(0, hi),
                    want_full.restrict_range(0, hi),
                    "{axis:?} below {hi}"
                );
            }
        }
    }
}
