//! # xpath-axes — axis evaluation engine
//!
//! Implements §3–§4 of Gottlob, Koch & Pichler's *Efficient Algorithms for
//! Processing XPath Queries*:
//!
//! * [`regex`] — the Table I axis definitions as limited regular expressions
//!   over `firstchild`/`nextsibling` and their inverses, evaluated by
//!   **Algorithm 3.2** in `O(|dom|)` (Lemma 3.3);
//! * [`typed`] — the §4 lifting to XPath's typed axes (attribute/namespace
//!   filtering) on top of Algorithm 3.2;
//! * [`fast`] — interchangeable direct implementations (per-node
//!   enumeration, preorder-interval set algorithms, inverse axes `χ⁻¹` for
//!   §10/§11, `idx_χ` document-order indexing);
//! * [`id`] — the `id` axis and its linear-time `ref`-relation encoding
//!   (Theorem 10.7);
//! * [`prepost`] — the pre/post-plane window encoding (Grust et al. 2004)
//!   and the Stack-Tree structural merge join (Al-Khalifa et al. 2002), the
//!   two axis-evaluation techniques §3 cites as interchangeable with
//!   Algorithm 3.2;
//! * [`bulk`] — set-at-a-time axis functions over the hybrid
//!   [`NodeSet`](xpath_xml::NodeSet) and the structure-of-arrays
//!   [`AxisIndex`](xpath_xml::AxisIndex): staircase joins for the interval
//!   axes, word-parallel range fills and type filtering;
//! * [`stream`] — resumable block-synchronous expansion of the forward
//!   axes ([`stream::StepStreamer`]) for the lazy cursor layer: early
//!   exit, deadlines and cancellation without giving up the bulk
//!   kernels' staircase and chain-walk routes;
//! * [`cost`] — the calibrated cost model behind the **adaptive** kernel
//!   planner ([`bulk::axis_set_planned`]): per axis application, pick the
//!   cheapest of the per-node loop, the sparse staircase and the dense
//!   word-parallel kernel from input density × axis shape × document
//!   size — the engine's default backend.
//!
//! Property tests assert that all backends agree with the Algorithm 3.2
//! reference on random documents.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bulk;
pub mod cost;
pub mod fast;
pub mod id;
pub mod prepost;
pub mod regex;
pub mod stream;
pub mod typed;

pub use bulk::{axis_set, axis_set_adaptive, axis_set_planned};
pub use cost::{BatchMode, CostModel, Kernel, KernelCounters, KernelCounts};
pub use fast::{
    axis_from, axis_from_into, eval_axis, eval_axis_untyped_fast, idx_in, inverse_axis_set,
    order_for_axis,
};
pub use prepost::{join_ancestors, join_descendants, stack_tree_join, PrePostPlane};
pub use stream::{is_streamable, StepStreamer};
pub use typed::eval_axis_alg32;

// Property tests need the external `proptest` crate, which is not
// vendored in this offline workspace; build with `--features proptest`
// in an environment that can supply it.
#[cfg(all(test, feature = "proptest"))]
mod proptests {
    use proptest::prelude::*;
    use xpath_syntax::Axis;
    use xpath_xml::generate::{doc_random, RandomDocConfig};
    use xpath_xml::NodeId;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// On random documents the fast typed axes equal the Algorithm 3.2
        /// reference for every axis and every singleton input.
        #[test]
        fn fast_equals_alg32_on_random_docs(seed in 0u64..5000) {
            let cfg = RandomDocConfig { elements: 40, ..RandomDocConfig::default() };
            let doc = doc_random(seed, &cfg);
            for axis in Axis::STANDARD {
                for x in doc.all_nodes() {
                    prop_assert_eq!(
                        crate::fast::eval_axis(&doc, axis, &[x]),
                        crate::typed::eval_axis_alg32(&doc, axis, &[x])
                    );
                }
            }
        }

        /// Lemma 10.1 on random documents: x ∈ χ(y) iff y ∈ χ⁻¹(x).
        #[test]
        fn inverse_axes_on_random_docs(seed in 0u64..5000) {
            let cfg = RandomDocConfig { elements: 25, ..RandomDocConfig::default() };
            let doc = doc_random(seed, &cfg);
            for axis in [Axis::Child, Axis::Descendant, Axis::Following, Axis::FollowingSibling, Axis::Parent, Axis::AncestorOrSelf] {
                for y in doc.all_nodes() {
                    let forward = crate::fast::eval_axis(&doc, axis, &[y]);
                    for x in forward {
                        let back = crate::fast::inverse_axis_set(&doc, axis, &[x]);
                        prop_assert!(back.contains(&y), "{:?} x={:?} y={:?}", axis, x, y);
                    }
                }
            }
        }

        /// The bulk set-at-a-time backend equals the direct backend on
        /// random documents, for both NodeSet representations.
        #[test]
        fn bulk_equals_fast_on_random_docs(seed in 0u64..5000) {
            let cfg = RandomDocConfig { elements: 35, ..RandomDocConfig::default() };
            let doc = doc_random(seed, &cfg);
            let n = doc.len() as u32;
            let ids: Vec<NodeId> = doc.all_nodes().filter(|x| x.0 % 3 != 1).collect();
            let sparse = xpath_xml::NodeSet::from_sorted(ids.clone());
            let dense = sparse.clone().densify(n);
            for axis in Axis::STANDARD {
                let want = crate::fast::eval_axis(&doc, axis, &ids);
                prop_assert_eq!(crate::bulk::axis_set(&doc, axis, &sparse).to_vec(), want.clone(), "{:?} sparse", axis);
                prop_assert_eq!(crate::bulk::axis_set(&doc, axis, &dense).to_vec(), want, "{:?} dense", axis);
            }
        }

        /// The pre/post-plane backend equals the direct backend on random
        /// documents (four-way interchangeability per §3).
        #[test]
        fn plane_equals_fast_on_random_docs(seed in 0u64..5000) {
            let cfg = RandomDocConfig { elements: 30, ..RandomDocConfig::default() };
            let doc = doc_random(seed, &cfg);
            let plane = crate::prepost::PrePostPlane::new(&doc);
            for axis in Axis::STANDARD {
                for x in doc.all_nodes() {
                    prop_assert_eq!(
                        plane.window(&doc, axis, x),
                        crate::fast::eval_axis(&doc, axis, &[x]),
                        "{:?} from {:?}", axis, x
                    );
                }
                let odds: Vec<NodeId> = doc.all_nodes().filter(|n| n.0 % 2 == 1).collect();
                prop_assert_eq!(
                    plane.eval_axis(&doc, axis, &odds),
                    crate::fast::eval_axis(&doc, axis, &odds),
                    "{:?} set", axis
                );
            }
        }

        /// Set evaluation equals the union of per-node evaluations.
        #[test]
        fn set_eval_is_union_of_singletons(seed in 0u64..5000, mask in 0u32..255) {
            let cfg = RandomDocConfig { elements: 20, ..RandomDocConfig::default() };
            let doc = doc_random(seed, &cfg);
            let set: Vec<NodeId> = doc
                .all_nodes()
                .filter(|n| mask & (1 << (n.0 % 8)) != 0)
                .collect();
            for axis in Axis::STANDARD {
                let whole = crate::fast::eval_axis(&doc, axis, &set);
                let mut union: Vec<NodeId> = set
                    .iter()
                    .flat_map(|&x| crate::fast::eval_axis(&doc, axis, &[x]))
                    .collect();
                union.sort_unstable();
                union.dedup();
                prop_assert_eq!(whole, union, "{:?}", axis);
            }
        }
    }
}
