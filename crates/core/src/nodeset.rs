//! Node-set representation and operations.
//!
//! Node sets are `Vec<NodeId>` sorted in document order (which is `NodeId`
//! order by construction of the arena) without duplicates. Union and
//! intersection are linear merges; membership is binary search.

use xpath_xml::{Document, NodeId};

/// A set of nodes, sorted in document order, duplicate-free.
pub type NodeSet = Vec<NodeId>;

/// Merge two sorted node sets (set union).
pub fn union(a: &[NodeId], b: &[NodeId]) -> NodeSet {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Intersect two sorted node sets.
pub fn intersect(a: &[NodeId], b: &[NodeId]) -> NodeSet {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Set difference `a − b` on sorted node sets.
pub fn difference(a: &[NodeId], b: &[NodeId]) -> NodeSet {
    let mut out = Vec::new();
    let mut j = 0;
    for &x in a {
        while j < b.len() && b[j] < x {
            j += 1;
        }
        if j >= b.len() || b[j] != x {
            out.push(x);
        }
    }
    out
}

/// Complement with respect to `dom` (all nodes of the document).
pub fn complement(doc: &Document, a: &[NodeId]) -> NodeSet {
    let all: Vec<NodeId> = doc.all_nodes().collect();
    difference(&all, a)
}

/// Membership test by binary search.
pub fn contains(a: &[NodeId], x: NodeId) -> bool {
    a.binary_search(&x).is_ok()
}

/// Sort in document order and remove duplicates (normalizing constructor
/// for sets built out of order).
pub fn normalize(mut v: Vec<NodeId>) -> NodeSet {
    v.sort_unstable();
    v.dedup();
    v
}

/// Debug invariant: sorted and duplicate-free.
pub fn is_normalized(a: &[NodeId]) -> bool {
    a.windows(2).all(|w| w[0] < w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(v: &[u32]) -> NodeSet {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn union_merges() {
        assert_eq!(union(&ns(&[1, 3, 5]), &ns(&[2, 3, 6])), ns(&[1, 2, 3, 5, 6]));
        assert_eq!(union(&ns(&[]), &ns(&[1])), ns(&[1]));
        assert_eq!(union(&ns(&[1]), &ns(&[])), ns(&[1]));
    }

    #[test]
    fn intersect_keeps_common() {
        assert_eq!(intersect(&ns(&[1, 2, 3]), &ns(&[2, 3, 4])), ns(&[2, 3]));
        assert_eq!(intersect(&ns(&[1]), &ns(&[2])), ns(&[]));
    }

    #[test]
    fn difference_removes() {
        assert_eq!(difference(&ns(&[1, 2, 3, 4]), &ns(&[2, 4])), ns(&[1, 3]));
        assert_eq!(difference(&ns(&[1, 2]), &ns(&[])), ns(&[1, 2]));
        assert_eq!(difference(&ns(&[]), &ns(&[1])), ns(&[]));
    }

    #[test]
    fn contains_and_normalize() {
        let s = normalize(vec![NodeId(3), NodeId(1), NodeId(3), NodeId(2)]);
        assert_eq!(s, ns(&[1, 2, 3]));
        assert!(is_normalized(&s));
        assert!(contains(&s, NodeId(2)));
        assert!(!contains(&s, NodeId(4)));
        assert!(!is_normalized(&ns(&[2, 1])));
    }
}
