//! Node-set representation and operations — the canonical home of the
//! engine's [`NodeSet`] currency.
//!
//! Since the hybrid-set refactor, `NodeSet` is a real type (defined in
//! [`xpath_xml::nodeset`] so the axis engine below this crate can share
//! it): an adaptive hybrid of a dense bitset over preorder ids
//! (word-parallel `∪`/`∩`/`−`, `O(|dom|/64)`) and a sorted vector for
//! sparse sets. Iteration always yields document order, which is `NodeId`
//! order by construction of the arena. See the type's module docs for the
//! invariants; set algebra goes through the `NodeSet` methods, while
//! per-node candidate lists with positional semantics stay plain sorted
//! `Vec<NodeId>` buffers.

use xpath_xml::{Document, NodeId};

pub use xpath_xml::nodeset::{Iter, NodeSet};

/// Complement with respect to `dom` (all nodes of the document) —
/// word-parallel.
pub fn complement(doc: &Document, a: &NodeSet) -> NodeSet {
    a.complement(doc.len() as u32)
}

/// Sort in document order and remove duplicates (normalizing constructor
/// for raw buffers built out of order).
pub fn normalize(v: Vec<NodeId>) -> NodeSet {
    NodeSet::from_unsorted(v)
}

/// Debug invariant on raw buffers: sorted and duplicate-free.
pub fn is_normalized(a: &[NodeId]) -> bool {
    a.windows(2).all(|w| w[0] < w[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_xml::generate::doc_flat;

    fn ns(v: &[u32]) -> NodeSet {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn method_algebra() {
        assert_eq!(ns(&[1, 3, 5]).union(&ns(&[2, 3, 6])), ns(&[1, 2, 3, 5, 6]));
        assert_eq!(ns(&[1, 2, 3]).intersect(&ns(&[2, 3, 4])), ns(&[2, 3]));
        assert_eq!(ns(&[1, 2, 3, 4]).difference(&ns(&[2, 4])), ns(&[1, 3]));
    }

    #[test]
    fn complement_uses_document_universe() {
        let d = doc_flat(2); // root + a + 2 b's = 4 nodes
        let c = complement(&d, &ns(&[0, 2]));
        assert_eq!(c, ns(&[1, 3]));
        assert_eq!(complement(&d, &c), ns(&[0, 2]));
    }

    #[test]
    fn normalize_and_invariant() {
        let s = normalize(vec![NodeId(3), NodeId(1), NodeId(3), NodeId(2)]);
        assert_eq!(s, ns(&[1, 2, 3]));
        assert!(s.contains(NodeId(2)));
        assert!(!s.contains(NodeId(4)));
        assert!(is_normalized(&ids(&[1, 2])));
        assert!(!is_normalized(&ids(&[2, 1])));
    }
}
