//! Single-pass (streaming) evaluation of the forward fragment of Core XPath.
//!
//! The paper's §1–§2 situate the CVT algorithms against XPath evaluation
//! over *data streams* (Altinel & Franklin 2000; Green et al. 2003; Peng &
//! Chawathe 2003; Gupta & Suciu 2003) and note that such techniques "work
//! only for very small fragments of XPath". This module reproduces that
//! line of work: an automaton-based matcher that evaluates the downward
//! fragment of Core XPath in one pass over a SAX event stream
//! ([`xpath_xml::events`]), with memory bounded by
//! `O(depth · |Q| + open candidates)` instead of `O(|D|)`.
//!
//! # The streamable fragment
//!
//! A [`CoreQuery`] is *streamable* when:
//!
//! * the spine is an **absolute** path (`/…`);
//! * every **spine** axis is forward: `child`, `descendant`,
//!   `descendant-or-self`, `self`, `following`, or `following-sibling`
//!   (the latter two run as *armed* transitions: once the activating node's
//!   subtree has passed, the step fires for every qualifying later event —
//!   the Experiment-5 query family of the paper streams this way), plus
//!   `attribute` as the **last** step of a path;
//! * predicate-path axes are *downward* forward only (`following` inside a
//!   predicate would look past the candidate's subtree);
//! * predicates appear only on the **last** step of a path (of the spine
//!   and, recursively, of predicate paths), are boolean combinations
//!   (`and` / `or` / `not(…)`) of **relative** forward paths, and may carry
//!   the XPatterns `= s` restriction;
//! * paths have at most [`MAX_STEPS`] steps (states are kept in a bitmask).
//!
//! Beyond Core XPath, [`compile_expr`] additionally accepts **one
//! positional test** (`[n]`, `[position() = last()]`,
//! `[position() != last()]`) as the first predicate of the spine's final
//! step when that step uses the `child` axis — sibling positions are
//! counted in-stream and `last()` resolves at the parent's end tag, the
//! technique of the streaming engines the paper cites (Peng & Chawathe
//! 2003).
//!
//! These are exactly the restrictions under which a node's membership in
//! the result is decided no later than its end-element event: existential
//! sub-paths and `= s` string tests only look *down*, so a candidate's
//! subtree suffices, and `not(…)` flips a fully-determined boolean.
//! [`compile`] reports the first violated restriction otherwise.
//!
//! # Algorithm
//!
//! The spine is run as an NFA whose state sets are bitmasks (bit `i` =
//! "the first `i` steps are matched"). Each open element holds two masks:
//! `m` (prefixes matched *at* this element) and `d` (descendant-pending
//! states inherited from ancestors). `child` steps fire from the parent's
//! `m`, `descendant(-or-self)` steps from `d`; `self` and the self-half of
//! `descendant-or-self` are an ε-closure applied at the node itself. When
//! the accept bit fires at a node, the node either is emitted immediately
//! (no predicates) or becomes a *pending candidate* whose predicate
//! machinery — one nested path run per leaf path — consumes the
//! candidate's subtree events and is resolved at its end-element.
//!
//! Differential tests assert agreement with the tree-based Core XPath
//! evaluator ([`crate::corexpath`]) on random documents.

use xpath_syntax::{Axis, KindTest, NodeTest};
use xpath_xml::events::StreamEvent;
use xpath_xml::{Document, NodeId};

use crate::context::{EvalBudget, EvalError, EvalResult};
use crate::corexpath::{self, CorePath, CorePred, CoreQuery, CoreStart, EqTest};
use crate::nodeset::NodeSet;
use crate::value::str_to_number;

/// Maximum number of steps per (sub-)path: NFA states live in a `u64`
/// bitmask with bit `i` meaning "prefix of `i` steps matched".
pub const MAX_STEPS: usize = 63;

/// A compiled streamable query.
#[derive(Clone, Debug)]
pub struct StreamQuery {
    path: SPath,
}

impl StreamQuery {
    /// Does evaluation buffer candidate matches until their subtree
    /// closes? True when the final step carries predicates, an `= s`
    /// restriction, or positional state; false for pure spines, which
    /// emit at the start tag. Feeds the analyzer's
    /// `Streamable`-vs-`NeedsBuffering` classification.
    pub fn buffers(&self) -> bool {
        self.path.positional.is_some() || !self.path.preds.is_empty() || self.path.eq.is_some()
    }
}

/// A positional test on the spine's final step (beyond Core XPath — real
/// stream processors support these, cf. Peng & Chawathe 2003). Restricted
/// to `child`-axis final steps, where the position of a match among its
/// siblings is unambiguous in one pass.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Positional {
    /// `[position() = n]` (the normalizer's form of `[n]`).
    Index(u32),
    /// `[position() = last()]`.
    IsLast,
    /// `[position() != last()]`.
    NotLast,
}

/// A compiled streamable path.
#[derive(Clone, Debug)]
struct SPath {
    steps: Vec<SStep>,
    /// Positional test on the final step (spine only; applied before
    /// `preds`, mirroring XPath's left-to-right predicate order).
    positional: Option<Positional>,
    /// Predicates on the final step.
    preds: Vec<SPred>,
    /// Optional `= s` restriction on the target (XPatterns, Table VI).
    eq: Option<EqTest>,
}

#[derive(Clone, Debug)]
struct SStep {
    axis: Axis,
    test: NodeTest,
}

#[derive(Clone, Debug)]
enum SPred {
    And(Box<SPred>, Box<SPred>),
    Or(Box<SPred>, Box<SPred>),
    Not(Box<SPred>),
    Path(SPath),
}

fn unsupported(msg: &str) -> EvalError {
    EvalError::UnsupportedFragment(msg.to_string())
}

/// Compile a Core XPath / XPatterns query into its streamable form, or
/// report the restriction it violates.
pub fn compile(q: &CoreQuery) -> EvalResult<StreamQuery> {
    if q.path.start != CoreStart::Root {
        return Err(unsupported("streaming requires an absolute path (`/…`)"));
    }
    Ok(StreamQuery { path: compile_path(&q.path, false)? })
}

/// Parse, normalize and compile a query string (must be XPatterns-compatible
/// and streamable, possibly with one positional test — see [`compile_expr`]).
pub fn compile_str(query: &str) -> EvalResult<StreamQuery> {
    let e =
        xpath_syntax::parse_normalized(query).map_err(|err| EvalError::Parse(err.to_string()))?;
    compile_expr(&e)
}

/// Compile a normalized expression. Beyond the Core XPath fragment of
/// [`compile`], this accepts **one positional test as the first predicate
/// of the spine's final step** when that step uses the `child` axis:
/// `[position() = n]` (i.e. `[n]`), `[position() = last()]`, or
/// `[position() != last()]`. The position of a child-axis match among its
/// siblings is counted in-stream; `last()` tests resolve when the parent
/// closes.
pub fn compile_expr(e: &xpath_syntax::Expr) -> EvalResult<StreamQuery> {
    use xpath_syntax::Expr;
    // Try the plain Core XPath route first.
    if let Ok(core) = corexpath::compile_xpatterns(e) {
        return compile(&core);
    }
    // Retry with a positional first-predicate stripped off the last step.
    let Expr::Path(p) = e else {
        return Err(unsupported("query must be a location path"));
    };
    let Some(last) = p.steps.last() else {
        return Err(unsupported("query must have at least one step"));
    };
    let Some(positional) = last.predicates.first().and_then(as_positional) else {
        // Not a positional issue: report the original Core XPath error.
        return compile(&corexpath::compile_xpatterns(e)?);
    };
    if last.axis != Axis::Child {
        return Err(unsupported(
            "positional tests stream only on child-axis final steps \
             (sibling position is ambiguous for other axes in one pass)",
        ));
    }
    let mut stripped = p.clone();
    stripped.steps.last_mut().expect("non-empty").predicates.remove(0);
    let core = corexpath::compile_xpatterns(&Expr::Path(stripped))?;
    let mut q = compile(&core)?;
    q.path.positional = Some(positional);
    Ok(q)
}

/// Recognize the normalizer's positional-predicate shapes.
fn as_positional(e: &xpath_syntax::Expr) -> Option<Positional> {
    use xpath_syntax::{BinaryOp, Expr};
    let Expr::Binary { op, left, right } = e else { return None };
    let is_position =
        |x: &Expr| matches!(x, Expr::Call { name, args } if name == "position" && args.is_empty());
    let is_last =
        |x: &Expr| matches!(x, Expr::Call { name, args } if name == "last" && args.is_empty());
    if !is_position(left) {
        return None;
    }
    match op {
        BinaryOp::Eq if is_last(right) => Some(Positional::IsLast),
        BinaryOp::Ne if is_last(right) => Some(Positional::NotLast),
        BinaryOp::Eq => match &**right {
            Expr::Number(v) if *v >= 1.0 && v.fract() == 0.0 && *v <= u32::MAX as f64 => {
                Some(Positional::Index(*v as u32))
            }
            _ => None,
        },
        _ => None,
    }
}

fn compile_path(p: &CorePath, in_predicate: bool) -> EvalResult<SPath> {
    if matches!(p.start, CoreStart::Ids(_)) {
        return Err(unsupported("id(…) path heads are not streamable"));
    }
    if p.steps.len() > MAX_STEPS {
        return Err(unsupported("path too long for the streaming bitmask"));
    }
    let last = p.steps.len().saturating_sub(1);
    let mut steps = Vec::with_capacity(p.steps.len());
    let mut preds = Vec::new();
    for (i, s) in p.steps.iter().enumerate() {
        match s.axis {
            Axis::Child | Axis::Descendant | Axis::DescendantOrSelf | Axis::SelfAxis => {}
            // The spine may use the remaining *forward* axes: a step armed
            // when the activating node's subtree (or start tag) has passed
            // fires for every qualifying later event. Predicate paths may
            // not: a candidate's membership must resolve at its end tag,
            // and `following` looks beyond it.
            Axis::Following | Axis::FollowingSibling if !in_predicate => {}
            Axis::Following | Axis::FollowingSibling => {
                return Err(unsupported(
                    "following/following-sibling look past the candidate's subtree \
                     and are not streamable inside predicates",
                ));
            }
            Axis::Attribute if i == last => {}
            Axis::Attribute => {
                return Err(unsupported("attribute:: must be the last step when streaming"));
            }
            _ => {
                return Err(unsupported(
                    "streaming supports child, descendant(-or-self), self and final attribute axes only",
                ));
            }
        }
        if !s.preds.is_empty() {
            if i != last {
                return Err(unsupported("predicates are streamable on the last step only"));
            }
            if s.axis == Axis::Attribute {
                return Err(unsupported("predicates on attribute targets are not streamable"));
            }
            preds = s.preds.iter().map(compile_pred).collect::<Result<_, _>>()?;
        }
        steps.push(SStep { axis: s.axis, test: s.test.clone() });
    }
    Ok(SPath { steps, positional: None, preds, eq: p.eq.clone() })
}

fn compile_pred(p: &CorePred) -> EvalResult<SPred> {
    Ok(match p {
        CorePred::And(l, r) => SPred::And(Box::new(compile_pred(l)?), Box::new(compile_pred(r)?)),
        CorePred::Or(l, r) => SPred::Or(Box::new(compile_pred(l)?), Box::new(compile_pred(r)?)),
        CorePred::Not(inner) => SPred::Not(Box::new(compile_pred(inner)?)),
        CorePred::Path(path) => {
            if path.start != CoreStart::Context {
                return Err(unsupported(
                    "absolute predicate paths are not streamable (global existence)",
                ));
            }
            if path.steps.is_empty() && path.eq.is_none() {
                return Err(unsupported("empty predicate path"));
            }
            SPred::Path(compile_path(path, true)?)
        }
    })
}

// ----- node-test matching against event payloads -----

/// What an event looks like to a node test (no `Document` access: streaming
/// matchers must work from event payloads alone).
#[derive(Clone, Copy)]
enum EventShape<'a> {
    Root,
    Element(&'a str),
    Attribute(&'a str),
    Text,
    Comment,
    Pi(&'a str),
}

fn test_matches(test: &NodeTest, axis: Axis, shape: EventShape<'_>) -> bool {
    // §4 type filtering: the attribute axis yields only attribute nodes, and
    // every other axis removes attribute nodes from its result — even for
    // `node()` tests.
    match (axis, shape) {
        (Axis::Attribute, EventShape::Attribute(_)) => {}
        (Axis::Attribute, _) => return false,
        (_, EventShape::Attribute(_)) => return false,
        _ => {}
    }
    match test {
        NodeTest::Kind(k) => match (k, shape) {
            (KindTest::Node, _) => true,
            (KindTest::Text, EventShape::Text) => true,
            (KindTest::Comment, EventShape::Comment) => true,
            (KindTest::Pi(None), EventShape::Pi(_)) => true,
            (KindTest::Pi(Some(t)), EventShape::Pi(target)) => t == target,
            _ => false,
        },
        NodeTest::Wildcard => principal_matches(axis, shape),
        NodeTest::Name(n) => match (axis, shape) {
            (Axis::Attribute, EventShape::Attribute(name)) => n == name,
            (_, EventShape::Element(name)) if axis != Axis::Attribute => n == name,
            _ => false,
        },
        NodeTest::NsWildcard(prefix) => {
            let name = match (axis, shape) {
                (Axis::Attribute, EventShape::Attribute(name)) => name,
                (_, EventShape::Element(name)) if axis != Axis::Attribute => name,
                _ => return false,
            };
            name.split_once(':').is_some_and(|(p, _)| p == prefix)
        }
    }
}

fn principal_matches(axis: Axis, shape: EventShape<'_>) -> bool {
    match axis {
        Axis::Attribute => matches!(shape, EventShape::Attribute(_)),
        _ => matches!(shape, EventShape::Element(_)),
    }
}

// ----- runtime -----

/// One per open element (relative to a run's root): the NFA state.
#[derive(Clone, Copy, Debug)]
struct Frame {
    /// Bit `i`: the first `i` steps matched, ending at this node.
    m: u64,
    /// Bit `i`: step `i` (a descendant-axis step) is pending anywhere below.
    d: u64,
    /// Bit `i`: step `i` is a `following-sibling` step whose activating
    /// node is an earlier child of this element — fires for later children.
    fs: u64,
    /// Bits to arm in the run-global `following` mask when this element
    /// closes (the axis starts after the activating subtree ends).
    arm_on_close: u64,
    /// Children of this element matched by the (child-axis) final step so
    /// far — the 1-based position source for positional tests.
    nmatch: u32,
}

impl Frame {
    fn new(m: u64, d: u64) -> Frame {
        Frame { m, d, fs: 0, arm_on_close: 0, nmatch: 0 }
    }
}

/// A pending candidate: the spine accepted `node`, and its predicates / `=s`
/// restriction are being resolved against its subtree.
#[derive(Debug)]
struct Candidate {
    node: NodeId,
    /// `frames.len()` of the owning run at the time the candidate opened;
    /// its end-element is the event that pops back to this depth.
    depth: usize,
    preds: Vec<PredRun>,
    /// Accumulated text content, when an `= s` test needs the string value.
    text: Option<String>,
    /// For `last()` positional tests: the match's 1-based sibling position.
    /// Emission is deferred to [`AwaitLast`] resolution at the parent close.
    pos: Option<u32>,
}

/// A target that passed everything except a `last()` positional test, which
/// only its parent's end-element can decide.
#[derive(Debug)]
struct AwaitLast {
    node: NodeId,
    /// 1-based position among the parent's final-step matches.
    pos: u32,
    /// Index of the parent's frame in `frames` while the parent is open.
    parent_index: usize,
}

/// Runtime instance of a predicate tree.
#[derive(Debug)]
enum PredRun {
    And(Box<PredRun>, Box<PredRun>),
    Or(Box<PredRun>, Box<PredRun>),
    Not(Box<PredRun>),
    Path(PathRun),
}

impl PredRun {
    fn new(p: &SPred, root: EventShape<'_>) -> PredRun {
        match p {
            SPred::And(l, r) => {
                PredRun::And(Box::new(PredRun::new(l, root)), Box::new(PredRun::new(r, root)))
            }
            SPred::Or(l, r) => {
                PredRun::Or(Box::new(PredRun::new(l, root)), Box::new(PredRun::new(r, root)))
            }
            SPred::Not(inner) => PredRun::Not(Box::new(PredRun::new(inner, root))),
            SPred::Path(path) => PredRun::Path(PathRun::new_rooted(path.clone(), root)),
        }
    }

    fn on_event(&mut self, ev: &StreamEvent<'_>) {
        match self {
            PredRun::And(l, r) | PredRun::Or(l, r) => {
                l.on_event(ev);
                r.on_event(ev);
            }
            PredRun::Not(inner) => inner.on_event(ev),
            PredRun::Path(run) => run.on_event(ev),
        }
    }

    /// The decided value; called at the owning candidate's end-element, when
    /// every sub-run has seen the whole subtree. Resolves any sub-candidates
    /// still open at the run root (targets ε-accepted at the root close
    /// together with the owning candidate, so their subtrees are complete).
    fn resolve(&mut self) -> bool {
        match self {
            PredRun::And(l, r) => {
                // Evaluate both sides: `resolve` has the side effect of
                // settling sub-candidates, so no short-circuiting.
                let (l, r) = (l.resolve(), r.resolve());
                l && r
            }
            PredRun::Or(l, r) => {
                let (l, r) = (l.resolve(), r.resolve());
                l || r
            }
            PredRun::Not(inner) => !inner.resolve(),
            PredRun::Path(run) => {
                run.resolve_open();
                run.satisfied
            }
        }
    }
}

/// A running path NFA: the spine of the whole query, or a predicate path
/// rooted at a candidate.
#[derive(Debug)]
struct PathRun {
    path: SPath,
    /// One frame per open element below (and including) the run's root.
    frames: Vec<Frame>,
    /// Open candidates, innermost last (their depths are non-decreasing).
    candidates: Vec<Candidate>,
    /// Targets awaiting a `last()` decision at their parent's close.
    awaiting_last: Vec<AwaitLast>,
    /// Run-global mask: `following`-axis steps already armed (their
    /// activating subtree has fully passed), firing for every later event.
    g: u64,
    /// Accepted target nodes (spine run).
    matched: Vec<NodeId>,
    /// Whether any target was accepted (predicate run).
    satisfied: bool,
    /// High-water mark of simultaneously open candidates, across this run
    /// and its nested predicate runs (observability for the memory bound).
    peak_candidates: usize,
}

impl PathRun {
    /// A run rooted at the document root (the spine of an absolute path).
    fn new_spine(path: SPath) -> PathRun {
        let mut run = PathRun {
            path,
            frames: Vec::new(),
            candidates: Vec::new(),
            awaiting_last: Vec::new(),
            g: 0,
            matched: Vec::new(),
            satisfied: false,
            peak_candidates: 0,
        };
        run.open_root(EventShape::Root, NodeId::ROOT);
        run
    }

    /// A run rooted at a candidate element (a relative predicate path).
    fn new_rooted(path: SPath, root: EventShape<'_>) -> PathRun {
        let mut run = PathRun {
            path,
            frames: Vec::new(),
            candidates: Vec::new(),
            awaiting_last: Vec::new(),
            g: 0,
            matched: Vec::new(),
            satisfied: false,
            peak_candidates: 0,
        };
        // Predicate runs never accept their own root (Core XPath predicate
        // paths have at least one step, and `self::…` steps ε-close here).
        run.open_root(root, NodeId::ROOT);
        run
    }

    /// Install the root frame: the empty prefix is matched at the root, plus
    /// the ε-closure of `self` / `descendant-or-self` steps over the root.
    fn open_root(&mut self, shape: EventShape<'_>, node: NodeId) {
        let m = self.epsilon_close(1, shape); // bit 0 = empty prefix
        let d = self.descend_mask(m);
        self.frames.push(Frame::new(m, d));
        if m & self.accept_bit() != 0 {
            // The run root is never positional (positional tests require a
            // child-axis final step, which cannot ε-accept the root).
            self.accept_element(node, shape, None);
        }
    }

    #[inline]
    fn accept_bit(&self) -> u64 {
        1u64 << self.path.steps.len()
    }

    /// ε-closure of `m` at a node: while step `i` has a `self` or
    /// `descendant-or-self` axis and its test matches the node itself,
    /// prefix `i+1` is also matched here.
    fn epsilon_close(&self, mut m: u64, shape: EventShape<'_>) -> u64 {
        loop {
            let mut grew = false;
            for (i, st) in self.path.steps.iter().enumerate() {
                if m & (1 << i) != 0
                    && m & (1 << (i + 1)) == 0
                    && matches!(st.axis, Axis::SelfAxis | Axis::DescendantOrSelf)
                    && test_matches(&st.test, st.axis, shape)
                {
                    m |= 1 << (i + 1);
                    grew = true;
                }
            }
            if !grew {
                return m;
            }
        }
    }

    /// The descendant-pending bits contributed by prefixes in `m`.
    fn descend_mask(&self, m: u64) -> u64 {
        let mut d = 0u64;
        for (i, st) in self.path.steps.iter().enumerate() {
            if m & (1 << i) != 0 && matches!(st.axis, Axis::Descendant | Axis::DescendantOrSelf) {
                d |= 1 << i;
            }
        }
        d
    }

    /// The prefix mask produced at a child event with shape `shape`, given
    /// the innermost open frame.
    fn child_mask(&self, shape: EventShape<'_>) -> u64 {
        let parent = self.frames.last().expect("run has an open root frame");
        let mut m = 0u64;
        for (i, st) in self.path.steps.iter().enumerate() {
            // `child` and `attribute` steps fire from prefixes matched at
            // the enclosing node; descendant steps from the pending mask;
            // `following-sibling` from the enclosing element's armed mask;
            // `following` from the run-global armed mask.
            let fired = match st.axis {
                Axis::Child | Axis::Attribute => parent.m & (1 << i) != 0,
                Axis::FollowingSibling => parent.fs & (1 << i) != 0,
                Axis::Following => self.g & (1 << i) != 0,
                _ => false,
            } || parent.d & (1 << i) != 0;
            if fired && test_matches(&st.test, st.axis, shape) {
                m |= 1 << (i + 1);
            }
        }
        self.epsilon_close(m, shape)
    }

    fn on_event(&mut self, ev: &StreamEvent<'_>) {
        // Feed open candidates' predicate machinery first: the candidate of
        // an element sees every event strictly inside its subtree, and its
        // own end-element resolves it below.
        let resolve_from = match ev {
            StreamEvent::EndElement { .. } => {
                // Candidates opened at the element now ending have
                // depth == frames.len(); they must not see the EndElement.
                let depth = self.frames.len();
                let first = self.candidates.iter().position(|c| c.depth >= depth);
                for c in &mut self.candidates {
                    if c.depth < depth {
                        for p in &mut c.preds {
                            p.on_event(ev);
                        }
                    }
                }
                first
            }
            _ => {
                for c in &mut self.candidates {
                    for p in &mut c.preds {
                        p.on_event(ev);
                    }
                    if let (Some(buf), StreamEvent::Text { content, .. }) = (&mut c.text, ev) {
                        buf.push_str(content);
                    }
                }
                None
            }
        };

        match *ev {
            StreamEvent::StartElement { node, name } => {
                let shape = EventShape::Element(name);
                let m = self.child_mask(shape);
                let d = self.frames.last().expect("open root").d | self.descend_mask(m);
                let accepted = m & self.accept_bit() != 0;
                let pos = if accepted { self.bump_position() } else { None };
                // Arm pending forward-axis steps activated at this element:
                // following-sibling fires for the parent's later children;
                // following fires globally once this subtree closes.
                let (fs_arm, fo_arm) = self.forward_arms(m);
                self.frames.last_mut().expect("open root").fs |= fs_arm;
                let mut frame = Frame::new(m, d);
                frame.arm_on_close = fo_arm;
                self.frames.push(frame);
                if accepted {
                    match (self.path.positional, pos) {
                        (None, _) => self.accept_element(node, shape, None),
                        (Some(Positional::Index(n)), Some(p)) => {
                            if p == n {
                                self.accept_element(node, shape, None);
                            }
                        }
                        (Some(_), Some(p)) => {
                            // last() tests: always go through the candidate
                            // machinery; emission defers to the parent close.
                            self.accept_element(node, shape, Some(p));
                        }
                        (Some(_), None) => unreachable!("positional acceptance counts"),
                    }
                }
            }
            StreamEvent::EndElement { .. } => {
                // Resolve candidates opened at the ending element (they may
                // push last()-awaiting entries for the *enclosing* frame).
                if let Some(first) = resolve_from {
                    for mut c in self.candidates.drain(first..).collect::<Vec<_>>() {
                        let sat = c.preds.iter_mut().all(PredRun::resolve);
                        let eq_ok = match (&self.path.eq, &c.text) {
                            (None, _) => true,
                            (Some(eq), Some(text)) => eq_matches(eq, text),
                            (Some(_), None) => unreachable!("eq candidates buffer text"),
                        };
                        if sat && eq_ok {
                            match c.pos {
                                None => {
                                    self.matched.push(c.node);
                                    self.satisfied = true;
                                }
                                Some(pos) => self.awaiting_last.push(AwaitLast {
                                    node: c.node,
                                    pos,
                                    // The candidate's parent frame sits two
                                    // below its recorded depth (depth is the
                                    // post-push frame count).
                                    parent_index: c.depth - 2,
                                }),
                            }
                        }
                    }
                }
                // last() entries whose parent is the element now ending.
                let ending_index = self.frames.len() - 1;
                let count = self.frames.last().expect("open frame").nmatch;
                self.resolve_awaiting(ending_index, count);
                let popped = self.frames.pop().expect("open frame");
                // The ending subtree has fully passed: its following-axis
                // activations now fire for everything after.
                self.g |= popped.arm_on_close;
            }
            StreamEvent::Attribute { node, name, value } => {
                self.leaf(node, EventShape::Attribute(name), Some(value));
            }
            StreamEvent::Text { node, content } => {
                self.leaf(node, EventShape::Text, Some(content));
            }
            StreamEvent::Comment { node, content } => {
                self.leaf(node, EventShape::Comment, Some(content));
            }
            StreamEvent::ProcessingInstruction { node, target, content } => {
                self.leaf(node, EventShape::Pi(target), Some(content));
            }
            StreamEvent::Namespace { .. } => {}
        }
    }

    /// An element was accepted by the spine: emit immediately when nothing
    /// remains to check, else open a candidate over its subtree. `pos` is
    /// set for `last()` positional targets, whose emission must wait for
    /// the parent close even when there is nothing else to resolve.
    fn accept_element(&mut self, node: NodeId, shape: EventShape<'_>, pos: Option<u32>) {
        if pos.is_none() && self.path.preds.is_empty() && self.path.eq.is_none() {
            self.matched.push(node);
            self.satisfied = true;
            return;
        }
        let preds = self.path.preds.iter().map(|p| PredRun::new(p, shape)).collect();
        self.candidates.push(Candidate {
            node,
            depth: self.frames.len(),
            preds,
            text: self.path.eq.as_ref().map(|_| String::new()),
            pos,
        });
        self.peak_candidates = self.peak_candidates.max(self.candidates.len());
    }

    /// The pending forward-axis bits of a node whose prefix mask is `m`:
    /// `(following-sibling bits, following bits)`.
    fn forward_arms(&self, m: u64) -> (u64, u64) {
        let (mut fs, mut fo) = (0u64, 0u64);
        for (i, st) in self.path.steps.iter().enumerate() {
            if m & (1 << i) == 0 {
                continue;
            }
            match st.axis {
                Axis::FollowingSibling => fs |= 1 << i,
                Axis::Following => fo |= 1 << i,
                _ => {}
            }
        }
        (fs, fo)
    }

    /// Count a match of the (child-axis) final step under the innermost
    /// open frame and return its 1-based position — only when a positional
    /// test is active.
    fn bump_position(&mut self) -> Option<u32> {
        self.path.positional?;
        let parent = self.frames.last_mut().expect("open root frame");
        parent.nmatch += 1;
        Some(parent.nmatch)
    }

    /// Emit the awaiting `last()` targets of the frame at `parent_index`,
    /// now that its final match count is known.
    fn resolve_awaiting(&mut self, parent_index: usize, count: u32) {
        if self.awaiting_last.is_empty() {
            return;
        }
        let positional = self.path.positional;
        let mut emitted = Vec::new();
        self.awaiting_last.retain(|a| {
            if a.parent_index != parent_index {
                return true;
            }
            let keep = match positional {
                Some(Positional::IsLast) => a.pos == count,
                Some(Positional::NotLast) => a.pos < count,
                _ => unreachable!("awaiting entries require a last() test"),
            };
            if keep {
                emitted.push(a.node);
            }
            false
        });
        for n in emitted {
            self.matched.push(n);
            self.satisfied = true;
        }
    }

    /// A leaf event (attribute, text, comment, PI): it can complete the path
    /// but opens no subtree. `value` is its own character content, used for
    /// `= s` tests (a leaf's string value is its content).
    fn leaf(&mut self, node: NodeId, shape: EventShape<'_>, value: Option<&str>) {
        let m = self.child_mask(shape);
        // A leaf has no subtree: forward-axis steps activated here arm at
        // once (following starts immediately after the leaf).
        let (fs_arm, fo_arm) = self.forward_arms(m);
        self.frames.last_mut().expect("open root").fs |= fs_arm;
        self.g |= fo_arm;
        if m & self.accept_bit() == 0 {
            return;
        }
        // Positional gating (attribute events never carry positional tests:
        // compile rejects them; text/comment/PI leaves count normally).
        let pos = self.bump_position();
        match (self.path.positional, pos) {
            (None, _) => {}
            (Some(Positional::Index(n)), Some(p)) => {
                if p != n {
                    return;
                }
            }
            (Some(_), Some(p)) => {
                // last() test: defer, if everything else already holds.
                let sat = self
                    .path
                    .preds
                    .iter()
                    .map(|pr| PredRun::new(pr, shape))
                    .all(|mut pr| pr.resolve());
                let eq_ok = match &self.path.eq {
                    None => true,
                    Some(eq) => value.is_some_and(|v| eq_matches(eq, v)),
                };
                if sat && eq_ok {
                    self.awaiting_last.push(AwaitLast {
                        node,
                        pos: p,
                        parent_index: self.frames.len() - 1,
                    });
                }
                return;
            }
            (Some(_), None) => unreachable!("positional acceptance counts"),
        }
        // Leaves have no subtree: predicate paths find nothing beyond what
        // ε-matches the leaf itself, so resolve them immediately.
        let sat = self.path.preds.iter().map(|p| PredRun::new(p, shape)).all(|mut p| p.resolve());
        let eq_ok = match &self.path.eq {
            None => true,
            Some(eq) => value.is_some_and(|v| eq_matches(eq, v)),
        };
        if sat && eq_ok {
            self.matched.push(node);
            self.satisfied = true;
        }
    }

    /// Resolve candidates still open when the run's root closes (targets
    /// ε-accepted at the root itself — their subtree is the root's subtree,
    /// which has fully passed by the time the owner resolves this run).
    fn resolve_open(&mut self) {
        if self.candidates.is_empty() {
            return;
        }
        for mut c in std::mem::take(&mut self.candidates) {
            let sat = c.preds.iter_mut().all(PredRun::resolve);
            let eq_ok = match (&self.path.eq, &c.text) {
                (None, _) => true,
                (Some(eq), Some(text)) => eq_matches(eq, text),
                (Some(_), None) => unreachable!("eq candidates buffer text"),
            };
            if sat && eq_ok {
                match c.pos {
                    None => {
                        self.matched.push(c.node);
                        self.satisfied = true;
                    }
                    Some(pos) => self.awaiting_last.push(AwaitLast {
                        node: c.node,
                        pos,
                        parent_index: c.depth - 2,
                    }),
                }
            }
        }
    }

    /// End of stream: resolve candidates ε-accepted at the run root (the
    /// root frame never receives an EndElement), decide `last()` targets
    /// whose parent is the document root, and drop all state.
    fn finish(&mut self) {
        self.resolve_open();
        if let Some(root) = self.frames.first() {
            let count = root.nmatch;
            self.resolve_awaiting(0, count);
        }
        debug_assert!(self.awaiting_last.is_empty(), "all parents have closed");
        self.frames.clear();
    }
}

fn eq_matches(eq: &EqTest, text: &str) -> bool {
    match eq {
        EqTest::Str(s) => text == s,
        EqTest::Num(v) => str_to_number(text) == *v,
    }
}

/// A single-pass matcher for one [`StreamQuery`] over one event stream.
pub struct StreamMatcher {
    run: PathRun,
}

impl StreamMatcher {
    /// Start matching `query` against a fresh stream.
    pub fn new(query: &StreamQuery) -> StreamMatcher {
        StreamMatcher { run: PathRun::new_spine(query.path.clone()) }
    }

    /// Consume one event.
    pub fn on_event(&mut self, ev: &StreamEvent<'_>) {
        self.run.on_event(ev);
    }

    /// End of stream: return the matched nodes in document order.
    pub fn finish(mut self) -> NodeSet {
        self.run.finish();
        NodeSet::from_unsorted(self.run.matched)
    }

    /// High-water mark of simultaneously pending spine candidates — the
    /// dominant term of the matcher's memory bound beyond `O(depth · |Q|)`.
    /// (Nested predicate runs keep their own marks; this reports the spine's.)
    pub fn peak_candidates(&self) -> usize {
        self.run.peak_candidates
    }
}

/// Convenience: compile-check `query` and evaluate it over the event stream
/// of `doc` in a single pass.
pub fn evaluate_stream(query: &StreamQuery, doc: &Document) -> NodeSet {
    let mut m = StreamMatcher::new(query);
    for ev in doc.events() {
        m.on_event(&ev);
    }
    m.finish()
}

/// How many stream events [`try_evaluate_stream`] consumes between budget
/// polls: often enough that a trip costs microseconds of extra streaming,
/// rarely enough that the `Instant::now` poll is noise against the
/// per-event matching work.
const STREAM_CHECK_EVENTS: u32 = 1024;

/// [`evaluate_stream`] under an [`EvalBudget`]: the budget is polled every
/// `STREAM_CHECK_EVENTS` (1024) events. An unlimited budget takes the
/// exact infallible path.
pub fn try_evaluate_stream(
    query: &StreamQuery,
    doc: &Document,
    budget: &EvalBudget,
) -> EvalResult<NodeSet> {
    if budget.is_unlimited() {
        return Ok(evaluate_stream(query, doc));
    }
    let mut m = StreamMatcher::new(query);
    let mut until_check = STREAM_CHECK_EVENTS;
    for ev in doc.events() {
        until_check -= 1;
        if until_check == 0 {
            budget.check()?;
            until_check = STREAM_CHECK_EVENTS;
        }
        m.on_event(&ev);
    }
    budget.check()?;
    Ok(m.finish())
}

/// Is this Core XPath query in the streamable fragment?
pub fn is_streamable(q: &CoreQuery) -> bool {
    compile(q).is_ok()
}

/// Convenience re-export of the pieces needed to build [`CoreQuery`]s for
/// streaming without importing `corexpath` separately.
pub use crate::corexpath::CoreDialect;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corexpath::{CoreDialect, CoreXPathEvaluator};
    use xpath_xml::generate::{doc_bookstore, doc_figure8, doc_flat, doc_random, RandomDocConfig};

    fn stream_eval(doc: &Document, q: &str) -> NodeSet {
        let sq = compile_str(q).unwrap_or_else(|e| panic!("{q}: {e}"));
        evaluate_stream(&sq, doc)
    }

    fn tree_eval(doc: &Document, q: &str) -> NodeSet {
        CoreXPathEvaluator::new(doc)
            .evaluate_str(q, CoreDialect::XPatterns, &[doc.root()])
            .unwrap_or_else(|e| panic!("{q}: {e}"))
    }

    const CORPUS: &[&str] = &[
        "/child::a",
        "//b",
        "//a/b",
        "//b//c",
        "/descendant::*",
        "//b[child::c]",
        "//b[not(child::c)]",
        "//*[child::c and child::d]",
        "//*[child::c or child::zzz]",
        "//b[descendant::d]",
        "//b[c/self::c]",
        "//*[self::b]",
        "//b[child::* = '100']",
        "//*[child::d = 100]",
        "//b[attribute::id]",
        "//b[@id = '11']",
        "//a/b/c",
        "//text()",
        "//comment()",
        "//b/child::node()",
        "//b[child::c[child::zzz]]",
        "//b[child::c[not(child::zzz)]]",
        "//section/book[author]",
        "//book[author[last]]",
        "//book[not(author) or price]",
    ];

    #[test]
    fn agrees_with_tree_evaluator_on_fixed_docs() {
        for doc in [doc_flat(6), doc_figure8(), doc_bookstore()] {
            for q in CORPUS {
                assert_eq!(stream_eval(&doc, q), tree_eval(&doc, q), "query {q} on {doc:?}");
            }
        }
    }

    #[test]
    fn agrees_with_tree_evaluator_on_random_docs() {
        for seed in 0..20 {
            let cfg = RandomDocConfig { elements: 40, ..RandomDocConfig::default() };
            let doc = doc_random(seed, &cfg);
            for q in CORPUS {
                assert_eq!(stream_eval(&doc, q), tree_eval(&doc, q), "query {q} seed {seed}");
            }
        }
    }

    #[test]
    fn attribute_targets() {
        let d = doc_figure8();
        for q in ["//b/attribute::id", "//attribute::*", "//c/@id"] {
            assert_eq!(stream_eval(&d, q), tree_eval(&d, q), "{q}");
        }
    }

    #[test]
    fn eq_on_main_path() {
        let d = doc_figure8();
        // XPatterns `π = s` on the outermost level arrives as path.eq via
        // a predicate; exercise eq through predicates instead.
        for q in ["//b[child::d = '100']", "//b[child::d = '13 14']"] {
            assert_eq!(stream_eval(&d, q), tree_eval(&d, q), "{q}");
        }
    }

    #[test]
    fn rejects_non_streamable() {
        let reject = |q: &str| {
            assert!(compile_str(q).is_err(), "{q} should not be streamable");
        };
        reject("//b/parent::a"); // upward axis
        reject("//b[ancestor::a]"); // upward predicate
        reject("//b[following::c]"); // forward, but past the candidate's subtree
        reject("//b[following-sibling::c]"); // likewise
        reject("//c/preceding::b"); // reverse axis
        reject("child::a"); // relative spine
        reject("//b[//c]"); // absolute predicate path
        reject("//a[b]/c"); // predicate on a non-final step
        reject("id('x')/a"); // id head
        reject("//@id/.."); // parent step
    }

    #[test]
    fn streamable_accepts_the_advertised_fragment() {
        for q in CORPUS {
            assert!(compile_str(q).is_ok(), "{q} should be streamable");
        }
    }

    #[test]
    fn deep_document_single_pass() {
        // A path of depth 2000: recursion-free matching, bounded frames.
        use xpath_xml::generate::doc_deep_path;
        let d = doc_deep_path(2000);
        let got = stream_eval(&d, "//b//b");
        let want = tree_eval(&d, "//b//b");
        assert_eq!(got, want);
        assert_eq!(got.len(), 1999);
    }

    #[test]
    fn candidates_resolve_before_finish() {
        let q = compile_str("//b[child::c]").unwrap();
        let d = doc_figure8();
        let mut m = StreamMatcher::new(&q);
        for ev in d.events() {
            m.on_event(&ev);
        }
        assert!(m.peak_candidates() >= 1);
        let out = m.finish();
        assert_eq!(out, tree_eval(&d, "//b[child::c]"));
    }

    #[test]
    fn nested_candidates_on_recursive_document() {
        // Every <t> contains the next; predicates keep many candidates open.
        let mut s = String::new();
        for _ in 0..12 {
            s.push_str("<t><u/>");
        }
        s.push_str("<v/>");
        for _ in 0..12 {
            s.push_str("</t>");
        }
        let d = Document::parse_str(&s).unwrap();
        for q in ["//t[child::u]", "//t[descendant::v]", "//t[not(descendant::v)]"] {
            assert_eq!(stream_eval(&d, q), tree_eval(&d, q), "{q}");
        }
    }

    #[test]
    fn pi_and_kind_targets() {
        let d = Document::parse_str("<a><?go now?><b><?stop?></b><!--note--></a>").unwrap();
        for q in [
            "//processing-instruction()",
            "//processing-instruction('go')",
            "//b/processing-instruction()",
            "//comment()",
            "//node()",
        ] {
            assert_eq!(stream_eval(&d, q), tree_eval(&d, q), "{q}");
        }
    }

    #[test]
    fn following_axes_in_the_spine() {
        // The paper's Experiment-5 query family is exactly this shape.
        for doc in [doc_flat(8), doc_figure8(), doc_bookstore()] {
            for q in [
                "//b/following::b",
                "//b/following::b/following::b",
                "//c/following::*",
                "//b/following-sibling::b",
                "//c/following-sibling::*/child::*",
                "//b/following::c[child::zzz]",
                "//b/following::*[self::d]",
                "//text()/following::*",
                "//b/following-sibling::b/following::d",
                "//b/following::b/attribute::id",
            ] {
                assert_eq!(stream_eval(&doc, q), tree_eval(&doc, q), "query {q} on {doc:?}");
            }
        }
    }

    #[test]
    fn following_axes_on_random_docs() {
        for seed in 0..15 {
            let cfg = RandomDocConfig { elements: 35, ..RandomDocConfig::default() };
            let doc = doc_random(seed, &cfg);
            for q in [
                "//b/following::c",
                "//a/following-sibling::*",
                "//b/following::b/following::b",
                "//c/following-sibling::d[child::*]",
                "//a/following::*[not(child::b)]",
            ] {
                assert_eq!(stream_eval(&doc, q), tree_eval(&doc, q), "query {q} seed {seed}");
            }
        }
    }

    #[test]
    fn experiment5_chain_matches_count() {
        // count(//b/following::b/…/following::b) on DOC(i), the Figure-4(a)
        // workload, as a correctness check for the armed-mask transitions.
        let d = doc_flat(20);
        for k in 1..6 {
            let q = format!("//b{}", "/following::b".repeat(k - 1));
            let got = stream_eval(&d, &q).len();
            let want = tree_eval(&d, &q).len();
            assert_eq!(got, want, "k = {k}");
            // On a flat 20-b document the k-th chain selects b_k..b_20.
            assert_eq!(got, 20 - (k - 1), "k = {k}");
        }
    }

    /// Positional tests need a full-XPath oracle (Core XPath excludes
    /// position()), so compare against the top-down engine.
    fn topdown_eval(doc: &Document, q: &str) -> NodeSet {
        use crate::engine::{Engine, Strategy};
        Engine::new(doc)
            .evaluate_with(q, Strategy::TopDown)
            .unwrap_or_else(|e| panic!("{q}: {e}"))
            .into_node_set()
            .unwrap()
    }

    #[test]
    fn positional_index_tests() {
        for doc in [doc_flat(6), doc_figure8(), doc_bookstore()] {
            for q in [
                "//b[1]",
                "//b[2]",
                "//b[9]",
                "//*[3]",
                "/a/b[2]",
                "//b/c[2]",
                "//b/node()[1]",
                "//section/book[2]",
            ] {
                let sq = compile_str(q).unwrap_or_else(|e| panic!("{q}: {e}"));
                assert_eq!(
                    evaluate_stream(&sq, &doc),
                    topdown_eval(&doc, q),
                    "query {q} on {doc:?}"
                );
            }
        }
    }

    #[test]
    fn positional_last_tests() {
        for doc in [doc_flat(6), doc_figure8(), doc_bookstore()] {
            for q in [
                "//b[last()]",
                "//b[position() = last()]",
                "//b[position() != last()]",
                "//c[position() != last()]",
                "//*[last()]",
                "//section/book[last()]",
            ] {
                let sq = compile_str(q).unwrap_or_else(|e| panic!("{q}: {e}"));
                assert_eq!(
                    evaluate_stream(&sq, &doc),
                    topdown_eval(&doc, q),
                    "query {q} on {doc:?}"
                );
            }
        }
    }

    #[test]
    fn positional_composes_with_other_predicates() {
        // The positional test is the first predicate; further predicates
        // filter the survivor, per XPath's left-to-right predicate order.
        let d = doc_figure8();
        for q in ["//b[1][child::c]", "//b[2][child::zzz]", "//b[last()][child::d]"] {
            let sq = compile_str(q).unwrap_or_else(|e| panic!("{q}: {e}"));
            assert_eq!(evaluate_stream(&sq, &d), topdown_eval(&d, q), "{q}");
        }
    }

    #[test]
    fn positional_on_random_docs() {
        for seed in 0..15 {
            let cfg = RandomDocConfig { elements: 40, ..RandomDocConfig::default() };
            let doc = doc_random(seed, &cfg);
            for q in ["//b[1]", "//b[2]", "//a/b[last()]", "//*[position() != last()]"] {
                let sq = compile_str(q).unwrap();
                assert_eq!(
                    evaluate_stream(&sq, &doc),
                    topdown_eval(&doc, q),
                    "query {q} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn positional_rejections() {
        // Non-child final axes and non-initial positional predicates stay
        // outside the fragment, with a targeted error message.
        for q in [
            "//descendant::b[2]",
            "/descendant::b[last()]",
            "//b[child::c][2]",
            "//b[position() < 2]",
            "//b[position() = count(//c)]",
        ] {
            assert!(compile_str(q).is_err(), "{q} should be rejected");
        }
        // Normalizer note: `//b[2]` desugars to child::b[position() = 2]
        // under a descendant-or-self::node() step — that is child-axis and
        // accepted; a literal descendant::b[2] is not.
        assert!(compile_str("//b[2]").is_ok());
    }
}
