//! The XSLT-Patterns'98 unary predicates of Table VI and the `Σ`-indexed
//! type predicates of Theorem 10.8 — the machinery that makes **XPatterns**
//! evaluable in linear time.
//!
//! Each predicate is a precomputable node set ("after parsing the query,
//! one knows of a fixed number of predicates to populate, and this action
//! takes time O(|D|) for each"):
//!
//! ```text
//! first-of-any := {y ∈ dom | ¬∃x : nextsibling(x, y)}
//! last-of-any  := {x ∈ dom | ¬∃y : nextsibling(x, y)}
//! first-of-type() := ∪_{l∈Σ} (T(l) − nextsibling⁺(T(l)))
//! last-of-type()  := ∪_{l∈Σ} (T(l) − (nextsibling⁻¹)⁺(T(l)))
//! "@n", "@*", "text()", "comment()", "pi(n)", "pi()" — sets provided with
//! the document; "=s" — string search (see `corexpath::EqTest`); "id(s)" —
//! computable before evaluation.
//! ```
//!
//! The compiled XPatterns evaluator lives in [`crate::corexpath`]; this
//! module exposes the predicate sets directly, as Theorem 10.8's proof
//! uses them, plus a registry that populates all predicates needed by a
//! query in one `O(|D|·|Q|)` pass.

use std::collections::HashMap;

use xpath_xml::{Document, NameId, NodeId, NodeKind};

use crate::nodeset::NodeSet;

/// `first-of-any`: nodes with no previous sibling (Table VI).
pub fn first_of_any(doc: &Document) -> NodeSet {
    doc.all_nodes().filter(|&n| doc.prev_sibling(n).is_none()).collect()
}

/// `last-of-any`: nodes with no next sibling (Table VI).
pub fn last_of_any(doc: &Document) -> NodeSet {
    doc.all_nodes().filter(|&n| doc.next_sibling(n).is_none()).collect()
}

/// `first-of-type`: elements with no earlier sibling of the same name.
/// Computed per Theorem 10.8 in `O(|D| · |Σ|)` — realized here as a single
/// sweep per parent using a seen-set, which is `O(|D|)` total.
pub fn first_of_type(doc: &Document) -> NodeSet {
    let mut out = Vec::new();
    let mut seen: Vec<NameId> = Vec::new();
    for n in doc.all_nodes() {
        if doc.first_child(n).is_none() {
            continue;
        }
        seen.clear();
        for c in doc.children(n) {
            if doc.kind(c) != NodeKind::Element {
                continue;
            }
            let Some(name) = doc.name_id(c) else { continue };
            if !seen.contains(&name) {
                seen.push(name);
                out.push(c);
            }
        }
    }
    NodeSet::from_unsorted(out)
}

/// `last-of-type`: elements with no later sibling of the same name.
pub fn last_of_type(doc: &Document) -> NodeSet {
    let mut out = Vec::new();
    let mut last: HashMap<NameId, NodeId> = HashMap::new();
    for n in doc.all_nodes() {
        if doc.first_child(n).is_none() {
            continue;
        }
        last.clear();
        for c in doc.children(n) {
            if doc.kind(c) != NodeKind::Element {
                continue;
            }
            if let Some(name) = doc.name_id(c) {
                last.insert(name, c);
            }
        }
        out.extend(last.values().copied());
    }
    NodeSet::from_unsorted(out)
}

/// `"@n"`: elements carrying an attribute named `n` (Table VI).
pub fn has_attribute(doc: &Document, name: &str) -> NodeSet {
    let Some(id) = doc.lookup_name(name) else { return NodeSet::new() };
    doc.all_nodes()
        .filter(|&n| {
            doc.kind(n) == NodeKind::Element
                && doc.attributes(n).any(|a| doc.name_id(a) == Some(id))
        })
        .collect()
}

/// `"@*"`: elements carrying any attribute (Table VI).
pub fn has_any_attribute(doc: &Document) -> NodeSet {
    doc.all_nodes()
        .filter(|&n| doc.kind(n) == NodeKind::Element && doc.attributes(n).next().is_some())
        .collect()
}

/// `"text()"`: elements with a text child (the XSLT-Patterns qualifier
/// tests containment, unlike the XPath node test).
pub fn has_text(doc: &Document) -> NodeSet {
    doc.all_nodes().filter(|&n| doc.children(n).any(|c| doc.kind(c) == NodeKind::Text)).collect()
}

/// `"comment()"` qualifier: elements with a comment child.
pub fn has_comment(doc: &Document) -> NodeSet {
    doc.all_nodes().filter(|&n| doc.children(n).any(|c| doc.kind(c) == NodeKind::Comment)).collect()
}

/// `"pi(n)"` / `"pi()"` qualifier: elements with a processing-instruction
/// child (optionally with target `n`).
pub fn has_pi(doc: &Document, target: Option<&str>) -> NodeSet {
    doc.all_nodes()
        .filter(|&n| {
            doc.children(n).any(|c| {
                doc.kind(c) == NodeKind::ProcessingInstruction
                    && target.is_none_or(|t| doc.name(c) == Some(t))
            })
        })
        .collect()
}

/// `"=s"`: nodes whose string value equals `s` (Table VI: "computed using
/// string search in the document before the evaluation of our query").
pub fn string_value_equals(doc: &Document, s: &str) -> NodeSet {
    doc.all_nodes().filter(|&n| doc.string_value(n) == s).collect()
}

/// `"id(s)"`: the unary predicate `{x | x ∈ deref_ids(s)}`.
pub fn id_predicate(doc: &Document, s: &str) -> NodeSet {
    NodeSet::from_sorted(doc.deref_ids(s))
}

/// A registry of populated predicates for one document, so repeated
/// matching (the XSLT use case) pays each `O(|D|)` computation once.
pub struct PredicateRegistry<'d> {
    doc: &'d Document,
    first_of_any: Option<NodeSet>,
    last_of_any: Option<NodeSet>,
    first_of_type: Option<NodeSet>,
    last_of_type: Option<NodeSet>,
    eq_strings: HashMap<String, NodeSet>,
    has_attr: HashMap<String, NodeSet>,
}

impl<'d> PredicateRegistry<'d> {
    /// An empty registry over `doc`.
    pub fn new(doc: &'d Document) -> Self {
        PredicateRegistry {
            doc,
            first_of_any: None,
            last_of_any: None,
            first_of_type: None,
            last_of_type: None,
            eq_strings: HashMap::new(),
            has_attr: HashMap::new(),
        }
    }

    /// `first-of-any`, populated on first use.
    pub fn first_of_any(&mut self) -> &NodeSet {
        self.first_of_any.get_or_insert_with(|| first_of_any(self.doc))
    }

    /// `last-of-any`, populated on first use.
    pub fn last_of_any(&mut self) -> &NodeSet {
        self.last_of_any.get_or_insert_with(|| last_of_any(self.doc))
    }

    /// `first-of-type`, populated on first use.
    pub fn first_of_type(&mut self) -> &NodeSet {
        self.first_of_type.get_or_insert_with(|| first_of_type(self.doc))
    }

    /// `last-of-type`, populated on first use.
    pub fn last_of_type(&mut self) -> &NodeSet {
        self.last_of_type.get_or_insert_with(|| last_of_type(self.doc))
    }

    /// `=s`, populated per distinct string.
    pub fn string_value_equals(&mut self, s: &str) -> &NodeSet {
        self.eq_strings.entry(s.to_string()).or_insert_with(|| string_value_equals(self.doc, s))
    }

    /// `@n`, populated per distinct attribute name.
    pub fn has_attribute(&mut self, name: &str) -> &NodeSet {
        self.has_attr.entry(name.to_string()).or_insert_with(|| has_attribute(self.doc, name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_xml::generate::{doc_bookstore, doc_figure8};
    use xpath_xml::Document;

    #[test]
    fn first_and_last_of_any() {
        let d = Document::parse_str("<a><b/><c/><b/></a>").unwrap();
        let a = d.document_element().unwrap();
        let kids: Vec<NodeId> = d.children(a).collect();
        let f = first_of_any(&d);
        // root (no siblings), a (only child), first b.
        assert!(f.contains(d.root()));
        assert!(f.contains(a));
        assert!(f.contains(kids[0]));
        assert!(!f.contains(kids[1]));
        let l = last_of_any(&d);
        assert!(l.contains(kids[2]));
        assert!(!l.contains(kids[0]));
        assert!(l.contains(a));
    }

    #[test]
    fn first_of_type_per_label() {
        let d = Document::parse_str("<a><b/><c/><b/><c/></a>").unwrap();
        let a = d.document_element().unwrap();
        let kids: Vec<NodeId> = d.children(a).collect();
        let f = first_of_type(&d);
        assert!(f.contains(kids[0]), "first b");
        assert!(f.contains(kids[1]), "first c");
        assert!(!f.contains(kids[2]), "second b");
        assert!(!f.contains(kids[3]), "second c");
        let l = last_of_type(&d);
        assert!(!l.contains(kids[0]));
        assert!(!l.contains(kids[1]));
        assert!(l.contains(kids[2]), "last b");
        assert!(l.contains(kids[3]), "last c");
        // The document element is both first- and last-of-type.
        assert!(f.contains(a));
        assert!(l.contains(a));
    }

    #[test]
    fn first_of_type_equivalent_to_definition() {
        // Cross-check against the Theorem 10.8 formula via a naive
        // per-label scan on a larger document.
        let d = doc_bookstore();
        let fast = first_of_type(&d);
        let mut slow = Vec::new();
        for n in d.all_nodes() {
            if d.kind(n) != NodeKind::Element {
                continue;
            }
            let name = d.name_id(n);
            let mut has_earlier = false;
            let mut cur = d.prev_sibling(n);
            while let Some(p) = cur {
                if d.kind(p) == NodeKind::Element && d.name_id(p) == name {
                    has_earlier = true;
                    break;
                }
                cur = d.prev_sibling(p);
            }
            if !has_earlier {
                slow.push(n);
            }
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn attribute_predicates() {
        let d = doc_bookstore();
        let with_year = has_attribute(&d, "year");
        assert_eq!(with_year.len(), 4, "four books carry @year");
        let with_any = has_any_attribute(&d);
        assert!(with_any.len() > with_year.len());
        assert!(has_attribute(&d, "nope").is_empty());
    }

    #[test]
    fn containment_predicates() {
        let d = Document::parse_str("<a><b>t</b><c><!--x--></c><d><?p q?></d><e/></a>").unwrap();
        let a = d.document_element().unwrap();
        let kids: Vec<NodeId> = d.children(a).collect();
        assert_eq!(has_text(&d), vec![kids[0]]);
        assert_eq!(has_comment(&d), vec![kids[1]]);
        assert_eq!(has_pi(&d, None), vec![kids[2]]);
        assert_eq!(has_pi(&d, Some("p")), vec![kids[2]]);
        assert!(has_pi(&d, Some("z")).is_empty());
    }

    #[test]
    fn eq_and_id_predicates() {
        let d = doc_figure8();
        let hundreds = string_value_equals(&d, "100");
        // Elements x14, x24 and their text children.
        assert_eq!(hundreds.len(), 4);
        let ids = id_predicate(&d, "12 21");
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn registry_caches() {
        let d = doc_bookstore();
        let mut reg = PredicateRegistry::new(&d);
        let a = reg.first_of_type().clone();
        let b = reg.first_of_type().clone();
        assert_eq!(a, b);
        assert_eq!(reg.string_value_equals("x").len(), 0);
        assert!(!reg.has_attribute("id").is_empty());
        assert!(!reg.last_of_any().is_empty());
        assert!(!reg.last_of_type().is_empty());
        assert!(!reg.first_of_any().is_empty());
    }

    #[test]
    fn predicates_expressible_in_core_xpath_agree() {
        // On attribute-free documents, first-of-any restricted to elements
        // coincides with //*[not(preceding-sibling::node())] (on documents
        // with attributes the Table VI predicate counts attribute siblings
        // of the abstract tree, which the XPath axis filters out).
        use crate::engine::Engine;
        let d = Document::parse_str("<a><b/><c><d/>text<d/></c><b/></a>").unwrap();
        let engine = Engine::new(&d);
        let via_query = engine.select("//*[not(preceding-sibling::node())] | /.").unwrap();
        let mut expected = first_of_any(&d);
        // The query returns only elements+root; restrict the predicate set.
        expected.retain(|n| matches!(d.kind(n), NodeKind::Element | NodeKind::Root));
        assert_eq!(via_query, expected);
    }
}
