//! The **MinContext** algorithm (paper §8, Appendix A).
//!
//! MinContext keeps context information as small as possible by combining
//! three ideas (§8.2):
//!
//! 1. **Restriction to the relevant context** — tables are only built for
//!    parse-tree nodes `N` with `Relev(N) ⊆ {cn}`, keyed by the context
//!    node, and only for *reachable* context nodes (top-down restriction);
//! 2. **Special treatment of location paths on the outermost level** —
//!    propagated as plain node sets `⊆ dom` instead of relations
//!    `⊆ dom × 2^dom`;
//! 3. **Treating position and size in a loop** — predicates that depend on
//!    `cp`/`cs` are evaluated in a loop over the pairs of previous/current
//!    context node rather than materialized in tables.
//!
//! The four procedures below mirror the Appendix A pseudocode:
//! `eval_outermost_locpath`, `eval_by_cnode_only`, `eval_single_context`
//! and `eval_inner_locpath`. Theorem 8.6: time `O(|D|⁴·|Q|²)`, space
//! `O(|D|²·|Q|²)`.

use std::cell::RefCell;
use std::collections::HashMap;

use xpath_syntax::{BinaryOp, Expr, LocationPath, PathStart, Step};
use xpath_xml::{Document, NodeId};

use crate::bottomup::CvTable;
use crate::context::{Context, EvalBudget, EvalError, EvalResult};
use crate::eval_common::{
    apply_binary, position_of, predicate_holds, step_candidates, step_candidates_set_sharded,
};
use crate::functions;
use crate::nodeset::NodeSet;
use crate::relev::{relev, Relev};
use crate::value::Value;

/// The MinContext evaluator (Algorithm 8.5).
pub struct MinContextEvaluator<'d> {
    doc: &'d Document,
    /// `table(N)` for parse-tree nodes with `Relev(N) ⊆ {cn}`, keyed by the
    /// subexpression's address. Reset per `evaluate` call.
    tables: RefCell<HashMap<usize, CvTable>>,
    /// Resolved shard budget for the set-at-a-time axis passes (1 = every
    /// pass serial; sharding stays cost-gated — see [`crate::parallel`]).
    threads: usize,
    /// Deadline/cancellation budget, polled before every outermost step,
    /// table build and inner-path pass.
    eval_budget: EvalBudget,
}

fn key_of(e: &Expr) -> usize {
    e as *const Expr as usize
}

impl<'d> MinContextEvaluator<'d> {
    /// Create a MinContext evaluator over `doc` with the process-default
    /// thread budget (`GKP_THREADS` / the machine's parallelism).
    pub fn new(doc: &'d Document) -> Self {
        MinContextEvaluator {
            doc,
            tables: RefCell::new(HashMap::new()),
            threads: crate::parallel::resolve_threads(0),
            eval_budget: EvalBudget::unlimited(),
        }
    }

    /// Pin the shard budget for this evaluator's axis passes: `0`
    /// re-resolves the process default, `1` keeps every pass serial.
    pub fn with_threads(mut self, threads: u32) -> Self {
        self.threads = crate::parallel::resolve_threads(threads);
        self
    }

    /// Attach a deadline/cancellation [`EvalBudget`], polled before every
    /// outermost step, context-value table build and inner-path pass.
    #[must_use]
    pub fn with_eval_budget(mut self, budget: EvalBudget) -> Self {
        self.eval_budget = budget;
        self
    }

    /// Algorithm 8.5 (MinContext): top-level dispatch.
    pub fn evaluate(&self, query: &Expr, ctx: Context) -> EvalResult<Value> {
        self.tables.borrow_mut().clear();
        let start = NodeSet::singleton(ctx.node);
        if let Expr::Path(p) = query {
            let out = self.eval_outermost_locpath(p, &start, ctx)?;
            return Ok(Value::NodeSet(out));
        }
        self.eval_by_cnode_only(query, &start)?;
        self.eval_single_context(query, ctx)
    }

    /// Appendix A `eval_outermost_locpath`: propagate plain node sets
    /// through the outermost location path (§8.2 idea 2).
    fn eval_outermost_locpath(
        &self,
        p: &LocationPath,
        x: &NodeSet,
        ctx: Context,
    ) -> EvalResult<NodeSet> {
        let start: NodeSet = match &p.start {
            PathStart::Root => NodeSet::singleton(self.doc.root()),
            PathStart::ContextNode => x.clone(),
            PathStart::Expr(head) => {
                // Extension beyond the appendix: FilterExpr heads evaluate
                // per context node, and their results are unioned.
                self.eval_by_cnode_only(head, x)?;
                let mut acc = NodeSet::new();
                for n in x {
                    let v = self.eval_single_context(head, Context::of(n))?;
                    let set = v.into_node_set().ok_or_else(|| {
                        EvalError::TypeMismatch("path start must evaluate to a node set".into())
                    })?;
                    acc.union_with(&set);
                }
                acc
            }
        };
        let mut cur = start;
        for step in &p.steps {
            cur = self.outermost_step(step, &cur, ctx)?;
        }
        Ok(cur)
    }

    /// One outermost location step: set-at-a-time expansion through the
    /// bulk axis engine, then predicates either per node (cn-only) or in
    /// the (p, s) loop.
    fn outermost_step(&self, step: &Step, x: &NodeSet, _ctx: Context) -> EvalResult<NodeSet> {
        self.eval_budget.check()?;
        // Y := nodes reachable from X via χ::t.
        let y = step_candidates_set_sharded(self.doc, step.axis, &step.test, x, self.threads);
        for pred in &step.predicates {
            self.eval_by_cnode_only(pred, &y)?;
        }
        if step.predicates.iter().all(|p| !relev(p).has_pos_or_size()) {
            // Fast path: no predicate inspects cp/cs — filter Y directly.
            let mut r = Vec::with_capacity(y.len());
            'outer: for node in &y {
                for pred in &step.predicates {
                    let v = self.eval_single_context(pred, Context::of(node))?;
                    if !predicate_holds(&v, 1) {
                        continue 'outer;
                    }
                }
                r.push(node);
            }
            Ok(NodeSet::from_sorted(r))
        } else {
            // (p, s) loop over pairs of previous/current context node.
            let mut r: Vec<NodeId> = Vec::new();
            for src in x {
                let mut z = step_candidates(self.doc, step.axis, &step.test, src);
                for pred in &step.predicates {
                    let m = z.len();
                    let mut kept = Vec::with_capacity(m);
                    for (j, &node) in z.iter().enumerate() {
                        let pos = position_of(step.axis, j, m);
                        let v = self
                            .eval_single_context(pred, Context::new(node, pos, m.max(1) as u32))?;
                        if predicate_holds(&v, pos) {
                            kept.push(node);
                        }
                    }
                    z = kept;
                }
                r.extend(z);
            }
            Ok(NodeSet::from_unsorted(r))
        }
    }

    /// Appendix A `eval_by_cnode_only`: for every node `M` in the subtree
    /// rooted at `N` whose expression does not depend on the current
    /// position/size, compute `table(M)` over the possible context nodes.
    pub(crate) fn eval_by_cnode_only(&self, e: &Expr, x: &NodeSet) -> EvalResult<()> {
        if self.tables.borrow().contains_key(&key_of(e)) {
            return Ok(());
        }
        self.eval_budget.check()?;
        let rel = relev(e);
        if rel.has_pos_or_size() {
            // Recurse; N itself is evaluated later per single context.
            match e {
                Expr::Binary { left, right, .. } => {
                    self.eval_by_cnode_only(left, x)?;
                    self.eval_by_cnode_only(right, x)?;
                }
                Expr::Neg(inner) => self.eval_by_cnode_only(inner, x)?,
                Expr::Call { args, .. } => {
                    for a in args {
                        self.eval_by_cnode_only(a, x)?;
                    }
                }
                // position()/last() leaves and constants have no children.
                _ => {}
            }
            return Ok(());
        }
        // Relev(N) ⊆ {cn}: build table(N).
        let mut table = CvTable::new(rel);
        match e {
            Expr::Path(p) => {
                let rel_map = self.eval_inner_locpath(p, x)?;
                for (node, set) in rel_map {
                    table.insert(Context::of(node), Value::NodeSet(set));
                }
            }
            Expr::Filter { primary, predicates } => {
                self.eval_by_cnode_only(primary, x)?;
                // Predicates see the nodes of the primary's results.
                let mut all_targets = NodeSet::new();
                for n in x {
                    let v = self.eval_single_context(primary, Context::of(n))?;
                    if let Some(s) = v.as_node_set() {
                        all_targets.union_with(s);
                    }
                }
                for pred in predicates {
                    self.eval_by_cnode_only(pred, &all_targets)?;
                }
                for n in x {
                    let v = self.eval_single_context(primary, Context::of(n))?;
                    let Some(set) = v.into_node_set() else {
                        return Err(EvalError::TypeMismatch(
                            "predicates require a node-set primary expression".into(),
                        ));
                    };
                    let mut s = set.into_vec();
                    for pred in predicates {
                        let m = s.len();
                        let mut kept = Vec::with_capacity(m);
                        for (j, &node) in s.iter().enumerate() {
                            let pos = (j + 1) as u32;
                            let v = self.eval_single_context(
                                pred,
                                Context::new(node, pos, m.max(1) as u32),
                            )?;
                            if predicate_holds(&v, pos) {
                                kept.push(node);
                            }
                        }
                        s = kept;
                    }
                    table.insert(Context::of(n), Value::NodeSet(NodeSet::from_sorted(s)));
                }
            }
            Expr::Number(v) => table.insert(Context::of(NodeId(0)), Value::Number(*v)),
            Expr::Literal(s) => table.insert(Context::of(NodeId(0)), Value::String(s.clone())),
            Expr::Var(name) => return Err(EvalError::UnboundVariable(name.clone())),
            Expr::Neg(inner) => {
                self.eval_by_cnode_only(inner, x)?;
                for n in self.domain(rel, x) {
                    let v = self.eval_single_context(inner, Context::of(n))?;
                    table.insert(Context::of(n), Value::Number(-v.to_number(self.doc)));
                }
            }
            Expr::Binary { op, left, right } => {
                self.eval_by_cnode_only(left, x)?;
                self.eval_by_cnode_only(right, x)?;
                for n in self.domain(rel, x) {
                    let l = self.eval_single_context(left, Context::of(n))?;
                    let r = self.eval_single_context(right, Context::of(n))?;
                    let v = match op {
                        BinaryOp::And => Value::Boolean(l.to_boolean() && r.to_boolean()),
                        BinaryOp::Or => Value::Boolean(l.to_boolean() || r.to_boolean()),
                        _ => apply_binary(self.doc, *op, l, r)?,
                    };
                    table.insert(Context::of(n), v);
                }
            }
            Expr::Call { name, args } => {
                for a in args {
                    self.eval_by_cnode_only(a, x)?;
                }
                for n in self.domain(rel, x) {
                    let ctx = Context::of(n);
                    let mut argv = Vec::with_capacity(args.len());
                    for a in args {
                        argv.push(self.eval_single_context(a, ctx)?);
                    }
                    table.insert(ctx, functions::apply(self.doc, name, argv, &ctx)?);
                }
            }
        }
        self.tables.borrow_mut().insert(key_of(e), table);
        Ok(())
    }

    /// The context nodes a `{cn}`-relevant table must cover: `X` itself, or
    /// a single dummy row for constant expressions.
    fn domain(&self, rel: Relev, x: &NodeSet) -> NodeSet {
        if rel.has_cn() {
            x.clone()
        } else {
            NodeSet::singleton(NodeId(0))
        }
    }

    /// Appendix A `eval_single_context`: value of `expr(N)` at one context.
    /// Requires `eval_by_cnode_only(N, X)` to have run with the context
    /// node covered by `X`.
    pub(crate) fn eval_single_context(&self, e: &Expr, ctx: Context) -> EvalResult<Value> {
        let rel = relev(e);
        if !rel.has_pos_or_size() {
            let tables = self.tables.borrow();
            let t = tables
                .get(&key_of(e))
                .unwrap_or_else(|| panic!("eval_by_cnode_only must precede eval_single_context"));
            return t
                .value_at(ctx)
                .cloned()
                .ok_or_else(|| EvalError::Capacity(format!("context {ctx} not covered by table")));
        }
        match e {
            Expr::Binary { op, left, right } => {
                let l = self.eval_single_context(left, ctx)?;
                let r = self.eval_single_context(right, ctx)?;
                match op {
                    BinaryOp::And => Ok(Value::Boolean(l.to_boolean() && r.to_boolean())),
                    BinaryOp::Or => Ok(Value::Boolean(l.to_boolean() || r.to_boolean())),
                    _ => apply_binary(self.doc, *op, l, r),
                }
            }
            Expr::Neg(inner) => {
                Ok(Value::Number(-self.eval_single_context(inner, ctx)?.to_number(self.doc)))
            }
            Expr::Call { name, args } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval_single_context(a, ctx)?);
                }
                functions::apply(self.doc, name, argv, &ctx)
            }
            // Paths/filters/constants are cn-only and handled above.
            _ => unreachable!("cp/cs-relevant expression of unexpected shape"),
        }
    }

    /// Appendix A `eval_inner_locpath`: the relation
    /// `{(x, y) | x ∈ X, y reachable via the path}` as a per-source map.
    fn eval_inner_locpath(
        &self,
        p: &LocationPath,
        x: &NodeSet,
    ) -> EvalResult<Vec<(NodeId, NodeSet)>> {
        let (starts, shared): (Vec<(NodeId, NodeSet)>, bool) = match &p.start {
            // expr(N) = /π: all sources map to the root's result.
            PathStart::Root => (vec![(self.doc.root(), NodeSet::singleton(self.doc.root()))], true),
            PathStart::ContextNode => {
                (x.iter().map(|n| (n, NodeSet::singleton(n))).collect(), false)
            }
            PathStart::Expr(head) => {
                self.eval_by_cnode_only(head, x)?;
                let mut v = Vec::with_capacity(x.len());
                for n in x {
                    let val = self.eval_single_context(head, Context::of(n))?;
                    let set = val.into_node_set().ok_or_else(|| {
                        EvalError::TypeMismatch("path start must evaluate to a node set".into())
                    })?;
                    v.push((n, set));
                }
                (v, false)
            }
        };
        let mut rel_map = starts;
        for step in &p.steps {
            self.eval_budget.check()?;
            // Frontier: the distinct target nodes.
            let mut frontier = NodeSet::new();
            for (_, set) in &rel_map {
                frontier.union_with(set);
            }
            // Expand the step once per distinct frontier node.
            let mut expansion: HashMap<NodeId, NodeSet> = HashMap::new();
            for pred in &step.predicates {
                let y = step_candidates_set_sharded(
                    self.doc,
                    step.axis,
                    &step.test,
                    &frontier,
                    self.threads,
                );
                self.eval_by_cnode_only(pred, &y)?;
            }
            for src in &frontier {
                let mut z = step_candidates(self.doc, step.axis, &step.test, src);
                for pred in &step.predicates {
                    let m = z.len();
                    let mut kept = Vec::with_capacity(m);
                    for (j, &node) in z.iter().enumerate() {
                        let pos = position_of(step.axis, j, m);
                        let v = self
                            .eval_single_context(pred, Context::new(node, pos, m.max(1) as u32))?;
                        if predicate_holds(&v, pos) {
                            kept.push(node);
                        }
                    }
                    z = kept;
                }
                expansion.insert(src, NodeSet::from_sorted(z));
            }
            // Compose.
            rel_map = rel_map
                .into_iter()
                .map(|(xsrc, set)| {
                    let mut acc = NodeSet::new();
                    for y in &set {
                        if let Some(t) = expansion.get(&y) {
                            acc.union_with(t);
                        }
                    }
                    (xsrc, acc)
                })
                .collect();
        }
        if shared {
            // Absolute path: duplicate the root's result for every source.
            let result = rel_map.first().map(|(_, s)| s.clone()).unwrap_or_default();
            return Ok(x.iter().map(|n| (n, result.clone())).collect());
        }
        Ok(rel_map)
    }
}

/// Convenience: evaluate a query string with MinContext.
pub fn evaluate_str(doc: &Document, query: &str, ctx: Context) -> EvalResult<Value> {
    let e =
        xpath_syntax::parse_normalized(query).map_err(|err| EvalError::Parse(err.to_string()))?;
    MinContextEvaluator::new(doc).evaluate(&e, ctx)
}

impl<'d> MinContextEvaluator<'d> {
    /// Install `table` for subexpression `e` — OptMinContext's hook
    /// ("subexpressions that have already been evaluated bottom-up are not
    /// evaluated again", Algorithm 11.1).
    pub(crate) fn seed_table(&self, e: &Expr, table: CvTable) {
        self.tables.borrow_mut().insert(key_of(e), table);
    }

    /// Like [`MinContextEvaluator::evaluate`] but without clearing the
    /// table store, so bottom-up seeds survive.
    pub(crate) fn evaluate_with_seeds(&self, query: &Expr, ctx: Context) -> EvalResult<Value> {
        let start = NodeSet::singleton(ctx.node);
        if let Expr::Path(p) = query {
            let out = self.eval_outermost_locpath(p, &start, ctx)?;
            return Ok(Value::NodeSet(out));
        }
        self.eval_by_cnode_only(query, &start)?;
        self.eval_single_context(query, ctx)
    }

    /// The document this evaluator runs over.
    pub(crate) fn document(&self) -> &'d Document {
        self.doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveEvaluator;
    use xpath_syntax::parse_normalized;
    use xpath_xml::generate::{doc_bookstore, doc_figure8, doc_flat, doc_flat_text};

    #[test]
    fn example_8_1_query() {
        // The §8 running example: Q over the Figure 8 document for context
        // ⟨x10, 1, 1⟩ = {x13, x14, x21, x22, x23, x24}.
        let d = doc_figure8();
        let v = evaluate_str(
            &d,
            "/descendant::*/descendant::*[position() > last() * 0.5 or string(self::*) = '100']",
            Context::of(d.element_by_id("10").unwrap()),
        )
        .unwrap();
        let expect: Vec<NodeId> = ["13", "14", "21", "22", "23", "24"]
            .iter()
            .map(|i| d.element_by_id(i).unwrap())
            .collect();
        assert_eq!(v, Value::NodeSet(expect.into()));
    }

    #[test]
    fn example_8_4_candidate_narrowing() {
        // §8.4: after /descendant::*/descendant::*, the candidate set is
        // {x11..x24}; predicate E5 keeps 6 of the 8.
        let d = doc_figure8();
        let v = evaluate_str(&d, "/descendant::*/descendant::*", Context::of(d.root())).unwrap();
        assert_eq!(v.as_node_set().unwrap().len(), 8);
    }

    #[test]
    fn thread_budget_changes_the_route_never_the_result() {
        // The plan-level contract: with_threads(1) pins every axis pass
        // serial, wider budgets may shard (cost-gated) — results must be
        // identical either way.
        let docs = [doc_flat(4), doc_figure8(), doc_bookstore()];
        let queries = ["//a/b", "//b[2]", "//d/ancestor::b", "//c/following::d"];
        for d in &docs {
            for q in queries {
                let e = parse_normalized(q).unwrap();
                let serial = MinContextEvaluator::new(d)
                    .with_threads(1)
                    .evaluate(&e, Context::of(d.root()))
                    .unwrap();
                let wide = MinContextEvaluator::new(d)
                    .with_threads(8)
                    .evaluate(&e, Context::of(d.root()))
                    .unwrap();
                assert!(wide.semantically_equal(&serial), "{q}");
            }
        }
    }

    #[test]
    fn agrees_with_naive_on_corpus() {
        let docs = [doc_flat(4), doc_flat_text(3), doc_figure8(), doc_bookstore()];
        let queries = [
            "//a/b",
            "//b[2]",
            "//b[last()]",
            "//*[parent::a/child::* = 'c']",
            "//a/b[count(parent::a/b) > 1]",
            "count(//b/following::b)",
            "(//c | //d)[2]",
            "id('12 24')/parent::*",
            "//*[@id = '22']",
            "sum(//d) + count(//c)",
            "//section/book[2]/title",
            "//book[author/last = 'Koch']/@id",
            "//d/ancestor::b",
            "//b[preceding-sibling::b][following-sibling::b]",
            "//*[position() = last()]",
            "string(//book[1]/title)",
            "//d[not(following-sibling::*)]",
            "//c/following::d",
        ];
        for d in &docs {
            for q in queries {
                let e = parse_normalized(q).unwrap();
                let naive = NaiveEvaluator::new(d).evaluate(&e, Context::of(d.root())).unwrap();
                let mc = MinContextEvaluator::new(d).evaluate(&e, Context::of(d.root())).unwrap();
                assert!(naive.semantically_equal(&mc), "query {q} on {d:?}: {naive:?} vs {mc:?}");
            }
        }
    }

    #[test]
    fn polynomial_on_antagonist_queries() {
        let d = doc_flat(2);
        let mut q = String::from("//a/b");
        for _ in 0..40 {
            q.push_str("/parent::a/b");
        }
        let v = evaluate_str(&d, &q, Context::of(d.root())).unwrap();
        assert_eq!(v.as_node_set().unwrap().len(), 2);
    }

    #[test]
    fn scalar_query() {
        let d = doc_flat(7);
        let v = evaluate_str(&d, "count(//b) * 2", Context::of(d.root())).unwrap();
        assert_eq!(v, Value::Number(14.0));
    }

    #[test]
    fn position_loop_inside_inner_path() {
        // Inner location path whose predicate needs the (p, s) loop.
        let d = doc_flat(5);
        let q = "//b[count(parent::a/b[position() != last()]) = 4]";
        let e = parse_normalized(q).unwrap();
        let naive = NaiveEvaluator::new(&d).evaluate(&e, Context::of(d.root())).unwrap();
        let mc = MinContextEvaluator::new(&d).evaluate(&e, Context::of(d.root())).unwrap();
        assert!(naive.semantically_equal(&mc));
        assert_eq!(mc.as_node_set().unwrap().len(), 5);
    }
}
