//! Unified engine facade over all evaluation algorithms.
//!
//! **Back-compat status:** `Engine` predates the two-phase query API and
//! is kept as a thin facade over [`crate::query::Compiler`] and
//! [`crate::cache::QueryCache`] — every method delegates to them. All
//! pre-existing signatures remain supported; new code that evaluates the
//! same query repeatedly (or against several documents, or from several
//! threads) should use [`Compiler`]/[`crate::query::CompiledQuery`]
//! directly, which make the compile-once / evaluate-many split explicit.
//! An `Engine` is bound to one document; a `CompiledQuery` is bound to
//! none.
//!
//! ```
//! use xpath_core::engine::{Engine, Strategy};
//! use xpath_xml::Document;
//!
//! let doc = Document::parse_str("<a><b/><b/></a>").unwrap();
//! let engine = Engine::new(&doc);
//! let hits = engine.select("//b").unwrap();
//! assert_eq!(hits.len(), 2);
//! // Every algorithm of the paper is selectable:
//! let v = engine.evaluate_with("count(//b)", Strategy::TopDown).unwrap();
//! assert_eq!(v.to_string(), "2");
//! ```

use std::collections::HashMap;
use std::sync::Mutex;

use xpath_syntax::{Bindings, Expr};
use xpath_xml::{Document, NodeId};

use crate::batch::{BatchResult, QuerySetBuilder};
use crate::bottomup::BottomUpEvaluator;
use crate::cache::{CacheStats, QueryCache};
use crate::context::{Context, EvalError, EvalResult};
use crate::corexpath::{self, CoreDialect, CoreXPathEvaluator};
use crate::fragment::classify;
use crate::mincontext::MinContextEvaluator;
use crate::naive::NaiveEvaluator;
use crate::nodeset::NodeSet;
use crate::optmincontext::OptMinContextEvaluator;
use crate::plan;
use crate::pool::PoolEvaluator;
use crate::query::Compiler;
use crate::topdown::TopDownEvaluator;
use crate::value::Value;

pub use crate::plan::Strategy;

/// How many compiled queries each engine memoizes. Engines are typically
/// short-lived and single-document; long-lived services should share a
/// [`QueryCache`] across documents instead.
const ENGINE_CACHE_CAPACITY: usize = 128;

/// An XPath engine bound to a document: a thin facade over
/// [`Compiler`] + [`QueryCache`] (see the module docs).
pub struct Engine<'d> {
    doc: &'d Document,
    compiler: Compiler,
    /// The compiler's options fingerprint, computed once — the engine's
    /// compiler never changes after construction, and rendering it per
    /// lookup would dominate cache-hit cost.
    fingerprint: String,
    /// Fingerprints for `evaluate_with` strategy overrides, memoized per
    /// strategy for the same reason.
    strategy_fingerprints: Mutex<HashMap<Strategy, String>>,
    cache: QueryCache,
}

impl<'d> Engine<'d> {
    /// Create an engine over `doc`.
    pub fn new(doc: &'d Document) -> Self {
        Engine::with_compiler(doc, Compiler::new())
    }

    /// Enable the semantics-preserving rewrite pass
    /// ([`xpath_syntax::rewrite`]) on every prepared query: `//`-step
    /// merging, `self::node()` elimination, constant folding.
    pub fn with_optimizer(doc: &'d Document) -> Self {
        Engine::with_compiler(doc, Compiler::new().optimize(true))
    }

    /// Create an engine over `doc` with a fully configured [`Compiler`].
    pub fn with_compiler(doc: &'d Document, compiler: Compiler) -> Self {
        let fingerprint = compiler.options_fingerprint();
        Engine {
            doc,
            compiler,
            fingerprint,
            strategy_fingerprints: Mutex::new(HashMap::new()),
            cache: QueryCache::new(ENGINE_CACHE_CAPACITY),
        }
    }

    /// The underlying document.
    pub fn document(&self) -> &'d Document {
        self.doc
    }

    /// Parse and normalize a query (no variable bindings), applying the
    /// rewrite pass if this engine was built with
    /// [`Engine::with_optimizer`].
    pub fn prepare(&self, query: &str) -> EvalResult<Expr> {
        self.compiler.parse(query)
    }

    /// Parse and normalize a query with variable bindings.
    pub fn prepare_with(&self, query: &str, bindings: &Bindings) -> EvalResult<Expr> {
        self.compiler.clone().bindings(bindings).parse(query)
    }

    /// Evaluate a query string at the document root with this engine's
    /// configured strategy ([`Strategy::Auto`] unless overridden via
    /// [`Engine::with_compiler`]).
    ///
    /// Compilations are memoized in a per-engine [`QueryCache`], so
    /// re-evaluating the same text skips the static phase.
    pub fn evaluate(&self, query: &str) -> EvalResult<Value> {
        let compiled = self.cache.get_or_compile_keyed(&self.compiler, &self.fingerprint, query)?;
        compiled.evaluate(self.doc, Context::of(self.doc.root()))
    }

    /// Evaluate a query string at the document root with a given strategy.
    pub fn evaluate_with(&self, query: &str, strategy: Strategy) -> EvalResult<Value> {
        let fingerprint = self
            .strategy_fingerprints
            .lock()
            .expect("fingerprint map poisoned")
            .entry(strategy)
            .or_insert_with(|| {
                self.compiler.clone().default_strategy(strategy).options_fingerprint()
            })
            .clone();
        // The compiler clone happens only on cache misses.
        let compiled = self.cache.get_or_insert_with(&fingerprint, query, || {
            self.compiler.clone().default_strategy(strategy).compile(query)
        })?;
        compiled.evaluate(self.doc, Context::of(self.doc.root()))
    }

    /// Evaluate a query string at a given context node.
    pub fn evaluate_at(&self, query: &str, node: NodeId) -> EvalResult<Value> {
        let compiled = self.cache.get_or_compile_keyed(&self.compiler, &self.fingerprint, query)?;
        compiled.evaluate(self.doc, Context::of(node))
    }

    /// Evaluate a prepared expression.
    ///
    /// Dispatches directly on `strategy` without building a persistent
    /// plan (fragment artifacts are compiled per call); use a
    /// [`crate::query::CompiledQuery`] to keep them across calls. The
    /// compiler's `naive_budget`, if configured, bounds [`Strategy::Naive`]
    /// here just as it does on the string entry points.
    pub fn evaluate_expr(&self, e: &Expr, strategy: Strategy, ctx: Context) -> EvalResult<Value> {
        plan::execute_adhoc(e, strategy, self.compiler.configured_naive_budget(), self.doc, ctx)
    }

    /// The strategy [`Strategy::Auto`] resolves to for a query, per the
    /// Figure 1 lattice.
    pub fn auto_strategy(&self, e: &Expr) -> Strategy {
        plan::resolve_auto(&classify(e))
    }

    /// Evaluate a node-set query at the root and return the nodes.
    pub fn select(&self, query: &str) -> EvalResult<NodeSet> {
        crate::query::into_node_set(self.evaluate(query)?)
    }

    /// Evaluate a node-set query from a given context node.
    pub fn select_at(&self, query: &str, node: NodeId) -> EvalResult<NodeSet> {
        crate::query::into_node_set(self.evaluate_at(query, node)?)
    }

    /// Counters of the per-engine compiled-query cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Aggregate adaptive axis-planner decisions across every query this
    /// engine has compiled and evaluated — the facade counterpart of
    /// [`QueryCache::planner_stats`], so observability no longer requires
    /// reaching into `xpath_core` internals.
    pub fn planner_stats(&self) -> xpath_axes::KernelCounts {
        self.cache.planner_stats()
    }

    /// Evaluate a batch of query strings at the document root in one
    /// pass, sharing axis passes across the batch where the cost model
    /// says it pays (see [`crate::batch`]). Compilations go through this
    /// engine's cache, so repeated batches skip the static phase
    /// entirely; compile errors fail the call, per-query evaluation
    /// errors come back inside the [`BatchResult`].
    pub fn evaluate_batch(&self, queries: &[&str]) -> EvalResult<BatchResult> {
        let mut builder = QuerySetBuilder::with_compiler(self.compiler.clone());
        for q in queries {
            builder = builder.compiled(self.cache.get_or_compile_keyed(
                &self.compiler,
                &self.fingerprint,
                q,
            )?);
        }
        Ok(builder.build()?.evaluate_all(self.doc))
    }

    /// Run the same prepared query through every algorithm and check they
    /// agree — the differential-testing oracle used by the integration
    /// suite. Returns the common value.
    ///
    /// `budget` bounds the naive evaluator (it is exponential by design);
    /// when exhausted, naive is skipped.
    pub fn evaluate_all_agree(
        &self,
        e: &Expr,
        ctx: Context,
        naive_budget: u64,
    ) -> EvalResult<Value> {
        let reference = TopDownEvaluator::new(self.doc).evaluate(e, ctx)?;
        let check = |name: &str, v: EvalResult<Value>| -> EvalResult<()> {
            match v {
                Ok(v) if v.semantically_equal(&reference) => Ok(()),
                Ok(v) => Err(EvalError::TypeMismatch(format!(
                    "{name} disagrees: {v:?} vs top-down {reference:?}"
                ))),
                Err(EvalError::BudgetExhausted) | Err(EvalError::Capacity(_)) => Ok(()),
                Err(e) => Err(e),
            }
        };
        check("naive", NaiveEvaluator::with_budget(self.doc, naive_budget).evaluate(e, ctx))?;
        check("data-pool", PoolEvaluator::new(self.doc).evaluate(e, ctx))?;
        check("bottom-up", BottomUpEvaluator::new(self.doc).evaluate(e, ctx))?;
        check("min-context", MinContextEvaluator::new(self.doc).evaluate(e, ctx))?;
        check("opt-min-context", OptMinContextEvaluator::new(self.doc).evaluate(e, ctx))?;
        if let Ok(q) = corexpath::compile_dialect(e, CoreDialect::XPatterns) {
            let v = CoreXPathEvaluator::new(self.doc).evaluate(&q, &[ctx.node]);
            check("core-xpath", Ok(Value::NodeSet(v)))?;
        }
        // The streaming matcher only covers absolute forward queries
        // (possibly with one positional test); where it applies — and the
        // context is the root, the only context it models — it must agree.
        if ctx.node == self.doc.root() {
            if let Ok(sq) = crate::streaming::compile_expr(e) {
                let v = crate::streaming::evaluate_stream(&sq, self.doc);
                check("streaming", Ok(Value::NodeSet(v)))?;
            }
        }
        Ok(reference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_xml::generate::{doc_bookstore, doc_figure8};

    #[test]
    fn auto_strategy_dispatch() {
        let d = doc_bookstore();
        let engine = Engine::new(&d);
        let s = |q: &str| engine.auto_strategy(&engine.prepare(q).unwrap());
        assert_eq!(s("//book[author]"), Strategy::CoreXPath);
        assert_eq!(s("//book[title = 'DB Monthly']"), Strategy::XPatterns);
        assert_eq!(s("//book[position() = last()]"), Strategy::OptMinContext);
        assert_eq!(s("count(//book)"), Strategy::OptMinContext);
    }

    #[test]
    fn strategies_agree() {
        let d = doc_figure8();
        let engine = Engine::new(&d);
        for q in [
            "//b/c",
            "//*[d = 100]",
            "//b[count(c) > 1]",
            "//*[position() = last()]",
            "count(//c) + sum(//d)",
        ] {
            let e = engine.prepare(q).unwrap();
            engine
                .evaluate_all_agree(&e, Context::of(d.root()), 1_000_000)
                .unwrap_or_else(|err| panic!("{q}: {err}"));
        }
    }

    #[test]
    fn select_and_scalar_queries() {
        let d = doc_bookstore();
        let engine = Engine::new(&d);
        assert_eq!(engine.select("//book").unwrap().len(), 4);
        assert!(engine.select("count(//book)").is_err(), "scalar is not a node set");
        let v = engine.evaluate("count(//book[@year > 2000])").unwrap();
        assert_eq!(v, Value::Number(2.0));
    }

    #[test]
    fn evaluate_at_context_node() {
        let d = doc_bookstore();
        let engine = Engine::new(&d);
        let b1 = d.element_by_id("b1").unwrap();
        let v = engine.evaluate_at("count(author)", b1).unwrap();
        assert_eq!(v, Value::Number(3.0));
        let titles = engine.select_at("following-sibling::book/title", b1).unwrap();
        assert_eq!(titles.len(), 1);
    }

    #[test]
    fn bindings_through_prepare_with() {
        let d = doc_bookstore();
        let engine = Engine::new(&d);
        let b = Bindings::new().number("y", 2000.0).string("t", "XPath Processing");
        let e = engine.prepare_with("//book[@year > $y and title = $t]", &b).unwrap();
        let v = engine.evaluate_expr(&e, Strategy::Auto, Context::of(d.root())).unwrap();
        assert_eq!(v.as_node_set().unwrap().len(), 1);
    }

    #[test]
    fn explicit_fragment_strategies_reject_outside_queries() {
        let d = doc_bookstore();
        let engine = Engine::new(&d);
        assert!(matches!(
            engine.evaluate_with("count(//book)", Strategy::CoreXPath),
            Err(EvalError::UnsupportedFragment(_))
        ));
        assert!(engine.evaluate_with("//book[title = 'x']", Strategy::CoreXPath).is_err());
        assert!(engine.evaluate_with("//book[title = 'x']", Strategy::XPatterns).is_ok());
    }

    #[test]
    fn streaming_strategy_through_the_engine() {
        let d = doc_bookstore();
        let engine = Engine::new(&d);
        // `//author/parent::book` streams through the analyzer's
        // reverse-axis rewrite.
        for q in ["//book[author]", "//book[2]", "//section/book[last()]", "//author/parent::book"]
        {
            let got = engine.evaluate_with(q, Strategy::Streaming).unwrap();
            let want = engine.evaluate_with(q, Strategy::TopDown).unwrap();
            assert!(got.semantically_equal(&want), "{q}");
        }
        // preceding:: stays outside the fragment even after rewriting.
        assert!(matches!(
            engine.evaluate_with("//book/preceding::author", Strategy::Streaming),
            Err(EvalError::UnsupportedFragment(_))
        ));
    }

    #[test]
    fn with_compiler_strategy_applies_to_every_entry_point() {
        let d = doc_bookstore();
        let engine =
            Engine::with_compiler(&d, Compiler::new().default_strategy(Strategy::Streaming));
        // Outside the streamable fragment (even after the reverse-axis
        // rewrite): evaluate, evaluate_at and select must all reject
        // consistently.
        let q = "//book/preceding::author";
        assert!(matches!(engine.evaluate(q), Err(EvalError::UnsupportedFragment(_))));
        assert!(matches!(engine.evaluate_at(q, d.root()), Err(EvalError::UnsupportedFragment(_))));
        assert!(matches!(engine.select(q), Err(EvalError::UnsupportedFragment(_))));
        // Inside it: all succeed.
        assert_eq!(engine.select("//book[author]").unwrap().len(), 4);
    }

    #[test]
    fn configured_naive_budget_bounds_evaluate_expr() {
        let d = doc_bookstore();
        let engine = Engine::with_compiler(&d, Compiler::new().naive_budget(10));
        let e = engine.prepare("//book/ancestor::*/descendant::*/ancestor::*").unwrap();
        assert!(matches!(
            engine.evaluate_expr(&e, Strategy::Naive, Context::of(d.root())),
            Err(EvalError::BudgetExhausted)
        ));
    }

    #[test]
    fn parse_failures_are_parse_errors() {
        let d = doc_bookstore();
        let engine = Engine::new(&d);
        assert!(matches!(engine.prepare("//["), Err(EvalError::Parse(_))));
        assert!(matches!(
            engine.prepare_with("//book[$nope]", &Bindings::new()),
            Err(EvalError::Parse(_))
        ));
        assert!(matches!(engine.evaluate("///"), Err(EvalError::Parse(_))));
    }

    #[test]
    fn evaluate_batch_matches_independent_and_reuses_the_cache() {
        let d = doc_bookstore();
        let engine = Engine::new(&d);
        let queries = ["//book[author]", "count(//book)", "//book[author]"];
        let batch = engine.evaluate_batch(&queries).unwrap();
        for (q, r) in queries.iter().zip(batch.results()) {
            let want = engine.evaluate(q).unwrap();
            assert_eq!(r.as_ref().unwrap(), &want, "{q}");
        }
        // The duplicate text hit the engine cache during batch assembly.
        assert!(engine.cache_stats().hits >= 1);
        // Compile errors fail the whole call (nothing to evaluate).
        assert!(matches!(engine.evaluate_batch(&["//["]), Err(EvalError::Parse(_))));
        // The facade exposes fleet-wide planner stats without internals.
        assert!(engine.planner_stats().total() > 0);
    }

    #[test]
    fn repeated_evaluation_hits_the_engine_cache() {
        let d = doc_bookstore();
        let engine = Engine::new(&d);
        for _ in 0..5 {
            engine.evaluate("count(//book)").unwrap();
        }
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 1, "compiled once");
        assert_eq!(stats.hits, 4, "then served from cache");
    }
}
