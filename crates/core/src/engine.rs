//! Unified engine facade over all evaluation algorithms.
//!
//! ```
//! use xpath_core::engine::{Engine, Strategy};
//! use xpath_xml::Document;
//!
//! let doc = Document::parse_str("<a><b/><b/></a>").unwrap();
//! let engine = Engine::new(&doc);
//! let hits = engine.select("//b").unwrap();
//! assert_eq!(hits.len(), 2);
//! // Every algorithm of the paper is selectable:
//! let v = engine.evaluate_with("count(//b)", Strategy::TopDown).unwrap();
//! assert_eq!(v.to_string(), "2");
//! ```

use xpath_syntax::{normalize, Bindings, Expr};
use xpath_xml::{Document, NodeId};

use crate::bottomup::BottomUpEvaluator;
use crate::context::{Context, EvalError, EvalResult};
use crate::corexpath::{self, CoreDialect, CoreXPathEvaluator};
use crate::fragment::{classify, Fragment};
use crate::mincontext::MinContextEvaluator;
use crate::naive::NaiveEvaluator;
use crate::nodeset::NodeSet;
use crate::optmincontext::OptMinContextEvaluator;
use crate::pool::PoolEvaluator;
use crate::topdown::TopDownEvaluator;
use crate::value::Value;

/// Which of the paper's algorithms to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// §2 baseline: exponential recursive evaluation (models XALAN/XT/
    /// Saxon/IE6).
    Naive,
    /// §9: naive recursion + data pool (Algorithm 9.1).
    DataPool,
    /// §6: bottom-up context-value tables (Algorithm 6.3).
    BottomUp,
    /// §7: top-down vectorized evaluation (the paper's implementation).
    TopDown,
    /// §8: MinContext (Algorithm 8.5).
    MinContext,
    /// §11.2: OptMinContext (Algorithm 11.1).
    OptMinContext,
    /// §10.1: linear-time Core XPath algebra (rejects other queries).
    CoreXPath,
    /// §10.2: linear-time XPatterns (rejects other queries).
    XPatterns,
    /// Single-pass streaming matcher for the forward Core XPath fragment
    /// (§1–§2 related work; rejects non-streamable queries).
    Streaming,
    /// Classify via Figure 1 and pick the best algorithm.
    #[default]
    Auto,
}

/// An XPath engine bound to a document.
pub struct Engine<'d> {
    doc: &'d Document,
    optimize: bool,
}

impl<'d> Engine<'d> {
    /// Create an engine over `doc`.
    pub fn new(doc: &'d Document) -> Self {
        Engine { doc, optimize: false }
    }

    /// Enable the semantics-preserving rewrite pass
    /// ([`xpath_syntax::rewrite`]) on every prepared query: `//`-step
    /// merging, `self::node()` elimination, constant folding.
    pub fn with_optimizer(doc: &'d Document) -> Self {
        Engine { doc, optimize: true }
    }

    /// The underlying document.
    pub fn document(&self) -> &'d Document {
        self.doc
    }

    /// Parse and normalize a query (no variable bindings), applying the
    /// rewrite pass if this engine was built with
    /// [`Engine::with_optimizer`].
    pub fn prepare(&self, query: &str) -> EvalResult<Expr> {
        let e = xpath_syntax::parse_normalized(query)
            .map_err(|e| EvalError::TypeMismatch(e.to_string()))?;
        Ok(if self.optimize { xpath_syntax::rewrite::optimize(&e) } else { e })
    }

    /// Parse and normalize a query with variable bindings.
    pub fn prepare_with(&self, query: &str, bindings: &Bindings) -> EvalResult<Expr> {
        let e = xpath_syntax::parse(query).map_err(|e| EvalError::TypeMismatch(e.to_string()))?;
        let e = normalize::normalize_with(&e, bindings)
            .map_err(|e| EvalError::TypeMismatch(e.to_string()))?;
        Ok(if self.optimize { xpath_syntax::rewrite::optimize(&e) } else { e })
    }

    /// Evaluate a query string at the document root with [`Strategy::Auto`].
    pub fn evaluate(&self, query: &str) -> EvalResult<Value> {
        self.evaluate_with(query, Strategy::Auto)
    }

    /// Evaluate a query string at the document root with a given strategy.
    pub fn evaluate_with(&self, query: &str, strategy: Strategy) -> EvalResult<Value> {
        let e = self.prepare(query)?;
        self.evaluate_expr(&e, strategy, Context::of(self.doc.root()))
    }

    /// Evaluate a query string at a given context node.
    pub fn evaluate_at(&self, query: &str, node: NodeId) -> EvalResult<Value> {
        let e = self.prepare(query)?;
        self.evaluate_expr(&e, Strategy::Auto, Context::of(node))
    }

    /// Evaluate a prepared expression.
    pub fn evaluate_expr(
        &self,
        e: &Expr,
        strategy: Strategy,
        ctx: Context,
    ) -> EvalResult<Value> {
        match strategy {
            Strategy::Naive => NaiveEvaluator::new(self.doc).evaluate(e, ctx),
            Strategy::DataPool => PoolEvaluator::new(self.doc).evaluate(e, ctx),
            Strategy::BottomUp => BottomUpEvaluator::new(self.doc).evaluate(e, ctx),
            Strategy::TopDown => TopDownEvaluator::new(self.doc).evaluate(e, ctx),
            Strategy::MinContext => MinContextEvaluator::new(self.doc).evaluate(e, ctx),
            Strategy::OptMinContext => OptMinContextEvaluator::new(self.doc).evaluate(e, ctx),
            Strategy::CoreXPath => {
                let q = corexpath::compile_dialect(e, CoreDialect::CoreXPath)?;
                Ok(Value::NodeSet(
                    CoreXPathEvaluator::new(self.doc).evaluate(&q, &[ctx.node]),
                ))
            }
            Strategy::XPatterns => {
                let q = corexpath::compile_dialect(e, CoreDialect::XPatterns)?;
                Ok(Value::NodeSet(
                    CoreXPathEvaluator::new(self.doc).evaluate(&q, &[ctx.node]),
                ))
            }
            Strategy::Streaming => {
                // Streamable queries are absolute, so the context node is
                // irrelevant to the result (P[[/π]] starts at the root).
                let sq = crate::streaming::compile_expr(e)?;
                Ok(Value::NodeSet(crate::streaming::evaluate_stream(&sq, self.doc)))
            }
            Strategy::Auto => {
                let strategy = self.auto_strategy(e);
                self.evaluate_expr(e, strategy, ctx)
            }
        }
    }

    /// The strategy [`Strategy::Auto`] resolves to for a query, per the
    /// Figure 1 lattice.
    pub fn auto_strategy(&self, e: &Expr) -> Strategy {
        match classify(e).fragment {
            Fragment::CoreXPath => Strategy::CoreXPath,
            Fragment::XPatterns => Strategy::XPatterns,
            // OptMinContext realizes both the Wadler bounds and the general
            // MinContext bounds (Algorithm 11.1).
            Fragment::ExtendedWadler | Fragment::FullXPath => Strategy::OptMinContext,
        }
    }

    /// Evaluate a node-set query at the root and return the nodes.
    pub fn select(&self, query: &str) -> EvalResult<NodeSet> {
        match self.evaluate(query)? {
            Value::NodeSet(s) => Ok(s),
            other => Err(EvalError::TypeMismatch(format!(
                "expected a node set, got {}",
                other.type_name()
            ))),
        }
    }

    /// Evaluate a node-set query from a given context node.
    pub fn select_at(&self, query: &str, node: NodeId) -> EvalResult<NodeSet> {
        match self.evaluate_at(query, node)? {
            Value::NodeSet(s) => Ok(s),
            other => Err(EvalError::TypeMismatch(format!(
                "expected a node set, got {}",
                other.type_name()
            ))),
        }
    }

    /// Run the same prepared query through every algorithm and check they
    /// agree — the differential-testing oracle used by the integration
    /// suite. Returns the common value.
    ///
    /// `budget` bounds the naive evaluator (it is exponential by design);
    /// when exhausted, naive is skipped.
    pub fn evaluate_all_agree(
        &self,
        e: &Expr,
        ctx: Context,
        naive_budget: u64,
    ) -> EvalResult<Value> {
        let reference = TopDownEvaluator::new(self.doc).evaluate(e, ctx)?;
        let check = |name: &str, v: EvalResult<Value>| -> EvalResult<()> {
            match v {
                Ok(v) if v.semantically_equal(&reference) => Ok(()),
                Ok(v) => Err(EvalError::TypeMismatch(format!(
                    "{name} disagrees: {v:?} vs top-down {reference:?}"
                ))),
                Err(EvalError::BudgetExhausted) | Err(EvalError::Capacity(_)) => Ok(()),
                Err(e) => Err(e),
            }
        };
        check("naive", NaiveEvaluator::with_budget(self.doc, naive_budget).evaluate(e, ctx))?;
        check("data-pool", PoolEvaluator::new(self.doc).evaluate(e, ctx))?;
        check("bottom-up", BottomUpEvaluator::new(self.doc).evaluate(e, ctx))?;
        check("min-context", MinContextEvaluator::new(self.doc).evaluate(e, ctx))?;
        check("opt-min-context", OptMinContextEvaluator::new(self.doc).evaluate(e, ctx))?;
        if let Ok(q) = corexpath::compile_dialect(e, CoreDialect::XPatterns) {
            let v = CoreXPathEvaluator::new(self.doc).evaluate(&q, &[ctx.node]);
            check("core-xpath", Ok(Value::NodeSet(v)))?;
        }
        // The streaming matcher only covers absolute forward queries
        // (possibly with one positional test); where it applies — and the
        // context is the root, the only context it models — it must agree.
        if ctx.node == self.doc.root() {
            if let Ok(sq) = crate::streaming::compile_expr(e) {
                let v = crate::streaming::evaluate_stream(&sq, self.doc);
                check("streaming", Ok(Value::NodeSet(v)))?;
            }
        }
        Ok(reference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_xml::generate::{doc_bookstore, doc_figure8};

    #[test]
    fn auto_strategy_dispatch() {
        let d = doc_bookstore();
        let engine = Engine::new(&d);
        let s = |q: &str| engine.auto_strategy(&engine.prepare(q).unwrap());
        assert_eq!(s("//book[author]"), Strategy::CoreXPath);
        assert_eq!(s("//book[title = 'DB Monthly']"), Strategy::XPatterns);
        assert_eq!(s("//book[position() = last()]"), Strategy::OptMinContext);
        assert_eq!(s("count(//book)"), Strategy::OptMinContext);
    }

    #[test]
    fn strategies_agree() {
        let d = doc_figure8();
        let engine = Engine::new(&d);
        for q in [
            "//b/c",
            "//*[d = 100]",
            "//b[count(c) > 1]",
            "//*[position() = last()]",
            "count(//c) + sum(//d)",
        ] {
            let e = engine.prepare(q).unwrap();
            engine
                .evaluate_all_agree(&e, Context::of(d.root()), 1_000_000)
                .unwrap_or_else(|err| panic!("{q}: {err}"));
        }
    }

    #[test]
    fn select_and_scalar_queries() {
        let d = doc_bookstore();
        let engine = Engine::new(&d);
        assert_eq!(engine.select("//book").unwrap().len(), 4);
        assert!(engine.select("count(//book)").is_err(), "scalar is not a node set");
        let v = engine.evaluate("count(//book[@year > 2000])").unwrap();
        assert_eq!(v, Value::Number(2.0));
    }

    #[test]
    fn evaluate_at_context_node() {
        let d = doc_bookstore();
        let engine = Engine::new(&d);
        let b1 = d.element_by_id("b1").unwrap();
        let v = engine.evaluate_at("count(author)", b1).unwrap();
        assert_eq!(v, Value::Number(3.0));
        let titles = engine.select_at("following-sibling::book/title", b1).unwrap();
        assert_eq!(titles.len(), 1);
    }

    #[test]
    fn bindings_through_prepare_with() {
        let d = doc_bookstore();
        let engine = Engine::new(&d);
        let b = Bindings::new().number("y", 2000.0).string("t", "XPath Processing");
        let e = engine.prepare_with("//book[@year > $y and title = $t]", &b).unwrap();
        let v = engine
            .evaluate_expr(&e, Strategy::Auto, Context::of(d.root()))
            .unwrap();
        assert_eq!(v.as_node_set().unwrap().len(), 1);
    }

    #[test]
    fn explicit_fragment_strategies_reject_outside_queries() {
        let d = doc_bookstore();
        let engine = Engine::new(&d);
        assert!(matches!(
            engine.evaluate_with("count(//book)", Strategy::CoreXPath),
            Err(EvalError::UnsupportedFragment(_))
        ));
        assert!(engine.evaluate_with("//book[title = 'x']", Strategy::CoreXPath).is_err());
        assert!(engine.evaluate_with("//book[title = 'x']", Strategy::XPatterns).is_ok());
    }

    #[test]
    fn streaming_strategy_through_the_engine() {
        let d = doc_bookstore();
        let engine = Engine::new(&d);
        for q in ["//book[author]", "//book[2]", "//section/book[last()]"] {
            let got = engine.evaluate_with(q, Strategy::Streaming).unwrap();
            let want = engine.evaluate_with(q, Strategy::TopDown).unwrap();
            assert!(got.semantically_equal(&want), "{q}");
        }
        // Upward axes are outside the streamable fragment.
        assert!(matches!(
            engine.evaluate_with("//author/parent::book", Strategy::Streaming),
            Err(EvalError::UnsupportedFragment(_))
        ));
    }
}
