//! `xpath_core::serve` — a long-lived query server over
//! [`DocumentStore`] + [`QueryCache`] + [`QuerySet`](crate::batch::QuerySet), with admission
//! control and live metrics.
//!
//! The paper's point is that XPath evaluation fits on the hot path of a
//! real system; this module is that hot path: a dependency-free,
//! thread-per-connection server speaking **line-delimited JSON** over a
//! Unix or TCP socket. Each request names a snapshot (resolved through
//! the store's generational cache), one or more expressions (compiled
//! through the shared query cache, batched through [`QuerySet`](crate::batch::QuerySet) when
//! ≥ 2), and an optional per-request deadline (enforced through
//! [`EvalBudget`]; a tripped deadline is a **structured error
//! response**, never a dropped connection).
//!
//! # Protocol
//!
//! One JSON object per line, one JSON object per response line. Ops:
//!
//! | request | response |
//! |---|---|
//! | `{"op":"eval","doc":"d","query":"//a"}` | `{"ok":true,"results":[…],"elapsed_us":…}` |
//! | `{"op":"eval","doc":"d","queries":["//a","//b"]}` | same, one result per query, batched |
//! | `{"op":"stats"}` | `{"ok":true,"stats":{…}}` — see below |
//! | `{"op":"ping"}` | `{"ok":true,"pong":true,"uptime_us":…}` |
//! | `{"op":"shutdown"}` | `{"ok":true,"shutting_down":true}`, then drain |
//!
//! The `op` field may be omitted when `query`/`queries` is present.
//! Optional eval fields: `id` (echoed verbatim on the response),
//! `timeout_ms` (per-request deadline), `threads` (per-request thread
//! budget, clamped to the server's cap), `limit` (max node-set string
//! values returned; the `count` field is always exact).
//!
//! Each per-query result is `{"ok":true,"type":…,…}` or
//! `{"ok":false,"error":{"kind":…,"message":…}}`; request-level
//! failures (malformed JSON, unknown document, admission timeout) are
//! `{"ok":false,"error":{…}}` at the top level. Error kinds are stable
//! snake_case strings (`deadline_exceeded`, `cancelled`, `overloaded`,
//! `not_found`, `invalid_request`, `line_too_long`, `shutting_down`,
//! and the compile/eval kinds such as `parse_error`).
//!
//! # Admission control
//!
//! A semaphore-style [`PermitPool`] bounds concurrent evaluations: a
//! request acquires a permit before compiling/evaluating and waits at
//! most the configured admission timeout, failing with `overloaded`
//! instead of queueing unboundedly. The per-request `threads` budget is
//! fed to [`Compiler::threads`], so worst-case CPU oversubscription is
//! bounded by `permits × max_request_threads` regardless of client
//! count.
//!
//! # Metrics
//!
//! The `stats` op dumps planner tallies ([`KernelCounts`]), query-cache
//! hit/miss/eviction, batch memo hits, pool stats, store reload counts,
//! and per-endpoint latency histograms — log-bucketed (power-of-two
//! microsecond buckets, no dependencies) with p50/p95/p99 extraction —
//! as one JSON object.
//!
//! # Shutdown
//!
//! [`Server::begin_shutdown`] (or the `shutdown` op, or `SIGTERM`/
//! `SIGINT` observed through [`xpath_xml::signal`]) stops the accept
//! loop, **flips the shared cancel token attached to every in-flight
//! request's budget** (evaluators unwind at the next block boundary
//! with a structured `cancelled` error), then drains connections. The
//! `xpq serve` process exits 0.
//!
//! [`KernelCounts`]: xpath_axes::KernelCounts

use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use xpath_xml::signal::ShutdownSignal;
use xpath_xml::Document;

use crate::batch::QuerySetBuilder;
use crate::cache::QueryCache;
use crate::context::{Context, EvalBudget, EvalError};
use crate::query::Compiler;
use crate::store::{DocumentStore, StoreError};
use crate::value::Value;

// ---------------------------------------------------------------------
// Minimal JSON (the workspace vendors no serializer)
// ---------------------------------------------------------------------

/// A parsed JSON value. Objects preserve insertion order (they are
/// association lists, not maps); duplicate keys keep the first.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one complete JSON value; trailing non-whitespace is an
    /// error. Nesting depth is capped (anti-abuse; the protocol needs
    /// depth ≤ 3).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { b: text.as_bytes(), i: 0 };
        p.ws();
        let v = p.value(0)?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects and absent keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Convenience constructor for an object literal.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Convenience constructor for an integer number.
    #[allow(clippy::cast_precision_loss)]
    pub fn num(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_number(n: f64, out: &mut String) {
    use fmt::Write as _;
    if !n.is_finite() {
        // JSON has no NaN/Infinity; the protocol renders them as
        // strings so a structured consumer still sees *something*
        // unambiguous rather than a parse failure.
        write_string(&format!("{n}"), out);
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_JSON_DEPTH: u32 = 64;

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at offset {}", c as char, self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at offset {}", self.i))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, String> {
        if depth > MAX_JSON_DEPTH {
            return Err("nesting too deep".to_owned());
        }
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.ws();
                    items.push(self.value(depth + 1)?);
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at offset {}", self.i)),
                    }
                }
            }
            Some(b'{') => {
                self.i += 1;
                let mut fields: Vec<(String, Json)> = Vec::new();
                self.ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.ws();
                    let key = self.string()?;
                    self.ws();
                    self.eat(b':')?;
                    self.ws();
                    let val = self.value(depth + 1)?;
                    if !fields.iter().any(|(k, _)| *k == key) {
                        fields.push((key, val));
                    }
                    self.ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.i)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ASCII slice");
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("invalid number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".to_owned());
            };
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err("unterminated escape".to_owned());
                    };
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.i += 1;
                                    self.eat(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err("invalid low surrogate".to_owned());
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err("lone surrogate".to_owned());
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "invalid codepoint".to_owned())?,
                            );
                        }
                        _ => return Err(format!("invalid escape at offset {}", self.i)),
                    }
                }
                c if c < 0x20 => return Err("control byte in string".to_owned()),
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // sequence is valid; re-decode from the byte slice.
                    let rest = std::str::from_utf8(&self.b[self.i - 1..])
                        .map_err(|_| "invalid UTF-8".to_owned())?;
                    let ch = rest.chars().next().ok_or_else(|| "empty".to_owned())?;
                    out.push(ch);
                    self.i += ch.len_utf8() - 1;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.i + 4;
        let s = self
            .b
            .get(self.i..end)
            .and_then(|s| std::str::from_utf8(s).ok())
            .ok_or_else(|| "truncated \\u escape".to_owned())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "invalid \\u escape".to_owned())?;
        self.i = end;
        Ok(v)
    }
}

// ---------------------------------------------------------------------
// Log-bucketed latency histogram
// ---------------------------------------------------------------------

const HIST_BUCKETS: usize = 40;

/// A lock-free latency histogram with power-of-two microsecond buckets:
/// bucket `i` counts samples in `[2^i, 2^(i+1))` µs (bucket 0 also
/// takes 0 µs). Recording is two relaxed atomic adds; percentiles are
/// read from a [`HistogramSnapshot`] and are upper bounds of the bucket
/// containing the rank (≤ 2× the true value by construction).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one sample.
    pub fn record(&self, micros: u64) {
        let idx = (63 - micros.max(1).leading_zeros() as usize).min(HIST_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(micros, Ordering::Relaxed);
        self.max_us.fetch_max(micros, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (bucket `i` spans `[2^i, 2^(i+1))` µs).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples in µs.
    pub sum_us: u64,
    /// Largest sample in µs.
    pub max_us: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// holding that rank, clamped to the observed maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        #[allow(
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss,
            clippy::cast_precision_loss
        )]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = if i + 1 >= 64 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                return upper.min(self.max_us);
            }
        }
        self.max_us
    }

    /// Render as a JSON object (`count`, `p50_us`…, plus the non-empty
    /// buckets as `[lower_bound_us, count]` pairs).
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| Json::Arr(vec![Json::num(1u64 << i), Json::num(c)]))
            .collect();
        let mean = self.sum_us.checked_div(self.count).unwrap_or(0);
        Json::obj(vec![
            ("count", Json::num(self.count)),
            ("mean_us", Json::num(mean)),
            ("p50_us", Json::num(self.quantile(0.50))),
            ("p95_us", Json::num(self.quantile(0.95))),
            ("p99_us", Json::num(self.quantile(0.99))),
            ("max_us", Json::num(self.max_us)),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

// ---------------------------------------------------------------------
// Admission control: a permit pool
// ---------------------------------------------------------------------

/// Counters describing a [`PermitPool`]'s behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct PoolStats {
    /// Total permits in the pool.
    pub permits: usize,
    /// Permits currently held.
    pub in_use: usize,
    /// High-water mark of `in_use`.
    pub peak_in_use: usize,
    /// Successful acquisitions.
    pub acquired: u64,
    /// Acquisitions that timed out (surfaced as `overloaded`).
    pub timeouts: u64,
}

struct PoolState {
    in_use: usize,
    peak_in_use: usize,
    acquired: u64,
    timeouts: u64,
}

/// A semaphore-style pool of evaluation permits (`Mutex` + `Condvar`;
/// the standard library has no semaphore and the workspace vendors no
/// dependencies). Bounded waiting: [`PermitPool::acquire`] gives up
/// after a timeout so overload turns into fast structured rejections
/// instead of an unbounded queue.
pub struct PermitPool {
    permits: usize,
    state: Mutex<PoolState>,
    cv: Condvar,
}

impl fmt::Debug for PermitPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PermitPool").field("stats", &self.stats()).finish_non_exhaustive()
    }
}

impl PermitPool {
    /// A pool of `permits` permits (at least 1).
    pub fn new(permits: usize) -> PermitPool {
        PermitPool {
            permits: permits.max(1),
            state: Mutex::new(PoolState { in_use: 0, peak_in_use: 0, acquired: 0, timeouts: 0 }),
            cv: Condvar::new(),
        }
    }

    /// Acquire a permit, waiting at most `timeout`. `None` on timeout.
    pub fn acquire(&self, timeout: Duration) -> Option<Permit<'_>> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().expect("permit pool poisoned");
        while st.in_use >= self.permits {
            let now = Instant::now();
            if now >= deadline {
                st.timeouts += 1;
                return None;
            }
            let (next, res) =
                self.cv.wait_timeout(st, deadline - now).expect("permit pool poisoned");
            st = next;
            if res.timed_out() && st.in_use >= self.permits {
                st.timeouts += 1;
                return None;
            }
        }
        st.in_use += 1;
        st.peak_in_use = st.peak_in_use.max(st.in_use);
        st.acquired += 1;
        Some(Permit { pool: self })
    }

    /// Current counters.
    pub fn stats(&self) -> PoolStats {
        let st = self.state.lock().expect("permit pool poisoned");
        PoolStats {
            permits: self.permits,
            in_use: st.in_use,
            peak_in_use: st.peak_in_use,
            acquired: st.acquired,
            timeouts: st.timeouts,
        }
    }
}

/// RAII guard for one held permit; releases (and wakes one waiter) on
/// drop.
pub struct Permit<'a> {
    pool: &'a PermitPool,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        let mut st = self.pool.state.lock().expect("permit pool poisoned");
        st.in_use -= 1;
        drop(st);
        self.pool.cv.notify_one();
    }
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

/// Server configuration. [`ServeConfig::new`] picks production-minded
/// defaults; every knob is a plain public field.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Directory of the [`DocumentStore`] to serve.
    pub store_dir: PathBuf,
    /// Capacity of the shared [`QueryCache`].
    pub cache_capacity: usize,
    /// Evaluation permits (max concurrent evaluations). Default: the
    /// machine's available parallelism.
    pub permits: usize,
    /// Per-request thread-budget cap fed to [`Compiler::threads`]
    /// (requests asking for more are clamped). Worst-case CPU use is
    /// `permits × max_request_threads`. Default 1: under concurrent
    /// load, parallelism comes from requests, not shards.
    pub max_request_threads: u32,
    /// How long a request may wait for a permit before `overloaded`.
    pub admission_timeout: Duration,
    /// Socket read timeout; doubles as the shutdown-poll tick for
    /// connection threads.
    pub read_timeout: Duration,
    /// Maximum accepted request-line length in bytes.
    pub max_line_bytes: usize,
    /// Default cap on node-set string values per result (`limit`
    /// overrides per request; `count` is always exact).
    pub default_value_limit: usize,
    /// How long shutdown waits for connection threads to drain.
    pub drain_timeout: Duration,
    /// Deep-verify snapshots on load (forwarded to the store).
    pub verify_snapshots: bool,
}

impl ServeConfig {
    /// Defaults over `store_dir`.
    pub fn new(store_dir: impl Into<PathBuf>) -> ServeConfig {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        ServeConfig {
            store_dir: store_dir.into(),
            cache_capacity: 256,
            permits: cores,
            max_request_threads: 1,
            admission_timeout: Duration::from_millis(100),
            read_timeout: Duration::from_millis(100),
            max_line_bytes: 1 << 20,
            default_value_limit: 16,
            drain_timeout: Duration::from_secs(5),
            verify_snapshots: false,
        }
    }
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

/// Live server counters + per-endpoint latency histograms.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests handled (all ops, including failed ones).
    pub requests: AtomicU64,
    /// Responses whose top level was `ok:false`.
    pub errors: AtomicU64,
    /// Per-query deadline trips (structured `deadline_exceeded`).
    pub deadline_exceeded: AtomicU64,
    /// Per-query cancellations (shutdown flipping in-flight budgets).
    pub cancelled: AtomicU64,
    /// Requests rejected by admission control.
    pub overloaded: AtomicU64,
    /// Malformed request lines / objects.
    pub invalid: AtomicU64,
    /// Connections accepted since start.
    pub connections: AtomicU64,
    /// Connections currently open.
    pub active_connections: AtomicU64,
    /// Batch memo hits accumulated from [`QuerySet`](crate::batch::QuerySet) evaluations.
    pub batch_memo_hits: AtomicU64,
    /// Batch memo misses accumulated from [`QuerySet`](crate::batch::QuerySet) evaluations.
    pub batch_memo_misses: AtomicU64,
    /// Latency of single-query `eval` requests.
    pub eval_latency: LatencyHistogram,
    /// Latency of batched (≥ 2 queries) `eval` requests.
    pub batch_latency: LatencyHistogram,
    /// Latency of `stats` requests.
    pub stats_latency: LatencyHistogram,
    /// Latency of `ping` requests.
    pub ping_latency: LatencyHistogram,
}

// ---------------------------------------------------------------------
// Error kinds
// ---------------------------------------------------------------------

fn eval_error_kind(e: &EvalError) -> &'static str {
    match e {
        EvalError::Parse(_) => "parse_error",
        EvalError::UnknownFunction(_) => "unknown_function",
        EvalError::WrongArity { .. } => "wrong_arity",
        EvalError::TypeMismatch(_) => "type_mismatch",
        EvalError::UnboundVariable(_) => "unbound_variable",
        EvalError::BudgetExhausted => "budget_exhausted",
        EvalError::Capacity(_) => "capacity",
        EvalError::UnsupportedFragment(_) => "unsupported_fragment",
        EvalError::Cancelled => "cancelled",
        EvalError::DeadlineExceeded => "deadline_exceeded",
    }
}

fn error_json(kind: &str, message: &str) -> Json {
    Json::obj(vec![
        ("kind", Json::Str(kind.to_owned())),
        ("message", Json::Str(message.to_owned())),
    ])
}

fn fail(id: Option<&Json>, kind: &str, message: &str) -> Json {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), id.clone()));
    }
    fields.push(("ok".to_owned(), Json::Bool(false)));
    fields.push(("error".to_owned(), error_json(kind, message)));
    Json::Obj(fields)
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

/// The query server: store + cache + admission control + metrics. See
/// the [module docs](self) for the wire protocol.
///
/// Socket-free by construction — [`Server::handle_line`] maps one
/// request line to one response line, which is what the unit tests and
/// the in-process bench harness drive directly; [`Server::serve_unix`]
/// / [`Server::serve_tcp`] bolt the accept loop on top.
pub struct Server {
    config: ServeConfig,
    store: DocumentStore,
    cache: Arc<QueryCache>,
    pool: PermitPool,
    metrics: Metrics,
    shutdown: AtomicBool,
    cancel: Arc<AtomicBool>,
    signal: Option<ShutdownSignal>,
    started: Instant,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server")
            .field("store_dir", &self.config.store_dir)
            .field("pool", &self.pool.stats())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Open the store directory and assemble a server from `config`.
    pub fn new(config: ServeConfig) -> Result<Server, StoreError> {
        let opts = xpath_xml::snap::OpenOptions { mmap: true, verify: config.verify_snapshots };
        let store = DocumentStore::open_with(&config.store_dir, opts)?;
        let cache = Arc::new(QueryCache::new(config.cache_capacity.max(1)));
        let pool = PermitPool::new(config.permits);
        Ok(Server {
            config,
            store,
            cache,
            pool,
            metrics: Metrics::default(),
            shutdown: AtomicBool::new(false),
            cancel: Arc::new(AtomicBool::new(false)),
            signal: None,
            started: Instant::now(),
        })
    }

    /// The underlying store (benches/tests publish through this).
    pub fn store(&self) -> &DocumentStore {
        &self.store
    }

    /// The shared query cache.
    pub fn cache(&self) -> &Arc<QueryCache> {
        &self.cache
    }

    /// Live metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Watch `SIGTERM`/`SIGINT` (must be called from the main thread
    /// **before** any other thread is spawned, so the blocked-signal
    /// mask is inherited process-wide). No-op where the signal backend
    /// is unavailable.
    pub fn watch_signals(&mut self) -> bool {
        self.signal = ShutdownSignal::install();
        self.signal.is_some()
    }

    /// Begin graceful shutdown: stop accepting, flip the shared cancel
    /// token attached to every in-flight request budget, let connection
    /// threads drain. Idempotent.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.cancel.store(true, Ordering::SeqCst);
    }

    /// Has shutdown begun?
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Handle one request line, producing one response line (no
    /// trailing newline). Never panics on malformed input.
    pub fn handle_line(&self, line: &str) -> String {
        let started = Instant::now();
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let (response, endpoint) = match Json::parse(line) {
            Err(e) => {
                self.metrics.invalid.fetch_add(1, Ordering::Relaxed);
                (fail(None, "invalid_request", &format!("bad JSON: {e}")), Endpoint::Eval)
            }
            Ok(req) => self.handle_request(&req),
        };
        if matches!(response.get("ok"), Some(Json::Bool(false))) {
            self.metrics.errors.fetch_add(1, Ordering::Relaxed);
        }
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let hist = match endpoint {
            Endpoint::Eval => &self.metrics.eval_latency,
            Endpoint::Batch => &self.metrics.batch_latency,
            Endpoint::Stats => &self.metrics.stats_latency,
            Endpoint::Ping => &self.metrics.ping_latency,
        };
        hist.record(micros);
        response.render()
    }

    fn handle_request(&self, req: &Json) -> (Json, Endpoint) {
        let id = req.get("id");
        if !matches!(req, Json::Obj(_)) {
            self.metrics.invalid.fetch_add(1, Ordering::Relaxed);
            return (fail(id, "invalid_request", "request must be a JSON object"), Endpoint::Eval);
        }
        let op = match req.get("op").map(|v| v.as_str()) {
            None if req.get("query").is_some() || req.get("queries").is_some() => "eval",
            None => "",
            Some(Some(op)) => op,
            Some(None) => {
                self.metrics.invalid.fetch_add(1, Ordering::Relaxed);
                return (fail(id, "invalid_request", "op must be a string"), Endpoint::Eval);
            }
        };
        match op {
            "eval" | "query" => self.op_eval(req, id),
            "stats" => (self.op_stats(id), Endpoint::Stats),
            "ping" => (
                Json::Obj(id_fields(
                    id,
                    vec![
                        ("ok".to_owned(), Json::Bool(true)),
                        ("pong".to_owned(), Json::Bool(true)),
                        (
                            "uptime_us".to_owned(),
                            Json::num(
                                u64::try_from(self.started.elapsed().as_micros()).unwrap_or(0),
                            ),
                        ),
                    ],
                )),
                Endpoint::Ping,
            ),
            "shutdown" => {
                self.begin_shutdown();
                (
                    Json::Obj(id_fields(
                        id,
                        vec![
                            ("ok".to_owned(), Json::Bool(true)),
                            ("shutting_down".to_owned(), Json::Bool(true)),
                        ],
                    )),
                    Endpoint::Ping,
                )
            }
            other => {
                self.metrics.invalid.fetch_add(1, Ordering::Relaxed);
                (fail(id, "invalid_request", &format!("unknown op {other:?}")), Endpoint::Eval)
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn op_eval(&self, req: &Json, id: Option<&Json>) -> (Json, Endpoint) {
        // Collect query texts: "query" (single) or "queries" (array).
        let texts: Vec<&str> = if let Some(q) = req.get("query") {
            match q.as_str() {
                Some(text) => vec![text],
                None => {
                    self.metrics.invalid.fetch_add(1, Ordering::Relaxed);
                    return (fail(id, "invalid_request", "query must be a string"), Endpoint::Eval);
                }
            }
        } else if let Some(qs) = req.get("queries") {
            match qs.as_arr() {
                Some(items) if !items.is_empty() => {
                    let mut texts = Vec::with_capacity(items.len());
                    for item in items {
                        match item.as_str() {
                            Some(text) => texts.push(text),
                            None => {
                                self.metrics.invalid.fetch_add(1, Ordering::Relaxed);
                                return (
                                    fail(id, "invalid_request", "queries must be strings"),
                                    Endpoint::Eval,
                                );
                            }
                        }
                    }
                    texts
                }
                _ => {
                    self.metrics.invalid.fetch_add(1, Ordering::Relaxed);
                    return (
                        fail(id, "invalid_request", "queries must be a non-empty array"),
                        Endpoint::Eval,
                    );
                }
            }
        } else {
            self.metrics.invalid.fetch_add(1, Ordering::Relaxed);
            return (fail(id, "invalid_request", "eval needs query or queries"), Endpoint::Eval);
        };
        let endpoint = if texts.len() >= 2 { Endpoint::Batch } else { Endpoint::Eval };

        let Some(doc_name) = req.get("doc").and_then(Json::as_str) else {
            self.metrics.invalid.fetch_add(1, Ordering::Relaxed);
            return (fail(id, "invalid_request", "eval needs a doc name"), endpoint);
        };
        if self.shutting_down() {
            return (fail(id, "shutting_down", "server is draining"), endpoint);
        }

        // Per-request knobs.
        let timeout_ms = match req.get("timeout_ms") {
            None => None,
            Some(v) => match v.as_u64() {
                Some(ms) => Some(ms),
                None => {
                    self.metrics.invalid.fetch_add(1, Ordering::Relaxed);
                    return (
                        fail(id, "invalid_request", "timeout_ms must be a non-negative integer"),
                        endpoint,
                    );
                }
            },
        };
        let threads = req
            .get("threads")
            .and_then(Json::as_u64)
            .map_or(1, |t| u32::try_from(t).unwrap_or(u32::MAX))
            .clamp(1, self.config.max_request_threads.max(1));
        let limit = req
            .get("limit")
            .and_then(Json::as_u64)
            .map_or(self.config.default_value_limit, |l| usize::try_from(l).unwrap_or(usize::MAX))
            .min(65_536);

        // Admission control: one permit per in-flight evaluation.
        let Some(_permit) = self.pool.acquire(self.config.admission_timeout) else {
            self.metrics.overloaded.fetch_add(1, Ordering::Relaxed);
            return (
                fail(id, "overloaded", "no evaluation permit available; retry later"),
                endpoint,
            );
        };

        // Resolve the snapshot through the store's generational cache.
        let doc = match self.store.open_doc(doc_name) {
            Ok(doc) => doc,
            Err(e) => {
                let kind = match &e {
                    StoreError::NotFound(_) => "not_found",
                    StoreError::InvalidName(_) => "invalid_request",
                    StoreError::Snapshot(_) => "snapshot_error",
                    StoreError::Io(_) => "io_error",
                };
                return (fail(id, kind, &e.to_string()), endpoint);
            }
        };

        // Compile each text through the shared cache (one fingerprint
        // render per request). A compile error is a per-query result,
        // not a connection drop — other queries still run.
        let compiler = Compiler::new().threads(threads);
        let fingerprint = compiler.options_fingerprint();
        let mut compiled = Vec::with_capacity(texts.len());
        for text in &texts {
            compiled.push(self.cache.get_or_compile_keyed(&compiler, &fingerprint, text));
        }

        let budget = match timeout_ms {
            Some(ms) => EvalBudget::timeout(Duration::from_millis(ms)),
            None => EvalBudget::unlimited(),
        }
        .with_cancel(Arc::clone(&self.cancel));

        let started = Instant::now();
        let ok_queries: Vec<&Arc<crate::query::CompiledQuery>> =
            compiled.iter().filter_map(|r| r.as_ref().ok()).collect();
        let mut batch_stats = None;
        let mut evaluated = if ok_queries.len() >= 2 {
            // ≥ 2 compiled queries: evaluate as one QuerySet so shared
            // axis passes are memoized across the batch.
            let mut builder = QuerySetBuilder::with_compiler(compiler.clone()).threads(threads);
            for q in &ok_queries {
                builder = builder.compiled(Arc::clone(q));
            }
            match builder.build() {
                Ok(set) => {
                    let result = set.evaluate_all_with(&doc, Context::of(doc.root()), &budget);
                    let stats = result.stats();
                    self.metrics.batch_memo_hits.fetch_add(stats.memo_hits, Ordering::Relaxed);
                    self.metrics.batch_memo_misses.fetch_add(stats.memo_misses, Ordering::Relaxed);
                    batch_stats = Some(Json::obj(vec![
                        ("mode", Json::Str(format!("{:?}", stats.mode))),
                        ("queries", Json::num(stats.queries as u64)),
                        ("fragment_queries", Json::num(stats.fragment_queries as u64)),
                        ("memo_hits", Json::num(stats.memo_hits)),
                        ("memo_misses", Json::num(stats.memo_misses)),
                        ("workers", Json::num(stats.workers as u64)),
                    ]));
                    result.into_results().into_iter()
                }
                Err(e) => {
                    let err = Err(e);
                    vec![err; ok_queries.len()].into_iter()
                }
            }
        } else {
            ok_queries
                .iter()
                .map(|q| q.evaluate_with(&doc, Context::of(doc.root()), &budget))
                .collect::<Vec<_>>()
                .into_iter()
        };
        let elapsed_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);

        // Merge compile errors and evaluation results back into input
        // order, rendering each slot as a structured per-query result.
        let results: Vec<Json> = compiled
            .iter()
            .map(|slot| match slot {
                Err(e) => self.render_query_error(e),
                Ok(_) => match evaluated.next() {
                    Some(Ok(value)) => render_value(&doc, &value, limit),
                    Some(Err(e)) => self.render_query_error(&e),
                    None => self.render_query_error(&EvalError::Cancelled),
                },
            })
            .collect();

        let mut fields = id_fields(
            id,
            vec![
                ("ok".to_owned(), Json::Bool(true)),
                ("doc".to_owned(), Json::Str(doc_name.to_owned())),
                ("results".to_owned(), Json::Arr(results)),
                ("elapsed_us".to_owned(), Json::num(elapsed_us)),
            ],
        );
        if let Some(batch) = batch_stats {
            fields.push(("batch".to_owned(), batch));
        }
        (Json::Obj(fields), endpoint)
    }

    fn render_query_error(&self, e: &EvalError) -> Json {
        match e {
            EvalError::DeadlineExceeded => {
                self.metrics.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            }
            EvalError::Cancelled => {
                self.metrics.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
        Json::obj(vec![
            ("ok", Json::Bool(false)),
            ("error", error_json(eval_error_kind(e), &e.to_string())),
        ])
    }

    fn op_stats(&self, id: Option<&Json>) -> Json {
        let m = &self.metrics;
        let load = |c: &AtomicU64| Json::num(c.load(Ordering::Relaxed));
        let planner = self.cache.planner_stats();
        let analysis = self.cache.analysis_stats();
        let cache = self.cache.stats();
        let store = self.store.stats();
        let pool = self.pool.stats();
        let stats = Json::obj(vec![
            (
                "uptime_us",
                Json::num(u64::try_from(self.started.elapsed().as_micros()).unwrap_or(0)),
            ),
            (
                "server",
                Json::obj(vec![
                    ("requests", load(&m.requests)),
                    ("errors", load(&m.errors)),
                    ("deadline_exceeded", load(&m.deadline_exceeded)),
                    ("cancelled", load(&m.cancelled)),
                    ("overloaded", load(&m.overloaded)),
                    ("invalid", load(&m.invalid)),
                    ("connections", load(&m.connections)),
                    ("active_connections", load(&m.active_connections)),
                    ("shutting_down", Json::Bool(self.shutting_down())),
                ]),
            ),
            (
                "pool",
                Json::obj(vec![
                    ("permits", Json::num(pool.permits as u64)),
                    ("in_use", Json::num(pool.in_use as u64)),
                    ("peak_in_use", Json::num(pool.peak_in_use as u64)),
                    ("acquired", Json::num(pool.acquired)),
                    ("timeouts", Json::num(pool.timeouts)),
                ]),
            ),
            (
                "cache",
                Json::obj(vec![
                    ("hits", Json::num(cache.hits)),
                    ("misses", Json::num(cache.misses)),
                    ("evictions", Json::num(cache.evictions)),
                    ("entries", Json::num(cache.entries as u64)),
                ]),
            ),
            (
                "planner",
                Json::obj(vec![
                    ("per_node", Json::num(planner.per_node)),
                    ("bulk_sparse", Json::num(planner.bulk_sparse)),
                    ("bulk_dense", Json::num(planner.bulk_dense)),
                    ("sharded_passes", Json::num(planner.sharded_passes)),
                    ("shards_spawned", Json::num(planner.shards_spawned)),
                    ("memo_hits", Json::num(planner.memo_hits)),
                ]),
            ),
            (
                "analysis",
                Json::obj(vec![
                    ("analyzed", Json::num(analysis.analyzed)),
                    ("provably_empty", Json::num(analysis.provably_empty)),
                    ("const_folded", Json::num(analysis.const_folded)),
                    ("rewritten", Json::num(analysis.rewritten)),
                    ("streamable", Json::num(analysis.streamable)),
                    ("needs_buffering", Json::num(analysis.needs_buffering)),
                    ("in_memory_only", Json::num(analysis.in_memory_only)),
                    ("errors", Json::num(analysis.errors)),
                    ("warnings", Json::num(analysis.warnings)),
                ]),
            ),
            (
                "batch",
                Json::obj(vec![
                    ("memo_hits", load(&m.batch_memo_hits)),
                    ("memo_misses", load(&m.batch_memo_misses)),
                ]),
            ),
            (
                "store",
                Json::obj(vec![
                    ("hits", Json::num(store.hits)),
                    ("misses", Json::num(store.misses)),
                    ("reloads", Json::num(store.reloads)),
                    ("publishes", Json::num(store.publishes)),
                ]),
            ),
            (
                "latency",
                Json::obj(vec![
                    ("eval", m.eval_latency.snapshot().to_json()),
                    ("batch", m.batch_latency.snapshot().to_json()),
                    ("stats", m.stats_latency.snapshot().to_json()),
                    ("ping", m.ping_latency.snapshot().to_json()),
                ]),
            ),
        ]);
        Json::Obj(id_fields(
            id,
            vec![("ok".to_owned(), Json::Bool(true)), ("stats".to_owned(), stats)],
        ))
    }

    // -- socket layer --------------------------------------------------

    /// Serve over a Unix socket at `path` (any stale socket file is
    /// replaced). Blocks until shutdown, then drains and removes the
    /// socket file.
    pub fn serve_unix(self: &Arc<Self>, path: &Path) -> io::Result<()> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let result = self.accept_loop(|| match listener.accept() {
            Ok((stream, _)) => Ok(Some(stream)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        });
        let _ = std::fs::remove_file(path);
        result
    }

    /// Serve over TCP at `addr` (e.g. `127.0.0.1:7878`). Blocks until
    /// shutdown, then drains.
    pub fn serve_tcp(self: &Arc<Self>, addr: &str) -> io::Result<()> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        self.accept_loop(|| match listener.accept() {
            Ok((stream, _)) => Ok(Some(stream)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) => Err(e),
        })
    }

    fn accept_loop<S>(
        self: &Arc<Self>,
        accept: impl Fn() -> io::Result<Option<S>>,
    ) -> io::Result<()>
    where
        S: Conn + Send + 'static,
    {
        let tick = self.config.read_timeout.min(Duration::from_millis(100));
        let mut workers = Vec::new();
        while !self.shutting_down() {
            if let Some(signal) = &self.signal {
                if signal.pending().is_some() {
                    self.begin_shutdown();
                    break;
                }
            }
            match accept()? {
                Some(stream) => {
                    stream.set_timeouts(self.config.read_timeout)?;
                    let server = Arc::clone(self);
                    self.metrics.connections.fetch_add(1, Ordering::Relaxed);
                    self.metrics.active_connections.fetch_add(1, Ordering::Relaxed);
                    workers.push(std::thread::spawn(move || server.client_loop(stream)));
                }
                None => std::thread::sleep(tick),
            }
            workers.retain(|w| !w.is_finished());
        }
        // Drain: connection threads notice the shutdown flag within one
        // read-timeout tick; in-flight evaluations are cancelled through
        // the shared budget token.
        let deadline = Instant::now() + self.config.drain_timeout;
        for worker in workers {
            if Instant::now() >= deadline {
                break; // detach stragglers; process exit reaps them
            }
            let _ = worker.join();
        }
        Ok(())
    }

    fn client_loop<S: Conn>(self: Arc<Self>, mut stream: S) {
        let mut buf: Vec<u8> = Vec::with_capacity(4096);
        let mut chunk = [0u8; 4096];
        'conn: loop {
            // Serve every complete line already buffered.
            while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = buf.drain(..=pos).collect();
                if line.len() - 1 > self.config.max_line_bytes {
                    let response =
                        fail(None, "line_too_long", "request line exceeds limit").render();
                    let _ = stream.write_all(response.as_bytes());
                    let _ = stream.write_all(b"\n");
                    let _ = stream.flush();
                    break 'conn;
                }
                let text = String::from_utf8_lossy(&line[..line.len() - 1]);
                let trimmed = text.trim();
                if trimmed.is_empty() {
                    continue;
                }
                let response = self.handle_line(trimmed);
                if stream.write_all(response.as_bytes()).is_err()
                    || stream.write_all(b"\n").is_err()
                    || stream.flush().is_err()
                {
                    break 'conn;
                }
            }
            if self.shutting_down() && buf.is_empty() {
                break;
            }
            if buf.len() > self.config.max_line_bytes {
                let response = fail(None, "line_too_long", "request line exceeds limit").render();
                let _ = stream.write_all(response.as_bytes());
                let _ = stream.write_all(b"\n");
                let _ = stream.flush();
                break;
            }
            match stream.read(&mut chunk) {
                Ok(0) => break, // EOF
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    // Read-timeout tick: loop to re-check the shutdown
                    // flag, keeping the connection open meanwhile.
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        self.metrics.active_connections.fetch_sub(1, Ordering::Relaxed);
    }
}

enum Endpoint {
    Eval,
    Batch,
    Stats,
    Ping,
}

fn id_fields(id: Option<&Json>, rest: Vec<(String, Json)>) -> Vec<(String, Json)> {
    let mut fields = Vec::with_capacity(rest.len() + 1);
    if let Some(id) = id {
        fields.push(("id".to_owned(), id.clone()));
    }
    fields.extend(rest);
    fields
}

fn render_value(doc: &Document, value: &Value, limit: usize) -> Json {
    match value {
        Value::Number(n) => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("type", Json::Str("number".to_owned())),
            ("value", Json::Num(*n)),
        ]),
        Value::String(s) => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("type", Json::Str("string".to_owned())),
            ("value", Json::Str(s.clone())),
        ]),
        Value::Boolean(b) => Json::obj(vec![
            ("ok", Json::Bool(true)),
            ("type", Json::Str("boolean".to_owned())),
            ("value", Json::Bool(*b)),
        ]),
        Value::NodeSet(nodes) => {
            let values: Vec<Json> = nodes
                .iter()
                .take(limit)
                .map(|n| Json::Str(doc.string_value(n).to_string()))
                .collect();
            Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("type", Json::Str("node-set".to_owned())),
                ("count", Json::num(nodes.len() as u64)),
                ("values", Json::Arr(values)),
            ])
        }
    }
}

/// The two stream types the server accepts, unified over the pieces the
/// connection loop needs (`Read + Write` plus timeout setup).
trait Conn: Read + Write {
    fn set_timeouts(&self, read: Duration) -> io::Result<()>;
}

impl Conn for std::os::unix::net::UnixStream {
    fn set_timeouts(&self, read: Duration) -> io::Result<()> {
        self.set_read_timeout(Some(read))
    }
}

impl Conn for std::net::TcpStream {
    fn set_timeouts(&self, read: Duration) -> io::Result<()> {
        self.set_read_timeout(Some(read))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_xml::generate::doc_bookstore;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gkp_serve_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn test_server(tag: &str) -> (Arc<Server>, PathBuf) {
        let dir = temp_dir(tag);
        let server = Arc::new(Server::new(ServeConfig::new(&dir)).unwrap());
        server.store().publish("books", &doc_bookstore()).unwrap();
        (server, dir)
    }

    fn respond(server: &Server, line: &str) -> Json {
        Json::parse(&server.handle_line(line)).expect("response is valid JSON")
    }

    #[test]
    fn json_roundtrip_and_errors() {
        let cases = [
            r#"{"a":1,"b":[true,false,null],"c":"x\"\\\n\u00e9\ud83d\ude00"}"#,
            "[]",
            "{}",
            "-1.5e3",
            r#""plain""#,
        ];
        for case in cases {
            let v = Json::parse(case).unwrap();
            let rendered = v.render();
            assert_eq!(Json::parse(&rendered).unwrap(), v, "{case}");
        }
        for bad in
            ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\ud800\"", "\"unterminated", "{1:2}"]
        {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        // Duplicate keys keep the first; numbers render integrally.
        assert_eq!(Json::parse(r#"{"k":1,"k":2}"#).unwrap().get("k"), Some(&Json::Num(1.0)));
        assert_eq!(Json::Num(3.0).render(), "3");
    }

    #[test]
    fn histogram_quantiles_are_bucket_upper_bounds() {
        let h = LatencyHistogram::default();
        for us in [1u64, 2, 3, 100, 1000, 10_000] {
            h.record(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.max_us, 10_000);
        assert!(s.quantile(0.5) >= 3 && s.quantile(0.5) <= 7, "p50={}", s.quantile(0.5));
        assert_eq!(s.quantile(1.0), 10_000);
        assert_eq!(LatencyHistogram::default().snapshot().quantile(0.99), 0);
        let json = s.to_json();
        assert_eq!(json.get("count"), Some(&Json::Num(6.0)));
    }

    #[test]
    fn permit_pool_bounds_and_times_out() {
        let pool = PermitPool::new(2);
        let a = pool.acquire(Duration::from_millis(10)).unwrap();
        let b = pool.acquire(Duration::from_millis(10)).unwrap();
        assert!(pool.acquire(Duration::from_millis(20)).is_none(), "pool is full");
        drop(a);
        let c = pool.acquire(Duration::from_millis(10)).unwrap();
        drop(b);
        drop(c);
        let stats = pool.stats();
        assert_eq!((stats.permits, stats.in_use, stats.peak_in_use), (2, 0, 2));
        assert_eq!((stats.acquired, stats.timeouts), (3, 1));
    }

    #[test]
    fn single_query_roundtrips() {
        let (server, dir) = test_server("single");
        let resp = respond(&server, r#"{"id":7,"doc":"books","query":"count(//book)"}"#);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(resp.get("id"), Some(&Json::Num(7.0)));
        let result = &resp.get("results").unwrap().as_arr().unwrap()[0];
        assert_eq!(result.get("type").unwrap().as_str(), Some("number"));
        assert!(result.get("value").unwrap().as_f64().unwrap() > 0.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_request_reports_batch_stats_and_per_query_results() {
        let (server, dir) = test_server("batch");
        let resp = respond(
            &server,
            r#"{"doc":"books","queries":["//book[author]","//book[author]/title","count(//book)","//nosuch["]}"#,
        );
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        let results = resp.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 4);
        assert_eq!(results[0].get("type").unwrap().as_str(), Some("node-set"));
        assert!(results[0].get("count").unwrap().as_u64().unwrap() > 0);
        assert_eq!(results[2].get("type").unwrap().as_str(), Some("number"));
        // The malformed query is a structured per-query error; the rest
        // of the batch still evaluated.
        assert_eq!(results[3].get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            results[3].get("error").unwrap().get("kind").unwrap().as_str(),
            Some("parse_error")
        );
        assert!(resp.get("batch").is_some(), "batched evals report batch stats");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_deadline_trips_as_structured_error() {
        let (server, dir) = test_server("deadline");
        let resp = respond(&server, r#"{"doc":"books","query":"//book[author]","timeout_ms":0}"#);
        // The transport-level response is ok; the query's own slot
        // carries the structured deadline error.
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        let result = &resp.get("results").unwrap().as_arr().unwrap()[0];
        assert_eq!(result.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            result.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("deadline_exceeded")
        );
        assert_eq!(server.metrics().deadline_exceeded.load(Ordering::Relaxed), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_and_invalid_requests_fail_structurally() {
        let (server, dir) = test_server("invalid");
        for (line, kind) in [
            ("this is not json", "invalid_request"),
            ("[1,2,3]", "invalid_request"),
            (r#"{"op":"eval","doc":"books"}"#, "invalid_request"),
            (r#"{"op":"eval","query":"//a"}"#, "invalid_request"),
            (r#"{"op":"frobnicate"}"#, "invalid_request"),
            (r#"{"doc":"absent","query":"//a"}"#, "not_found"),
            (r#"{"doc":"../evil","query":"//a"}"#, "invalid_request"),
            (r#"{"doc":"books","query":"//a","timeout_ms":-5}"#, "invalid_request"),
            (r#"{"doc":"books","queries":[]}"#, "invalid_request"),
        ] {
            let resp = respond(&server, line);
            assert_eq!(resp.get("ok"), Some(&Json::Bool(false)), "{line}");
            assert_eq!(
                resp.get("error").unwrap().get("kind").unwrap().as_str(),
                Some(kind),
                "{line}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn limit_caps_values_but_count_stays_exact() {
        let (server, dir) = test_server("limit");
        let resp = respond(&server, r#"{"doc":"books","query":"//*","limit":2}"#);
        let result = &resp.get("results").unwrap().as_arr().unwrap()[0];
        let count = result.get("count").unwrap().as_u64().unwrap();
        assert!(count > 2);
        assert_eq!(result.get("values").unwrap().as_arr().unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_probe_reports_live_metrics() {
        let (server, dir) = test_server("stats");
        respond(&server, r#"{"doc":"books","query":"//book"}"#);
        respond(&server, r#"{"doc":"books","query":"//book"}"#);
        let resp = respond(&server, r#"{"op":"stats","id":"s1"}"#);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(resp.get("id").unwrap().as_str(), Some("s1"));
        let stats = resp.get("stats").unwrap();
        // Two evals: one compile miss, one cache hit.
        assert_eq!(stats.get("cache").unwrap().get("hits").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("cache").unwrap().get("misses").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("store").unwrap().get("publishes").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("pool").unwrap().get("acquired").unwrap().as_u64(), Some(2));
        assert_eq!(
            stats.get("latency").unwrap().get("eval").unwrap().get("count").unwrap().as_u64(),
            Some(2)
        );
        assert!(stats.get("planner").unwrap().get("per_node").is_some());
        assert!(stats.get("analysis").unwrap().get("analyzed").unwrap().as_u64().unwrap() >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_op_flips_cancel_and_rejects_new_evals() {
        let (server, dir) = test_server("shutdown");
        let resp = respond(&server, r#"{"op":"shutdown"}"#);
        assert_eq!(resp.get("shutting_down"), Some(&Json::Bool(true)));
        assert!(server.shutting_down());
        assert!(server.cancel.load(Ordering::SeqCst), "in-flight budgets see the cancel token");
        let resp = respond(&server, r#"{"doc":"books","query":"//book"}"#);
        assert_eq!(resp.get("error").unwrap().get("kind").unwrap().as_str(), Some("shutting_down"));
        // Introspection ops still answer during the drain.
        let resp = respond(&server, r#"{"op":"stats"}"#);
        assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generational_reload_is_visible_through_eval() {
        let (server, dir) = test_server("reload");
        let before = respond(&server, r#"{"doc":"books","query":"count(//extra)"}"#);
        let n_before =
            before.get("results").unwrap().as_arr().unwrap()[0].get("value").unwrap().as_f64();
        assert_eq!(n_before, Some(0.0));
        // Republish under the same name: the next request sees the new
        // generation without any server restart.
        let xml = "<shelf><extra/><extra/></shelf>";
        let new_doc = xpath_xml::Document::parse_str(xml).unwrap();
        server.store().publish("books", &new_doc).unwrap();
        let after = respond(&server, r#"{"doc":"books","query":"count(//extra)"}"#);
        let n_after =
            after.get("results").unwrap().as_arr().unwrap()[0].get("value").unwrap().as_f64();
        assert_eq!(n_after, Some(2.0));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
