//! Relevant-context analysis (paper §8.2).
//!
//! `Relev(N) ⊆ {cn, cp, cs}` states which components of a context
//! `⟨x, p, s⟩` the value of a subexpression can depend on. It is computed
//! by a single bottom-up traversal of the parse tree in `O(|Q|)` and drives
//! both the footnote-8 table reduction in the bottom-up algorithm and the
//! MinContext procedures of Appendix A.

use std::fmt;

use xpath_syntax::{Expr, PathStart};

use crate::context::Context;

/// A subset of `{cn, cp, cs}` — which context components are relevant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Relev(u8);

impl Relev {
    /// The empty set (constant expressions).
    pub const NONE: Relev = Relev(0);
    /// `{cn}` — depends on the context node.
    pub const CN: Relev = Relev(1);
    /// `{cp}` — depends on the context position.
    pub const CP: Relev = Relev(2);
    /// `{cs}` — depends on the context size.
    pub const CS: Relev = Relev(4);
    /// The full set `{cn, cp, cs}`.
    pub const ALL: Relev = Relev(7);

    /// Set union.
    pub fn union(self, other: Relev) -> Relev {
        Relev(self.0 | other.0)
    }

    /// Does the set contain `cn`?
    pub fn has_cn(self) -> bool {
        self.0 & 1 != 0
    }

    /// Does the set contain `cp`?
    pub fn has_cp(self) -> bool {
        self.0 & 2 != 0
    }

    /// Does the set contain `cs`?
    pub fn has_cs(self) -> bool {
        self.0 & 4 != 0
    }

    /// Does the set contain `cp` or `cs`? (The MinContext procedures branch
    /// on `{‘cp’,‘cs’} ∩ Relev(N) = ∅`.)
    pub fn has_pos_or_size(self) -> bool {
        self.0 & 6 != 0
    }

    /// Is this a subset of `{cn}`? (MinContext only materializes tables for
    /// such nodes.)
    pub fn is_cn_only(self) -> bool {
        self.0 & 6 == 0
    }

    /// Project a context onto the relevant components, for use as a table
    /// key; irrelevant components collapse to 0.
    pub fn project(self, ctx: Context) -> (u32, u32, u32) {
        (
            if self.has_cn() { ctx.node.0 + 1 } else { 0 },
            if self.has_cp() { ctx.position } else { 0 },
            if self.has_cs() { ctx.size } else { 0 },
        )
    }
}

impl fmt::Debug for Relev {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.has_cn() {
            parts.push("cn");
        }
        if self.has_cp() {
            parts.push("cp");
        }
        if self.has_cs() {
            parts.push("cs");
        }
        write!(f, "{{{}}}", parts.join(","))
    }
}

/// Compute `Relev` for an expression (§8.2).
///
/// * constants, `true()`, `false()` → ∅;
/// * `position()` → {cp}; `last()` → {cs};
/// * location paths and parameterless context functions (`string()`,
///   `number()`, …) → {cn} (location steps fix the context node; their
///   predicates' relevance does **not** propagate upward);
/// * compound expressions → union of children.
pub fn relev(e: &Expr) -> Relev {
    match e {
        Expr::Path(p) => match &p.start {
            PathStart::Root => Relev::NONE,
            PathStart::ContextNode => Relev::CN,
            PathStart::Expr(head) => relev(head),
        },
        Expr::Filter { primary, .. } => relev(primary),
        Expr::Binary { left, right, .. } => relev(left).union(relev(right)),
        Expr::Neg(inner) => relev(inner),
        Expr::Literal(_) | Expr::Number(_) | Expr::Var(_) => Relev::NONE,
        Expr::Call { name, args } => match name.as_str() {
            "position" => Relev::CP,
            "last" => Relev::CS,
            "true" | "false" => Relev::NONE,
            // Parameterless context functions refer to the context node.
            "string" | "number" | "string-length" | "normalize-space" | "name" | "local-name"
            | "namespace-uri"
                if args.is_empty() =>
            {
                Relev::CN
            }
            // lang() always inspects the context node's ancestry.
            "lang" => args.iter().map(relev).fold(Relev::CN, Relev::union),
            _ => args.iter().map(relev).fold(Relev::NONE, Relev::union),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_syntax::parse_normalized;

    fn r(q: &str) -> Relev {
        relev(&parse_normalized(q).unwrap())
    }

    #[test]
    fn leaves() {
        assert_eq!(r("5"), Relev::NONE);
        assert_eq!(r("'x'"), Relev::NONE);
        assert_eq!(r("true()"), Relev::NONE);
        assert_eq!(r("position()"), Relev::CP);
        assert_eq!(r("last()"), Relev::CS);
        assert_eq!(r("string()"), Relev::CN);
        assert_eq!(r("child::a"), Relev::CN);
        assert_eq!(r("/child::a"), Relev::NONE, "absolute paths ignore the context");
    }

    #[test]
    fn example_8_2_relevances() {
        // From Example 8.2: E9 = last()*0.5 → {cs}; E6 = position() > E9 →
        // {cp,cs}; E7 = string(self::*) = '100' → {cn};
        // E5 = E6 or E7 → {cn,cp,cs}; the full query (a location path) → {cn}
        // relative form / ∅ absolute form.
        assert_eq!(r("last() * 0.5"), Relev::CS);
        assert_eq!(r("position() > last() * 0.5"), Relev::CP.union(Relev::CS));
        assert_eq!(r("string(self::*) = '100'"), Relev::CN);
        assert_eq!(r("position() > last() * 0.5 or string(self::*) = '100'"), Relev::ALL);
        assert_eq!(r("descendant::*[position() > last() * 0.5]"), Relev::CN);
        assert_eq!(r("/descendant::*[position() > last() * 0.5]"), Relev::NONE);
    }

    #[test]
    fn predicates_do_not_leak_upward() {
        // A location step's predicates may depend on position, but the path
        // itself only depends on the context node.
        assert_eq!(r("child::a[position() != last()]"), Relev::CN);
    }

    #[test]
    fn compound_union() {
        assert_eq!(r("position() + last()"), Relev::CP.union(Relev::CS));
        assert_eq!(r("count(child::a) + position()"), Relev::CN.union(Relev::CP));
        assert_eq!(r("-position()"), Relev::CP);
        assert_eq!(r("concat('a', 'b')"), Relev::NONE);
        assert_eq!(r("lang('en')"), Relev::CN);
    }

    #[test]
    fn projection_keys() {
        use xpath_xml::NodeId;
        let c = Context::new(NodeId(4), 2, 9);
        assert_eq!(Relev::NONE.project(c), (0, 0, 0));
        assert_eq!(Relev::CN.project(c), (5, 0, 0));
        assert_eq!(Relev::CP.union(Relev::CS).project(c), (0, 2, 9));
        assert_eq!(Relev::ALL.project(c), (5, 2, 9));
    }

    #[test]
    fn flags() {
        assert!(Relev::ALL.has_pos_or_size());
        assert!(!Relev::CN.has_pos_or_size());
        assert!(Relev::CN.is_cn_only());
        assert!(Relev::NONE.is_cn_only());
        assert!(!Relev::CP.is_cn_only());
        assert_eq!(format!("{:?}", Relev::ALL), "{cn,cp,cs}");
    }
}
