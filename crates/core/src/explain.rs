//! Query-plan explanation: make the paper's static analyses visible.
//!
//! For a prepared query, [`explain`] reports
//!
//! * the Figure 1 fragment classification and the strategy `Auto` picks;
//! * Extended-Wadler restriction violations, if any;
//! * the relevant-context set `Relev(N)` (§8.2) of every subexpression;
//! * which subexpressions OptMinContext will evaluate bottom-up
//!   (`boolean(π)` / `π RelOp c` occurrences, §11.1);
//! * the context-value-table row counts the bottom-up algorithm would
//!   materialize for a given document size (Theorem 6.6 made concrete).

use std::fmt::Write as _;

use xpath_syntax::{Expr, PathStart};

use crate::fragment::{classify, Fragment};
use crate::relev::relev;
use crate::wadler;

/// A rendered explanation of how the engines will treat a query.
#[derive(Clone, Debug)]
pub struct Explanation {
    /// The Figure 1 fragment.
    pub fragment: Fragment,
    /// Human-readable multi-line report.
    pub report: String,
    /// Number of bottom-up path occurrences OptMinContext will seed.
    pub bottomup_paths: usize,
}

/// Explain a prepared (normalized) query. `doc_size` parameterizes the
/// table-size estimates; pass the target document's `len()` or an
/// indicative size.
pub fn explain(e: &Expr, doc_size: usize) -> Explanation {
    let c = classify(e);
    let mut report = String::new();
    let _ = writeln!(report, "query:     {e}");
    let _ = writeln!(report, "fragment:  {} ({})", c.fragment.name(), c.fragment.complexity());
    let strategy = match c.fragment {
        Fragment::CoreXPath => "CoreXPath (S→/S←/E1 algebra)",
        Fragment::XPatterns => "XPatterns (Core XPath + id axis + =s predicates)",
        Fragment::ExtendedWadler | Fragment::FullXPath => {
            "OptMinContext (Algorithm 11.1: bottom-up paths + MinContext)"
        }
    };
    let _ = writeln!(report, "strategy:  {strategy}");
    for v in &c.wadler_violations {
        let _ = writeln!(report, "  wadler:  {v}");
    }
    // Static analysis (crate::analyze): satisfiability, reverse-axis
    // rewriting, streamability classification, diagnostics.
    let report_a = crate::analyze::analyze(e);
    if let Some(v) = &report_a.const_result {
        let _ = writeln!(
            report,
            "const:     result is document-independent — the plan short-circuits to {v}"
        );
    }
    if let Some(f) = &report_a.forward_expr {
        let _ = writeln!(report, "rewrite:   reverse axes eliminated → {f}");
    }
    match &report_a.streamability {
        crate::analyze::Streamability::Streamable => {
            let _ = writeln!(report, "streaming: yes (single pass, O(depth·|Q|) memory)");
        }
        crate::analyze::Streamability::NeedsBuffering(why) => {
            let _ = writeln!(report, "streaming: yes, buffered — {why}");
        }
        crate::analyze::Streamability::InMemoryOnly(why) => {
            let _ = writeln!(report, "streaming: no — {why}");
        }
    }
    for d in &report_a.diagnostics {
        let _ = writeln!(report, "  lint:    {d}");
    }

    // Adaptive axis planner: which kernel each axis of the fragment
    // program runs on and why — the crossovers are functions of |D| and
    // the calibrated cost model, the final pick is made per application
    // from the actual input density at runtime.
    if let Ok(q) = crate::corexpath::compile_xpatterns(e) {
        let model = xpath_axes::CostModel::global();
        let mut axes = std::collections::BTreeMap::new();
        collect_axes(&q.path, &mut axes);
        let _ = writeln!(
            report,
            "axis planner (adaptive kernel picks @ |D| = {doc_size}; constants \
             overridable via {}):",
            xpath_axes::cost::COST_ENV
        );
        for axis in axes.into_values() {
            let _ =
                writeln!(report, "  {}", xpath_axes::cost::describe(axis, doc_size as u32, model));
        }
        // Parallel CVT layer: the per-pass spawn gate at this |D| and the
        // process-default thread budget (an explicit Compiler/--threads
        // budget overrides the default shown here).
        let threads = crate::parallel::resolve_threads(0);
        if threads <= 1 {
            let _ = writeln!(
                report,
                "parallel: budget 1 thread ({} / machine) — passes never shard",
                crate::parallel::THREADS_ENV
            );
        } else {
            let _ = writeln!(
                report,
                "parallel: budget {threads} threads ({} / machine); CVT row passes \
                 shard at ≥ {} rows, axis passes at |S| ≥ {} @ |D| = {doc_size}; \
                 below, the planner refuses to spawn",
                crate::parallel::THREADS_ENV,
                model.row_shard_crossover(),
                model.axis_shard_crossover(doc_size as u32),
            );
        }
        // Lazy cursor verdict: can exists/first/take(k) early-exit on the
        // block-synchronous pipeline, and would the cost model pick it at
        // this |D| for a full drain?
        let streamable_spine =
            q.path.eq.is_none() && q.path.steps.iter().all(|s| xpath_axes::is_streamable(s.axis));
        if streamable_spine {
            let _ = writeln!(
                report,
                "lazy:      spine streams (forward axes, preorder-monotone) — \
                 exists/first/take(k) early-exit; full drains go lazy at \
                 |D| ≥ {} (here: {})",
                model.lazy_take_crossover(),
                if model.pick_lazy(doc_size as u32, None) { "lazy" } else { "materialize" },
            );
        } else {
            let why = if q.path.eq.is_some() {
                "trailing =s restriction needs the finished set"
            } else {
                "non-forward step in the spine"
            };
            let _ = writeln!(report, "lazy:      materialize — {why}");
        }
    }

    // Per-subexpression relevance and bottom-up candidacy.
    let mut bottomup_paths = 0usize;
    let _ = writeln!(report, "subexpressions (Relev, CVT rows @ |D| = {doc_size}):");
    e.walk(&mut |sub| {
        let rel = relev(sub);
        let rows = estimated_rows(doc_size, rel.has_cn(), rel.has_cp(), rel.has_cs());
        let bu = if wadler::bottomup_candidate(sub).is_some() {
            bottomup_paths += 1;
            "  [bottom-up]"
        } else {
            ""
        };
        let shown = one_line(sub, 52);
        let _ = writeln!(report, "  {rel:?}  rows≈{rows:<10} {shown}{bu}");
    });
    Explanation { fragment: c.fragment, report, bottomup_paths }
}

/// Explain how a [`QuerySet`](crate::batch::QuerySet) will evaluate on a
/// document of `doc_size` nodes: the static sharing profile, the batch
/// mode the cost model picks, and the crossover it picked it at — the
/// batch counterpart of [`explain`], surfaced by `xpq --explain` when
/// several `-e` expressions (or a `--query-file`) form a batch.
pub fn explain_batch(set: &crate::batch::QuerySet, doc_size: usize) -> String {
    let universe = doc_size as u32;
    let sharing = set.sharing();
    let model = set.cost_model();
    let threads = crate::parallel::resolve_threads(set.threads());
    let mode = set.plan_mode(universe);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "batch:     {} queries ({} fragment-engine), {}/{} step units shared",
        set.len(),
        sharing.fragment_queries,
        sharing.shared_units,
        sharing.total_units,
    );
    let _ = writeln!(
        report,
        "batch mode @ |D| = {doc_size}, {threads} thread(s): {} (constants \
         overridable via {})",
        mode.name(),
        xpath_axes::cost::COST_ENV
    );
    let _ = writeln!(
        report,
        "  lock-step sharing pays above {:.1}% duplicated units \
         (memo probe {:.0}ns + fingerprint vs ~{:.0}ns per shared pass)",
        model.batch_share_crossover(universe) * 100.0,
        model.memo_probe_ns,
        model.shared_pass_ns(universe),
    );
    report
}

/// Collect every axis a compiled Core XPath / XPatterns program applies
/// (spine and predicate paths alike), keyed by name for stable output.
fn collect_axes(
    p: &crate::corexpath::CorePath,
    out: &mut std::collections::BTreeMap<&'static str, xpath_syntax::Axis>,
) {
    for step in &p.steps {
        out.insert(step.axis.name(), step.axis);
        for pred in &step.preds {
            collect_pred_axes(pred, out);
        }
    }
}

fn collect_pred_axes(
    pred: &crate::corexpath::CorePred,
    out: &mut std::collections::BTreeMap<&'static str, xpath_syntax::Axis>,
) {
    use crate::corexpath::CorePred;
    match pred {
        CorePred::And(l, r) | CorePred::Or(l, r) => {
            collect_pred_axes(l, out);
            collect_pred_axes(r, out);
        }
        CorePred::Not(inner) => collect_pred_axes(inner, out),
        CorePred::Path(p) => collect_axes(p, out),
    }
}

fn estimated_rows(n: usize, cn: bool, cp: bool, cs: bool) -> u64 {
    let n = n as u64;
    let mut rows = 1u64;
    if cn {
        rows = rows.saturating_mul(n);
    }
    match (cp, cs) {
        (true, true) => rows = rows.saturating_mul(n.saturating_mul(n.saturating_add(1)) / 2),
        (true, false) | (false, true) => rows = rows.saturating_mul(n),
        (false, false) => {}
    }
    rows
}

fn one_line(e: &Expr, max: usize) -> String {
    let s = match e {
        // Paths print with their predicates, which is often the whole
        // query; abbreviate to the spine.
        Expr::Path(p) => {
            let start = match &p.start {
                PathStart::Root => "/".to_string(),
                PathStart::ContextNode => String::new(),
                PathStart::Expr(_) => "(…)/".to_string(),
            };
            let steps: Vec<String> = p
                .steps
                .iter()
                .map(|s| {
                    if s.predicates.is_empty() {
                        format!("{}::{}", s.axis.name(), s.test)
                    } else {
                        format!("{}::{}[…]", s.axis.name(), s.test)
                    }
                })
                .collect();
            format!("{start}{}", steps.join("/"))
        }
        other => other.to_string(),
    };
    if s.chars().count() > max {
        let cut: String = s.chars().take(max - 1).collect();
        format!("{cut}…")
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_syntax::parse_normalized;

    #[test]
    fn explain_core_query() {
        let e = parse_normalized("//a[b]").unwrap();
        let x = explain(&e, 100);
        assert_eq!(x.fragment, Fragment::CoreXPath);
        assert!(x.report.contains("CoreXPath"), "{}", x.report);
        assert_eq!(x.bottomup_paths, 1, "boolean(child::b) is a candidate");
    }

    #[test]
    fn explain_reports_axis_planner_kernels() {
        let e = parse_normalized("//a[b]/following::c/ancestor::d").unwrap();
        let x = explain(&e, 21846);
        assert!(x.report.contains("axis planner"), "{}", x.report);
        // One line per distinct axis, naming the kernel choice and why.
        assert!(x.report.contains("descendant-or-self: staircase"), "{}", x.report);
        assert!(x.report.contains("following: staircase"), "{}", x.report);
        assert!(x.report.contains("ancestor: pointer-chain"), "{}", x.report);
        assert!(x.report.contains("child: link-array"), "{}", x.report);
        assert!(x.report.contains(xpath_axes::cost::COST_ENV), "{}", x.report);
        // The parallel spawn gate is surfaced alongside the kernel picks:
        // either the budget is 1 (never shards) or the crossovers print.
        assert!(x.report.contains("parallel: budget"), "{}", x.report);
        assert!(
            x.report.contains("never shard") || x.report.contains("refuses to spawn"),
            "{}",
            x.report
        );
        // Outside the fragment engines there is no planner section.
        let y = explain(&parse_normalized("count(//a)").unwrap(), 100);
        assert!(!y.report.contains("axis planner"), "{}", y.report);
        assert!(!y.report.contains("parallel: budget"), "{}", y.report);
    }

    #[test]
    fn explain_reports_the_static_analysis() {
        // Provably empty: the constant-empty short-circuit is visible.
        let x = explain(&parse_normalized("//text()/child::*").unwrap(), 100);
        assert!(x.report.contains("const:"), "{}", x.report);
        assert!(x.report.contains("lint:"), "{}", x.report);
        // Reverse axes: the rewrite and the buffered classification print.
        let x = explain(&parse_normalized("//author/parent::book").unwrap(), 100);
        assert!(x.report.contains("rewrite:   reverse axes eliminated"), "{}", x.report);
        assert!(x.report.contains("streaming: yes, buffered"), "{}", x.report);
        // Pure forward spines keep the unqualified "streaming: yes".
        let x = explain(&parse_normalized("//a/b").unwrap(), 100);
        assert!(x.report.contains("streaming: yes (single pass"), "{}", x.report);
        // In-memory-only queries keep "streaming: no".
        let x = explain(&parse_normalized("count(//a)").unwrap(), 100);
        assert!(x.report.contains("streaming: no"), "{}", x.report);
    }

    #[test]
    fn explain_reports_lazy_cursor_verdict() {
        // Streamable spine, small document: early-exit available, but a
        // full drain stays materialized below the crossover.
        let x = explain(&parse_normalized("//a[b]").unwrap(), 100);
        assert!(x.report.contains("lazy:      spine streams"), "{}", x.report);
        assert!(x.report.contains("here: materialize"), "{}", x.report);
        // Past the crossover the drain verdict flips.
        let x = explain(&parse_normalized("//a[b]").unwrap(), 200_000);
        assert!(x.report.contains("here: lazy"), "{}", x.report);
        // A reverse step in the spine rules the pipeline out.
        let x = explain(&parse_normalized("//a/parent::b").unwrap(), 100);
        assert!(x.report.contains("lazy:      materialize — non-forward step"), "{}", x.report);
    }

    #[test]
    fn explain_full_xpath_query() {
        let e = parse_normalized("//a[count(b) > 1]").unwrap();
        let x = explain(&e, 100);
        assert_eq!(x.fragment, Fragment::FullXPath);
        assert!(x.report.contains("OptMinContext"), "{}", x.report);
        assert!(x.report.contains("Restriction 2"), "{}", x.report);
    }

    #[test]
    fn row_estimates() {
        assert_eq!(estimated_rows(10, false, false, false), 1);
        assert_eq!(estimated_rows(10, true, false, false), 10);
        assert_eq!(estimated_rows(10, false, true, false), 10);
        assert_eq!(estimated_rows(10, false, true, true), 55);
        assert_eq!(estimated_rows(10, true, true, true), 550);
        // Saturates instead of overflowing.
        assert!(estimated_rows(usize::MAX, true, true, true) > 0);
    }

    #[test]
    fn relevances_listed() {
        let e = parse_normalized("//a[position() != last()]").unwrap();
        let x = explain(&e, 50);
        assert!(x.report.contains("{cp,cs}"), "{}", x.report);
        assert!(x.report.contains("{cp}"), "{}", x.report);
        assert!(x.report.contains("{cs}"), "{}", x.report);
    }

    #[test]
    fn long_queries_abbreviated() {
        let e =
            parse_normalized("//a[b[c[d[e = 'a very long string literal that goes on and on']]]]")
                .unwrap();
        let x = explain(&e, 10);
        // Subexpression lines are abbreviated (the header echoes the full
        // query and is exempt).
        for line in x.report.lines().filter(|l| l.trim_start().starts_with('{')) {
            assert!(line.chars().count() < 120, "overlong line: {line}");
        }
        assert!(x.report.contains('…'), "{}", x.report);
    }
}
