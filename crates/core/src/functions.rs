//! The XPath 1.0 core function library: the effective semantics functions
//! `F[[Op]]` of Table II plus the number/string functions the paper
//! references from the W3C recommendation (floor, ceiling, round, concat,
//! starts-with, contains, substring, substring-before/-after,
//! string-length, normalize-space, translate, lang) and the name functions
//! (name, local-name, namespace-uri) that the Extended Wadler fragment's
//! Restriction 1 singles out.

use xpath_xml::{Document, NodeId};

use crate::context::{Context, EvalError, EvalResult};
use crate::nodeset::NodeSet;
use crate::value::{number_to_string, str_to_number, Value};

/// Is `name` a known core-library function?
pub fn is_known(name: &str) -> bool {
    KNOWN.contains(&name)
}

/// All implemented function names.
pub const KNOWN: &[&str] = &[
    "last",
    "position",
    "count",
    "id",
    "local-name",
    "namespace-uri",
    "name",
    "string",
    "concat",
    "starts-with",
    "contains",
    "substring-before",
    "substring-after",
    "substring",
    "string-length",
    "normalize-space",
    "translate",
    "boolean",
    "not",
    "true",
    "false",
    "lang",
    "number",
    "sum",
    "floor",
    "ceiling",
    "round",
];

fn arity_err(function: &str, got: usize, expected: &'static str) -> EvalError {
    EvalError::WrongArity { function: function.to_string(), got, expected }
}

fn need(args: &[Value], function: &str, n: usize) -> EvalResult<()> {
    if args.len() == n {
        Ok(())
    } else {
        Err(arity_err(
            function,
            args.len(),
            match n {
                0 => "0",
                1 => "1",
                2 => "2",
                3 => "3",
                _ => "fixed",
            },
        ))
    }
}

/// XPath `round`: half rounds toward +∞; NaN and infinities pass through.
pub fn xpath_round(v: f64) -> f64 {
    if v.is_nan() || v.is_infinite() {
        return v;
    }
    // (v + 0.5).floor() implements round-half-up including negatives:
    // round(-0.5) = -0.0, round(-1.5) = -1.
    (v + 0.5).floor()
}

/// Apply a core-library function to already-evaluated arguments in context
/// `ctx`. Zero-argument forms of `string`, `number`, `string-length`,
/// `normalize-space`, `name`, `local-name` and `namespace-uri` operate on
/// the context node.
pub fn apply(doc: &Document, name: &str, args: Vec<Value>, ctx: &Context) -> EvalResult<Value> {
    match name {
        // ----- node-set functions -----
        "last" => {
            need(&args, name, 0)?;
            Ok(Value::Number(ctx.size as f64))
        }
        "position" => {
            need(&args, name, 0)?;
            Ok(Value::Number(ctx.position as f64))
        }
        "count" => {
            need(&args, name, 1)?;
            match &args[0] {
                Value::NodeSet(s) => Ok(Value::Number(s.len() as f64)),
                other => Err(EvalError::TypeMismatch(format!(
                    "count() requires a node set, got {}",
                    other.type_name()
                ))),
            }
        }
        "sum" => {
            need(&args, name, 1)?;
            match &args[0] {
                Value::NodeSet(s) => {
                    Ok(Value::Number(s.iter().map(|n| str_to_number(doc.string_value(n))).sum()))
                }
                other => Err(EvalError::TypeMismatch(format!(
                    "sum() requires a node set, got {}",
                    other.type_name()
                ))),
            }
        }
        "id" => {
            need(&args, name, 1)?;
            match &args[0] {
                // F[[id : nset → nset]](S) := ∪_{n∈S} F[[id]](strval(n)).
                Value::NodeSet(s) => {
                    let mut out = NodeSet::new();
                    for n in s {
                        out.union_with(&NodeSet::from_sorted(doc.deref_ids(doc.string_value(n))));
                    }
                    Ok(Value::NodeSet(out))
                }
                // F[[id : str → nset]](s) := deref_ids(s).
                other => Ok(Value::NodeSet(NodeSet::from_sorted(
                    doc.deref_ids(&other.to_xpath_string(doc)),
                ))),
            }
        }
        "name" | "local-name" | "namespace-uri" => {
            if args.len() > 1 {
                return Err(arity_err(name, args.len(), "0 or 1"));
            }
            let node: Option<NodeId> = match args.first() {
                None => Some(ctx.node),
                Some(Value::NodeSet(s)) => s.first(),
                Some(other) => {
                    return Err(EvalError::TypeMismatch(format!(
                        "{name}() requires a node set, got {}",
                        other.type_name()
                    )))
                }
            };
            let full = node.and_then(|n| doc.name(n)).unwrap_or("");
            let out = match name {
                "name" => full.to_string(),
                "local-name" => full.rsplit(':').next().unwrap_or("").to_string(),
                // The data model does not track namespace URIs (the paper
                // treats namespaces as orthogonal, footnote 6); the function
                // exists so Restriction 1 of §11 has something to restrict.
                _ => String::new(),
            };
            Ok(Value::String(out))
        }
        // ----- string functions -----
        "string" => {
            if args.len() > 1 {
                return Err(arity_err(name, args.len(), "0 or 1"));
            }
            match args.into_iter().next() {
                None => Ok(Value::String(doc.string_value(ctx.node).to_string())),
                Some(v) => Ok(Value::String(v.to_xpath_string(doc))),
            }
        }
        "concat" => {
            if args.len() < 2 {
                return Err(arity_err(name, args.len(), "2 or more"));
            }
            let mut out = String::new();
            for a in &args {
                out.push_str(&a.to_xpath_string(doc));
            }
            Ok(Value::String(out))
        }
        "starts-with" => {
            need(&args, name, 2)?;
            let a = args[0].to_xpath_string(doc);
            let b = args[1].to_xpath_string(doc);
            Ok(Value::Boolean(a.starts_with(&b)))
        }
        "contains" => {
            need(&args, name, 2)?;
            let a = args[0].to_xpath_string(doc);
            let b = args[1].to_xpath_string(doc);
            Ok(Value::Boolean(a.contains(&b)))
        }
        "substring-before" => {
            need(&args, name, 2)?;
            let a = args[0].to_xpath_string(doc);
            let b = args[1].to_xpath_string(doc);
            Ok(Value::String(a.find(&b).map(|i| a[..i].to_string()).unwrap_or_default()))
        }
        "substring-after" => {
            need(&args, name, 2)?;
            let a = args[0].to_xpath_string(doc);
            let b = args[1].to_xpath_string(doc);
            Ok(Value::String(a.find(&b).map(|i| a[i + b.len()..].to_string()).unwrap_or_default()))
        }
        "substring" => {
            if args.len() != 2 && args.len() != 3 {
                return Err(arity_err(name, args.len(), "2 or 3"));
            }
            let s = args[0].to_xpath_string(doc);
            let start = xpath_round(args[1].to_number(doc));
            let end: f64 = match args.get(2) {
                Some(len) => start + xpath_round(len.to_number(doc)),
                None => f64::INFINITY,
            };
            // 1-based character positions p with round(start) ≤ p < end.
            let out: String = s
                .chars()
                .enumerate()
                .filter(|(i, _)| {
                    let p = (*i + 1) as f64;
                    p >= start && p < end
                })
                .map(|(_, c)| c)
                .collect();
            Ok(Value::String(out))
        }
        "string-length" => {
            if args.len() > 1 {
                return Err(arity_err(name, args.len(), "0 or 1"));
            }
            let s = match args.into_iter().next() {
                None => doc.string_value(ctx.node).to_string(),
                Some(v) => v.to_xpath_string(doc),
            };
            Ok(Value::Number(s.chars().count() as f64))
        }
        "normalize-space" => {
            if args.len() > 1 {
                return Err(arity_err(name, args.len(), "0 or 1"));
            }
            let s = match args.into_iter().next() {
                None => doc.string_value(ctx.node).to_string(),
                Some(v) => v.to_xpath_string(doc),
            };
            Ok(Value::String(s.split_whitespace().collect::<Vec<_>>().join(" ")))
        }
        "translate" => {
            need(&args, name, 3)?;
            let s = args[0].to_xpath_string(doc);
            let from: Vec<char> = args[1].to_xpath_string(doc).chars().collect();
            let to: Vec<char> = args[2].to_xpath_string(doc).chars().collect();
            let out: String = s
                .chars()
                .filter_map(|c| match from.iter().position(|&f| f == c) {
                    Some(i) => to.get(i).copied(),
                    None => Some(c),
                })
                .collect();
            Ok(Value::String(out))
        }
        // ----- boolean functions -----
        "boolean" => {
            need(&args, name, 1)?;
            Ok(Value::Boolean(args[0].to_boolean()))
        }
        "not" => {
            need(&args, name, 1)?;
            Ok(Value::Boolean(!args[0].to_boolean()))
        }
        "true" => {
            need(&args, name, 0)?;
            Ok(Value::Boolean(true))
        }
        "false" => {
            need(&args, name, 0)?;
            Ok(Value::Boolean(false))
        }
        "lang" => {
            need(&args, name, 1)?;
            let want = args[0].to_xpath_string(doc).to_ascii_lowercase();
            let have = doc.lang(ctx.node).map(str::to_ascii_lowercase);
            Ok(Value::Boolean(match have {
                None => false,
                Some(h) => {
                    h == want
                        || (h.starts_with(&want) && h.as_bytes().get(want.len()) == Some(&b'-'))
                }
            }))
        }
        // ----- number functions -----
        "number" => {
            if args.len() > 1 {
                return Err(arity_err(name, args.len(), "0 or 1"));
            }
            match args.into_iter().next() {
                None => Ok(Value::Number(str_to_number(doc.string_value(ctx.node)))),
                Some(v) => Ok(Value::Number(v.to_number(doc))),
            }
        }
        "floor" => {
            need(&args, name, 1)?;
            Ok(Value::Number(args[0].to_number(doc).floor()))
        }
        "ceiling" => {
            need(&args, name, 1)?;
            Ok(Value::Number(args[0].to_number(doc).ceil()))
        }
        "round" => {
            need(&args, name, 1)?;
            Ok(Value::Number(xpath_round(args[0].to_number(doc))))
        }
        _ => Err(EvalError::UnknownFunction(name.to_string())),
    }
}

/// Helper for `Value::Number(...)` formatting consistency in tests.
pub fn format_number(v: f64) -> String {
    number_to_string(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_xml::generate::doc_figure8;
    use xpath_xml::Document;

    fn call(doc: &Document, name: &str, args: Vec<Value>) -> Value {
        let ctx = Context::of(doc.root());
        apply(doc, name, args, &ctx).unwrap_or_else(|e| panic!("{name}: {e}"))
    }

    fn s(v: &str) -> Value {
        Value::String(v.into())
    }

    fn n(v: f64) -> Value {
        Value::Number(v)
    }

    #[test]
    fn position_and_last() {
        let d = doc_figure8();
        let ctx = Context::new(d.root(), 3, 7);
        assert_eq!(apply(&d, "position", vec![], &ctx).unwrap(), n(3.0));
        assert_eq!(apply(&d, "last", vec![], &ctx).unwrap(), n(7.0));
    }

    #[test]
    fn count_and_sum() {
        let d = doc_figure8();
        let set: Vec<_> = [d.element_by_id("14").unwrap(), d.element_by_id("24").unwrap()].to_vec();
        assert_eq!(call(&d, "count", vec![Value::NodeSet(set.clone().into())]), n(2.0));
        assert_eq!(call(&d, "sum", vec![Value::NodeSet(set.into())]), n(200.0));
        assert!(apply(&d, "count", vec![n(1.0)], &Context::of(d.root())).is_err());
    }

    #[test]
    fn id_function_both_signatures() {
        let d = doc_figure8();
        // id from string.
        let v = call(&d, "id", vec![s("12 24")]);
        assert_eq!(
            v,
            Value::NodeSet(
                vec![d.element_by_id("12").unwrap(), d.element_by_id("24").unwrap()].into()
            )
        );
        // id from node set: strval(x23) = "13 14" → elements 13 and 14.
        let x23 = d.element_by_id("23").unwrap();
        let v = call(&d, "id", vec![Value::NodeSet(vec![x23].into())]);
        assert_eq!(
            v,
            Value::NodeSet(
                vec![d.element_by_id("13").unwrap(), d.element_by_id("14").unwrap()].into()
            )
        );
    }

    #[test]
    fn string_functions() {
        let d = doc_figure8();
        assert_eq!(call(&d, "concat", vec![s("a"), s("b"), n(3.0)]), s("ab3"));
        assert_eq!(call(&d, "starts-with", vec![s("hello"), s("he")]), Value::Boolean(true));
        assert_eq!(call(&d, "contains", vec![s("hello"), s("ell")]), Value::Boolean(true));
        assert_eq!(call(&d, "substring-before", vec![s("1999/04/01"), s("/")]), s("1999"));
        assert_eq!(call(&d, "substring-after", vec![s("1999/04/01"), s("/")]), s("04/01"));
        assert_eq!(call(&d, "string-length", vec![s("héllo")]), n(5.0));
        assert_eq!(call(&d, "normalize-space", vec![s("  a  b \t c ")]), s("a b c"));
        assert_eq!(call(&d, "translate", vec![s("bar"), s("abc"), s("ABC")]), s("BAr"));
        assert_eq!(call(&d, "translate", vec![s("--aaa--"), s("abc-"), s("ABC")]), s("AAA"));
    }

    #[test]
    fn substring_spec_examples() {
        let d = doc_figure8();
        // The W3C examples.
        assert_eq!(call(&d, "substring", vec![s("12345"), n(2.0), n(3.0)]), s("234"));
        assert_eq!(call(&d, "substring", vec![s("12345"), n(2.0)]), s("2345"));
        assert_eq!(call(&d, "substring", vec![s("12345"), n(1.5), n(2.6)]), s("234"));
        assert_eq!(call(&d, "substring", vec![s("12345"), n(0.0), n(3.0)]), s("12"));
        assert_eq!(call(&d, "substring", vec![s("12345"), n(f64::NAN), n(3.0)]), s(""));
        assert_eq!(call(&d, "substring", vec![s("12345"), n(1.0), n(f64::NAN)]), s(""));
        assert_eq!(call(&d, "substring", vec![s("12345"), n(-42.0), n(f64::INFINITY)]), s("12345"));
        assert_eq!(
            call(&d, "substring", vec![s("12345"), n(f64::NEG_INFINITY), n(f64::INFINITY)]),
            s("")
        );
    }

    #[test]
    fn boolean_functions() {
        let d = doc_figure8();
        assert_eq!(call(&d, "boolean", vec![n(0.0)]), Value::Boolean(false));
        assert_eq!(call(&d, "not", vec![Value::Boolean(false)]), Value::Boolean(true));
        assert_eq!(call(&d, "true", vec![]), Value::Boolean(true));
        assert_eq!(call(&d, "false", vec![]), Value::Boolean(false));
    }

    #[test]
    fn number_functions() {
        let d = doc_figure8();
        assert_eq!(call(&d, "number", vec![s(" 12 ")]), n(12.0));
        assert_eq!(call(&d, "floor", vec![n(2.6)]), n(2.0));
        assert_eq!(call(&d, "ceiling", vec![n(2.2)]), n(3.0));
        assert_eq!(call(&d, "round", vec![n(2.5)]), n(3.0));
        assert_eq!(call(&d, "round", vec![n(-1.5)]), n(-1.0));
        assert_eq!(call(&d, "floor", vec![s("x")]).to_string(), "NaN");
    }

    #[test]
    fn name_functions() {
        let d = doc_figure8();
        let b11 = d.element_by_id("11").unwrap();
        let ctx = Context::of(b11);
        assert_eq!(apply(&d, "name", vec![], &ctx).unwrap(), s("b"));
        assert_eq!(apply(&d, "local-name", vec![], &ctx).unwrap(), s("b"));
        assert_eq!(apply(&d, "name", vec![Value::NodeSet(vec![].into())], &ctx).unwrap(), s(""));
        let d2 = Document::parse_str("<pre:x/>").unwrap();
        let x = d2.document_element().unwrap();
        let ctx2 = Context::of(x);
        assert_eq!(apply(&d2, "name", vec![], &ctx2).unwrap(), s("pre:x"));
        assert_eq!(apply(&d2, "local-name", vec![], &ctx2).unwrap(), s("x"));
    }

    #[test]
    fn lang_function() {
        let d = Document::parse_str(r#"<a xml:lang="en"><b/><c xml:lang="en-US"><d/></c></a>"#)
            .unwrap();
        let a = d.document_element().unwrap();
        let b = d.content_children(a).next().unwrap();
        let ctx = Context::of(b);
        assert_eq!(apply(&d, "lang", vec![s("en")], &ctx).unwrap(), Value::Boolean(true));
        assert_eq!(apply(&d, "lang", vec![s("EN")], &ctx).unwrap(), Value::Boolean(true));
        assert_eq!(apply(&d, "lang", vec![s("de")], &ctx).unwrap(), Value::Boolean(false));
        let c = d.content_children(a).nth(1).unwrap();
        let inner = d.content_children(c).next().unwrap();
        let ctx = Context::of(inner);
        assert_eq!(apply(&d, "lang", vec![s("en")], &ctx).unwrap(), Value::Boolean(true));
        assert_eq!(apply(&d, "lang", vec![s("en-us")], &ctx).unwrap(), Value::Boolean(true));
        assert_eq!(apply(&d, "lang", vec![s("us")], &ctx).unwrap(), Value::Boolean(false));
    }

    #[test]
    fn zero_arg_context_forms() {
        let d = doc_figure8();
        let x14 = d.element_by_id("14").unwrap();
        let ctx = Context::of(x14);
        assert_eq!(apply(&d, "string", vec![], &ctx).unwrap(), s("100"));
        assert_eq!(apply(&d, "number", vec![], &ctx).unwrap(), n(100.0));
        assert_eq!(apply(&d, "string-length", vec![], &ctx).unwrap(), n(3.0));
        assert_eq!(apply(&d, "normalize-space", vec![], &ctx).unwrap(), s("100"));
    }

    #[test]
    fn unknown_function_and_arity() {
        let d = doc_figure8();
        let ctx = Context::of(d.root());
        assert!(matches!(
            apply(&d, "frobnicate", vec![], &ctx),
            Err(EvalError::UnknownFunction(_))
        ));
        assert!(apply(&d, "concat", vec![s("a")], &ctx).is_err());
        assert!(apply(&d, "translate", vec![s("a")], &ctx).is_err());
        assert!(apply(&d, "position", vec![n(1.0)], &ctx).is_err());
    }

    #[test]
    fn xpath_round_edges() {
        assert!(xpath_round(f64::NAN).is_nan());
        assert_eq!(xpath_round(f64::INFINITY), f64::INFINITY);
        assert_eq!(xpath_round(0.5), 1.0);
        assert_eq!(xpath_round(-0.5), 0.0);
        assert_eq!(xpath_round(-1.5), -1.0);
        assert_eq!(xpath_round(2.4), 2.0);
    }
}
