//! **Core XPath** (paper §10.1): the clean logical core of XPath, evaluated
//! in `O(|D|·|Q|)` time (Theorem 10.5).
//!
//! Queries are compiled to the algebra over `∩`, `∪`, `−`, the axis
//! functions `χ`, and the operation
//! `dom/root(S) = dom if root ∈ S else ∅`, with semantics `S→` (forward,
//! for the query spine), `S←` (backward, for predicate paths) and `E1`
//! (boolean connectives on node sets) of Definition 10.2.
//!
//! The same compiled representation also serves **XPatterns** (§10.2):
//! Core XPath extended with
//! * the `id` axis (`π1/id(π2)/π3 ≡ π1/π2/id/π3`, Lemma 10.6), evaluated in
//!   linear time via the `ref` relation (Theorem 10.7);
//! * `id(c)` path heads;
//! * the `=s` string-comparison feature of Table VI, realized as a
//!   precomputed unary predicate `{x | strval(x) = s}`.
//!
//! [`compile`] accepts the pure Core XPath fragment;
//! [`compile_xpatterns`] additionally accepts the XPatterns features.

use xpath_syntax::{Axis, BinaryOp, Expr, LocationPath, NodeTest, PathStart};
use xpath_xml::{Document, NodeId};

use crate::context::{EvalBudget, EvalError, EvalResult};
use crate::node_test;
use crate::nodeset::NodeSet;
use crate::value::str_to_number;

/// A compiled Core XPath / XPatterns query.
#[derive(Clone, Debug, PartialEq)]
pub struct CoreQuery {
    /// The query spine.
    pub path: CorePath,
}

/// Where a compiled path starts.
#[derive(Clone, Debug, PartialEq)]
pub enum CoreStart {
    /// Relative: the input context nodes.
    Context,
    /// Absolute: the document root.
    Root,
    /// `id('c')/…` — XPatterns only ("id(c) may only occur at the beginning
    /// of a path", §10.2).
    Ids(String),
}

/// A compiled location path.
#[derive(Clone, Debug, PartialEq)]
pub struct CorePath {
    /// Start point.
    pub start: CoreStart,
    /// Steps in order.
    pub steps: Vec<CoreStep>,
    /// Optional `=s` restriction on the path's result nodes (XPatterns).
    pub eq: Option<EqTest>,
}

/// One compiled step.
#[derive(Clone, Debug, PartialEq)]
pub struct CoreStep {
    /// The axis, possibly [`Axis::Id`] after the Lemma 10.6 rewriting.
    pub axis: Axis,
    /// The node test.
    pub test: NodeTest,
    /// The predicates (each with ∃-semantics, `E1`).
    pub preds: Vec<CorePred>,
}

/// A compiled predicate (Definition 10.2 `pred`).
#[derive(Clone, Debug, PartialEq)]
pub enum CorePred {
    /// `pred and pred`
    And(Box<CorePred>, Box<CorePred>),
    /// `pred or pred`
    Or(Box<CorePred>, Box<CorePred>),
    /// `not(pred)`
    Not(Box<CorePred>),
    /// A location path with ∃-semantics (optionally `= s`-restricted).
    Path(CorePath),
}

/// The `=s` comparison of Table VI: string or numeric matching against the
/// node's string value.
#[derive(Clone, Debug, PartialEq)]
pub enum EqTest {
    /// `π = 'literal'` — string-value equality.
    Str(String),
    /// `π = number` — numeric equality of `to_number(strval)`.
    Num(f64),
}

/// Which language the compiler accepts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CoreDialect {
    /// Pure Core XPath (Definition 10.2).
    CoreXPath,
    /// XPatterns: Core XPath + id axis + `=s` predicates (§10.2).
    XPatterns,
}

/// Compile a (normalized or raw) expression into pure Core XPath, or report
/// why it is outside the fragment.
pub fn compile(e: &Expr) -> EvalResult<CoreQuery> {
    compile_dialect(e, CoreDialect::CoreXPath)
}

/// Compile into XPatterns.
pub fn compile_xpatterns(e: &Expr) -> EvalResult<CoreQuery> {
    compile_dialect(e, CoreDialect::XPatterns)
}

/// Compile with an explicit dialect.
pub fn compile_dialect(e: &Expr, dialect: CoreDialect) -> EvalResult<CoreQuery> {
    match e {
        Expr::Path(p) => Ok(CoreQuery { path: compile_path(p, dialect)? }),
        // A bare `id(...)` call is a step-less path in XPatterns.
        Expr::Call { name, .. } if name == "id" && dialect == CoreDialect::XPatterns => {
            let p = LocationPath { start: PathStart::Expr(Box::new(e.clone())), steps: Vec::new() };
            Ok(CoreQuery { path: compile_path(&p, dialect)? })
        }
        _ => Err(unsupported("query must be a location path")),
    }
}

fn unsupported(msg: &str) -> EvalError {
    EvalError::UnsupportedFragment(msg.to_string())
}

fn compile_path(p: &LocationPath, dialect: CoreDialect) -> EvalResult<CorePath> {
    let (start, mut steps) = match &p.start {
        PathStart::Root => (CoreStart::Root, Vec::new()),
        PathStart::ContextNode => (CoreStart::Context, Vec::new()),
        PathStart::Expr(head) => {
            if dialect != CoreDialect::XPatterns {
                return Err(unsupported("filter-expression path heads are not Core XPath"));
            }
            match &**head {
                Expr::Call { name, args } if name == "id" && args.len() == 1 => {
                    match &args[0] {
                        // id('c')/π.
                        Expr::Literal(s) => (CoreStart::Ids(s.clone()), Vec::new()),
                        // id(π2)/π3 ≡ π2/id/π3 (Lemma 10.6).
                        Expr::Path(p2) => {
                            let inner = compile_path(p2, dialect)?;
                            if inner.eq.is_some() {
                                return Err(unsupported("=s inside id() argument"));
                            }
                            let mut steps = inner.steps;
                            steps.push(CoreStep {
                                axis: Axis::Id,
                                test: NodeTest::Kind(xpath_syntax::KindTest::Node),
                                preds: Vec::new(),
                            });
                            (
                                match inner.start {
                                    CoreStart::Context => CoreStart::Context,
                                    CoreStart::Root => CoreStart::Root,
                                    ids @ CoreStart::Ids(_) => ids,
                                },
                                steps,
                            )
                        }
                        _ => return Err(unsupported("id() argument must be a literal or path")),
                    }
                }
                _ => return Err(unsupported("only id(...) path heads are in XPatterns")),
            }
        }
    };
    for s in &p.steps {
        let preds =
            s.predicates.iter().map(|e| compile_pred(e, dialect)).collect::<Result<Vec<_>, _>>()?;
        steps.push(CoreStep { axis: s.axis, test: s.test.clone(), preds });
    }
    Ok(CorePath { start, steps, eq: None })
}

fn compile_pred(e: &Expr, dialect: CoreDialect) -> EvalResult<CorePred> {
    match e {
        Expr::Binary { op: BinaryOp::And, left, right } => Ok(CorePred::And(
            Box::new(compile_pred(left, dialect)?),
            Box::new(compile_pred(right, dialect)?),
        )),
        Expr::Binary { op: BinaryOp::Or, left, right } => Ok(CorePred::Or(
            Box::new(compile_pred(left, dialect)?),
            Box::new(compile_pred(right, dialect)?),
        )),
        Expr::Call { name, args } if name == "not" && args.len() == 1 => {
            Ok(CorePred::Not(Box::new(compile_pred(&args[0], dialect)?)))
        }
        // The normalizer wraps node-set predicates as boolean(π).
        Expr::Call { name, args } if name == "boolean" && args.len() == 1 => {
            compile_pred(&args[0], dialect)
        }
        Expr::Path(p) => Ok(CorePred::Path(compile_path(p, dialect)?)),
        // XPatterns `=s`: π = 'literal' / π = number (either side).
        Expr::Binary { op: BinaryOp::Eq, left, right } if dialect == CoreDialect::XPatterns => {
            let (path, scalar) = match (&**left, &**right) {
                (Expr::Path(p), s) => (p, s),
                (s, Expr::Path(p)) => (p, s),
                _ => return Err(unsupported("comparison is not π = scalar")),
            };
            let eq = match scalar {
                Expr::Literal(s) => EqTest::Str(s.clone()),
                Expr::Number(v) => EqTest::Num(*v),
                _ => return Err(unsupported("=s requires a literal or number")),
            };
            let mut cp = compile_path(path, dialect)?;
            if cp.eq.is_some() {
                return Err(unsupported("nested =s"));
            }
            cp.eq = Some(eq);
            Ok(CorePred::Path(cp))
        }
        _ => Err(unsupported("predicate outside Core XPath / XPatterns")),
    }
}

/// Which axis-evaluation technique drives the forward steps. §3: "the
/// actual techniques for evaluating axes in our efficient XPath processing
/// algorithms will be interchangeable" — all three produce identical
/// results (property-tested in `xpath-axes`) within the same `O(|D|)`
/// per-step bound.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AxisBackend {
    /// Cost-based adaptive planner ([`xpath_axes::cost`]): per axis
    /// application, run the cheapest of the per-node loop, the sparse
    /// staircase and the dense word-parallel kernel, picked from input
    /// density × axis shape × document size — the default.
    #[default]
    Adaptive,
    /// Set-at-a-time staircase/word-parallel axes over the
    /// structure-of-arrays index and the hybrid [`NodeSet`]
    /// (`xpath_axes::bulk`), always materializing dense-first.
    Bulk,
    /// Direct per-node set algorithms over the preorder/subtree-interval
    /// encoding.
    Direct,
    /// Algorithm 3.2: the Table I regular expressions over the primitive
    /// relations (the paper's reference formulation).
    Alg32,
    /// Pre/post-plane windows (Grust et al. 2004), built on first use.
    Plane,
    /// Sharded parallel evaluation ([`crate::parallel`]): every `S→`/`S←`
    /// axis pass may split its input over contiguous node-id ranges run
    /// on a scoped thread pool, gated per pass by the cost model's spawn
    /// constants; refused passes run the exact Adaptive path. The payload
    /// is the shard budget (`0` = auto: `GKP_THREADS` or the machine's
    /// parallelism; `1` behaves bit-for-bit like [`AxisBackend::Adaptive`]).
    Parallel(u32),
}

/// The linear-time evaluator for compiled queries (Theorems 10.5 / 10.8).
pub struct CoreXPathEvaluator<'d> {
    doc: &'d Document,
    all: NodeSet,
    backend: AxisBackend,
    /// Resolved shard budget for [`AxisBackend::Parallel`] (1 elsewhere).
    threads: usize,
    /// Cost model driving [`AxisBackend::Adaptive`] kernel picks and the
    /// [`AxisBackend::Parallel`] spawn gate.
    cost: xpath_axes::CostModel,
    /// Tally of adaptive kernel decisions made during evaluations.
    kernels: xpath_axes::KernelCounters,
    /// Lazily-built pre/post plane for [`AxisBackend::Plane`].
    plane: std::sync::OnceLock<xpath_axes::PrePostPlane>,
    /// Optional name index accelerating `T(t)` lookups in `S←`.
    index: Option<xpath_xml::index::NameIndex>,
    /// Optional shared axis-result memo for batched evaluation
    /// ([`crate::batch`]): when present, step expansions, `T(t)` scans,
    /// inverse passes, predicate sets and `=s` scans are served from the
    /// memo on repeat applications. Never changes results — only whether a
    /// pass re-runs.
    memo: Option<std::sync::Arc<crate::batch::AxisMemo>>,
}

impl<'d> CoreXPathEvaluator<'d> {
    /// Create an evaluator over `doc` with the default (adaptive) axis
    /// backend.
    pub fn new(doc: &'d Document) -> Self {
        Self::with_backend(doc, AxisBackend::default())
    }

    /// Create an evaluator with an explicit axis backend (§3
    /// interchangeability; see [`AxisBackend`]).
    pub fn with_backend(doc: &'d Document, backend: AxisBackend) -> Self {
        let threads = match backend {
            AxisBackend::Parallel(t) => crate::parallel::resolve_threads(t),
            _ => 1,
        };
        CoreXPathEvaluator {
            doc,
            all: NodeSet::full(doc.len() as u32),
            backend,
            threads,
            cost: *xpath_axes::CostModel::global(),
            kernels: xpath_axes::KernelCounters::new(),
            plane: std::sync::OnceLock::new(),
            index: None,
            memo: None,
        }
    }

    /// Override the adaptive planner's cost model (tests, calibration).
    pub fn with_cost_model(mut self, model: xpath_axes::CostModel) -> Self {
        self.cost = model;
        self
    }

    /// Attach a shared axis-result memo ([`crate::batch::AxisMemo`]):
    /// repeat `(axis, node-test, input-fingerprint)` applications — and
    /// the document-global `T(t)`, predicate and `=s` sets — are then
    /// served from the memo instead of re-running their passes. This is
    /// how [`crate::batch::QuerySet`] amortizes one document traversal
    /// over a whole batch of queries; results are unchanged.
    pub fn with_memo(mut self, memo: std::sync::Arc<crate::batch::AxisMemo>) -> Self {
        self.memo = Some(memo);
        self
    }

    /// The adaptive kernel decisions recorded so far on this evaluator
    /// (all zero under the non-adaptive backends).
    pub fn kernel_counts(&self) -> xpath_axes::KernelCounts {
        self.kernels.snapshot()
    }

    /// Build a [`NameIndex`](xpath_xml::index::NameIndex) (one `O(|D|)`
    /// pass) so every `T(t)` lookup of backward evaluation (`S←`) becomes
    /// `O(1)` instead of an `O(|D|)` scan. Same results, same asymptotic
    /// bounds, smaller constants when a query has many predicate steps or
    /// the evaluator is reused across queries.
    pub fn with_name_index(mut self) -> Self {
        self.index = Some(xpath_xml::index::NameIndex::new(self.doc));
        self
    }

    /// `T(t)` relative to an axis, through the name index when present
    /// and the batch memo when attached (the scan is document-global, so
    /// one memo entry serves every query in a batch using the same test).
    fn t_set(&self, axis: Axis, test: &NodeTest) -> NodeSet {
        let compute = || {
            NodeSet::from_sorted(match &self.index {
                Some(ix) => node_test::matching_set_indexed(self.doc, ix, axis, test),
                None => node_test::matching_set(self.doc, axis, test),
            })
        };
        match &self.memo {
            Some(m) => m.t_set(axis, test, &self.kernels, compute),
            None => compute(),
        }
    }

    /// Evaluate a compiled query with semantics `S→[[π]](N0)`.
    pub fn evaluate(&self, q: &CoreQuery, context_nodes: &[NodeId]) -> NodeSet {
        self.s_forward(&q.path, context_nodes)
    }

    /// [`CoreXPathEvaluator::evaluate`] under an [`EvalBudget`]: the
    /// budget is polled before every axis pass (forward expansions,
    /// inverse passes, predicate sets) — the paper's per-pass `O(|D|)`
    /// unit is the cancellation granularity, so a trip costs at most one
    /// more pass, never whole-query time. An unlimited budget takes the
    /// exact infallible path.
    pub fn try_evaluate(
        &self,
        q: &CoreQuery,
        context_nodes: &[NodeId],
        budget: &EvalBudget,
    ) -> EvalResult<NodeSet> {
        if budget.is_unlimited() {
            return Ok(self.evaluate(q, context_nodes));
        }
        let p = &q.path;
        let mut n = self.start_set(&p.start, context_nodes);
        for step in &p.steps {
            budget.check()?;
            n = self.try_advance_step(step, &n, budget)?;
        }
        budget.check()?;
        Ok(self.finish_path(p, n))
    }

    /// Compile and evaluate a query string.
    pub fn evaluate_str(
        &self,
        query: &str,
        dialect: CoreDialect,
        context_nodes: &[NodeId],
    ) -> EvalResult<NodeSet> {
        let e = xpath_syntax::parse_normalized(query)
            .map_err(|err| EvalError::Parse(err.to_string()))?;
        let q = compile_dialect(&e, dialect)?;
        Ok(self.evaluate(&q, context_nodes))
    }

    fn axis_forward(&self, axis: Axis, set: &NodeSet) -> NodeSet {
        match axis {
            Axis::Id => NodeSet::from_sorted(xpath_axes::id::id_set_ref(self.doc, &set.to_vec())),
            _ => match self.backend {
                AxisBackend::Adaptive => {
                    let (out, kernel) =
                        xpath_axes::bulk::axis_set_planned(self.doc, axis, set, &self.cost);
                    self.kernels.record(kernel);
                    out
                }
                AxisBackend::Parallel(_) => crate::parallel::axis_set_sharded(
                    self.doc,
                    axis,
                    set,
                    self.threads,
                    &self.cost,
                    Some(&self.kernels),
                ),
                AxisBackend::Bulk => xpath_axes::bulk::axis_set(self.doc, axis, set),
                AxisBackend::Direct => {
                    NodeSet::from_sorted(xpath_axes::eval_axis(self.doc, axis, &set.to_vec()))
                }
                AxisBackend::Alg32 => {
                    NodeSet::from_sorted(xpath_axes::eval_axis_alg32(self.doc, axis, &set.to_vec()))
                }
                AxisBackend::Plane => {
                    NodeSet::from_sorted(
                        self.plane
                            .get_or_init(|| xpath_axes::PrePostPlane::new(self.doc))
                            .eval_axis(self.doc, axis, &set.to_vec()),
                    )
                }
            },
        }
    }

    /// Backward steps (`S←`, §10.1) go through the inverse-axis functions:
    /// Lemma 10.1 reduces `χ⁻¹` to the forward axes, so backend
    /// interchangeability is already exercised above. The bulk backend has
    /// its own set-at-a-time inverse; the others share the per-node one.
    fn axis_backward(&self, axis: Axis, set: &NodeSet) -> NodeSet {
        match self.backend {
            AxisBackend::Adaptive => {
                let (out, kernel) =
                    xpath_axes::bulk::inverse_axis_set_planned(self.doc, axis, set, &self.cost);
                self.kernels.record(kernel);
                out
            }
            AxisBackend::Parallel(_) => crate::parallel::inverse_axis_set_sharded(
                self.doc,
                axis,
                set,
                self.threads,
                &self.cost,
                Some(&self.kernels),
            ),
            AxisBackend::Bulk => xpath_axes::bulk::inverse_axis_set(self.doc, axis, set),
            _ => NodeSet::from_sorted(xpath_axes::inverse_axis_set(self.doc, axis, &set.to_vec())),
        }
    }

    pub(crate) fn start_set(&self, start: &CoreStart, context_nodes: &[NodeId]) -> NodeSet {
        match start {
            CoreStart::Context => {
                // Copy through the recycling pool: `S→` runs once per
                // evaluation, and a plain `to_vec` here would be the one
                // heap allocation left on the steady-state path.
                let mut v = xpath_xml::pool::take_ids();
                v.extend_from_slice(context_nodes);
                NodeSet::from_unsorted(v)
            }
            CoreStart::Root => NodeSet::singleton(self.doc.root()),
            CoreStart::Ids(s) => NodeSet::from_sorted(self.doc.deref_ids(s)),
        }
    }

    /// `S→` (Definition 10.2): forward evaluation of the query spine.
    fn s_forward(&self, p: &CorePath, context_nodes: &[NodeId]) -> NodeSet {
        let mut n = self.start_set(&p.start, context_nodes);
        for step in &p.steps {
            n = self.advance_step(step, &n);
        }
        self.finish_path(p, n)
    }

    /// Advance one spine step: `χ(N) ∩ T(t) ∩ E1[[e1]] ∩ …` — the
    /// lock-step unit the batched evaluator ([`crate::batch`]) drives one
    /// step at a time across a whole batch of spines.
    pub(crate) fn advance_step(&self, step: &CoreStep, n: &NodeSet) -> NodeSet {
        let mut next = self.expand_axis_test(step.axis, &step.test, n);
        // π[e] ↦ S→[[π]] ∩ E1[[e]].
        for pred in &step.preds {
            next = next.intersect(&self.pred_set(pred));
        }
        next
    }

    /// [`CoreXPathEvaluator::advance_step`] with the budget polled before
    /// every predicate pass.
    pub(crate) fn try_advance_step(
        &self,
        step: &CoreStep,
        n: &NodeSet,
        budget: &EvalBudget,
    ) -> EvalResult<NodeSet> {
        let mut next = self.expand_axis_test(step.axis, &step.test, n);
        for pred in &step.preds {
            budget.check()?;
            next = next.intersect(&self.try_pred_set(pred, budget)?);
        }
        Ok(next)
    }

    /// Budgeted [`CoreXPathEvaluator::pred_set`]. With a batch memo
    /// attached, the memoized (infallible) computation runs whole — the
    /// outer per-predicate check still bounds cancellation latency by one
    /// predicate pass.
    pub(crate) fn try_pred_set(&self, pred: &CorePred, budget: &EvalBudget) -> EvalResult<NodeSet> {
        budget.check()?;
        match &self.memo {
            Some(m) => Ok(m.pred(pred, &self.kernels, || self.e1(pred))),
            None => match pred {
                CorePred::And(l, r) => {
                    Ok(self.try_pred_set(l, budget)?.intersect(&self.try_pred_set(r, budget)?))
                }
                CorePred::Or(l, r) => {
                    Ok(self.try_pred_set(l, budget)?.union(&self.try_pred_set(r, budget)?))
                }
                CorePred::Not(inner) => {
                    Ok(self.try_pred_set(inner, budget)?.complement(self.doc.len() as u32))
                }
                CorePred::Path(p) => self.try_s_backward(p, budget),
            },
        }
    }

    /// Budgeted [`CoreXPathEvaluator::s_backward`]: polls before each
    /// step's `T(t)`/inverse pass.
    fn try_s_backward(&self, p: &CorePath, budget: &EvalBudget) -> EvalResult<NodeSet> {
        let mut acc: Option<NodeSet> = p.eq.as_ref().map(|eq| self.eq_set(eq));
        for step in p.steps.iter().rev() {
            budget.check()?;
            let mut base = self.t_set(step.axis, &step.test);
            for pred in &step.preds {
                base = base.intersect(&self.try_pred_set(pred, budget)?);
            }
            if let Some(a) = acc {
                base = base.intersect(&a);
            }
            acc = Some(self.inverse_expand(step.axis, &base));
        }
        let acc = acc.unwrap_or_else(|| self.all.clone());
        Ok(match &p.start {
            CoreStart::Context => acc,
            CoreStart::Root => {
                if acc.contains(self.doc.root()) {
                    self.all.clone()
                } else {
                    NodeSet::new()
                }
            }
            CoreStart::Ids(s) => {
                if acc.intersect(&NodeSet::from_sorted(self.doc.deref_ids(s))).is_empty() {
                    NodeSet::new()
                } else {
                    self.all.clone()
                }
            }
        })
    }

    /// Witness-only predicate check for one candidate node: does `pred`
    /// hold at `x`?
    ///
    /// Where the set-at-a-time `E1`/`S←` route computes the
    /// document-global predicate set (one `T(t)` + inverse pass per
    /// step), this walks the predicate path **forward from `{x}` alone**
    /// — `x ∈ S←[[π]] ⇔ S→[[π]]({x}) ≠ ∅` (Definition 10.2) — so a
    /// quantified predicate like `[following::c]` touches only the
    /// frontier reachable from `x` and stops at the first witness (or the
    /// first empty frontier). The cursor layer uses this per candidate,
    /// short-circuiting `and`/`or`/`not` along the way; the materialized
    /// evaluators keep the set-at-a-time route, which stays the source of
    /// truth for differential testing.
    pub(crate) fn pred_holds(
        &self,
        pred: &CorePred,
        x: NodeId,
        budget: &EvalBudget,
    ) -> EvalResult<bool> {
        match pred {
            CorePred::And(l, r) => {
                Ok(self.pred_holds(l, x, budget)? && self.pred_holds(r, x, budget)?)
            }
            CorePred::Or(l, r) => {
                Ok(self.pred_holds(l, x, budget)? || self.pred_holds(r, x, budget)?)
            }
            CorePred::Not(inner) => Ok(!self.pred_holds(inner, x, budget)?),
            CorePred::Path(p) => self.path_holds_from(p, x, budget),
        }
    }

    /// `S→[[π]]({x}) ≠ ∅` with empty-frontier early exit.
    fn path_holds_from(&self, p: &CorePath, x: NodeId, budget: &EvalBudget) -> EvalResult<bool> {
        let ctx = [x];
        let mut n = self.start_set(&p.start, &ctx);
        for step in &p.steps {
            if n.is_empty() {
                return Ok(false);
            }
            budget.check()?;
            n = self.try_advance_step(step, &n, budget)?;
        }
        Ok(!self.finish_path(p, n).is_empty())
    }

    /// Apply a path's trailing `=s` restriction (XPatterns), completing
    /// `S→` after the last step.
    pub(crate) fn finish_path(&self, p: &CorePath, n: NodeSet) -> NodeSet {
        match &p.eq {
            Some(eq) => n.intersect(&self.eq_set(eq)),
            None => n,
        }
    }

    /// `χ(N) ∩ T(t)` — the axis application plus node test of one step,
    /// memoized under `(axis, test, fingerprint(N))` when a batch memo is
    /// attached: identical spine prefixes across a batch collapse to one
    /// pass (equal inputs fingerprint equally, so sharing cascades down
    /// shared prefixes step by step).
    fn expand_axis_test(&self, axis: Axis, test: &NodeTest, n: &NodeSet) -> NodeSet {
        let compute = || {
            let mut next = self.axis_forward(axis, n);
            node_test::filter_set(self.doc, axis, test, &mut next);
            next
        };
        match &self.memo {
            Some(m) => m.step(axis, test, n, &self.kernels, compute),
            None => compute(),
        }
    }

    /// `E1[[pred]]` through the batch memo when attached: predicate sets
    /// are document-global (independent of the context set), so one entry
    /// serves every occurrence of a predicate across the whole batch.
    fn pred_set(&self, pred: &CorePred) -> NodeSet {
        match &self.memo {
            Some(m) => m.pred(pred, &self.kernels, || self.e1(pred)),
            None => self.e1(pred),
        }
    }

    /// `E1` (Definition 10.2): the set of nodes satisfying a predicate.
    fn e1(&self, pred: &CorePred) -> NodeSet {
        match pred {
            CorePred::And(l, r) => self.pred_set(l).intersect(&self.pred_set(r)),
            CorePred::Or(l, r) => self.pred_set(l).union(&self.pred_set(r)),
            CorePred::Not(inner) => self.pred_set(inner).complement(self.doc.len() as u32),
            CorePred::Path(p) => self.s_backward(p),
        }
    }

    /// `S←` (Definition 10.2): the set of context nodes from which the path
    /// matches at least one node.
    fn s_backward(&self, p: &CorePath) -> NodeSet {
        // Start from the `=s` restriction if present, else unrestricted.
        let mut acc: Option<NodeSet> = p.eq.as_ref().map(|eq| self.eq_set(eq));
        for step in p.steps.iter().rev() {
            // base = T(t) ∩ E1[[e1]] ∩ … (∩ S←[[rest]]).
            let mut base = self.t_set(step.axis, &step.test);
            for pred in &step.preds {
                base = base.intersect(&self.pred_set(pred));
            }
            if let Some(a) = acc {
                base = base.intersect(&a);
            }
            acc = Some(self.inverse_expand(step.axis, &base));
        }
        let acc = acc.unwrap_or_else(|| self.all.clone());
        match &p.start {
            CoreStart::Context => acc,
            // S←[[/π]] := dom/root(S←[[π]]).
            CoreStart::Root => {
                if acc.contains(self.doc.root()) {
                    self.all.clone()
                } else {
                    NodeSet::new()
                }
            }
            // id(c)/π matches from anywhere iff some id target survives.
            CoreStart::Ids(s) => {
                if acc.intersect(&NodeSet::from_sorted(self.doc.deref_ids(s))).is_empty() {
                    NodeSet::new()
                } else {
                    self.all.clone()
                }
            }
        }
    }

    /// The set of context nodes from which the compiled query matches at
    /// least one node — `S←[[π]]` (Definition 10.2), exposed for the XSLT
    /// pattern-matching use case: "which nodes does this template pattern
    /// apply to?" in one `O(|D|·|Q|)` pass.
    pub fn matching_contexts(&self, q: &CoreQuery) -> NodeSet {
        self.s_backward(&q.path)
    }

    /// `χ⁻¹(X)` through the batch memo when attached, keyed on
    /// `(axis, fingerprint(X))` like the forward expansions.
    fn inverse_expand(&self, axis: Axis, set: &NodeSet) -> NodeSet {
        match &self.memo {
            Some(m) => m.inverse(axis, set, &self.kernels, || self.axis_backward(axis, set)),
            None => self.axis_backward(axis, set),
        }
    }

    /// The unary predicate `{x | strval(x) = s}` of Table VI (computed by
    /// string search over the document, `O(|D|)`; memoized per batch — the
    /// scan is document-global).
    fn eq_set(&self, eq: &EqTest) -> NodeSet {
        let compute = || match eq {
            EqTest::Str(s) => {
                self.doc.all_nodes().filter(|&n| self.doc.string_value(n) == s.as_str()).collect()
            }
            EqTest::Num(v) => self
                .doc
                .all_nodes()
                .filter(|&n| str_to_number(self.doc.string_value(n)) == *v)
                .collect(),
        };
        match &self.memo {
            Some(m) => m.eq(eq, &self.kernels, compute),
            None => compute(),
        }
    }
}

/// Is the expression in the Core XPath fragment?
pub fn is_core_xpath(e: &Expr) -> bool {
    compile(e).is_ok()
}

/// Is the expression in the XPatterns fragment?
pub fn is_xpatterns(e: &Expr) -> bool {
    compile_xpatterns(e).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;
    use crate::naive::NaiveEvaluator;
    use crate::value::Value;
    use xpath_syntax::parse_normalized;
    use xpath_xml::generate::{doc_bookstore, doc_figure8, doc_flat, doc_idref_chain};

    fn core_eval(doc: &Document, q: &str) -> NodeSet {
        let ev = CoreXPathEvaluator::new(doc);
        ev.evaluate_str(q, CoreDialect::XPatterns, &[doc.root()])
            .unwrap_or_else(|e| panic!("{q}: {e}"))
    }

    fn naive_eval(doc: &Document, q: &str) -> NodeSet {
        let e = parse_normalized(q).unwrap();
        match NaiveEvaluator::new(doc).evaluate(&e, Context::of(doc.root())).unwrap() {
            Value::NodeSet(s) => s,
            other => panic!("expected node set, got {other:?}"),
        }
    }

    #[test]
    fn example_10_3_query() {
        // /descendant::a/child::b[child::c/child::d or not(following::*)].
        let d = doc_bookstore();
        let q = "/descendant::section/child::book[child::author/child::last or not(following::*)]";
        assert_eq!(core_eval(&d, q), naive_eval(&d, q));
    }

    #[test]
    fn agrees_with_naive_on_core_corpus() {
        let docs = [doc_flat(5), doc_figure8(), doc_bookstore()];
        let queries = [
            "//a/b",
            "/descendant::a/child::b",
            "//b[child::c]",
            "//b[not(child::c)]",
            "//*[child::c and child::d]",
            "//*[child::c or following-sibling::b]",
            "//d/ancestor::b",
            "//c/following::d",
            "//b[descendant::d]/preceding-sibling::*",
            "//*[not(ancestor::b)]/c",
            "//book[author]",
            "//section[book[author[last]]]",
            "//*[attribute::id]",
            "child::a/child::b",
            "//*[self::b]",
            "//b[following::*[child::d]]",
        ];
        for d in &docs {
            for q in queries {
                assert_eq!(core_eval(d, q), naive_eval(d, q), "query {q} on {d:?}");
            }
        }
    }

    #[test]
    fn absolute_predicate_paths() {
        let d = doc_figure8();
        // [/descendant::zzz] is false everywhere; [//c] true everywhere.
        assert_eq!(core_eval(&d, "//b[/descendant::zzz]"), naive_eval(&d, "//b[/descendant::zzz]"));
        assert_eq!(core_eval(&d, "//b[//c]"), naive_eval(&d, "//b[//c]"));
    }

    #[test]
    fn xpatterns_eq_feature() {
        let d = doc_figure8();
        for q in [
            "//*[child::* = '100']",
            "//*[self::* = 100]",
            "//b[child::d = '100']/child::c",
            "//*[descendant::d = 100 and child::c]",
        ] {
            assert_eq!(core_eval(&d, q), naive_eval(&d, q), "{q}");
        }
    }

    #[test]
    fn xpatterns_id_head() {
        let d = doc_figure8();
        for q in ["id('11')/child::c", "id('11 21')/child::d"] {
            assert_eq!(core_eval(&d, q), naive_eval(&d, q), "{q}");
        }
    }

    #[test]
    fn xpatterns_id_axis_lemma_10_6() {
        // id(π)/π3 ≡ π/id/π3 on a document where the ref encoding is exact.
        let d = doc_idref_chain(6);
        // "first item" expressed without position(): no preceding sibling.
        let q = "id(//item[not(preceding-sibling::*)])/self::*";
        let got = core_eval(&d, q);
        let want = naive_eval(&d, q);
        assert_eq!(got, want);
        assert_eq!(got.len(), 2, "item 0 references items 1 and 2");
    }

    #[test]
    fn fragment_rejections() {
        let core = |q: &str| compile(&parse_normalized(q).unwrap());
        // Arithmetic, position(), count() are not Core XPath.
        assert!(core("//a[position() = 2]").is_err());
        assert!(core("//a[count(b) > 1]").is_err());
        assert!(core("count(//a)").is_err());
        assert!(core("//a[b = 'x']").is_err(), "=s is XPatterns, not Core XPath");
        assert!(core("id('x')/a").is_err(), "id heads are XPatterns, not Core XPath");
        // But they are fine structurally in XPatterns where applicable.
        assert!(compile_xpatterns(&parse_normalized("//a[b = 'x']").unwrap()).is_ok());
        assert!(compile_xpatterns(&parse_normalized("id('x')/a").unwrap()).is_ok());
        assert!(compile_xpatterns(&parse_normalized("//a[position() = 2]").unwrap()).is_err());
        // Plain Core XPath accepts the full axis set and boolean closure.
        assert!(core("//a[not(b) and (c or descendant::d)]").is_ok());
    }

    #[test]
    fn name_index_is_transparent() {
        // The indexed T(t) lookup changes nothing observable.
        let docs = [doc_flat(5), doc_figure8(), doc_bookstore()];
        let queries = [
            "//b[child::c]",
            "//*[not(descendant::d)]",
            "//b[following::*[child::d]]",
            "//*[attribute::id]",
            "//section[book[author[last]]]",
        ];
        for d in &docs {
            let plain = CoreXPathEvaluator::new(d);
            let indexed = CoreXPathEvaluator::new(d).with_name_index();
            for q in queries {
                let e = parse_normalized(q).unwrap();
                let c = compile(&e).unwrap();
                assert_eq!(
                    indexed.evaluate(&c, &[d.root()]),
                    plain.evaluate(&c, &[d.root()]),
                    "{q}"
                );
            }
        }
    }

    #[test]
    fn axis_backends_agree() {
        // §3 interchangeability at the evaluator level: all three backends
        // produce identical results on a mixed corpus.
        let docs = [doc_flat(5), doc_figure8(), doc_bookstore()];
        let queries = [
            "//a/b",
            "//b[child::c]",
            "//d/ancestor::b",
            "//c/following::d",
            "//b[descendant::d]/preceding-sibling::*",
            "//*[attribute::id]",
        ];
        for d in &docs {
            let direct = CoreXPathEvaluator::with_backend(d, AxisBackend::Direct);
            let alg32 = CoreXPathEvaluator::with_backend(d, AxisBackend::Alg32);
            let plane = CoreXPathEvaluator::with_backend(d, AxisBackend::Plane);
            let bulk = CoreXPathEvaluator::with_backend(d, AxisBackend::Bulk);
            let adaptive = CoreXPathEvaluator::new(d);
            let parallel = CoreXPathEvaluator::with_backend(d, AxisBackend::Parallel(4));
            for q in queries {
                let e = parse_normalized(q).unwrap();
                let c = compile(&e).unwrap();
                let want = direct.evaluate(&c, &[d.root()]);
                assert_eq!(alg32.evaluate(&c, &[d.root()]), want, "alg32 {q}");
                assert_eq!(plane.evaluate(&c, &[d.root()]), want, "plane {q}");
                assert_eq!(bulk.evaluate(&c, &[d.root()]), want, "bulk {q}");
                assert_eq!(adaptive.evaluate(&c, &[d.root()]), want, "adaptive {q}");
                assert_eq!(parallel.evaluate(&c, &[d.root()]), want, "parallel {q}");
            }
            assert!(
                adaptive.kernel_counts().total() > 0,
                "the adaptive backend records its kernel decisions"
            );
        }
    }

    #[test]
    fn parallel_backend_shards_and_matches_adaptive() {
        use xpath_axes::CostModel;
        // Spawn/merge-free model: the gate approves the full budget, so
        // every pass actually shards even on this small document.
        let always_shard =
            CostModel { spawn_ns: 1e-9, merge_word_ns: 1e-9, ..CostModel::CALIBRATED };
        let d = doc_bookstore();
        let adaptive = CoreXPathEvaluator::new(&d);
        let queries =
            ["//a/b", "//b[child::c]", "//d/ancestor::b", "//c/following::d", "//book[author]"];
        for shards in [1u32, 2, 8] {
            let ev = CoreXPathEvaluator::with_backend(&d, AxisBackend::Parallel(shards))
                .with_cost_model(always_shard);
            for q in queries {
                let c = compile(&parse_normalized(q).unwrap()).unwrap();
                assert_eq!(
                    ev.evaluate(&c, &[d.root()]),
                    adaptive.evaluate(&c, &[d.root()]),
                    "{q} at {shards} shards"
                );
            }
            let counts = ev.kernel_counts();
            if shards == 1 {
                assert_eq!(counts.sharded_passes, 0, "1-shard budget never spawns: {counts:?}");
            } else {
                assert!(counts.sharded_passes > 0, "forced model must shard: {counts:?}");
                assert!(counts.total() >= counts.shards_spawned, "{counts:?}");
            }
        }
        // Under the calibrated model the gate refuses on a tiny document:
        // Parallel degrades to the exact Adaptive path.
        let gated = CoreXPathEvaluator::with_backend(&d, AxisBackend::Parallel(8));
        let c = compile(&parse_normalized("//book[author]").unwrap()).unwrap();
        gated.evaluate(&c, &[d.root()]);
        assert_eq!(gated.kernel_counts().sharded_passes, 0);
    }

    #[test]
    fn adaptive_agrees_under_forced_cost_models() {
        // Extreme models force every axis application onto one kernel
        // class; results must not change, only the route taken.
        use xpath_axes::CostModel;
        let sparse = CostModel { dense_word_ns: 1e9, ..CostModel::CALIBRATED };
        let dense = CostModel { dense_word_ns: 1e-9, chain_ns: 1e9, ..CostModel::CALIBRATED };
        let d = doc_bookstore();
        let queries =
            ["//a/b", "//b[child::c]", "//d/ancestor::b", "//c/following::d", "//book[author]"];
        let reference = CoreXPathEvaluator::with_backend(&d, AxisBackend::Direct);
        for model in [sparse, dense] {
            let ev = CoreXPathEvaluator::new(&d).with_cost_model(model);
            for q in queries {
                let c = compile(&parse_normalized(q).unwrap()).unwrap();
                assert_eq!(
                    ev.evaluate(&c, &[d.root()]),
                    reference.evaluate(&c, &[d.root()]),
                    "{q} under {model:?}"
                );
            }
        }
    }

    #[test]
    fn relative_queries() {
        let d = doc_figure8();
        let ev = CoreXPathEvaluator::new(&d);
        let x11 = d.element_by_id("11").unwrap();
        let out = ev.evaluate_str("child::c", CoreDialect::CoreXPath, &[x11]).unwrap();
        assert_eq!(out.len(), 2);
        let out = ev
            .evaluate_str("following-sibling::b/child::d", CoreDialect::CoreXPath, &[x11])
            .unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn linear_scaling_smoke() {
        // Informal Theorem 10.5 check: 4x data → roughly ≤ 8x time
        // (allowing noise), far from the naive blowup.
        use std::time::Instant;
        let q = "//b[not(following::*)]";
        let d1 = doc_flat(4000);
        let d2 = doc_flat(16000);
        let e = parse_normalized(q).unwrap();
        let c1 = compile(&e).unwrap();
        let ev1 = CoreXPathEvaluator::new(&d1);
        let ev2 = CoreXPathEvaluator::new(&d2);
        // Warm up.
        ev1.evaluate(&c1, &[d1.root()]);
        let t1 = Instant::now();
        for _ in 0..10 {
            ev1.evaluate(&c1, &[d1.root()]);
        }
        let t1 = t1.elapsed();
        let t2 = Instant::now();
        for _ in 0..10 {
            ev2.evaluate(&c1, &[d2.root()]);
        }
        let t2 = t2.elapsed();
        assert!(t2 < t1 * 40, "expected near-linear scaling, got {t1:?} → {t2:?}");
    }
}
