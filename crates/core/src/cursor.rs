//! Lazy pull-based evaluation: [`NodeCursor`] and [`QueryCursor`].
//!
//! The materialized evaluators compute the whole answer set before the
//! caller sees a single node. For `exists`/`first`/`take(k)` workloads
//! that wastes the entire tail of the document: the answer is determined
//! by a prefix, and the paper's set-at-a-time passes cannot stop early.
//! This module adds a pull-based layer over the Core XPath algebra that
//! can.
//!
//! # How it works
//!
//! Every forward axis is *preorder-monotone* (outputs never precede
//! inputs in document order), so a spine of forward steps evaluates
//! **block-synchronously** over the id space: the pipeline advances a
//! window `[lo, hi)` of [`CostModel::LAZY_BLOCK`] ids at a time, feeds
//! each step's [`StepStreamer`] the upstream nodes accepted inside the
//! window, and filters that step's own window of raw axis output down to
//! accepted nodes — node test per candidate, then each predicate by the
//! witness equivalence `x ∈ S←[[π]] ⇔ S→[[π]]({x}) ≠ ∅` (Definition
//! 10.2), which short-circuits on the first witness instead of computing
//! the document-global predicate set. The witness walk runs per
//! candidate only when its frontier is structurally bounded; a predicate
//! whose walk could touch Ω(|D|) nodes per candidate (`descendant`,
//! `following`, the sibling axes, …) instead probes a document-global
//! `E1` set computed once per cursor, so a window of candidates never
//! costs more than one set-at-a-time predicate pass. Once every input `< hi` has been
//! fed, outputs `< hi` are final, so a finished window is emitted and
//! never revisited — a caller that stops pulling never pays for the
//! document past its last window.
//!
//! Spines outside the streamable shape (reverse axes, `parent`, `id`,
//! trailing `=s` restrictions, non-path queries) fall back to a
//! *materializing* cursor: the first pull runs the plan's ordinary
//! evaluation under the cursor's [`EvalBudget`] and subsequent pulls
//! serve slices of the finished set. [`CostModel::pick_lazy`] arbitrates
//! between the two routes even for streamable spines — an unbounded
//! drain of a small document is cheaper word-parallel.
//!
//! # Cursor invariants
//!
//! Every [`NodeCursor`] implementation guarantees:
//!
//! 1. **Document order, no duplicates**: emitted ids are strictly
//!    ascending across the cursor's whole lifetime.
//! 2. **Finality**: an emitted block is never amended; the concatenation
//!    of all blocks equals the materialized answer set exactly.
//! 3. **Budget**: the [`EvalBudget`] is polled at least once per block
//!    boundary; a tripped budget surfaces as
//!    [`EvalError::Cancelled`](crate::EvalError::Cancelled) /
//!    [`EvalError::DeadlineExceeded`](crate::EvalError::DeadlineExceeded)
//!    and the cursor stays valid (pull again after clearing the cancel
//!    flag, or drop it — no poisoned state, nothing leaks).
//! 4. **Cheap clone**: cloning forks the iteration state; the clone
//!    continues independently from the same position.

use std::collections::HashMap;
use std::sync::Arc;

use xpath_axes::{CostModel, StepStreamer};
use xpath_xml::{Document, NodeId};

use crate::context::{Context, EvalBudget, EvalResult};
use crate::corexpath::{CorePath, CorePred, CoreStart, CoreStep, CoreXPathEvaluator};
use crate::node_test;
use crate::nodeset::NodeSet;
use crate::plan::Plan;

/// A pull-based node iterator in document order.
///
/// See the [module docs](self) for the invariants every implementation
/// upholds (strict doc order, block finality, budget polling, cheap
/// clone).
pub trait NodeCursor: Clone {
    /// Pull up to `max` more nodes into `out`, returning how many were
    /// added. `Ok(0)` means the cursor is exhausted (and will keep
    /// returning `Ok(0)`); an `Err` reports a tripped budget or an
    /// evaluation error and leaves the cursor re-pollable.
    fn next_block(&mut self, out: &mut NodeSet, max: usize) -> EvalResult<usize>;

    /// Bounds on the number of nodes still to come, `(lower, upper)` with
    /// `upper = None` meaning unknown — same contract as
    /// [`Iterator::size_hint`].
    fn size_hint(&self) -> (usize, Option<usize>);

    /// Pull the single next node in document order.
    fn next(&mut self) -> EvalResult<Option<NodeId>> {
        let mut one = NodeSet::new();
        if self.next_block(&mut one, 1)? == 0 {
            return Ok(None);
        }
        Ok(one.first())
    }
}

/// The cursor behind [`CompiledQuery::select_lazy`](crate::query::CompiledQuery::select_lazy):
/// either a lazy block-synchronous pipeline over a streamable Core XPath
/// spine, or a budgeted materializing fallback (see the
/// [module docs](self) for the dispatch rules).
#[derive(Clone, Debug)]
pub struct QueryCursor<'q, 'd> {
    doc: &'d Document,
    budget: EvalBudget,
    state: State<'q, 'd>,
}

#[derive(Clone, Debug)]
enum State<'q, 'd> {
    /// Lazy block-synchronous pipeline (boxed: the pipeline is much
    /// larger than the other variants).
    Lazy(Box<LazyPipeline<'q, 'd>>),
    /// Materializing fallback, not yet run: the first pull evaluates the
    /// plan under the cursor's budget.
    Pending { plan: &'q Plan, kernels: Arc<xpath_axes::KernelCounters>, ctx: Context },
    /// Materialized: serving slices of the finished answer. `Arc` makes
    /// clones O(1).
    Drained { ids: Arc<Vec<NodeId>>, pos: usize },
}

impl<'q, 'd> QueryCursor<'q, 'd> {
    /// Can `path` run on the lazy pipeline at all? Requires every spine
    /// axis streamable (preorder-monotone) and no trailing `=s`
    /// restriction; any start point works (all three produce a sorted
    /// start set).
    pub(crate) fn spine_is_streamable(path: &CorePath) -> bool {
        path.eq.is_none() && path.steps.iter().all(|s| xpath_axes::is_streamable(s.axis))
    }

    /// Build the lazy pipeline cursor (caller has checked
    /// [`QueryCursor::spine_is_streamable`]).
    pub(crate) fn lazy(
        doc: &'d Document,
        path: &'q CorePath,
        ctx: Context,
        budget: EvalBudget,
    ) -> QueryCursor<'q, 'd> {
        QueryCursor { doc, budget, state: State::Lazy(Box::new(LazyPipeline::new(doc, path, ctx))) }
    }

    /// Build the materializing fallback cursor.
    pub(crate) fn materializing(
        doc: &'d Document,
        plan: &'q Plan,
        kernels: Arc<xpath_axes::KernelCounters>,
        ctx: Context,
        budget: EvalBudget,
    ) -> QueryCursor<'q, 'd> {
        QueryCursor { doc, budget, state: State::Pending { plan, kernels, ctx } }
    }

    /// Is this cursor on the lazy (early-exit) route? Exposed so tests
    /// and `--explain` can assert the dispatch.
    pub fn is_lazy(&self) -> bool {
        matches!(self.state, State::Lazy(_))
    }

    /// Drain the remainder into one set (respecting the budget).
    pub fn collect_set(&mut self) -> EvalResult<NodeSet> {
        let mut out = NodeSet::new();
        while self.next_block(&mut out, usize::MAX)? > 0 {}
        Ok(out.adapt())
    }
}

impl Drop for QueryCursor<'_, '_> {
    fn drop(&mut self) {
        // The drained id vector came off the recycling shelves
        // (`into_vec`); hand it back when this cursor is the last owner
        // so repeated cursor churn stays allocation-free.
        if let State::Drained { ids, .. } = &mut self.state {
            if let Some(v) = Arc::get_mut(ids) {
                xpath_xml::pool::give_ids(std::mem::take(v));
            }
        }
    }
}

impl NodeCursor for QueryCursor<'_, '_> {
    fn next_block(&mut self, out: &mut NodeSet, max: usize) -> EvalResult<usize> {
        if max == 0 {
            return Ok(0);
        }
        match &mut self.state {
            State::Lazy(p) => p.next_block(self.doc, &self.budget, out, max),
            State::Pending { plan, kernels, ctx } => {
                let v = plan.execute_recording_with(self.doc, *ctx, kernels, &self.budget)?;
                let ids = Arc::new(crate::query::into_node_set(v)?.into_vec());
                self.state = State::Drained { ids, pos: 0 };
                self.next_block(out, max)
            }
            State::Drained { ids, pos } => {
                self.budget.check()?;
                let take = max.min(ids.len() - *pos);
                for &x in &ids[*pos..*pos + take] {
                    out.insert(x);
                }
                *pos += take;
                Ok(take)
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.state {
            State::Lazy(p) => p.size_hint(),
            State::Pending { .. } => (0, None),
            State::Drained { ids, pos } => {
                let left = ids.len() - pos;
                (left, Some(left))
            }
        }
    }
}

/// The lazy block-synchronous pipeline: one [`StepStreamer`] per spine
/// step, advanced window-by-window (see the [module docs](self)).
struct LazyPipeline<'q, 'd> {
    doc: &'d Document,
    /// Backs the per-candidate predicate walks ([`CoreXPathEvaluator::pred_holds`]).
    ev: CoreXPathEvaluator<'d>,
    steps: &'q [CoreStep],
    stages: Vec<StepStreamer>,
    /// Sorted start ids; `start_pos` marks the first not yet fed.
    start_ids: Vec<NodeId>,
    start_pos: usize,
    /// Next window is `[lo, min(lo + LAZY_BLOCK, n))`.
    lo: u32,
    n: u32,
    /// Window output not yet handed to the caller.
    buf: Vec<NodeId>,
    buf_pos: usize,
    /// Document-global predicate verdicts (a predicate path starting at
    /// `/` or `id(c)` does not depend on the candidate), keyed by the
    /// predicate's address inside the compiled query.
    globals: HashMap<usize, bool>,
    /// Materialized `E1` sets for context-dependent predicates whose
    /// per-candidate witness walk is *unbounded* (see
    /// [`witness_walk_is_bounded`]): computed once per cursor, then each
    /// candidate is a membership probe. Keyed like `globals`.
    pred_sets: HashMap<usize, NodeSet>,
}

/// Can `S→[[p]]({x})` stay cheap for a single candidate?
///
/// True when every step's frontier is bounded by local structure
/// (`self`/`child`/`parent`/`ancestor(-or-self)`/`attribute`/`namespace`
/// — at most a fanout or a root path per step), no step carries nested
/// predicates (those route through a document-global `E1` pass *inside*
/// the walk), and there is no trailing `=s` restriction. Everything else
/// — `descendant`, the sibling axes, `following`/`preceding`, `id` — can
/// materialize an Ω(|D|) frontier **per candidate**, so a window of
/// candidates would cost Ω(|D|·window) and a lazy `first()` would come
/// out slower than full evaluation; for those the pipeline computes the
/// document-global predicate set once and probes it instead.
fn witness_walk_is_bounded(p: &CorePath) -> bool {
    use xpath_syntax::Axis;
    p.eq.is_none()
        && p.steps.iter().all(|s| {
            s.preds.is_empty()
                && matches!(
                    s.axis,
                    Axis::SelfAxis
                        | Axis::Child
                        | Axis::Parent
                        | Axis::Ancestor
                        | Axis::AncestorOrSelf
                        | Axis::Attribute
                        | Axis::Namespace
                )
        })
}

impl std::fmt::Debug for LazyPipeline<'_, '_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LazyPipeline")
            .field("stages", &self.stages.len())
            .field("lo", &self.lo)
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

impl Clone for LazyPipeline<'_, '_> {
    fn clone(&self) -> Self {
        LazyPipeline {
            doc: self.doc,
            // The evaluator is stateless apart from its planner tally;
            // clones get a fresh one over the same document.
            ev: CoreXPathEvaluator::new(self.doc),
            steps: self.steps,
            stages: self.stages.clone(),
            start_ids: self.start_ids.clone(),
            start_pos: self.start_pos,
            lo: self.lo,
            n: self.n,
            buf: self.buf.clone(),
            buf_pos: self.buf_pos,
            globals: self.globals.clone(),
            pred_sets: self.pred_sets.clone(),
        }
    }
}

impl Drop for LazyPipeline<'_, '_> {
    fn drop(&mut self) {
        // `start_ids` and `buf` are shelf buffers (`into_vec` / recycled
        // window output); return them so cancelled or abandoned cursors
        // don't bleed the thread-local shelves dry.
        xpath_xml::pool::give_ids(std::mem::take(&mut self.start_ids));
        xpath_xml::pool::give_ids(std::mem::take(&mut self.buf));
    }
}

impl<'q, 'd> LazyPipeline<'q, 'd> {
    fn new(doc: &'d Document, path: &'q CorePath, ctx: Context) -> LazyPipeline<'q, 'd> {
        let ev = CoreXPathEvaluator::new(doc);
        let start_ids = ev.start_set(&path.start, &[ctx.node]).into_vec();
        let stages = path
            .steps
            .iter()
            .map(|s| {
                StepStreamer::new(doc, s.axis)
                    .expect("caller checked spine_is_streamable before building the pipeline")
            })
            .collect();
        LazyPipeline {
            doc,
            ev,
            steps: &path.steps,
            stages,
            start_ids,
            start_pos: 0,
            lo: 0,
            n: doc.len() as u32,
            buf: Vec::new(),
            buf_pos: 0,
            globals: HashMap::new(),
            pred_sets: HashMap::new(),
        }
    }

    fn next_block(
        &mut self,
        doc: &Document,
        budget: &EvalBudget,
        out: &mut NodeSet,
        max: usize,
    ) -> EvalResult<usize> {
        let mut emitted = 0;
        loop {
            while self.buf_pos < self.buf.len() && emitted < max {
                out.insert(self.buf[self.buf_pos]);
                self.buf_pos += 1;
                emitted += 1;
            }
            if emitted >= max || self.lo >= self.n {
                return Ok(emitted);
            }
            self.buf.clear();
            self.buf_pos = 0;
            self.pull_window(doc, budget)?;
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let buffered = self.buf.len() - self.buf_pos;
        (buffered, Some(buffered + (self.n - self.lo) as usize))
    }

    /// Advance one window `[lo, hi)` through every stage, appending the
    /// final stage's accepted nodes to `buf`. The budget is polled once
    /// per window plus inside every predicate witness walk, so a trip
    /// costs at most one window of work.
    fn pull_window(&mut self, doc: &Document, budget: &EvalBudget) -> EvalResult<()> {
        budget.check()?;
        let hi = self.lo.saturating_add(CostModel::LAZY_BLOCK).min(self.n);
        // The stage scratch is a shelf buffer; hand it back on every exit
        // path (including a budget trip inside a predicate walk).
        let mut accepted = xpath_xml::pool::take_ids();
        let r = self.fill_window(doc, budget, hi, &mut accepted);
        xpath_xml::pool::give_ids(accepted);
        r
    }

    /// The body of [`LazyPipeline::pull_window`], with the stage scratch
    /// owned by the caller so it survives `?` exits.
    fn fill_window(
        &mut self,
        doc: &Document,
        budget: &EvalBudget,
        hi: u32,
        accepted: &mut Vec<NodeId>,
    ) -> EvalResult<()> {
        let steps = self.steps;
        let ix = doc.axis_index();

        // Stage-0 inputs: start ids inside the window (earlier ones were
        // fed in earlier windows; start ids are sorted).
        while self.start_pos < self.start_ids.len() && self.start_ids[self.start_pos].0 < hi {
            accepted.push(self.start_ids[self.start_pos]);
            self.start_pos += 1;
        }

        for (i, step) in steps.iter().enumerate() {
            // The stage borrow ends before the predicate walks below need
            // `&mut self`: candidates is an owned window of the output.
            let stage = &mut self.stages[i];
            // Feed the upstream window (ascending — within a window the
            // candidate scan is ascending, and windows only move right).
            for &x in &*accepted {
                stage.push(doc, x);
            }
            let axis = stage.axis();
            let strip = stage.needs_type_strip();
            // All upstream inputs < hi are in, so this window of raw axis
            // output is final (block-synchronous invariant).
            let candidates = stage.expanded().restrict_range(self.lo, hi);

            accepted.clear();
            for c in &candidates {
                // §4 type strip, per candidate (`child` filtered specials
                // inline; `attribute`/`namespace` *produce* them).
                if strip && ix.is_special(c.0) {
                    continue;
                }
                if !node_test::matches(doc, axis, &step.test, c) {
                    continue;
                }
                let mut ok = true;
                for pred in &step.preds {
                    if !self.pred_holds_cached(pred, c, budget)? {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    accepted.push(c);
                }
            }
        }

        self.buf.extend_from_slice(accepted);
        self.lo = hi;
        Ok(())
    }

    /// Per-candidate predicate check with short-circuiting connectives.
    /// Document-global predicate paths (non-`Context` start) are cached by
    /// address: their verdict is candidate-independent, so one witness
    /// walk serves the whole cursor. Connectives recurse here (not into
    /// the evaluator) so globals nested under `and`/`or`/`not` cache too.
    /// Context-dependent paths split on [`witness_walk_is_bounded`]:
    /// bounded walks run per candidate, unbounded ones probe a
    /// once-per-cursor `E1` set cached in `pred_sets`.
    fn pred_holds_cached(
        &mut self,
        pred: &CorePred,
        x: NodeId,
        budget: &EvalBudget,
    ) -> EvalResult<bool> {
        match pred {
            CorePred::And(l, r) => {
                Ok(self.pred_holds_cached(l, x, budget)? && self.pred_holds_cached(r, x, budget)?)
            }
            CorePred::Or(l, r) => {
                Ok(self.pred_holds_cached(l, x, budget)? || self.pred_holds_cached(r, x, budget)?)
            }
            CorePred::Not(inner) => Ok(!self.pred_holds_cached(inner, x, budget)?),
            CorePred::Path(p) if !matches!(p.start, CoreStart::Context) => {
                let key = pred as *const CorePred as usize;
                if let Some(&v) = self.globals.get(&key) {
                    return Ok(v);
                }
                let v = self.ev.pred_holds(pred, x, budget)?;
                self.globals.insert(key, v);
                Ok(v)
            }
            CorePred::Path(p) if witness_walk_is_bounded(p) => self.ev.pred_holds(pred, x, budget),
            CorePred::Path(_) => {
                let key = pred as *const CorePred as usize;
                if let Some(s) = self.pred_sets.get(&key) {
                    return Ok(s.contains(x));
                }
                let s = self.ev.try_pred_set(pred, budget)?;
                let v = s.contains(x);
                self.pred_sets.insert(key, s);
                Ok(v)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::EvalError;
    use crate::query::CompiledQuery;
    use std::sync::atomic::{AtomicBool, Ordering};
    use xpath_xml::generate::{doc_bookstore, doc_figure8};

    fn lazy_cursor<'q, 'd>(q: &'q CompiledQuery, doc: &'d Document) -> QueryCursor<'q, 'd> {
        let c = q.select_lazy_with(doc, Context::of(doc.root()), EvalBudget::unlimited(), Some(1));
        assert!(c.is_lazy(), "{} should take the lazy route", q.text());
        c
    }

    #[test]
    fn lazy_drain_matches_evaluate() {
        let d = doc_bookstore();
        for qs in ["//book[author]/title", "//book", "/descendant::*[following::price]"] {
            let q = CompiledQuery::compile(qs).unwrap();
            let want = q.select(&d).unwrap();
            let mut c = lazy_cursor(&q, &d);
            assert_eq!(c.collect_set().unwrap(), want, "{qs}");
        }
    }

    #[test]
    fn next_yields_document_order_prefix() {
        let d = doc_figure8();
        let q = CompiledQuery::compile("//b").unwrap();
        let want = q.select(&d).unwrap().into_vec();
        let mut c = lazy_cursor(&q, &d);
        let first = c.next().unwrap();
        assert_eq!(first, want.first().copied());
        let second = c.next().unwrap();
        assert_eq!(second, want.get(1).copied());
    }

    #[test]
    fn materializing_fallback_serves_blocks() {
        let d = doc_bookstore();
        // `parent` is not streamable: the cursor must fall back.
        let q = CompiledQuery::compile("//title/parent::book").unwrap();
        let mut c = q.select_lazy_with(&d, Context::of(d.root()), EvalBudget::unlimited(), Some(1));
        assert!(!c.is_lazy());
        let want = q.select(&d).unwrap();
        assert_eq!(c.collect_set().unwrap(), want);
    }

    #[test]
    fn cancelled_cursor_reports_and_stays_usable() {
        let d = doc_bookstore();
        let q = CompiledQuery::compile("//book").unwrap();
        let flag = Arc::new(AtomicBool::new(true));
        let budget = EvalBudget::unlimited().with_cancel(flag.clone());
        let mut c = q.select_lazy_with(&d, Context::of(d.root()), budget, None);
        let mut out = NodeSet::new();
        assert!(matches!(c.next_block(&mut out, usize::MAX), Err(EvalError::Cancelled)));
        // Clearing the flag lets the same cursor finish.
        flag.store(false, Ordering::Relaxed);
        assert_eq!(c.collect_set().unwrap(), q.select(&d).unwrap());
    }
}
