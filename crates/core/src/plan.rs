//! Document-independent execution plans — the output of the static phase.
//!
//! The paper's central observation is that XPath processing splits into a
//! **static** phase (parse, normalize, Figure-1 fragment classification,
//! algorithm selection — all independent of any document) and a **runtime**
//! phase (the polynomial/linear evaluators over a concrete tree). A
//! [`Plan`] captures everything the static phase produces:
//!
//! * the normalized (and possibly rewritten) expression,
//! * its [`Classification`] in the Figure-1 lattice,
//! * the resolved [`Strategy`] (never [`Strategy::Auto`]),
//! * eagerly compiled artifacts for the fragment engines — the Core
//!   XPath/XPatterns algebra program (§10) and the streaming automaton —
//!   so per-evaluation work is pure runtime.
//!
//! Because eager compilation happens here, a query outside an explicitly
//! requested fragment fails at *plan-build* time with
//! [`EvalError::UnsupportedFragment`](crate::EvalError::UnsupportedFragment),
//! not at first evaluation.

use xpath_syntax::Expr;
use xpath_xml::Document;

use crate::analyze::{self, QueryReport, Streamability};
use crate::bottomup::BottomUpEvaluator;
use crate::context::{Context, EvalBudget, EvalResult};
use crate::corexpath::{self, CoreDialect, CoreQuery, CoreXPathEvaluator};
use crate::fragment::{classify, Classification, Fragment};
use crate::mincontext::MinContextEvaluator;
use crate::naive::NaiveEvaluator;
use crate::optmincontext::OptMinContextEvaluator;
use crate::pool::PoolEvaluator;
use crate::streaming::{self, StreamQuery};
use crate::topdown::TopDownEvaluator;
use crate::value::Value;

/// Which of the paper's algorithms to run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Strategy {
    /// §2 baseline: exponential recursive evaluation (models XALAN/XT/
    /// Saxon/IE6).
    Naive,
    /// §9: naive recursion + data pool (Algorithm 9.1).
    DataPool,
    /// §6: bottom-up context-value tables (Algorithm 6.3).
    BottomUp,
    /// §7: top-down vectorized evaluation (the paper's implementation).
    TopDown,
    /// §8: MinContext (Algorithm 8.5).
    MinContext,
    /// §11.2: OptMinContext (Algorithm 11.1).
    OptMinContext,
    /// §10.1: linear-time Core XPath algebra (rejects other queries).
    CoreXPath,
    /// §10.2: linear-time XPatterns (rejects other queries).
    XPatterns,
    /// Single-pass streaming matcher for the forward Core XPath fragment
    /// (§1–§2 related work; rejects non-streamable queries).
    Streaming,
    /// Classify via Figure 1 and pick the best algorithm.
    #[default]
    Auto,
}

/// The strategy [`Strategy::Auto`] resolves to for a classified query,
/// per the Figure 1 lattice.
pub fn resolve_auto(classification: &Classification) -> Strategy {
    match classification.fragment {
        Fragment::CoreXPath => Strategy::CoreXPath,
        Fragment::XPatterns => Strategy::XPatterns,
        // OptMinContext realizes both the Wadler bounds and the general
        // MinContext bounds (Algorithm 11.1).
        Fragment::ExtendedWadler | Fragment::FullXPath => Strategy::OptMinContext,
    }
}

/// A fully resolved, immutable, document-independent execution plan.
///
/// Build one with [`Plan::build`], then run it against any number of
/// documents with [`Plan::execute`]. Plans contain only owned plain data,
/// so they are `Send + Sync` and can be shared across threads (the public
/// wrapper is [`crate::query::CompiledQuery`]).
#[derive(Clone, Debug)]
pub struct Plan {
    /// The normalized (and possibly rewritten) expression.
    pub expr: Expr,
    /// The Figure-1 classification of `expr`.
    pub classification: Classification,
    /// The resolved strategy (never [`Strategy::Auto`]).
    pub strategy: Strategy,
    /// Eagerly compiled Core XPath / XPatterns algebra program, present
    /// iff `strategy` is [`Strategy::CoreXPath`] or [`Strategy::XPatterns`].
    algebra: Option<CoreQuery>,
    /// Eagerly compiled streaming automaton, present iff `strategy` is
    /// [`Strategy::Streaming`].
    automaton: Option<StreamQuery>,
    /// The static-analysis report ([`crate::analyze`]): satisfiability,
    /// reverse-axis rewrite, streamability classification, diagnostics.
    report: QueryReport,
    /// Step budget for the exponential naive baseline, if bounded.
    naive_budget: Option<u64>,
    /// Shard budget for the parallel CVT layer (`0` = auto:
    /// `GKP_THREADS` / the machine's parallelism; `1` = always serial).
    threads: u32,
}

impl Plan {
    /// Resolve `requested` against the classification of `expr` and compile
    /// all fragment artifacts eagerly.
    ///
    /// With an explicit fragment strategy ([`Strategy::CoreXPath`],
    /// [`Strategy::XPatterns`], [`Strategy::Streaming`]) a query outside
    /// that fragment is rejected **here**, so callers see
    /// [`EvalError::UnsupportedFragment`](crate::EvalError::UnsupportedFragment)
    /// once at compile time rather than on every evaluation.
    ///
    /// The plan runs with the auto-resolved thread budget; use
    /// [`Plan::build_with_threads`] to pin it.
    pub fn build(expr: Expr, requested: Strategy, naive_budget: Option<u64>) -> EvalResult<Plan> {
        Plan::build_with_threads(expr, requested, naive_budget, 0)
    }

    /// [`Plan::build`] with an explicit shard budget for the parallel CVT
    /// layer: `0` resolves the process default (`GKP_THREADS` env, then
    /// the machine's parallelism), `1` keeps every pass serial. Sharding
    /// is still cost-gated per pass at runtime (see [`crate::parallel`]),
    /// so the budget is a cap, not a mandate.
    pub fn build_with_threads(
        expr: Expr,
        requested: Strategy,
        naive_budget: Option<u64>,
        threads: u32,
    ) -> EvalResult<Plan> {
        let classification = classify(&expr);
        let report = analyze::analyze(&expr);
        let auto = requested == Strategy::Auto;
        let mut strategy = if auto { resolve_auto(&classification) } else { requested };

        let mut algebra = None;
        let mut automaton = None;
        match strategy {
            Strategy::CoreXPath | Strategy::XPatterns => {
                let dialect = if strategy == Strategy::CoreXPath {
                    CoreDialect::CoreXPath
                } else {
                    CoreDialect::XPatterns
                };
                match corexpath::compile_dialect(&expr, dialect) {
                    Ok(q) => algebra = Some(q),
                    // The classifier approves exactly what the algebra
                    // compiler accepts, so under Auto this is unreachable;
                    // fall back to the general engine defensively rather
                    // than failing a query the lattice admits.
                    Err(_) if auto => strategy = Strategy::OptMinContext,
                    Err(e) => return Err(e),
                }
            }
            // The streaming matcher is picked from the analyzer's
            // classification, not a fresh fragment probe: a query that
            // streams only in its reverse-axis-rewritten form compiles
            // the automaton from that rewrite.
            Strategy::Streaming => match &report.streamability {
                Streamability::InMemoryOnly(why) => {
                    return Err(crate::context::EvalError::UnsupportedFragment(why.clone()));
                }
                _ => {
                    let source = if report.streams_via_rewrite {
                        report.forward_expr.as_ref().expect("streams_via_rewrite implies a rewrite")
                    } else {
                        &expr
                    };
                    automaton = Some(streaming::compile_expr(source)?);
                }
            },
            _ => {}
        }
        Ok(Plan {
            expr,
            classification,
            strategy,
            algebra,
            automaton,
            report,
            naive_budget,
            threads,
        })
    }

    /// Run the plan against `doc` from context `ctx`.
    ///
    /// Pure runtime phase: no parsing, classification, or fragment
    /// compilation happens here.
    pub fn execute(&self, doc: &Document, ctx: Context) -> EvalResult<Value> {
        self.execute_with(doc, ctx, &EvalBudget::unlimited())
    }

    /// [`Plan::execute`] under an [`EvalBudget`]: every strategy polls the
    /// budget at its natural pass boundary (location steps, table passes,
    /// axis passes, stream-event blocks) and fails with
    /// [`EvalError::Cancelled`](crate::EvalError::Cancelled) /
    /// [`EvalError::DeadlineExceeded`](crate::EvalError::DeadlineExceeded)
    /// once it trips — never a poisoned evaluator or a partial result.
    pub fn execute_with(
        &self,
        doc: &Document,
        ctx: Context,
        budget: &EvalBudget,
    ) -> EvalResult<Value> {
        // Constant-empty plan node: the analyzer proved the result is
        // document-independent, so no evaluator runs at all.
        if let Some(v) = &self.report.const_result {
            return Ok(v.clone());
        }
        run(
            &self.expr,
            self.strategy,
            self.algebra.as_ref(),
            self.automaton.as_ref(),
            self.naive_budget,
            self.threads,
            doc,
            ctx,
            None,
            budget,
        )
    }

    /// [`Plan::execute`], additionally merging the adaptive axis planner's
    /// kernel decisions into `kernels` (fragment strategies only; the
    /// general evaluators record nothing). This is how a
    /// [`CompiledQuery`](crate::query::CompiledQuery) accumulates its
    /// per-query planner statistics across evaluations.
    pub fn execute_recording(
        &self,
        doc: &Document,
        ctx: Context,
        kernels: &xpath_axes::KernelCounters,
    ) -> EvalResult<Value> {
        self.execute_recording_with(doc, ctx, kernels, &EvalBudget::unlimited())
    }

    /// [`Plan::execute_recording`] under an [`EvalBudget`] (see
    /// [`Plan::execute_with`]).
    pub fn execute_recording_with(
        &self,
        doc: &Document,
        ctx: Context,
        kernels: &xpath_axes::KernelCounters,
        budget: &EvalBudget,
    ) -> EvalResult<Value> {
        if let Some(v) = &self.report.const_result {
            return Ok(v.clone());
        }
        run(
            &self.expr,
            self.strategy,
            self.algebra.as_ref(),
            self.automaton.as_ref(),
            self.naive_budget,
            self.threads,
            doc,
            ctx,
            Some(kernels),
            budget,
        )
    }

    /// The configured shard budget for the parallel CVT layer (`0` =
    /// auto-resolve at evaluation time).
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// The compiled Core XPath / XPatterns algebra program, if this plan
    /// uses a fragment engine.
    pub fn algebra(&self) -> Option<&CoreQuery> {
        self.algebra.as_ref()
    }

    /// The compiled streaming automaton, if this plan streams.
    pub fn automaton(&self) -> Option<&StreamQuery> {
        self.automaton.as_ref()
    }

    /// The naive-evaluator step budget, if one was configured.
    pub fn naive_budget(&self) -> Option<u64> {
        self.naive_budget
    }

    /// The static-analysis report produced at build time (satisfiability,
    /// reverse-axis rewrite, streamability classification, diagnostics).
    pub fn report(&self) -> &QueryReport {
        &self.report
    }
}

/// One-shot evaluation of an already-prepared expression without building
/// a persistent [`Plan`]: dispatches directly on `strategy` (classifying
/// only under [`Strategy::Auto`]) and borrows the expression, so a call
/// costs the same as pre-plan `Engine::evaluate_expr` did — no AST clone,
/// no classification for explicit strategies. Fragment artifacts are
/// compiled per call; keep a [`Plan`] (via
/// [`crate::query::Compiler::compile`]) to amortize them.
pub fn execute_adhoc(
    expr: &Expr,
    strategy: Strategy,
    naive_budget: Option<u64>,
    doc: &Document,
    ctx: Context,
) -> EvalResult<Value> {
    match strategy {
        Strategy::Auto => {
            let resolved = resolve_auto(&classify(expr));
            execute_adhoc(expr, resolved, naive_budget, doc, ctx)
        }
        Strategy::CoreXPath | Strategy::XPatterns => {
            let dialect = if strategy == Strategy::CoreXPath {
                CoreDialect::CoreXPath
            } else {
                CoreDialect::XPatterns
            };
            let q = corexpath::compile_dialect(expr, dialect)?;
            run(
                expr,
                strategy,
                Some(&q),
                None,
                naive_budget,
                0,
                doc,
                ctx,
                None,
                &EvalBudget::unlimited(),
            )
        }
        Strategy::Streaming => {
            let sq = streaming::compile_expr(expr)?;
            run(
                expr,
                strategy,
                None,
                Some(&sq),
                naive_budget,
                0,
                doc,
                ctx,
                None,
                &EvalBudget::unlimited(),
            )
        }
        _ => run(
            expr,
            strategy,
            None,
            None,
            naive_budget,
            0,
            doc,
            ctx,
            None,
            &EvalBudget::unlimited(),
        ),
    }
}

/// Shared runtime dispatch. `strategy` is resolved (never `Auto`) and any
/// fragment artifacts it needs are supplied by the caller. When `kernels`
/// is given, the fragment engines' adaptive planner decisions are merged
/// into it after the evaluation. `threads` caps the parallel CVT layer
/// for the engines that have one (Core XPath / XPatterns axis passes, the
/// bottom-up row fills); `0` auto-resolves.
#[allow(clippy::too_many_arguments)]
fn run(
    expr: &Expr,
    strategy: Strategy,
    algebra: Option<&CoreQuery>,
    automaton: Option<&StreamQuery>,
    naive_budget: Option<u64>,
    threads: u32,
    doc: &Document,
    ctx: Context,
    kernels: Option<&xpath_axes::KernelCounters>,
    budget: &EvalBudget,
) -> EvalResult<Value> {
    match strategy {
        Strategy::Naive => match naive_budget {
            Some(b) => NaiveEvaluator::with_budget(doc, b)
                .with_eval_budget(budget.clone())
                .evaluate(expr, ctx),
            None => NaiveEvaluator::new(doc).with_eval_budget(budget.clone()).evaluate(expr, ctx),
        },
        Strategy::DataPool => {
            PoolEvaluator::new(doc).with_eval_budget(budget.clone()).evaluate(expr, ctx)
        }
        Strategy::BottomUp => BottomUpEvaluator::new(doc)
            .with_threads(threads)
            .with_eval_budget(budget.clone())
            .evaluate(expr, ctx),
        Strategy::TopDown => {
            TopDownEvaluator::new(doc).with_eval_budget(budget.clone()).evaluate(expr, ctx)
        }
        Strategy::MinContext => MinContextEvaluator::new(doc)
            .with_threads(threads)
            .with_eval_budget(budget.clone())
            .evaluate(expr, ctx),
        Strategy::OptMinContext => OptMinContextEvaluator::new(doc)
            .with_threads(threads)
            .with_eval_budget(budget.clone())
            .evaluate(expr, ctx),
        Strategy::CoreXPath | Strategy::XPatterns => {
            let q = algebra.expect("fragment dispatch requires a compiled algebra program");
            let ev = CoreXPathEvaluator::with_backend(
                doc,
                crate::corexpath::AxisBackend::Parallel(threads),
            );
            let out = ev.try_evaluate(q, &[ctx.node], budget)?;
            if let Some(counters) = kernels {
                counters.merge(ev.kernel_counts());
            }
            Ok(Value::NodeSet(out))
        }
        Strategy::Streaming => {
            // Streamable queries are absolute, so the context node is
            // irrelevant to the result (P[[/π]] starts at the root).
            let sq = automaton.expect("streaming dispatch requires a compiled automaton");
            Ok(Value::NodeSet(streaming::try_evaluate_stream(sq, doc, budget)?))
        }
        Strategy::Auto => unreachable!("callers resolve Auto before run()"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::EvalError;
    use xpath_syntax::parse_normalized;
    use xpath_xml::generate::doc_bookstore;

    fn plan(q: &str, s: Strategy) -> EvalResult<Plan> {
        Plan::build(parse_normalized(q).unwrap(), s, None)
    }

    #[test]
    fn auto_resolves_per_figure_1() {
        assert_eq!(plan("//book[author]", Strategy::Auto).unwrap().strategy, Strategy::CoreXPath);
        assert_eq!(
            plan("//book[title = 'x']", Strategy::Auto).unwrap().strategy,
            Strategy::XPatterns
        );
        assert_eq!(
            plan("//book[position() = last()]", Strategy::Auto).unwrap().strategy,
            Strategy::OptMinContext
        );
    }

    #[test]
    fn fragment_artifacts_compile_eagerly() {
        let p = plan("//book[author]", Strategy::CoreXPath).unwrap();
        assert!(p.algebra().is_some());
        let p = plan("//book[author]", Strategy::Streaming).unwrap();
        assert!(p.automaton().is_some());
        // Outside the fragment: the error surfaces at build time.
        assert!(matches!(
            plan("count(//book)", Strategy::CoreXPath),
            Err(EvalError::UnsupportedFragment(_))
        ));
        // preceding:: forwardizes to following-inside-a-predicate, which
        // the matcher rejects even after the rewrite.
        assert!(matches!(
            plan("//c/preceding::a", Strategy::Streaming),
            Err(EvalError::UnsupportedFragment(_))
        ));
    }

    #[test]
    fn streaming_plans_through_the_reverse_axis_rewrite() {
        // Unstreamable as written, streamable once forwardized: the plan
        // compiles the automaton from the rewritten IR and agrees with
        // the reference evaluator.
        let p = plan("//author/parent::book", Strategy::Streaming).unwrap();
        assert!(p.automaton().is_some());
        assert!(p.report().streams_via_rewrite);
        let d = doc_bookstore();
        let ctx = Context::of(d.root());
        let reference = plan("//author/parent::book", Strategy::TopDown).unwrap();
        assert!(p
            .execute(&d, ctx)
            .unwrap()
            .semantically_equal(&reference.execute(&d, ctx).unwrap()));
    }

    #[test]
    fn provably_empty_queries_short_circuit() {
        let p = plan("//text()/child::*", Strategy::Auto).unwrap();
        assert!(p.report().is_empty_query());
        let d = doc_bookstore();
        let out = p.execute(&d, Context::of(d.root())).unwrap();
        assert!(matches!(out, Value::NodeSet(ref s) if s.is_empty()));
        // Scalar wrappers fold too.
        let p = plan("count(//text()/child::*)", Strategy::Auto).unwrap();
        let out = p.execute(&d, Context::of(d.root())).unwrap();
        assert_eq!(out.to_string(), "0");
    }

    #[test]
    fn execute_matches_topdown() {
        let d = doc_bookstore();
        for q in ["//book[author]", "count(//book)", "//book[position() = last()]"] {
            let auto = plan(q, Strategy::Auto).unwrap();
            let reference = plan(q, Strategy::TopDown).unwrap();
            let ctx = Context::of(d.root());
            assert!(
                auto.execute(&d, ctx)
                    .unwrap()
                    .semantically_equal(&reference.execute(&d, ctx).unwrap()),
                "{q}"
            );
        }
    }

    #[test]
    fn plans_carry_a_thread_budget() {
        let p = plan("//book[author]", Strategy::Auto).unwrap();
        assert_eq!(p.threads(), 0, "default is auto-resolve");
        let e = parse_normalized("//book[author]").unwrap();
        let pinned = Plan::build_with_threads(e.clone(), Strategy::Auto, None, 4).unwrap();
        assert_eq!(pinned.threads(), 4);
        // Budgets change only the route, never the result.
        let serial = Plan::build_with_threads(e, Strategy::Auto, None, 1).unwrap();
        let d = doc_bookstore();
        let ctx = Context::of(d.root());
        assert!(pinned
            .execute(&d, ctx)
            .unwrap()
            .semantically_equal(&serial.execute(&d, ctx).unwrap()));
    }

    #[test]
    fn naive_budget_is_enforced() {
        let d = doc_bookstore();
        let p = Plan::build(
            parse_normalized("//book/ancestor::*/descendant::*/ancestor::*").unwrap(),
            Strategy::Naive,
            Some(10),
        )
        .unwrap();
        assert!(matches!(p.execute(&d, Context::of(d.root())), Err(EvalError::BudgetExhausted)));
    }
}
