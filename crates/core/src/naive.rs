//! The exponential-time baseline evaluator (paper §2).
//!
//! A faithful Rust implementation of the `process-location-step` pseudocode
//! the paper gives as the model of XALAN, XT, Saxon and IE6:
//!
//! ```text
//! procedure process-location-step(n0, Q)
//!   node set S := apply Q.head to node n0;
//!   if (Q.tail is not empty) then
//!     for each node n ∈ S do process-location-step(n, Q.tail);
//! ```
//!
//! Each location step applied to a context node may yield `O(|D|)` nodes,
//! and the recursion multiplies: `Time(|Q|) = |D|^|Q|` in the worst case.
//! This evaluator exists as the experimental baseline (Experiments 1–5,
//! "Xalan classic" in Table V) and as the semantics oracle for differential
//! tests at small sizes. An optional **step budget** bounds runaway
//! evaluations the way the paper's experiments bounded wall-clock time.

use std::cell::Cell;

use xpath_syntax::{BinaryOp, Expr, LocationPath, PathStart, Step};
use xpath_xml::{Document, NodeId};

use crate::context::{Context, EvalBudget, EvalError, EvalResult};
use crate::eval_common::{apply_binary, position_of, predicate_holds, step_candidates};
use crate::functions;
use crate::nodeset::NodeSet;
use crate::value::Value;

/// The naive recursive evaluator.
pub struct NaiveEvaluator<'d> {
    doc: &'d Document,
    budget: Option<Cell<u64>>,
    /// Deadline/cancellation budget, polled at every location-step
    /// application (the same granularity as the step budget).
    eval_budget: EvalBudget,
    /// Number of location-step applications performed (for the complexity
    /// assertions in tests and the experiment harness).
    steps_applied: Cell<u64>,
}

impl<'d> NaiveEvaluator<'d> {
    /// Evaluator without a step budget.
    pub fn new(doc: &'d Document) -> Self {
        NaiveEvaluator {
            doc,
            budget: None,
            eval_budget: EvalBudget::unlimited(),
            steps_applied: Cell::new(0),
        }
    }

    /// Evaluator that fails with [`EvalError::BudgetExhausted`] after
    /// `budget` location-step applications.
    pub fn with_budget(doc: &'d Document, budget: u64) -> Self {
        let mut e = Self::new(doc);
        e.budget = Some(Cell::new(budget));
        e
    }

    /// Attach a deadline/cancellation [`EvalBudget`]; evaluation fails
    /// with [`EvalError::DeadlineExceeded`] / [`EvalError::Cancelled`] at
    /// the next location step after the budget trips.
    #[must_use]
    pub fn with_eval_budget(mut self, budget: EvalBudget) -> Self {
        self.eval_budget = budget;
        self
    }

    /// Location-step applications performed so far.
    pub fn steps_applied(&self) -> u64 {
        self.steps_applied.get()
    }

    /// Evaluate `query` in context `ctx` (Definition 5.1).
    pub fn evaluate(&self, query: &Expr, ctx: Context) -> EvalResult<Value> {
        self.eval(query, ctx)
    }

    fn charge(&self) -> EvalResult<()> {
        self.steps_applied.set(self.steps_applied.get() + 1);
        self.eval_budget.check()?;
        if let Some(b) = &self.budget {
            let left = b.get();
            if left == 0 {
                return Err(EvalError::BudgetExhausted);
            }
            b.set(left - 1);
        }
        Ok(())
    }

    fn eval(&self, e: &Expr, ctx: Context) -> EvalResult<Value> {
        match e {
            Expr::Path(p) => Ok(Value::NodeSet(self.eval_path(p, ctx)?)),
            Expr::Filter { primary, predicates } => {
                let base = self.eval(primary, ctx)?;
                let Some(set) = base.into_node_set() else {
                    return Err(EvalError::TypeMismatch(
                        "predicates require a node-set primary expression".into(),
                    ));
                };
                let set = self.filter_forward(set.into_vec(), predicates, ctx)?;
                Ok(Value::NodeSet(NodeSet::from_sorted(set)))
            }
            Expr::Binary { op: BinaryOp::And, left, right } => {
                // Short-circuit like real processors.
                let l = self.eval(left, ctx)?;
                if !l.to_boolean() {
                    return Ok(Value::Boolean(false));
                }
                Ok(Value::Boolean(self.eval(right, ctx)?.to_boolean()))
            }
            Expr::Binary { op: BinaryOp::Or, left, right } => {
                let l = self.eval(left, ctx)?;
                if l.to_boolean() {
                    return Ok(Value::Boolean(true));
                }
                Ok(Value::Boolean(self.eval(right, ctx)?.to_boolean()))
            }
            Expr::Binary { op, left, right } => {
                let l = self.eval(left, ctx)?;
                let r = self.eval(right, ctx)?;
                apply_binary(self.doc, *op, l, r)
            }
            Expr::Neg(inner) => {
                let v = self.eval(inner, ctx)?;
                Ok(Value::Number(-v.to_number(self.doc)))
            }
            Expr::Literal(s) => Ok(Value::String(s.clone())),
            Expr::Number(v) => Ok(Value::Number(*v)),
            Expr::Var(name) => Err(EvalError::UnboundVariable(name.clone())),
            Expr::Call { name, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, ctx)?);
                }
                functions::apply(self.doc, name, vals, &ctx)
            }
        }
    }

    /// `P[[π]]` (Figure 5) with the naive per-node recursion of §2.
    fn eval_path(&self, p: &LocationPath, ctx: Context) -> EvalResult<NodeSet> {
        let starts: NodeSet = match &p.start {
            PathStart::Root => NodeSet::singleton(self.doc.root()),
            PathStart::ContextNode => NodeSet::singleton(ctx.node),
            PathStart::Expr(e) => {
                let v = self.eval(e, ctx)?;
                v.into_node_set().ok_or_else(|| {
                    EvalError::TypeMismatch("path start must evaluate to a node set".into())
                })?
            }
        };
        let mut out = Vec::new();
        for x in starts {
            self.process_location_step(&p.steps, x, &mut out)?;
        }
        Ok(NodeSet::from_unsorted(out))
    }

    /// The paper's `process-location-step`: apply the head step to one
    /// context node, then recurse **per result node**.
    fn process_location_step(
        &self,
        steps: &[Step],
        n0: NodeId,
        out: &mut Vec<NodeId>,
    ) -> EvalResult<()> {
        let Some(step) = steps.first() else {
            out.push(n0);
            return Ok(());
        };
        self.charge()?;
        let mut s = step_candidates(self.doc, step.axis, &step.test, n0);
        for pred in &step.predicates {
            s = self.filter_with_axis(&s, step.axis, pred)?;
        }
        for n in s {
            self.process_location_step(&steps[1..], n, out)?;
        }
        Ok(())
    }

    /// Apply one predicate over a step-result set, with positions counted
    /// along `<doc,χ` (Figure 5: `idx_χ(y, S)`).
    fn filter_with_axis(
        &self,
        s: &[NodeId],
        axis: xpath_syntax::Axis,
        pred: &Expr,
    ) -> EvalResult<Vec<NodeId>> {
        let len = s.len();
        let mut kept = Vec::with_capacity(len);
        for (j, &y) in s.iter().enumerate() {
            let pos = position_of(axis, j, len);
            let v = self.eval(pred, Context::new(y, pos, len.max(1) as u32))?;
            if predicate_holds(&v, pos) {
                kept.push(y);
            }
        }
        Ok(kept)
    }

    /// Filter-expression predicates use forward (document-order) positions.
    fn filter_forward(
        &self,
        mut set: Vec<NodeId>,
        predicates: &[Expr],
        _ctx: Context,
    ) -> EvalResult<Vec<NodeId>> {
        for pred in predicates {
            let len = set.len();
            let mut kept = Vec::with_capacity(len);
            for (j, &y) in set.iter().enumerate() {
                let pos = (j + 1) as u32;
                let v = self.eval(pred, Context::new(y, pos, len.max(1) as u32))?;
                if predicate_holds(&v, pos) {
                    kept.push(y);
                }
            }
            set = kept;
        }
        Ok(set)
    }
}

/// Convenience: evaluate a query string with the naive evaluator.
pub fn evaluate_str(doc: &Document, query: &str, ctx: Context) -> EvalResult<Value> {
    let e =
        xpath_syntax::parse_normalized(query).map_err(|err| EvalError::Parse(err.to_string()))?;
    NaiveEvaluator::new(doc).evaluate(&e, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_syntax::parse_normalized;
    use xpath_xml::generate::{doc_figure8, doc_flat, doc_flat_text};

    fn run(doc: &Document, q: &str) -> Value {
        let ctx = Context::of(doc.root());
        evaluate_str(doc, q, ctx).unwrap_or_else(|e| panic!("{q}: {e}"))
    }

    fn run_at(doc: &Document, q: &str, node: NodeId) -> Value {
        evaluate_str(doc, q, Context::of(node)).unwrap_or_else(|e| panic!("{q}: {e}"))
    }

    fn set(v: &Value) -> &NodeSet {
        v.as_node_set().expect("node set")
    }

    #[test]
    fn simple_paths_doc2() {
        let d = doc_flat(2);
        assert_eq!(set(&run(&d, "//a/b")).len(), 2);
        assert_eq!(set(&run(&d, "//b")).len(), 2);
        assert_eq!(set(&run(&d, "/a")).len(), 1);
        assert_eq!(set(&run(&d, "//a/b/parent::a/b")).len(), 2);
        assert_eq!(set(&run(&d, "/")).len(), 1);
    }

    #[test]
    fn example_6_4_query() {
        // descendant::b/following-sibling::*[position() != last()] over
        // DOC(4) with input context ⟨a, 1, 1⟩ evaluates to {b2, b3}.
        let d = doc_flat(4);
        let a = d.document_element().unwrap();
        let v = run_at(&d, "descendant::b/following-sibling::*[position() != last()]", a);
        let bs: Vec<NodeId> = d.children(a).collect();
        assert_eq!(set(&v), &vec![bs[1], bs[2]]);
    }

    #[test]
    fn example_8_1_query() {
        // /descendant::*/descendant::*[position() > last()*0.5 or
        // string(self::*) = '100'] over Figure 8 = {x13,x14,x21,x22,x23,x24}.
        let d = doc_figure8();
        let v = run(
            &d,
            "/descendant::*/descendant::*[position() > last() * 0.5 or string(self::*) = '100']",
        );
        let expect: Vec<NodeId> = ["13", "14", "21", "22", "23", "24"]
            .iter()
            .map(|i| d.element_by_id(i).unwrap())
            .collect();
        assert_eq!(set(&v), &expect);
    }

    #[test]
    fn example_11_2_query() {
        let d = doc_figure8();
        let v = run(
            &d,
            "/child::a/descendant::*[boolean(following::d[(position() != last()) and \
             (preceding-sibling::*/preceding::* = 100)]/following::d)]",
        );
        let expect: Vec<NodeId> =
            ["11", "12", "13", "14", "22"].iter().map(|i| d.element_by_id(i).unwrap()).collect();
        assert_eq!(set(&v), &expect);
    }

    #[test]
    fn experiment2_queries() {
        let d = doc_flat_text(3);
        let v = run(&d, "//*[parent::a/child::* = 'c']");
        assert_eq!(set(&v).len(), 3, "all b's qualify");
        let v = run(&d, "//*[parent::a/child::*[parent::a/child::* = 'c'] = 'c']");
        assert_eq!(set(&v).len(), 3);
    }

    #[test]
    fn experiment3_queries() {
        let d = doc_flat(2);
        let v = run(&d, "//a/b[count(parent::a/b) > 1]");
        assert_eq!(set(&v).len(), 2);
        let d1 = doc_flat(1);
        let v = run(&d1, "//a/b[count(parent::a/b) > 1]");
        assert_eq!(set(&v).len(), 0);
    }

    #[test]
    fn positional_predicates() {
        let d = doc_flat(4);
        let a = d.document_element().unwrap();
        let bs: Vec<NodeId> = d.children(a).collect();
        assert_eq!(set(&run(&d, "//b[1]")), &vec![bs[0]]);
        assert_eq!(set(&run(&d, "//b[4]")), &vec![bs[3]]);
        assert_eq!(set(&run(&d, "//b[5]")).len(), 0);
        assert_eq!(set(&run(&d, "//b[last()]")), &vec![bs[3]]);
        assert_eq!(set(&run(&d, "//b[position() = last() - 1]")), &vec![bs[2]]);
        // Reverse axis: preceding-sibling positions count backwards.
        let v = run_at(&d, "preceding-sibling::b[1]", bs[3]);
        assert_eq!(set(&v), &vec![bs[2]]);
        let v = run_at(&d, "preceding-sibling::b[3]", bs[3]);
        assert_eq!(set(&v), &vec![bs[0]]);
    }

    #[test]
    fn arithmetic_and_functions() {
        let d = doc_flat(4);
        assert_eq!(run(&d, "count(//b)"), Value::Number(4.0));
        assert_eq!(run(&d, "count(//b) * 2 + 1"), Value::Number(9.0));
        assert_eq!(run(&d, "concat('n=', string(count(//b)))"), Value::String("n=4".into()));
        assert_eq!(run(&d, "boolean(//b)"), Value::Boolean(true));
        assert_eq!(run(&d, "boolean(//zzz)"), Value::Boolean(false));
    }

    #[test]
    fn union_operator() {
        let d = doc_figure8();
        let v = run(&d, "//c | //d");
        assert_eq!(set(&v).len(), 6);
    }

    #[test]
    fn filter_expression() {
        let d = doc_figure8();
        let v = run(&d, "(//c | //d)[2]");
        assert_eq!(set(&v), &vec![d.element_by_id("13").unwrap()]);
        let v = run(&d, "(//c | //d)[last()]");
        assert_eq!(set(&v), &vec![d.element_by_id("24").unwrap()]);
    }

    #[test]
    fn id_function_path() {
        let d = doc_figure8();
        let v = run(&d, "id('12 24')");
        assert_eq!(set(&v), &vec![d.element_by_id("12").unwrap(), d.element_by_id("24").unwrap()]);
        let v = run(&d, "id('14')/parent::*");
        assert_eq!(set(&v), &vec![d.element_by_id("11").unwrap()]);
    }

    #[test]
    fn attribute_axis() {
        let d = doc_figure8();
        let v = run(&d, "//*[@id = '22']");
        assert_eq!(set(&v), &vec![d.element_by_id("22").unwrap()]);
        let v = run(&d, "count(//@id)");
        assert_eq!(v, Value::Number(9.0));
    }

    #[test]
    fn budget_exhaustion() {
        let d = doc_flat(2);
        // Deeply antagonist query with a tiny budget must abort.
        let q = "//a/b/parent::a/b/parent::a/b/parent::a/b/parent::a/b";
        let e = xpath_syntax::parse_normalized(q).unwrap();
        let ev = NaiveEvaluator::with_budget(&d, 5);
        assert_eq!(ev.evaluate(&e, Context::of(d.root())), Err(EvalError::BudgetExhausted));
    }

    #[test]
    fn exponential_step_growth_experiment1() {
        // The §2 recurrence: each '/parent::a/b' suffix roughly doubles the
        // number of location-step applications on DOC(2).
        let d = doc_flat(2);
        let mut counts = Vec::new();
        for k in 0..6 {
            let mut q = String::from("//a/b");
            for _ in 0..k {
                q.push_str("/parent::a/b");
            }
            let e = parse_normalized(&q).unwrap();
            let ev = NaiveEvaluator::new(&d);
            ev.evaluate(&e, Context::of(d.root())).unwrap();
            counts.push(ev.steps_applied());
        }
        for w in counts.windows(2) {
            let ratio = w[1] as f64 / w[0] as f64;
            assert!(ratio > 1.5, "expected ~2x growth, got {counts:?}");
        }
    }

    #[test]
    fn descendant_or_self_shortcut() {
        let d = doc_figure8();
        let v = run(&d, "//b//d");
        assert_eq!(set(&v).len(), 3);
    }

    #[test]
    fn text_nodes() {
        let d = doc_flat_text(2);
        assert_eq!(run(&d, "count(//text())"), Value::Number(2.0));
        assert_eq!(run(&d, "string(//text())"), Value::String("c".into()));
    }
}
