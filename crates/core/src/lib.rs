//! # xpath-core — the paper's contribution
//!
//! Polynomial-time XPath 1.0 processing per Gottlob, Koch & Pichler,
//! *Efficient Algorithms for Processing XPath Queries* (VLDB 2002 / TODS):
//!
//! | Module | Paper | What |
//! |---|---|---|
//! | [`value`], [`compare`], [`functions`] | §5, Table II | value model & effective semantics `F[[Op]]` |
//! | [`naive`] | §2 | exponential baseline (`process-location-step`) |
//! | [`pool`] | §9 | memoized ("data pool") evaluator, Algorithm 9.1 |
//! | [`bottomup`] | §6 | context-value tables, Algorithm 6.3 |
//! | [`topdown`] | §7 | vectorized `S↓`/`E↓` (the "XMLTaskforce" engine) |
//! | [`mincontext`] | §8, App. A | relevant-context analysis + MinContext |
//! | [`corexpath`] | §10.1 | linear-time Core XPath algebra |
//! | [`cursor`] | — | lazy pull-based [`NodeCursor`] layer: early exit, deadlines, cancellation |
//! | [`streaming`] | §1–§2 related work | single-pass matcher for the forward Core XPath fragment |
//! | [`xpatterns`] | §10.2 | Core XPath + id axis + XSLT-Patterns predicates |
//! | [`wadler`] | §11.1 | Extended Wadler fragment, bottom-up inner paths |
//! | [`optmincontext`] | §11.2 | OptMinContext (Algorithm 11.1) |
//! | [`nodeset`] | §3 | the hybrid bitset/sorted-vec [`nodeset::NodeSet`] currency |
//! | [`fragment`] | Fig. 1 | fragment lattice classification |
//! | [`analyze`] | — | static analysis: satisfiability, reverse-axis rewriting, streamability |
//! | [`plan`] | — | document-independent execution plans (static phase) |
//! | [`query`] | — | [`Compiler`] / [`CompiledQuery`]: compile once, evaluate many |
//! | [`cache`] | — | sharded LRU [`QueryCache`] shared across workers |
//! | [`parallel`] | — | sharded parallel CVT passes on a scoped thread pool |
//! | [`batch`] | — | [`QuerySet`]: batched multi-query evaluation with shared axis passes |
//! | [`store`] | — | [`DocumentStore`]: directory of mmap'd snapshots, generational reload |
//! | [`serve`] | — | [`serve::Server`]: line-JSON query server, admission control, metrics |
//! | [`engine`] | — | back-compat facade over `query` + `cache` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod batch;
pub mod bottomup;
pub mod cache;
pub mod compare;
pub mod context;
pub mod corexpath;
pub mod cursor;
pub mod engine;
pub mod eval_common;
pub mod explain;
pub mod fragment;
pub mod functions;
pub mod mincontext;
pub mod naive;
pub mod node_test;
pub mod nodeset;
pub mod optmincontext;
pub mod parallel;
pub mod plan;
pub mod pool;
pub mod query;
pub mod relev;
pub mod serve;
pub mod store;
pub mod streaming;
pub mod topdown;
pub mod value;
pub mod wadler;
pub mod xpatterns;

pub use analyze::{
    AnalysisStats, Diagnostic, QueryReport, Satisfiability, Severity, Streamability,
};
pub use batch::{BatchResult, BatchStats, QuerySet, QuerySetBuilder};
pub use cache::{CacheStats, QueryCache};
pub use context::{Context, EvalBudget, EvalError, EvalResult};
pub use cursor::{NodeCursor, QueryCursor};
pub use engine::{Engine, Strategy};
pub use fragment::{classify, Classification, Fragment};
pub use plan::Plan;
pub use query::{CompiledQuery, Compiler};
pub use serve::{ServeConfig, Server};
pub use store::{DocumentStore, StoreError, StoreStats};
pub use value::Value;
