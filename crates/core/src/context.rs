//! Evaluation contexts (paper §5: `~c = ⟨x, k, n⟩`) and evaluation errors.

use std::fmt;

use xpath_xml::NodeId;

/// An XPath evaluation context: context node `x`, context position `k`,
/// context size `n` with `1 ≤ k ≤ n` (paper §5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Context {
    /// The context node `x`.
    pub node: NodeId,
    /// The context position `k` (1-based).
    pub position: u32,
    /// The context size `n`.
    pub size: u32,
}

impl Context {
    /// A context with position = size = 1 (the usual top-level context).
    pub fn of(node: NodeId) -> Context {
        Context { node, position: 1, size: 1 }
    }

    /// A full context.
    pub fn new(node: NodeId, position: u32, size: u32) -> Context {
        debug_assert!(position >= 1 && position <= size.max(1));
        Context { node, position, size }
    }
}

impl fmt::Display for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}, {}⟩", self.node, self.position, self.size)
    }
}

/// Errors raised during query compilation or evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// The query text failed to lex, parse, or normalize (including
    /// unbound variables discovered during binding substitution). Raised
    /// by the static phase — [`crate::query::Compiler`] and the `Engine`
    /// prepare methods — never by the evaluators themselves.
    Parse(String),
    /// An unknown function was called.
    UnknownFunction(String),
    /// A function was called with the wrong number of arguments.
    WrongArity {
        /// Function name.
        function: String,
        /// Number of arguments supplied.
        got: usize,
        /// Expected arity description (e.g. "2" or "2..=3").
        expected: &'static str,
    },
    /// An operand had a type the operation does not accept (e.g. applying a
    /// location step to a number).
    TypeMismatch(String),
    /// A variable had no binding (the paper assumes bindings are inlined by
    /// normalization).
    UnboundVariable(String),
    /// The evaluator's step budget was exhausted. Only the exponential-time
    /// baseline evaluators use budgets, so experiment harnesses can bound
    /// runaway queries the way the paper's experiments bounded wall-clock
    /// time.
    BudgetExhausted,
    /// A context-value table would exceed the configured capacity (the
    /// bottom-up algorithm materializes `O(|D|)`–`O(|D|³)` rows per
    /// subexpression; see Theorem 6.6).
    Capacity(String),
    /// The query is outside the fragment this evaluator supports (e.g. a
    /// non-Core-XPath query given to the Core XPath engine).
    UnsupportedFragment(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Parse(m) => write!(f, "parse error: {m}"),
            EvalError::UnknownFunction(n) => write!(f, "unknown function {n}()"),
            EvalError::WrongArity { function, got, expected } => {
                write!(f, "{function}() expects {expected} argument(s), got {got}")
            }
            EvalError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            EvalError::UnboundVariable(v) => write!(f, "unbound variable ${v}"),
            EvalError::BudgetExhausted => write!(f, "evaluation step budget exhausted"),
            EvalError::Capacity(m) => write!(f, "capacity exceeded: {m}"),
            EvalError::UnsupportedFragment(m) => write!(f, "unsupported fragment: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Result alias for evaluation.
pub type EvalResult<T> = Result<T, EvalError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_of() {
        let c = Context::of(NodeId(3));
        assert_eq!(c.position, 1);
        assert_eq!(c.size, 1);
        assert_eq!(c.to_string(), "⟨n3, 1, 1⟩");
    }

    #[test]
    fn error_display() {
        assert_eq!(
            EvalError::UnknownFunction("frob".into()).to_string(),
            "unknown function frob()"
        );
        assert_eq!(
            EvalError::WrongArity { function: "concat".into(), got: 1, expected: "2 or more" }
                .to_string(),
            "concat() expects 2 or more argument(s), got 1"
        );
        assert_eq!(EvalError::BudgetExhausted.to_string(), "evaluation step budget exhausted");
        assert_eq!(
            EvalError::Parse("unexpected token".into()).to_string(),
            "parse error: unexpected token"
        );
    }
}
