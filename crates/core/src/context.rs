//! Evaluation contexts (paper §5: `~c = ⟨x, k, n⟩`), evaluation errors,
//! and the cooperative evaluation budget ([`EvalBudget`]).

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use xpath_xml::NodeId;

/// An XPath evaluation context: context node `x`, context position `k`,
/// context size `n` with `1 ≤ k ≤ n` (paper §5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Context {
    /// The context node `x`.
    pub node: NodeId,
    /// The context position `k` (1-based).
    pub position: u32,
    /// The context size `n`.
    pub size: u32,
}

impl Context {
    /// A context with position = size = 1 (the usual top-level context).
    pub fn of(node: NodeId) -> Context {
        Context { node, position: 1, size: 1 }
    }

    /// A full context.
    pub fn new(node: NodeId, position: u32, size: u32) -> Context {
        debug_assert!(position >= 1 && position <= size.max(1));
        Context { node, position, size }
    }
}

impl fmt::Display for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}, {}⟩", self.node, self.position, self.size)
    }
}

/// Errors raised during query compilation or evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// The query text failed to lex, parse, or normalize (including
    /// unbound variables discovered during binding substitution). Raised
    /// by the static phase — [`crate::query::Compiler`] and the `Engine`
    /// prepare methods — never by the evaluators themselves.
    Parse(String),
    /// An unknown function was called.
    UnknownFunction(String),
    /// A function was called with the wrong number of arguments.
    WrongArity {
        /// Function name.
        function: String,
        /// Number of arguments supplied.
        got: usize,
        /// Expected arity description (e.g. "2" or "2..=3").
        expected: &'static str,
    },
    /// An operand had a type the operation does not accept (e.g. applying a
    /// location step to a number).
    TypeMismatch(String),
    /// A variable had no binding (the paper assumes bindings are inlined by
    /// normalization).
    UnboundVariable(String),
    /// The evaluator's step budget was exhausted. Only the exponential-time
    /// baseline evaluators use budgets, so experiment harnesses can bound
    /// runaway queries the way the paper's experiments bounded wall-clock
    /// time.
    BudgetExhausted,
    /// A context-value table would exceed the configured capacity (the
    /// bottom-up algorithm materializes `O(|D|)`–`O(|D|³)` rows per
    /// subexpression; see Theorem 6.6).
    Capacity(String),
    /// The query is outside the fragment this evaluator supports (e.g. a
    /// non-Core-XPath query given to the Core XPath engine).
    UnsupportedFragment(String),
    /// The evaluation was cancelled through the [`EvalBudget`] cancel
    /// flag. The worker unwinds cleanly at the next block boundary —
    /// nothing is poisoned, no buffers leak.
    Cancelled,
    /// The [`EvalBudget`] deadline passed before the evaluation finished.
    /// Like [`EvalError::Cancelled`], this is a clean cooperative exit.
    DeadlineExceeded,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Parse(m) => write!(f, "parse error: {m}"),
            EvalError::UnknownFunction(n) => write!(f, "unknown function {n}()"),
            EvalError::WrongArity { function, got, expected } => {
                write!(f, "{function}() expects {expected} argument(s), got {got}")
            }
            EvalError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            EvalError::UnboundVariable(v) => write!(f, "unbound variable ${v}"),
            EvalError::BudgetExhausted => write!(f, "evaluation step budget exhausted"),
            EvalError::Capacity(m) => write!(f, "capacity exceeded: {m}"),
            EvalError::UnsupportedFragment(m) => write!(f, "unsupported fragment: {m}"),
            EvalError::Cancelled => write!(f, "evaluation cancelled"),
            EvalError::DeadlineExceeded => write!(f, "evaluation deadline exceeded"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Result alias for evaluation.
pub type EvalResult<T> = Result<T, EvalError>;

/// A cooperative evaluation budget: an optional wall-clock deadline and
/// an optional shared cancel flag.
///
/// Every evaluation entry point accepts a budget (`evaluate_with`,
/// `Plan::execute_with`, `QuerySet::evaluate_all_with`, the cursor
/// layer) and polls it at **block boundaries** — between axis passes,
/// CVT row fills, cursor blocks, streaming event chunks — never inside
/// a kernel's inner loop. A tripped budget surfaces as
/// [`EvalError::Cancelled`] or [`EvalError::DeadlineExceeded`]; the
/// evaluator unwinds through ordinary `Result` propagation, so pooled
/// buffers are released by `Drop` as usual and the worker thread is
/// reusable immediately.
///
/// The check granularity is a pass over the document (or a ~4096-node
/// cursor block), so cancellation latency is bounded by one pass, not
/// by whole-query time — the property a deadline exists to provide on
/// pathological queries.
#[derive(Clone, Debug, Default)]
pub struct EvalBudget {
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
}

impl EvalBudget {
    /// A budget that never trips (the default for every plain
    /// `evaluate` entry point).
    pub fn unlimited() -> EvalBudget {
        EvalBudget::default()
    }

    /// A budget that trips once `deadline` passes.
    pub fn deadline(deadline: Instant) -> EvalBudget {
        EvalBudget { deadline: Some(deadline), cancel: None }
    }

    /// A budget that trips `timeout` from now.
    pub fn timeout(timeout: Duration) -> EvalBudget {
        EvalBudget::deadline(Instant::now() + timeout)
    }

    /// Attach a shared cancel flag; setting it to `true` (any ordering)
    /// trips the budget at the next check.
    #[must_use]
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> EvalBudget {
        self.cancel = Some(cancel);
        self
    }

    /// `true` when no deadline and no cancel flag are attached — the
    /// evaluators skip per-block polling entirely then.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.cancel.is_none()
    }

    /// Poll the budget: `Err(Cancelled)` if the cancel flag is set,
    /// `Err(DeadlineExceeded)` if the deadline has passed, else `Ok`.
    /// Cancellation wins over the deadline when both apply.
    #[inline]
    pub fn check(&self) -> EvalResult<()> {
        if let Some(c) = &self.cancel {
            if c.load(Ordering::Relaxed) {
                return Err(EvalError::Cancelled);
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(EvalError::DeadlineExceeded);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_of() {
        let c = Context::of(NodeId(3));
        assert_eq!(c.position, 1);
        assert_eq!(c.size, 1);
        assert_eq!(c.to_string(), "⟨n3, 1, 1⟩");
    }

    #[test]
    fn error_display() {
        assert_eq!(
            EvalError::UnknownFunction("frob".into()).to_string(),
            "unknown function frob()"
        );
        assert_eq!(
            EvalError::WrongArity { function: "concat".into(), got: 1, expected: "2 or more" }
                .to_string(),
            "concat() expects 2 or more argument(s), got 1"
        );
        assert_eq!(EvalError::BudgetExhausted.to_string(), "evaluation step budget exhausted");
        assert_eq!(
            EvalError::Parse("unexpected token".into()).to_string(),
            "parse error: unexpected token"
        );
        assert_eq!(EvalError::Cancelled.to_string(), "evaluation cancelled");
        assert_eq!(EvalError::DeadlineExceeded.to_string(), "evaluation deadline exceeded");
    }

    #[test]
    fn budget_unlimited_never_trips() {
        let b = EvalBudget::unlimited();
        assert!(b.is_unlimited());
        assert_eq!(b.check(), Ok(()));
    }

    #[test]
    fn budget_deadline_trips() {
        let b = EvalBudget::deadline(Instant::now() - Duration::from_millis(1));
        assert!(!b.is_unlimited());
        assert_eq!(b.check(), Err(EvalError::DeadlineExceeded));
        let later = EvalBudget::timeout(Duration::from_secs(3600));
        assert_eq!(later.check(), Ok(()));
    }

    #[test]
    fn budget_cancel_wins_over_deadline() {
        let flag = Arc::new(AtomicBool::new(false));
        let b = EvalBudget::deadline(Instant::now() - Duration::from_millis(1))
            .with_cancel(Arc::clone(&flag));
        assert_eq!(b.check(), Err(EvalError::DeadlineExceeded));
        flag.store(true, Ordering::Relaxed);
        assert_eq!(b.check(), Err(EvalError::Cancelled));
    }
}
