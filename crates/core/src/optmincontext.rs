//! **OptMinContext** (paper §11.2, Algorithm 11.1): the combined query
//! processor.
//!
//! * Supports all of XPath with the MinContext bounds (Theorem 8.6);
//! * queries in the linear-time **Core XPath** fragment take the
//!   `O(|D|·|Q|)` algebraic route (Corollary 11.5);
//! * subexpressions of the **Extended Wadler** shape — `boolean(π)` /
//!   `π RelOp c` — are evaluated bottom-up by backward propagation,
//!   innermost first, and their tables are seeded into MinContext so they
//!   are "not evaluated again" (Corollary 11.4: linear space, quadratic
//!   time for such subexpressions).

use xpath_syntax::Expr;
use xpath_xml::{Document, NodeId};

use crate::context::{Context, EvalBudget, EvalResult};
use crate::corexpath::{self, CoreXPathEvaluator};
use crate::mincontext::MinContextEvaluator;
use crate::value::Value;
use crate::wadler::bottomup_candidate;

/// Execution report: which routes Algorithm 11.1 took (exposed so tests and
/// benches can assert the dispatch).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptReport {
    /// The whole query ran through the linear-time Core XPath algebra.
    pub used_core_xpath: bool,
    /// Number of subexpressions evaluated bottom-up (backward propagation).
    pub bottomup_paths: usize,
}

/// The OptMinContext evaluator.
pub struct OptMinContextEvaluator<'d> {
    /// Shard budget handed to the Core XPath fast path and the seeded
    /// MinContext evaluator (`0` = auto; see [`crate::parallel`]).
    threads: u32,
    doc: &'d Document,
    /// Deadline/cancellation budget, forwarded to whichever route the
    /// dispatch takes (the Core XPath fast path or seeded MinContext).
    eval_budget: EvalBudget,
}

impl<'d> OptMinContextEvaluator<'d> {
    /// Create an evaluator over `doc` with the auto-resolved thread
    /// budget.
    pub fn new(doc: &'d Document) -> Self {
        OptMinContextEvaluator { doc, threads: 0, eval_budget: EvalBudget::unlimited() }
    }

    /// Pin the shard budget for the underlying engines: `0` (default)
    /// auto-resolves, `1` keeps every pass serial.
    pub fn with_threads(mut self, threads: u32) -> Self {
        self.threads = threads;
        self
    }

    /// Attach a deadline/cancellation [`EvalBudget`]: both dispatch routes
    /// poll it at their pass boundaries.
    #[must_use]
    pub fn with_eval_budget(mut self, budget: EvalBudget) -> Self {
        self.eval_budget = budget;
        self
    }

    /// Evaluate `query` at `ctx` (Algorithm 11.1).
    pub fn evaluate(&self, query: &Expr, ctx: Context) -> EvalResult<Value> {
        self.evaluate_with_report(query, ctx).map(|(v, _)| v)
    }

    /// Evaluate and report the dispatch decisions.
    pub fn evaluate_with_report(
        &self,
        query: &Expr,
        ctx: Context,
    ) -> EvalResult<(Value, OptReport)> {
        let mut report = OptReport::default();

        // Corollary 11.5: whole-query Core XPath fast path.
        if let Ok(cq) = corexpath::compile(query) {
            report.used_core_xpath = true;
            let ev = CoreXPathEvaluator::with_backend(
                self.doc,
                corexpath::AxisBackend::Parallel(self.threads),
            );
            let out = ev.try_evaluate(&cq, &[ctx.node], &self.eval_budget)?;
            return Ok((Value::NodeSet(out), report));
        }

        // Algorithm 11.1: evaluate all bottom-up location paths inside Q,
        // innermost first, seeding their tables into MinContext.
        let mc = MinContextEvaluator::new(self.doc)
            .with_threads(self.threads)
            .with_eval_budget(self.eval_budget.clone());
        let candidates = collect_candidates_postorder(query);
        for e in candidates {
            self.eval_budget.check()?;
            let table = mc.eval_bottomup_expr(e)?;
            mc.seed_table(e, table);
            report.bottomup_paths += 1;
        }
        let v = mc.evaluate_with_seeds(query, ctx)?;
        Ok((v, report))
    }

    /// Evaluate over several context nodes at once (useful for XSLT-style
    /// batch matching); results are per node.
    pub fn evaluate_at_nodes(&self, query: &Expr, nodes: &[NodeId]) -> EvalResult<Vec<Value>> {
        nodes.iter().map(|&n| self.evaluate(query, Context::of(n))).collect()
    }
}

/// Post-order collection of `boolean(π)` / `π RelOp c` occurrences, so
/// inner candidates are seeded before outer ones ("starting with the
/// innermost ones in case of nesting").
fn collect_candidates_postorder(e: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn rec<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
        // Children first (post-order).
        match e {
            Expr::Path(p) => {
                if let xpath_syntax::PathStart::Expr(head) = &p.start {
                    rec(head, out);
                }
                for s in &p.steps {
                    for pr in &s.predicates {
                        rec(pr, out);
                    }
                }
            }
            Expr::Filter { primary, predicates } => {
                rec(primary, out);
                for pr in predicates {
                    rec(pr, out);
                }
            }
            Expr::Binary { left, right, .. } => {
                rec(left, out);
                rec(right, out);
            }
            Expr::Neg(inner) => rec(inner, out),
            Expr::Call { args, .. } => {
                for a in args {
                    rec(a, out);
                }
            }
            Expr::Literal(_) | Expr::Number(_) | Expr::Var(_) => {}
        }
        if bottomup_candidate(e).is_some() {
            out.push(e);
        }
    }
    rec(e, &mut out);
    out
}

/// Convenience: evaluate a query string with OptMinContext.
pub fn evaluate_str(doc: &Document, query: &str, ctx: Context) -> EvalResult<Value> {
    let e = xpath_syntax::parse_normalized(query)
        .map_err(|err| crate::context::EvalError::Parse(err.to_string()))?;
    OptMinContextEvaluator::new(doc).evaluate(&e, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveEvaluator;
    use xpath_syntax::parse_normalized;
    use xpath_xml::generate::{doc_bookstore, doc_figure8, doc_flat, doc_flat_text};

    #[test]
    fn example_11_2_full_query() {
        // The §11 running example, evaluated end-to-end by OptMinContext.
        let d = doc_figure8();
        let q = "/child::a/descendant::*[boolean(following::d[(position() != last()) and \
                 (preceding-sibling::*/preceding::* = 100)]/following::d)]";
        let e = parse_normalized(q).unwrap();
        let ev = OptMinContextEvaluator::new(&d);
        let (v, report) = ev.evaluate_with_report(&e, Context::of(d.root())).unwrap();
        let expect: Vec<_> =
            ["11", "12", "13", "14", "22"].iter().map(|i| d.element_by_id(i).unwrap()).collect();
        assert_eq!(v, Value::NodeSet(expect.into()));
        assert!(!report.used_core_xpath);
        // Two bottom-up paths: the inner "=100" comparison and the outer
        // boolean(...).
        assert_eq!(report.bottomup_paths, 2);
    }

    #[test]
    fn core_xpath_queries_take_fast_path() {
        let d = doc_bookstore();
        let e = parse_normalized("//book[author]/title").unwrap();
        let ev = OptMinContextEvaluator::new(&d);
        let (v, report) = ev.evaluate_with_report(&e, Context::of(d.root())).unwrap();
        assert!(report.used_core_xpath);
        assert_eq!(v.as_node_set().unwrap().len(), 4);
    }

    #[test]
    fn positional_queries_fall_back_to_mincontext() {
        let d = doc_flat(5);
        let e = parse_normalized("//b[position() = last()]").unwrap();
        let ev = OptMinContextEvaluator::new(&d);
        let (v, report) = ev.evaluate_with_report(&e, Context::of(d.root())).unwrap();
        assert!(!report.used_core_xpath);
        assert_eq!(v.as_node_set().unwrap().len(), 1);
    }

    #[test]
    fn agrees_with_naive_on_corpus() {
        let docs = [doc_flat(4), doc_flat_text(3), doc_figure8(), doc_bookstore()];
        let queries = [
            "//a/b",
            "//b[2]",
            "//*[parent::a/child::* = 'c']",
            "//a/b[count(parent::a/b) > 1]",
            "count(//b/following::b)",
            "(//c | //d)[2]",
            "id('12 24')/parent::*",
            "//*[@id = '22']",
            "//section/book[2]/title",
            "//book[author/last = 'Koch']/@id",
            "//d/ancestor::b",
            "//b[c = '23 24']",
            "//*[d = 100 and position() != last()]",
            "//*[boolean(following::d) or @year > 2000]",
            "sum(//d) + count(//c)",
            "//d[not(following-sibling::*)]",
            "string(//book[1]/title)",
        ];
        for d in &docs {
            for q in queries {
                let e = parse_normalized(q).unwrap();
                let naive = NaiveEvaluator::new(d).evaluate(&e, Context::of(d.root())).unwrap();
                let opt =
                    OptMinContextEvaluator::new(d).evaluate(&e, Context::of(d.root())).unwrap();
                assert!(naive.semantically_equal(&opt), "query {q} on {d:?}: {naive:?} vs {opt:?}");
            }
        }
    }

    #[test]
    fn wadler_queries_use_bottomup_paths() {
        let d = doc_figure8();
        // [d = 100] is a π RelOp c occurrence → bottom-up.
        let e = parse_normalized("//*[d = 100 and position() = 1]").unwrap();
        let ev = OptMinContextEvaluator::new(&d);
        let (v, report) = ev.evaluate_with_report(&e, Context::of(d.root())).unwrap();
        assert!(report.bottomup_paths >= 1, "{report:?}");
        let naive = NaiveEvaluator::new(&d)
            .evaluate(
                &parse_normalized("//*[d = 100 and position() = 1]").unwrap(),
                Context::of(d.root()),
            )
            .unwrap();
        assert!(naive.semantically_equal(&v));
    }

    #[test]
    fn batch_evaluation() {
        let d = doc_flat(3);
        let a = d.document_element().unwrap();
        let bs: Vec<NodeId> = d.children(a).collect();
        let e = parse_normalized("count(following-sibling::b)").unwrap();
        let ev = OptMinContextEvaluator::new(&d);
        let vs = ev.evaluate_at_nodes(&e, &bs).unwrap();
        assert_eq!(vs, vec![Value::Number(2.0), Value::Number(1.0), Value::Number(0.0)]);
    }
}
