//! Node tests (paper §4): the function `T` mapping node tests to the subset
//! of `dom` satisfying them, and per-node matching relative to an axis's
//! principal node type.

use xpath_syntax::{Axis, KindTest, NodeTest, PrincipalKind};
use xpath_xml::{Document, NodeId, NodeKind};

/// Does node `n` satisfy node test `test` on axis `axis` (whose principal
/// node type resolves name/wildcard tests, §4)?
pub fn matches(doc: &Document, axis: Axis, test: &NodeTest, n: NodeId) -> bool {
    match test {
        NodeTest::Kind(k) => kind_matches(doc, k, n),
        NodeTest::Wildcard => principal_matches(doc, axis, n),
        NodeTest::Name(name) => {
            principal_matches(doc, axis, n)
                && doc.lookup_name(name).is_some_and(|id| doc.name_id(n) == Some(id))
        }
        NodeTest::NsWildcard(prefix) => {
            principal_matches(doc, axis, n)
                && doc
                    .name(n)
                    .and_then(|full| full.split_once(':'))
                    .is_some_and(|(p, _)| p == prefix)
        }
    }
}

fn principal_matches(doc: &Document, axis: Axis, n: NodeId) -> bool {
    match axis.principal_kind() {
        PrincipalKind::Element => doc.kind(n) == NodeKind::Element,
        PrincipalKind::Attribute => doc.kind(n) == NodeKind::Attribute,
        PrincipalKind::Namespace => doc.kind(n) == NodeKind::Namespace,
    }
}

fn kind_matches(doc: &Document, k: &KindTest, n: NodeId) -> bool {
    match k {
        KindTest::Node => true,
        KindTest::Text => doc.kind(n) == NodeKind::Text,
        KindTest::Comment => doc.kind(n) == NodeKind::Comment,
        KindTest::Pi(target) => {
            doc.kind(n) == NodeKind::ProcessingInstruction
                && target.as_deref().is_none_or(|t| doc.name(n) == Some(t))
        }
    }
}

/// The set `T(t)` (§4) relative to an axis: all nodes of the document
/// satisfying the test. Sorted in document order. `O(|D|)`. The returned
/// vector is drawn from the thread-local recycling pool
/// ([`xpath_xml::pool`]), so repeated scans reuse one buffer.
pub fn matching_set(doc: &Document, axis: Axis, test: &NodeTest) -> Vec<NodeId> {
    let mut out = xpath_xml::pool::take_ids();
    out.extend(doc.all_nodes().filter(|&n| matches(doc, axis, test, n)));
    out
}

/// A pooled copy of a precomputed id list (the [`matching_set_indexed`]
/// fast paths hand out index-owned slices).
fn pooled_copy(ids: &[NodeId]) -> Vec<NodeId> {
    let mut out = xpath_xml::pool::take_ids();
    out.extend_from_slice(ids);
    out
}

/// [`matching_set`] backed by a prebuilt
/// [`NameIndex`](xpath_xml::index::NameIndex): `O(1)` lookup for the common
/// test shapes, falling back to the scan for the rest (`node()`, PI
/// targets, `NCName:*`).
pub fn matching_set_indexed(
    doc: &Document,
    index: &xpath_xml::index::NameIndex,
    axis: Axis,
    test: &NodeTest,
) -> Vec<NodeId> {
    use xpath_syntax::PrincipalKind;
    match test {
        NodeTest::Name(name) => {
            let Some(id) = doc.lookup_name(name) else { return xpath_xml::pool::take_ids() };
            match axis.principal_kind() {
                PrincipalKind::Element => pooled_copy(index.elements_named(id)),
                PrincipalKind::Attribute => pooled_copy(index.attributes_named(id)),
                PrincipalKind::Namespace => {
                    // Namespace nodes are few; filter the kind list by name.
                    let mut out = xpath_xml::pool::take_ids();
                    out.extend(
                        index
                            .namespace_nodes()
                            .iter()
                            .copied()
                            .filter(|&n| doc.name_id(n) == Some(id)),
                    );
                    out
                }
            }
        }
        NodeTest::Wildcard => match axis.principal_kind() {
            PrincipalKind::Element => pooled_copy(index.elements()),
            PrincipalKind::Attribute => pooled_copy(index.attributes()),
            PrincipalKind::Namespace => pooled_copy(index.namespace_nodes()),
        },
        NodeTest::Kind(KindTest::Text) => pooled_copy(index.text_nodes()),
        NodeTest::Kind(KindTest::Comment) => pooled_copy(index.comments()),
        NodeTest::Kind(KindTest::Pi(None)) => pooled_copy(index.processing_instructions()),
        NodeTest::Kind(KindTest::Pi(Some(_)))
        | NodeTest::Kind(KindTest::Node)
        | NodeTest::NsWildcard(_) => matching_set(doc, axis, test),
    }
}

/// Filter a node list in place by a node test.
pub fn filter(doc: &Document, axis: Axis, test: &NodeTest, nodes: &mut Vec<NodeId>) {
    nodes.retain(|&n| matches(doc, axis, test, n));
}

/// Filter a [`NodeSet`](crate::nodeset::NodeSet) in place by a node test.
/// The common fast paths avoid per-node dispatch: `node()` keeps
/// everything, and name tests against a name the document never interned
/// clear the set outright.
pub fn filter_set(
    doc: &Document,
    axis: Axis,
    test: &NodeTest,
    nodes: &mut crate::nodeset::NodeSet,
) {
    match test {
        NodeTest::Kind(KindTest::Node) => {}
        NodeTest::Name(name) if doc.lookup_name(name).is_none() => {
            *nodes = crate::nodeset::NodeSet::new();
        }
        _ => nodes.retain(|n| matches(doc, axis, test, n)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_xml::generate::doc_figure8;
    use xpath_xml::Document;

    #[test]
    fn example_4_1_typed_sets() {
        // T(element()) over DOC(4), expressed via node tests.
        let d = Document::parse_str("<a><b/><b/><b/><b/></a>").unwrap();
        let t_node = matching_set(&d, Axis::Child, &NodeTest::Kind(KindTest::Node));
        assert_eq!(t_node.len(), d.len()); // T(node()) = dom
        let t_elem = matching_set(&d, Axis::Child, &NodeTest::Wildcard);
        assert_eq!(t_elem.len(), 5); // a + 4 b's
        let t_a = matching_set(&d, Axis::Child, &NodeTest::Name("a".into()));
        assert_eq!(t_a.len(), 1);
        let t_b = matching_set(&d, Axis::Child, &NodeTest::Name("b".into()));
        assert_eq!(t_b.len(), 4);
    }

    #[test]
    fn principal_type_depends_on_axis() {
        let d = doc_figure8();
        let b11 = d.element_by_id("11").unwrap();
        let id_attr = d.attribute(b11, "id").unwrap();
        // "id" as a name test matches the attribute on the attribute axis...
        assert!(matches(&d, Axis::Attribute, &NodeTest::Name("id".into()), id_attr));
        // ...but not on the child axis (principal type element).
        assert!(!matches(&d, Axis::Child, &NodeTest::Name("id".into()), id_attr));
        // Wildcard likewise.
        assert!(matches(&d, Axis::Attribute, &NodeTest::Wildcard, id_attr));
        assert!(!matches(&d, Axis::Child, &NodeTest::Wildcard, id_attr));
        // node() matches anything regardless of axis.
        assert!(matches(&d, Axis::Child, &NodeTest::Kind(KindTest::Node), id_attr));
    }

    #[test]
    fn kind_tests() {
        let d = Document::parse_str("<a>t<!--c--><?p data?></a>").unwrap();
        let a = d.document_element().unwrap();
        let kids: Vec<NodeId> = d.children(a).collect();
        assert!(matches(&d, Axis::Child, &NodeTest::Kind(KindTest::Text), kids[0]));
        assert!(matches(&d, Axis::Child, &NodeTest::Kind(KindTest::Comment), kids[1]));
        assert!(matches(&d, Axis::Child, &NodeTest::Kind(KindTest::Pi(None)), kids[2]));
        assert!(matches(&d, Axis::Child, &NodeTest::Kind(KindTest::Pi(Some("p".into()))), kids[2]));
        assert!(!matches(
            &d,
            Axis::Child,
            &NodeTest::Kind(KindTest::Pi(Some("q".into()))),
            kids[2]
        ));
        assert!(!matches(&d, Axis::Child, &NodeTest::Kind(KindTest::Text), kids[1]));
    }

    #[test]
    fn ns_wildcard() {
        let d = Document::parse_str("<a><pre:x/><pre:y/><other:z/><plain/></a>").unwrap();
        let hits = matching_set(&d, Axis::Child, &NodeTest::NsWildcard("pre".into()));
        assert_eq!(hits.len(), 2);
        let misses = matching_set(&d, Axis::Child, &NodeTest::NsWildcard("nope".into()));
        assert!(misses.is_empty());
    }

    #[test]
    fn unknown_name_matches_nothing() {
        let d = doc_figure8();
        assert!(matching_set(&d, Axis::Child, &NodeTest::Name("zzz".into())).is_empty());
    }
}
