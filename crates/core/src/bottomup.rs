//! Bottom-up evaluation of XPath (paper §6): the **context-value table
//! principle** and Algorithm 6.3.
//!
//! For every subexpression of the query — traversing the parse tree from
//! the leaves to the root — the evaluator materializes a *context-value
//! table* holding the expression's value for **every** context, so no
//! subexpression is ever evaluated twice for the same context. This gives
//! the polynomial combined-complexity bound of Theorem 6.6
//! (`O(|D|⁵·|Q|²)` time, improvable per Remark 6.7).
//!
//! Tables are keyed by the *relevant* projection of the context (footnote 8
//! / §8.2): a table for `position() != last()` has `O(|D|²)` rows keyed by
//! `(k, n)`; a table for a relative location path has `O(|D|)` rows keyed
//! by the context node. This is exactly the reduction the paper applies in
//! Example 6.4 ("the k and n columns have been omitted ... full tables are
//! obtained by computing the Cartesian product").
//!
//! The hallmark of the bottom-up strategy — and why §7 then derives the
//! top-down algorithm — is that tables are computed for all of `dom` even
//! where only a few contexts are reachable.

use std::collections::HashMap;

use xpath_syntax::{BinaryOp, Expr, LocationPath, PathStart, Step};
use xpath_xml::{Document, NodeId};

use crate::context::{Context, EvalBudget, EvalError, EvalResult};
use crate::eval_common::{apply_binary, position_of, predicate_holds, step_candidates};
use crate::functions;
use crate::nodeset::NodeSet;
use crate::relev::{relev, Relev};
use crate::value::Value;

/// A context-value table: the relation `E↑[[e]]` restricted to the relevant
/// context components (Definition 6.1, Table IV).
///
/// Tables whose relevance is a subset of `{cn}` — the overwhelming
/// majority after the footnote-8 reduction — are stored as a **dense
/// vector indexed by the projected node key** (`x + 1`, with slot 0 for
/// constant rows), so lookups on the hot path are an array access instead
/// of a hash probe. The bottom-up evaluator enumerates all of `dom`, so
/// its tables fill that vector contiguously; if a minimal-context caller
/// populates only a sparse subset of nodes (MinContext covers reachable
/// candidates only), the table spills back to the keyed map rather than
/// allocating `O(|dom|)` slots — preserving the §8 space behaviour.
/// Tables that depend on `cp`/`cs` always use the keyed map.
#[derive(Clone, Debug)]
pub struct CvTable {
    relev: Relev,
    rows: Rows,
}

#[derive(Clone, Debug)]
enum Rows {
    /// `Relev ⊆ {cn}` and densely filled: indexed by `project(ctx).0`.
    ByNode { slots: Vec<Option<Value>>, filled: usize },
    /// `cp`/`cs`-relevant tables, and sparse cn-only tables after a
    /// spill: keyed by the full projection.
    Keyed(HashMap<(u32, u32, u32), Value>),
}

/// Spill policy for cn-only tables, with **hysteresis**. The dense layout
/// is clearly winning while ≥ ~1/4 of the slots are filled, but spilling
/// is one-way (a spilled table never re-densifies — flipping back would
/// re-copy every row and invite thrash), so the spill trigger is set much
/// looser: a table spills to the keyed map only when growing to `i + 1`
/// slots would leave **less than ~1/16** of them filled (beyond a flat
/// 64-slot allowance). A minimal-context caller filling rows in ascending
/// id order at a moderate stride — the MinContext frontier pattern, which
/// hovers near the 1/4 mark — therefore settles into the dense layout
/// instead of spilling the table it just grew (the spill→re-densify
/// thrash this guard exists for); only genuinely sparse fills (< 1/16)
/// pay the one-time spill.
fn spill_to_keyed(i: usize, filled: usize) -> bool {
    i >= 16 * (filled + 1) + 64
}

impl CvTable {
    /// An empty table keyed by the given relevance projection.
    pub fn new(relev: Relev) -> CvTable {
        let rows = if relev.is_cn_only() {
            Rows::ByNode { slots: Vec::new(), filled: 0 }
        } else {
            Rows::Keyed(HashMap::new())
        };
        CvTable { relev, rows }
    }

    /// Record the value at (the relevant projection of) `ctx`.
    pub fn insert(&mut self, ctx: Context, v: Value) {
        let key = self.relev.project(ctx);
        self.insert_key(key, v);
    }

    fn insert_key(&mut self, key: (u32, u32, u32), v: Value) {
        if let Rows::ByNode { slots, filled } = &mut self.rows {
            let i = key.0 as usize;
            if i >= slots.len() && spill_to_keyed(i, *filled) {
                // Sparse fill pattern: spill to the keyed map so table
                // size tracks rows, not the largest node id.
                let spilled: HashMap<(u32, u32, u32), Value> = slots
                    .drain(..)
                    .enumerate()
                    .filter_map(|(j, v)| v.map(|v| ((j as u32, 0, 0), v)))
                    .collect();
                self.rows = Rows::Keyed(spilled);
            }
        }
        match &mut self.rows {
            Rows::ByNode { slots, filled } => {
                let i = key.0 as usize;
                if i >= slots.len() {
                    slots.resize(i + 1, None);
                }
                if slots[i].is_none() {
                    *filled += 1;
                }
                slots[i] = Some(v);
            }
            Rows::Keyed(m) => {
                m.insert(key, v);
            }
        }
    }

    /// The value of the expression at `ctx`, if the context was enumerated.
    pub fn value_at(&self, ctx: Context) -> Option<&Value> {
        let key = self.relev.project(ctx);
        match &self.rows {
            Rows::ByNode { slots, .. } => slots.get(key.0 as usize).and_then(Option::as_ref),
            Rows::Keyed(m) => m.get(&key),
        }
    }

    /// Iterate the materialized `(projected key, value)` rows.
    fn iter_rows(&self) -> RowIter<'_> {
        match &self.rows {
            Rows::ByNode { slots, .. } => Box::new(
                slots
                    .iter()
                    .enumerate()
                    .filter_map(|(i, v)| v.as_ref().map(|v| ((i as u32, 0, 0), v))),
            ),
            Rows::Keyed(m) => Box::new(m.iter().map(|(&k, v)| (k, v))),
        }
    }

    /// Number of materialized rows.
    pub fn len(&self) -> usize {
        match &self.rows {
            Rows::ByNode { filled, .. } => *filled,
            Rows::Keyed(m) => m.len(),
        }
    }

    /// Tables always have at least one row.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The relevance set this table is keyed by.
    pub fn relevance(&self) -> Relev {
        self.relev
    }

    /// Is the table currently in the dense slot layout? (Exposed for the
    /// spill-policy regression tests and table-size diagnostics.)
    pub fn rows_dense(&self) -> bool {
        matches!(self.rows, Rows::ByNode { .. })
    }
}

/// Iterator over a table's materialized rows (see [`CvTable::iter_rows`]).
type RowIter<'a> = Box<dyn Iterator<Item = ((u32, u32, u32), &'a Value)> + 'a>;

/// The bottom-up evaluator (Algorithm 6.3).
///
/// The per-node table fills are data-parallel: every row of a CVT pass is
/// computed independently from the (immutable) child tables. With a
/// thread budget above 1 ([`BottomUpEvaluator::with_threads`]), passes
/// whose row count clears the cost model's spawn gate run sharded over
/// contiguous node-id ranges on a scoped thread pool
/// ([`crate::parallel`]); smaller passes stay serial and bit-identical.
pub struct BottomUpEvaluator<'d> {
    doc: &'d Document,
    /// Maximum rows per context-value table; exceeded → [`EvalError::Capacity`].
    row_cap: usize,
    /// Shard budget for the CVT row passes (1 = always serial).
    threads: usize,
    /// Cost model gating the per-pass spawn decision.
    cost: xpath_axes::CostModel,
    /// Deadline/cancellation budget, polled before every table pass.
    eval_budget: EvalBudget,
}

impl<'d> BottomUpEvaluator<'d> {
    /// Default row cap: 2 million rows per table.
    pub fn new(doc: &'d Document) -> Self {
        BottomUpEvaluator {
            doc,
            row_cap: 2_000_000,
            threads: 1,
            cost: *xpath_axes::CostModel::global(),
            eval_budget: EvalBudget::unlimited(),
        }
    }

    /// Attach a deadline/cancellation [`EvalBudget`], polled before every
    /// context-value table pass (each an `O(|D|·…)` unit, so a trip costs
    /// at most one more pass).
    #[must_use]
    pub fn with_eval_budget(mut self, budget: EvalBudget) -> Self {
        self.eval_budget = budget;
        self
    }

    /// Evaluator with a custom per-table row cap.
    pub fn with_row_cap(doc: &'d Document, row_cap: usize) -> Self {
        BottomUpEvaluator { row_cap, ..BottomUpEvaluator::new(doc) }
    }

    /// Set the shard budget for the CVT row passes: `0` resolves the
    /// process default (`GKP_THREADS` / the machine's parallelism), `1`
    /// keeps every pass serial, higher values cap the scoped pool.
    /// Sharding is still cost-gated per pass — see [`crate::parallel`].
    pub fn with_threads(mut self, threads: u32) -> Self {
        self.threads = crate::parallel::resolve_threads(threads);
        self
    }

    /// Override the cost model gating the spawn decisions (tests, forced
    /// always/never-shard configurations, calibration).
    pub fn with_cost_model(mut self, model: xpath_axes::CostModel) -> Self {
        self.cost = model;
        self
    }

    /// Shards for a pass of `rows` rows under the configured budget.
    fn row_shards(&self, rows: usize) -> usize {
        crate::parallel::plan_row_shards(rows, self.threads, &self.cost)
    }

    /// Evaluate `query` at `ctx` by building the full context-value tables
    /// bottom-up and reading the result out of the root table
    /// (Theorem 6.2: the value at `ctx` is the unique `v` with
    /// `⟨x,k,n,v⟩ ∈ E↑[[e]]`).
    pub fn evaluate(&self, query: &Expr, ctx: Context) -> EvalResult<Value> {
        let t = self.table(query)?;
        t.value_at(ctx)
            .cloned()
            .ok_or_else(|| EvalError::Capacity(format!("context {ctx} not enumerated")))
    }

    /// Compute `E↑[[e]]` — public so tests can replicate the tables of
    /// Example 6.4 and Figure 9.
    pub fn table(&self, e: &Expr) -> EvalResult<CvTable> {
        match e {
            Expr::Number(v) => Ok(self.const_table(Value::Number(*v))),
            Expr::Literal(s) => Ok(self.const_table(Value::String(s.clone()))),
            Expr::Var(name) => Err(EvalError::UnboundVariable(name.clone())),
            Expr::Path(p) => self.path_table(p),
            Expr::Filter { primary, predicates } => self.filter_table(primary, predicates),
            Expr::Neg(inner) => {
                let t = self.table(inner)?;
                let mut out = CvTable::new(t.relev);
                for (k, v) in t.iter_rows() {
                    out.insert_key(k, Value::Number(-v.to_number(self.doc)));
                }
                Ok(out)
            }
            Expr::Binary { op, left, right } => {
                let lt = self.table(left)?;
                let rt = self.table(right)?;
                let rel = relev(e);
                let contexts = self.contexts_for(rel)?;
                self.fill_table(rel, &contexts, |ctx| {
                    let l = lt.value_at(ctx).expect("child table covers context").clone();
                    let r = rt.value_at(ctx).expect("child table covers context").clone();
                    match op {
                        BinaryOp::And => Ok(Value::Boolean(l.to_boolean() && r.to_boolean())),
                        BinaryOp::Or => Ok(Value::Boolean(l.to_boolean() || r.to_boolean())),
                        _ => apply_binary(self.doc, *op, l, r),
                    }
                })
            }
            Expr::Call { name, args } => {
                let arg_tables: Vec<CvTable> =
                    args.iter().map(|a| self.table(a)).collect::<Result<_, _>>()?;
                let rel = relev(e);
                let contexts = self.contexts_for(rel)?;
                self.fill_table(rel, &contexts, |ctx| {
                    let argv: Vec<Value> = arg_tables
                        .iter()
                        .map(|t| t.value_at(ctx).expect("child table covers context").clone())
                        .collect();
                    functions::apply(self.doc, name, argv, &ctx)
                })
            }
        }
    }

    /// Fill a table over `contexts` by evaluating `row` per context. The
    /// row evaluations are independent reads of immutable child tables,
    /// so the pass runs sharded across the thread budget when the spawn
    /// gate approves; the (cheap) inserts are applied serially in context
    /// order afterwards, keeping the table bit-identical to a serial fill.
    fn fill_table(
        &self,
        rel: Relev,
        contexts: &[Context],
        row: impl Fn(Context) -> EvalResult<Value> + Sync,
    ) -> EvalResult<CvTable> {
        self.eval_budget.check()?;
        let shards = self.row_shards(contexts.len());
        let values = crate::parallel::try_map_rows(contexts.len() as u32, shards, |lo, hi| {
            contexts[lo as usize..hi as usize].iter().map(|&ctx| row(ctx)).collect()
        })?;
        let mut out = CvTable::new(rel);
        for (&ctx, v) in contexts.iter().zip(values) {
            out.insert(ctx, v);
        }
        Ok(out)
    }

    fn const_table(&self, v: Value) -> CvTable {
        let mut t = CvTable::new(Relev::NONE);
        t.insert_key((0, 0, 0), v);
        t
    }

    /// Enumerate the contexts spanning the relevant components: all of
    /// `dom` for `cn`, all `1 ≤ k ≤ n ≤ |dom|` for `cp`/`cs`.
    fn contexts_for(&self, rel: Relev) -> EvalResult<Vec<Context>> {
        let n = self.doc.len() as u32;
        let nodes: Vec<NodeId> =
            if rel.has_cn() { self.doc.all_nodes().collect() } else { vec![NodeId(0)] };
        let positions: Vec<(u32, u32)> = match (rel.has_cp(), rel.has_cs()) {
            (false, false) => vec![(1, 1)],
            (true, false) => (1..=n).map(|k| (k, n)).collect(),
            (false, true) => (1..=n).map(|s| (1, s)).collect(),
            (true, true) => {
                let mut v = Vec::with_capacity((n * (n + 1) / 2) as usize);
                for s in 1..=n {
                    for k in 1..=s {
                        v.push((k, s));
                    }
                }
                v
            }
        };
        let count = nodes.len() * positions.len();
        if count > self.row_cap {
            return Err(EvalError::Capacity(format!(
                "table would need {count} rows (cap {}); |D| = {}",
                self.row_cap,
                self.doc.len()
            )));
        }
        let mut out = Vec::with_capacity(count);
        for &x in &nodes {
            for &(k, s) in &positions {
                out.push(Context::new(x, k, s));
            }
        }
        Ok(out)
    }

    /// `E↑` for location paths (Table IV): compute, for **every** node of
    /// the document, the set reachable via the path — the bottom-up
    /// hallmark.
    fn path_table(&self, p: &LocationPath) -> EvalResult<CvTable> {
        // Per-step tables S_i : dom → 2^dom with predicates already applied
        // (positional per-node lists; see `step_table`).
        let step_tables: Vec<Vec<Vec<NodeId>>> =
            p.steps.iter().map(|s| self.step_table(s)).collect::<Result<_, _>>()?;
        // Fold right-to-left: R_i(x) = ∪_{y ∈ S_i(x)} R_{i+1}(y). `None`
        // stands for the identity frontier R(x) = {x}, so the first folded
        // step materializes its per-node lists directly instead of
        // unioning singletons one at a time. Each pass's rows read only
        // the previous (immutable) frontier, so they run sharded across
        // the thread budget when the spawn gate approves.
        let n = self.doc.len();
        let mut reach: Option<Vec<NodeSet>> = None;
        for st in step_tables.iter().rev() {
            self.eval_budget.check()?;
            let prev = reach.take();
            let shards = self.row_shards(n);
            let next = crate::parallel::map_rows(n as u32, shards, |lo, hi| {
                (lo as usize..hi as usize)
                    .map(|x| match &prev {
                        None => {
                            // Copy through the recycling shelves: the
                            // frontier sets churn once per fold pass.
                            let mut v = xpath_xml::pool::take_ids();
                            v.extend_from_slice(&st[x]);
                            NodeSet::from_sorted(v)
                        }
                        Some(r) => {
                            // Pre-size the accumulator: when the summed
                            // input sizes clear the dense threshold, start
                            // dense so the unions are word-parallel
                            // instead of repeated vector merges
                            // (quadratic on wide step results).
                            let bound: usize = st[x].iter().map(|&y| r[y.index()].len()).sum();
                            let mut acc = if bound as u64 * NodeSet::DENSE_DEN
                                >= n as u64 * NodeSet::DENSE_NUM
                            {
                                NodeSet::empty_dense(n as u32)
                            } else {
                                NodeSet::new()
                            };
                            for &y in &st[x] {
                                acc.union_with(&r[y.index()]);
                            }
                            acc.adapt()
                        }
                    })
                    .collect()
            });
            reach = Some(next);
        }
        // The per-step candidate lists are dead once the fold finishes:
        // recycle them so the next pass (or evaluation) reuses the
        // buffers instead of reallocating per row.
        for st in step_tables {
            for row in st {
                xpath_xml::pool::give_ids(row);
            }
        }
        match &p.start {
            PathStart::Root => {
                // E↑[[/π]] = C × {S | ⟨root, k, n, S⟩ ∈ E↑[[π]]}.
                let root = self.doc.root();
                let at_root = match &reach {
                    Some(r) => r[root.index()].clone(),
                    None => NodeSet::singleton(root),
                };
                Ok(self.const_table(Value::NodeSet(at_root)))
            }
            PathStart::ContextNode => {
                let mut t = CvTable::new(Relev::CN);
                match reach {
                    // Move each reach set into its row instead of cloning
                    // (the frontier is dead after this loop).
                    Some(r) => {
                        for (i, set) in r.into_iter().enumerate() {
                            t.insert(Context::of(NodeId(i as u32)), Value::NodeSet(set));
                        }
                    }
                    None => {
                        for x in self.doc.all_nodes() {
                            t.insert(Context::of(x), Value::NodeSet(NodeSet::singleton(x)));
                        }
                    }
                }
                Ok(t)
            }
            PathStart::Expr(head) => {
                let ht = self.table(head)?;
                let mut t = CvTable::new(ht.relev);
                for (key, v) in ht.iter_rows() {
                    let Some(set) = v.as_node_set() else {
                        return Err(EvalError::TypeMismatch(
                            "path start must evaluate to a node set".into(),
                        ));
                    };
                    let acc = match &reach {
                        Some(r) => {
                            let mut acc = NodeSet::new();
                            for y in set {
                                acc.union_with(&r[y.index()]);
                            }
                            acc
                        }
                        None => set.clone(),
                    };
                    t.insert_key(key, Value::NodeSet(acc));
                }
                Ok(t)
            }
        }
    }

    /// The table of one location step `χ::t[e1]…[em]`: for every node `x`,
    /// the candidate set with all predicates applied (Table IV's
    /// "location step E[e] over axis χ" row, iterated over the predicates).
    /// Per-node lists stay plain vectors: predicate evaluation is
    /// positional (`<doc,χ` indexing).
    fn step_table(&self, step: &Step) -> EvalResult<Vec<Vec<NodeId>>> {
        self.eval_budget.check()?;
        let pred_tables: Vec<CvTable> =
            step.predicates.iter().map(|e| self.table(e)).collect::<Result<_, _>>()?;
        // One row per node of dom, each independent of the others: this is
        // the CVT fill the parallel layer shards over contiguous id ranges
        // (the predicate tables are immutable shared reads).
        let n = self.doc.len() as u32;
        let shards = self.row_shards(n as usize);
        crate::parallel::try_map_rows(n, shards, |lo, hi| {
            (lo..hi).map(|x| self.step_row(step, &pred_tables, NodeId(x))).collect()
        })
    }

    /// One row of [`BottomUpEvaluator::step_table`]: the candidate set of
    /// `x` with every predicate applied positionally.
    fn step_row(&self, step: &Step, pred_tables: &[CvTable], x: NodeId) -> EvalResult<Vec<NodeId>> {
        let mut s = step_candidates(self.doc, step.axis, &step.test, x);
        for pt in pred_tables {
            let len = s.len();
            let mut kept = xpath_xml::pool::take_ids();
            kept.reserve(len);
            for (j, &y) in s.iter().enumerate() {
                let pos = position_of(step.axis, j, len);
                let ctx = Context::new(y, pos, len.max(1) as u32);
                let v = pt
                    .value_at(ctx)
                    .ok_or_else(|| EvalError::Capacity(format!("missing context {ctx}")))?;
                if predicate_holds(v, pos) {
                    kept.push(y);
                }
            }
            xpath_xml::pool::give_ids(std::mem::replace(&mut s, kept));
        }
        Ok(s)
    }

    /// Filter expressions `(e)[p1]…[pm]` evaluated table-wise.
    fn filter_table(&self, primary: &Expr, predicates: &[Expr]) -> EvalResult<CvTable> {
        let base = self.table(primary)?;
        let pred_tables: Vec<CvTable> =
            predicates.iter().map(|e| self.table(e)).collect::<Result<_, _>>()?;
        let mut out = CvTable::new(base.relev);
        for (key, v) in base.iter_rows() {
            let Some(set) = v.as_node_set() else {
                return Err(EvalError::TypeMismatch(
                    "predicates require a node-set primary expression".into(),
                ));
            };
            // Positional filtering over the document-ordered list.
            let mut s: Vec<NodeId> = set.to_vec();
            for pt in &pred_tables {
                let len = s.len();
                let mut kept = xpath_xml::pool::take_ids();
                kept.reserve(len);
                for (j, &y) in s.iter().enumerate() {
                    let pos = (j + 1) as u32;
                    let ctx = Context::new(y, pos, len.max(1) as u32);
                    let v = pt
                        .value_at(ctx)
                        .ok_or_else(|| EvalError::Capacity(format!("missing context {ctx}")))?;
                    if predicate_holds(v, pos) {
                        kept.push(y);
                    }
                }
                xpath_xml::pool::give_ids(std::mem::replace(&mut s, kept));
            }
            out.insert_key(key, Value::NodeSet(NodeSet::from_sorted(s)));
        }
        Ok(out)
    }
}

/// Convenience: evaluate a query string bottom-up.
pub fn evaluate_str(doc: &Document, query: &str, ctx: Context) -> EvalResult<Value> {
    let e =
        xpath_syntax::parse_normalized(query).map_err(|err| EvalError::Parse(err.to_string()))?;
    BottomUpEvaluator::new(doc).evaluate(&e, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveEvaluator;
    use xpath_syntax::parse_normalized;
    use xpath_xml::generate::{doc_figure8, doc_flat, doc_flat_text};

    #[test]
    fn example_6_4_tables_and_result() {
        // DOC(4): dom = {r, a, b1..b4}; query
        // descendant::b/following-sibling::*[position() != last()].
        let d = doc_flat(4);
        let a = d.document_element().unwrap();
        let bs: Vec<NodeId> = d.children(a).collect();
        let ev = BottomUpEvaluator::new(&d);

        // E1 = descendant::b : at r and a the full {b1..b4}, at b's ∅.
        let e1 = parse_normalized("descendant::b").unwrap();
        let t1 = ev.table(&e1).unwrap();
        assert_eq!(t1.value_at(Context::of(d.root())).unwrap(), &Value::NodeSet(bs.clone().into()));
        assert_eq!(t1.value_at(Context::of(a)).unwrap(), &Value::NodeSet(bs.clone().into()));
        assert_eq!(t1.value_at(Context::of(bs[0])).unwrap(), &Value::NodeSet(vec![].into()));

        // E3 = following-sibling::* : b1 → {b2,b3,b4}, b2 → {b3,b4}, …
        let e3 = parse_normalized("following-sibling::*").unwrap();
        let t3 = ev.table(&e3).unwrap();
        assert_eq!(
            t3.value_at(Context::of(bs[0])).unwrap(),
            &Value::NodeSet(bs[1..].to_vec().into())
        );
        assert_eq!(t3.value_at(Context::of(bs[2])).unwrap(), &Value::NodeSet(vec![bs[3]].into()));
        assert_eq!(t3.value_at(Context::of(bs[3])).unwrap(), &Value::NodeSet(vec![].into()));

        // E4 = position() != last() : table keyed by (k, n).
        let e4 = parse_normalized("position() != last()").unwrap();
        let t4 = ev.table(&e4).unwrap();
        assert_eq!(t4.relevance(), Relev::CP.union(Relev::CS));
        assert_eq!(t4.value_at(Context::new(d.root(), 2, 3)).unwrap(), &Value::Boolean(true));
        assert_eq!(t4.value_at(Context::new(d.root(), 3, 3)).unwrap(), &Value::Boolean(false));

        // E2 = E3[E4] : b1 → {b2,b3} (the paper's most interesting step).
        let q = parse_normalized("following-sibling::*[position() != last()]").unwrap();
        let t2 = ev.table(&q).unwrap();
        assert_eq!(
            t2.value_at(Context::of(bs[0])).unwrap(),
            &Value::NodeSet(vec![bs[1], bs[2]].into())
        );
        assert_eq!(t2.value_at(Context::of(bs[1])).unwrap(), &Value::NodeSet(vec![bs[2]].into()));

        // Full query from context ⟨a,1,1⟩ = {b2, b3}.
        let full =
            parse_normalized("descendant::b/following-sibling::*[position() != last()]").unwrap();
        let v = ev.evaluate(&full, Context::of(a)).unwrap();
        assert_eq!(v, Value::NodeSet(vec![bs[1], bs[2]].into()));
    }

    #[test]
    fn example_8_1_query() {
        let d = doc_figure8();
        let v = evaluate_str(
            &d,
            "/descendant::*/descendant::*[position() > last() * 0.5 or string(self::*) = '100']",
            Context::of(d.element_by_id("10").unwrap()),
        )
        .unwrap();
        let expect: Vec<NodeId> = ["13", "14", "21", "22", "23", "24"]
            .iter()
            .map(|i| d.element_by_id(i).unwrap())
            .collect();
        assert_eq!(v, Value::NodeSet(expect.into()));
    }

    #[test]
    fn agrees_with_naive_on_corpus() {
        let docs = [doc_flat(4), doc_flat_text(3), doc_figure8()];
        let queries = [
            "//a/b",
            "//b[2]",
            "//*[parent::a/child::* = 'c']",
            "//a/b[count(parent::a/b) > 1]",
            "count(//b)",
            "(//c | //d)[2]",
            "id('12 24')",
            "//d/ancestor::b",
            "//b[position() = last()]",
            "sum(//d) + 1",
        ];
        for d in &docs {
            for q in queries {
                let e = parse_normalized(q).unwrap();
                let naive = NaiveEvaluator::new(d).evaluate(&e, Context::of(d.root())).unwrap();
                let bu = BottomUpEvaluator::new(d).evaluate(&e, Context::of(d.root())).unwrap();
                assert!(naive.semantically_equal(&bu), "query {q}: {naive:?} vs {bu:?}");
            }
        }
    }

    #[test]
    fn cn_table_hysteresis_keeps_moderate_stride_fills_dense() {
        // A minimal-context caller filling rows in ascending id order at
        // a moderate stride hovers near the old ~1/4 spill mark; with the
        // hysteresis guard it must settle into the dense layout.
        let mut t = CvTable::new(Relev::CN);
        let stride = 12u32;
        for f in 0..2000u32 {
            t.insert(Context::of(NodeId(f * stride)), Value::Number(f as f64));
        }
        assert!(t.rows_dense(), "1/12-density ascending fill must stay dense");
        assert_eq!(t.len(), 2000);
        assert_eq!(t.value_at(Context::of(NodeId(13 * stride))), Some(&Value::Number(13.0)));
        assert_eq!(t.value_at(Context::of(NodeId(5))), None);
    }

    #[test]
    fn cn_table_sparse_fill_spills_once_and_stays_keyed() {
        let mut t = CvTable::new(Relev::CN);
        let stride = 500u32;
        for f in 0..200u32 {
            t.insert(Context::of(NodeId(f * stride)), Value::Number(f as f64));
        }
        assert!(!t.rows_dense(), "1/500-density fill must spill to the keyed map");
        assert_eq!(t.len(), 200);
        // Every row — including those inserted while still dense — is
        // preserved across the spill, and later dense-ish inserts do not
        // flip the table back (spilling is one-way).
        for f in [0u32, 1, 42, 199] {
            assert_eq!(
                t.value_at(Context::of(NodeId(f * stride))),
                Some(&Value::Number(f as f64)),
                "row {f} lost in spill"
            );
        }
        for i in 0..64u32 {
            t.insert(Context::of(NodeId(i)), Value::Boolean(true));
        }
        assert!(!t.rows_dense());
        assert_eq!(t.len(), 200 + 63, "id 0 overwrote the stride row");
    }

    #[test]
    fn sharded_fills_match_serial_fills() {
        // Forced always-shard model: every CVT pass splits across the
        // scoped pool even on these small documents. Results must be
        // bit-identical to the serial evaluator on the whole corpus.
        use xpath_axes::CostModel;
        let always = CostModel { spawn_ns: 1e-9, merge_word_ns: 1e-9, ..CostModel::CALIBRATED };
        let docs = [doc_flat(6), doc_flat_text(3), doc_figure8()];
        let queries = [
            "//a/b",
            "//b[2]",
            "descendant::b/following-sibling::*[position() != last()]",
            "//a/b[count(parent::a/b) > 1]",
            "count(//b)",
            "count(//*) * 2 + 1",
            "//b[position() = last()]",
        ];
        for d in &docs {
            for q in queries {
                let e = parse_normalized(q).unwrap();
                let serial = BottomUpEvaluator::new(d).evaluate(&e, Context::of(d.root())).unwrap();
                for threads in [2u32, 4, 8] {
                    let par = BottomUpEvaluator::new(d)
                        .with_threads(threads)
                        .with_cost_model(always)
                        .evaluate(&e, Context::of(d.root()))
                        .unwrap();
                    assert_eq!(par, serial, "{q} at {threads} threads");
                }
            }
        }
    }

    #[test]
    fn sharded_fills_propagate_errors() {
        // A capacity failure inside a sharded pass surfaces as the same
        // error a serial pass reports (all shards join, first error wins).
        use xpath_axes::CostModel;
        let always = CostModel { spawn_ns: 1e-9, merge_word_ns: 1e-9, ..CostModel::CALIBRATED };
        let d = doc_flat(200);
        let e = parse_normalized("//b[position() != last()]").unwrap();
        let ev = BottomUpEvaluator::with_row_cap(&d, 1000).with_threads(4).with_cost_model(always);
        assert!(matches!(ev.evaluate(&e, Context::of(d.root())), Err(EvalError::Capacity(_))));
    }

    #[test]
    fn capacity_guard() {
        let d = doc_flat(200);
        let ev = BottomUpEvaluator::with_row_cap(&d, 1000);
        // position() over a 202-node document needs only 202 rows → fine.
        let e = parse_normalized("//b[position() != last()]").unwrap();
        // (k,n) pairs = 202*203/2 ≈ 20503 > 1000 → capacity error.
        assert!(matches!(ev.evaluate(&e, Context::of(d.root())), Err(EvalError::Capacity(_))));
        // With the default cap it succeeds.
        let ev = BottomUpEvaluator::new(&d);
        let v = ev.evaluate(&e, Context::of(d.root())).unwrap();
        assert_eq!(v.as_node_set().unwrap().len(), 199);
    }

    #[test]
    fn polynomial_on_experiment1_family() {
        let d = doc_flat(2);
        let mut q = String::from("//a/b");
        for _ in 0..25 {
            q.push_str("/parent::a/b");
        }
        let v = evaluate_str(&d, &q, Context::of(d.root())).unwrap();
        assert_eq!(v.as_node_set().unwrap().len(), 2);
    }
}
