//! Compile-time query analysis: satisfiability, reverse-axis rewriting,
//! and streamability classification.
//!
//! The paper's whole point is that Core XPath is *statically tractable* —
//! so the compiler should learn everything it can about a query before
//! touching a document. [`analyze`] runs once per
//! [`CompiledQuery`](crate::query::CompiledQuery) (the report is cached
//! alongside it in the [`QueryCache`](crate::cache::QueryCache)) and
//! produces a [`QueryReport`] with three layers:
//!
//! 1. **Satisfiability / emptiness.** A sound (never-wrong, incomplete)
//!    emptiness check over the normalized IR: contradictory node tests,
//!    structurally empty steps, and constant-false predicates. Provably
//!    empty queries — and `count`/`boolean`/`not` over them — compile to a
//!    constant plan node ([`QueryReport::const_result`]) that
//!    [`Plan::execute`](crate::plan::Plan::execute) returns without
//!    evaluating anything.
//! 2. **Reverse-axis rewriting.** The Olteanu-style forwardization rules
//!    ([`xpath_syntax::rewrite::forwardize`]) eliminate
//!    `parent`/`ancestor(-or-self)`/`preceding(-sibling)` spines of
//!    absolute paths, emitting a differential-testable forward IR
//!    ([`QueryReport::forward_expr`]).
//! 3. **Streamability classification.** Every query lands in the
//!    [`Streamability`] lattice, and
//!    [`Plan`](crate::plan::Plan) picks the streaming matcher from this
//!    classification instead of re-running ad-hoc fragment checks.
//!
//! # The classification lattice
//!
//! ```text
//!        Streamable            single pass, no buffered candidates:
//!            |                 emission at the start tag
//!        NeedsBuffering        single pass, candidates buffered until
//!            |                 their subtree closes (predicates, =s,
//!            |                 positional tests) — possibly only after
//!            |                 the reverse-axis rewrite
//!        InMemoryOnly          outside the (rewritten) forward fragment:
//!                              needs the materialized tree
//! ```
//!
//! # Rewrite rules (absolute paths, non-positional predicates)
//!
//! | before | after |
//! |---|---|
//! | `/d-o-s::node()/child::tf[Pf]/χʳ::tr[Pr]/π` | `/d-o-s::tr[Pr][boolean(χʳ⁻¹::tf[Pf])]/π` |
//! | `/descendant(-or-self)::tf[Pf]/χʳ::tr[Pr]/π` | `/d-o-s::tr[Pr][boolean(χʳ⁻¹::tf[Pf])]/π` |
//!
//! where `χʳ` is a reverse axis (`parent`, `ancestor`, `ancestor-or-self`,
//! `preceding`, `preceding-sibling`) and `χʳ⁻¹` its natural inverse
//! (`child`, `descendant`, `descendant-or-self`, `following`,
//! `following-sibling`). The rule iterates left-to-right, so chains of
//! reverse steps collapse.
//!
//! # Emptiness rules
//!
//! All rules are context-independent for relative paths (a compiled query
//! may be evaluated from any context node), so a verdict of
//! [`Satisfiability::Empty`] holds on *every* document from *every*
//! context:
//!
//! * root rules (first step of an absolute path): `parent`, `ancestor`,
//!   both sibling axes, `preceding`, `following`, `attribute` and
//!   `namespace` applied to the root are empty; `self`/`ancestor-or-self`
//!   at the root only match a `node()` test;
//! * steps off attribute/namespace results: `child`, `descendant(-or-self)`,
//!   `self`, `attribute`, `namespace` are empty (§4 type filtering removes
//!   attribute and namespace nodes from every non-dedicated axis,
//!   *including* `self`);
//! * steps off leaf kinds (`text()`, `comment()`,
//!   `processing-instruction()`): `child`, `descendant`, `attribute`,
//!   `namespace` are empty;
//! * per-step kind contradictions: `attribute`/`namespace`/`parent`/
//!   `ancestor` axes never yield text/comment/PI nodes;
//! * consecutive `self` steps with disjoint node tests
//!   (`self::a/self::b`, `a ≠ b`);
//! * constant-false predicates (`[false()]`, `[boolean(ε)]`,
//!   `[position() = 0]`, `and`/`or`/`not` propagation, comparisons against
//!   provably empty node sets).
//!
//! Diagnostics surface through `xpq --lint` (human text or JSON, severity
//! levels, a CI-friendly exit code) and `xpq --explain`; fleet-wide
//! aggregates through [`QueryCache::analysis_stats`](crate::cache::QueryCache::analysis_stats).

use std::fmt;

use xpath_syntax::{
    rewrite, static_type, Axis, BinaryOp, Expr, ExprType, KindTest, LocationPath, NodeTest,
    PathStart, Step,
};

use crate::functions;
use crate::nodeset::NodeSet;
use crate::value::Value;

/// Can the query ever select anything?
#[derive(Clone, Debug, PartialEq)]
pub enum Satisfiability {
    /// No proof of emptiness was found (the check is sound but incomplete).
    Satisfiable,
    /// The query provably evaluates to the empty node set on every
    /// document, from every context; the reason names the rule that fired.
    Empty(String),
}

/// Where the query sits in the streamability lattice.
#[derive(Clone, Debug, PartialEq)]
pub enum Streamability {
    /// Single pass, O(depth·|Q|) memory, emission at the start tag.
    Streamable,
    /// Single pass, but candidates buffer until their subtree closes
    /// (predicates, `= s` tests, positional tests), possibly only after
    /// the reverse-axis rewrite; the reason says which.
    NeedsBuffering(String),
    /// Outside the forward fragment even after rewriting: evaluation
    /// needs the materialized tree.
    InMemoryOnly(String),
}

/// Diagnostic severity, ordered by weight.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational note (e.g. a rewrite fired).
    Info,
    /// The query is legal but almost certainly not what was meant
    /// (provably empty, constant result).
    Warning,
    /// The query will fail at evaluation time (e.g. unknown function).
    Error,
}

impl Severity {
    /// Lower-case name, as printed by `xpq --lint`.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One analyzer finding.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// How bad it is.
    pub severity: Severity,
    /// Stable machine-readable code (kebab-case).
    pub code: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    fn new(severity: Severity, code: &'static str, message: String) -> Diagnostic {
        Diagnostic { severity, code, message }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity.name(), self.code, self.message)
    }
}

/// The full static-analysis report for one compiled query.
#[derive(Clone, Debug)]
pub struct QueryReport {
    /// Emptiness verdict for the whole query.
    pub satisfiability: Satisfiability,
    /// The reverse-axis-free rewrite of the query, when the forwardization
    /// rules applied. Differentially tested to be bit-identical to the
    /// original.
    pub forward_expr: Option<Expr>,
    /// Streamability classification (of the rewritten form, when only
    /// that form streams).
    pub streamability: Streamability,
    /// Whether streaming requires the rewritten IR ([`Self::forward_expr`])
    /// rather than the original expression.
    pub streams_via_rewrite: bool,
    /// The document-independent constant result, when the query folds
    /// (empty node set, `count(ε) = 0`, `boolean(ε) = false`,
    /// `not(ε) = true`). [`Plan::execute`](crate::plan::Plan::execute)
    /// returns it without running any evaluator.
    pub const_result: Option<Value>,
    /// Everything worth telling the query's author.
    pub diagnostics: Vec<Diagnostic>,
}

impl QueryReport {
    /// Is the query provably empty?
    pub fn is_empty_query(&self) -> bool {
        matches!(self.satisfiability, Satisfiability::Empty(_))
    }

    /// The highest severity among the diagnostics, if any.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }
}

/// Fleet-wide analysis aggregates, the analyzer's counterpart of the
/// kernel tallies in `planner_stats`. Fold reports together with
/// [`AnalysisStats::plus`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Reports folded in.
    pub analyzed: u64,
    /// Queries proven empty.
    pub provably_empty: u64,
    /// Queries folded to a document-independent constant.
    pub const_folded: u64,
    /// Queries whose reverse axes were rewritten away.
    pub rewritten: u64,
    /// Queries classified [`Streamability::Streamable`].
    pub streamable: u64,
    /// Queries classified [`Streamability::NeedsBuffering`].
    pub needs_buffering: u64,
    /// Queries classified [`Streamability::InMemoryOnly`].
    pub in_memory_only: u64,
    /// Error-severity diagnostics.
    pub errors: u64,
    /// Warning-severity diagnostics.
    pub warnings: u64,
}

impl AnalysisStats {
    /// The aggregate of a single report.
    pub fn of(report: &QueryReport) -> AnalysisStats {
        AnalysisStats {
            analyzed: 1,
            provably_empty: report.is_empty_query() as u64,
            const_folded: report.const_result.is_some() as u64,
            rewritten: report.forward_expr.is_some() as u64,
            streamable: matches!(report.streamability, Streamability::Streamable) as u64,
            needs_buffering: matches!(report.streamability, Streamability::NeedsBuffering(_))
                as u64,
            in_memory_only: matches!(report.streamability, Streamability::InMemoryOnly(_)) as u64,
            errors: report.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
                as u64,
            warnings: report.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
                as u64,
        }
    }

    /// Element-wise sum (for folding reports across a cache or batch).
    pub fn plus(self, o: AnalysisStats) -> AnalysisStats {
        AnalysisStats {
            analyzed: self.analyzed + o.analyzed,
            provably_empty: self.provably_empty + o.provably_empty,
            const_folded: self.const_folded + o.const_folded,
            rewritten: self.rewritten + o.rewritten,
            streamable: self.streamable + o.streamable,
            needs_buffering: self.needs_buffering + o.needs_buffering,
            in_memory_only: self.in_memory_only + o.in_memory_only,
            errors: self.errors + o.errors,
            warnings: self.warnings + o.warnings,
        }
    }
}

impl fmt::Display for AnalysisStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} analyzed: {} empty, {} const-folded, {} rewritten; \
             {} streamable / {} buffered / {} in-memory; {} errors, {} warnings",
            self.analyzed,
            self.provably_empty,
            self.const_folded,
            self.rewritten,
            self.streamable,
            self.needs_buffering,
            self.in_memory_only,
            self.errors,
            self.warnings
        )
    }
}

/// Run the full static analysis over a normalized expression.
pub fn analyze(e: &Expr) -> QueryReport {
    let mut diagnostics = Vec::new();

    // Layer 0: evaluation-time failures visible statically.
    let mut seen = Vec::new();
    e.walk(&mut |sub| {
        if let Expr::Call { name, .. } = sub {
            if !functions::is_known(name) && !seen.iter().any(|s| s == name) {
                seen.push(name.clone());
                diagnostics.push(Diagnostic::new(
                    Severity::Error,
                    "unknown-function",
                    format!("unknown function {name}() — evaluation will fail"),
                ));
            }
        }
    });

    // Layer 1: satisfiability and constant folding.
    let satisfiability = match nodeset_empty(e) {
        Some(reason) => {
            diagnostics.push(Diagnostic::new(
                Severity::Warning,
                "empty-query",
                format!("query provably selects nothing: {reason}"),
            ));
            Satisfiability::Empty(reason)
        }
        None => Satisfiability::Satisfiable,
    };
    let const_result = const_fold(e);
    if let Some(v) = &const_result {
        if !matches!(satisfiability, Satisfiability::Empty(_)) {
            diagnostics.push(Diagnostic::new(
                Severity::Warning,
                "const-result",
                format!("query result is document-independent: always {v}"),
            ));
        }
    }
    // Nested provably-empty paths (only interesting when the whole query
    // is not already reported empty).
    if !matches!(satisfiability, Satisfiability::Empty(_)) {
        e.walk(&mut |sub| {
            if std::ptr::eq(sub, e) {
                return;
            }
            if let Expr::Path(p) = sub {
                if let Some(reason) = path_empty(p) {
                    diagnostics.push(Diagnostic::new(
                        Severity::Warning,
                        "empty-subpath",
                        format!("subexpression {sub} provably selects nothing: {reason}"),
                    ));
                }
            }
        });
    }

    // Layer 2: reverse-axis elimination.
    let forward_expr = rewrite::forwardize(e);
    if let Some(f) = &forward_expr {
        diagnostics.push(Diagnostic::new(
            Severity::Info,
            "reverse-axes-rewritten",
            format!("reverse axes rewritten to the forward form {f}"),
        ));
    }

    // Layer 3: streamability, preferring the original IR and falling back
    // to the rewritten one.
    let (streamability, streams_via_rewrite) = match crate::streaming::compile_expr(e) {
        Ok(q) if !q.buffers() => (Streamability::Streamable, false),
        Ok(_) => (
            Streamability::NeedsBuffering(
                "candidates buffer until their subtree closes \
                 (predicates / = s / positional state)"
                    .to_string(),
            ),
            false,
        ),
        Err(err) => {
            let fallback =
                forward_expr.as_ref().and_then(|f| crate::streaming::compile_expr(f).ok());
            match fallback {
                Some(_) => (
                    Streamability::NeedsBuffering(
                        "streams only via the reverse-axis rewrite \
                         (witness predicates buffer candidates)"
                            .to_string(),
                    ),
                    true,
                ),
                None => (Streamability::InMemoryOnly(fragment_reason(err)), false),
            }
        }
    };

    QueryReport {
        satisfiability,
        forward_expr,
        streamability,
        streams_via_rewrite,
        const_result,
        diagnostics,
    }
}

/// Unwrap the message of an `UnsupportedFragment` error (avoid the
/// `unsupported fragment:` prefix repeating inside classification text).
fn fragment_reason(err: crate::context::EvalError) -> String {
    match err {
        crate::context::EvalError::UnsupportedFragment(msg) => msg,
        other => other.to_string(),
    }
}

// ----- constant folding -----

/// Fold a provably-empty query (or a scalar wrapper around one) to its
/// document-independent constant value.
fn const_fold(e: &Expr) -> Option<Value> {
    if static_type(e) == ExprType::Nset && nodeset_empty(e).is_some() {
        return Some(Value::NodeSet(NodeSet::new()));
    }
    if let Expr::Call { name, args } = e {
        if let [arg] = args.as_slice() {
            if static_type(arg) == ExprType::Nset && nodeset_empty(arg).is_some() {
                return match name.as_str() {
                    "count" | "sum" => Some(Value::Number(0.0)),
                    "boolean" => Some(Value::Boolean(false)),
                    "not" => Some(Value::Boolean(true)),
                    _ => None,
                };
            }
        }
    }
    None
}

// ----- the emptiness engine -----

/// Is this node-set-typed expression provably empty on every document,
/// from every context? Returns the rule that fired.
fn nodeset_empty(e: &Expr) -> Option<String> {
    match e {
        Expr::Path(p) => path_empty(p),
        Expr::Binary { op: BinaryOp::Union, left, right } => {
            let l = nodeset_empty(left)?;
            nodeset_empty(right)?;
            Some(format!("both union branches are empty ({l}, …)"))
        }
        Expr::Filter { primary, predicates } => nodeset_empty(primary).or_else(|| {
            predicates
                .iter()
                .find_map(pred_false)
                .map(|r| format!("filter predicate is always false: {r}"))
        }),
        _ => None,
    }
}

fn path_empty(p: &LocationPath) -> Option<String> {
    if let PathStart::Expr(inner) = &p.start {
        if static_type(inner) == ExprType::Nset {
            if let Some(r) = nodeset_empty(inner) {
                return Some(format!("path head is empty: {r}"));
            }
        }
    }
    let mut prev: Option<&Step> = None;
    for (i, s) in p.steps.iter().enumerate() {
        if i == 0 && p.is_absolute() {
            if let Some(r) = empty_at_root(s) {
                return Some(r);
            }
        }
        if let Some(r) = step_never_matches(s) {
            return Some(r);
        }
        if let Some(pv) = prev {
            if let Some(r) = empty_after(pv, s) {
                return Some(r);
            }
        }
        for pred in &s.predicates {
            if let Some(r) = pred_false(pred).or_else(|| pred_path_empty_in_context(s, pred)) {
                return Some(format!(
                    "step {}::{} has an always-false predicate ({r})",
                    s.axis.name(),
                    s.test
                ));
            }
        }
        prev = Some(s);
    }
    None
}

/// A predicate whose value is a relative path that is structurally empty
/// *given the step it filters* — e.g. `@*[self::text()]`: the predicate's
/// context nodes are attribute results, which §4 filters from `self`.
fn pred_path_empty_in_context(ctx_step: &Step, pred: &Expr) -> Option<String> {
    let p = match pred {
        Expr::Path(p) => p,
        Expr::Call { name, args } if name == "boolean" && args.len() == 1 => match &args[0] {
            Expr::Path(p) => p,
            _ => return None,
        },
        _ => return None,
    };
    if !matches!(p.start, PathStart::ContextNode) {
        return None;
    }
    let first = p.steps.first()?;
    empty_after(ctx_step, first).map(|r| format!("predicate path is empty in this context: {r}"))
}

/// First step of an absolute path: the context is the root, which has no
/// parent, siblings or attributes and is matched only by `node()`.
fn empty_at_root(s: &Step) -> Option<String> {
    match s.axis {
        Axis::Parent
        | Axis::Ancestor
        | Axis::FollowingSibling
        | Axis::PrecedingSibling
        | Axis::Following
        | Axis::Preceding
        | Axis::Attribute
        | Axis::Namespace => {
            Some(format!("{}:: applied to the document root is empty", s.axis.name()))
        }
        Axis::SelfAxis | Axis::AncestorOrSelf
            if !matches!(s.test, NodeTest::Kind(KindTest::Node)) =>
        {
            Some(format!(
                "{}::{} at the document root is empty (the root matches only node())",
                s.axis.name(),
                s.test
            ))
        }
        _ => None,
    }
}

/// A step whose axis can never yield a node its test requires.
fn step_never_matches(s: &Step) -> Option<String> {
    let leaf_kind = matches!(
        s.test,
        NodeTest::Kind(KindTest::Text)
            | NodeTest::Kind(KindTest::Comment)
            | NodeTest::Kind(KindTest::Pi(_))
    );
    match s.axis {
        // Dedicated axes yield attribute/namespace nodes only.
        Axis::Attribute | Axis::Namespace if leaf_kind => Some(format!(
            "{}::{} is empty (the {} axis yields no text/comment/PI nodes)",
            s.axis.name(),
            s.test,
            s.axis.name()
        )),
        // Parents are elements or the root, never leaves.
        Axis::Parent | Axis::Ancestor if leaf_kind => Some(format!(
            "{}::{} is empty (parents are elements or the root)",
            s.axis.name(),
            s.test
        )),
        _ => None,
    }
}

/// A step that is structurally empty given what the previous step yields.
fn empty_after(prev: &Step, cur: &Step) -> Option<String> {
    // Attribute/namespace results: no children, no attributes, and the §4
    // type filter removes them from every non-dedicated axis — including
    // `self` and the self half of `descendant-or-self`.
    if matches!(prev.axis, Axis::Attribute | Axis::Namespace)
        && matches!(
            cur.axis,
            Axis::Child
                | Axis::Descendant
                | Axis::DescendantOrSelf
                | Axis::SelfAxis
                | Axis::Attribute
                | Axis::Namespace
        )
    {
        return Some(format!(
            "{}:: applied to {} results is empty",
            cur.axis.name(),
            prev.axis.name()
        ));
    }
    // Leaf kinds (text/comment/PI): childless and attribute-less, but the
    // node itself survives self/descendant-or-self.
    if matches!(
        prev.test,
        NodeTest::Kind(KindTest::Text)
            | NodeTest::Kind(KindTest::Comment)
            | NodeTest::Kind(KindTest::Pi(_))
    ) && matches!(cur.axis, Axis::Child | Axis::Descendant | Axis::Attribute | Axis::Namespace)
    {
        return Some(format!(
            "{}:: applied to {} nodes is empty (leaf kinds have no children or attributes)",
            cur.axis.name(),
            prev.test
        ));
    }
    // Consecutive self steps with disjoint tests: self::a/self::b, a ≠ b.
    if cur.axis == Axis::SelfAxis && tests_disjoint(&prev.test, &cur.test) {
        return Some(format!(
            "self::{} after a step testing {} is a contradiction",
            cur.test, prev.test
        ));
    }
    None
}

/// Are the two node tests provably disjoint, reading name-ish tests
/// (`Name`/`*`/`ns:*`) as element sets? Only sound when the *following*
/// step's axis is `self` on a non-attribute result (the caller's
/// obligation — attribute results are handled before this).
fn tests_disjoint(a: &NodeTest, b: &NodeTest) -> bool {
    use NodeTest::{Kind, Name, NsWildcard, Wildcard};
    match (a, b) {
        (Kind(KindTest::Node), _) | (_, Kind(KindTest::Node)) => false,
        (Name(x), Name(y)) => x != y,
        (Name(n), NsWildcard(p)) | (NsWildcard(p), Name(n)) => {
            n.split_once(':').is_none_or(|(np, _)| np != p)
        }
        (NsWildcard(p), NsWildcard(q)) => p != q,
        // Element-ish vs a concrete leaf kind.
        (Name(_) | Wildcard | NsWildcard(_), Kind(_))
        | (Kind(_), Name(_) | Wildcard | NsWildcard(_)) => true,
        (Wildcard, _) | (_, Wildcard) => false,
        (Kind(k1), Kind(k2)) => kinds_disjoint(k1, k2),
    }
}

fn kinds_disjoint(a: &KindTest, b: &KindTest) -> bool {
    match (a, b) {
        (KindTest::Pi(Some(x)), KindTest::Pi(Some(y))) => x != y,
        (KindTest::Pi(_), KindTest::Pi(_)) => false,
        _ => std::mem::discriminant(a) != std::mem::discriminant(b),
    }
}

/// Is this predicate provably false in every context? Returns the rule.
fn pred_false(e: &Expr) -> Option<String> {
    match e {
        Expr::Call { name, args } if name == "false" && args.is_empty() => {
            Some("false()".to_string())
        }
        Expr::Literal(s) if s.is_empty() => Some("'' converts to false".to_string()),
        Expr::Number(v) if *v == 0.0 || v.is_nan() => Some(format!("{v} converts to false")),
        Expr::Call { name, args } if name == "boolean" && args.len() == 1 => pred_false(&args[0]),
        Expr::Call { name, args } if name == "not" && args.len() == 1 => pred_true(&args[0])
            .then(|| format!("not({}) where the argument is always true", args[0])),
        Expr::Binary { op: BinaryOp::And, left, right } => {
            pred_false(left).or_else(|| pred_false(right))
        }
        Expr::Binary { op: BinaryOp::Or, left, right } => {
            let l = pred_false(left)?;
            pred_false(right)?;
            Some(format!("both or-branches are false ({l}, …)"))
        }
        Expr::Binary { op, left, right } if op.is_relational() => {
            // position() = k for impossible k (positions are integers ≥ 1).
            if *op == BinaryOp::Eq && is_position_call(left) {
                if let Expr::Number(k) = **right {
                    if k < 1.0 || k.fract() != 0.0 {
                        return Some(format!("position() = {k} never holds"));
                    }
                }
            }
            // Existential comparison against a provably empty node set is
            // false — unless the other side is boolean-typed, where XPath
            // converts the node set via boolean() first.
            for (a, b) in [(left, right), (right, left)] {
                if static_type(a) == ExprType::Nset && static_type(b) != ExprType::Bool {
                    if let Some(r) = nodeset_empty(a) {
                        return Some(format!("comparison against a provably empty node set ({r})"));
                    }
                }
            }
            None
        }
        _ => {
            if static_type(e) == ExprType::Nset {
                nodeset_empty(e).map(|r| format!("boolean of an empty node set ({r})"))
            } else {
                None
            }
        }
    }
}

/// Is this predicate provably true in every context? (Sound, incomplete;
/// used for `not(…)` propagation and the `always-true` lint.)
fn pred_true(e: &Expr) -> bool {
    match e {
        Expr::Call { name, args } if name == "true" && args.is_empty() => true,
        Expr::Literal(s) => !s.is_empty(),
        Expr::Number(v) => *v != 0.0 && !v.is_nan(),
        Expr::Call { name, args } if name == "boolean" && args.len() == 1 => pred_true(&args[0]),
        Expr::Call { name, args } if name == "not" && args.len() == 1 => {
            pred_false(&args[0]).is_some()
        }
        Expr::Binary { op: BinaryOp::And, left, right } => pred_true(left) && pred_true(right),
        Expr::Binary { op: BinaryOp::Or, left, right } => pred_true(left) || pred_true(right),
        _ => false,
    }
}

fn is_position_call(e: &Expr) -> bool {
    matches!(e, Expr::Call { name, args } if name == "position" && args.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_syntax::parse_normalized;

    fn report(q: &str) -> QueryReport {
        analyze(&parse_normalized(q).unwrap())
    }

    #[test]
    fn detects_structurally_empty_queries() {
        for q in [
            "/parent::*",                        // parent of the root
            "/ancestor::a",                      // ancestors of the root
            "/preceding-sibling::a",             // root has no siblings
            "/following::a",                     // nothing follows the root
            "/@id",                              // root has no attributes
            "/self::a",                          // the root is not an element
            "//b/self::c",                       // name contradiction
            "//b/self::text()",                  // kind contradiction
            "//@id/child::*",                    // attributes are childless
            "//@id/self::node()",                // §4 filters attributes from self
            "//@id/@x",                          // attributes have no attributes
            "//text()/child::*",                 // leaves are childless
            "//comment()/@x",                    // leaves have no attributes
            "//a/parent::text()",                // parents are never leaves
            "//a/@*[self::text()]",              // attribute axis yields no text (pred)
            "//a[false()]",                      // constant-false predicate
            "//a[0]",                            // position() = 0
            "//a[b and false()]",                // and-propagation
            "//a[not(true())]",                  // not(true)
            "//a[count(b) = //text()/child::*]", // comparison vs empty set
            "//a | /parent::*[false()]",         // hmm: union — see below
        ] {
            // The final union case is only empty if BOTH branches are; skip it.
            if q.starts_with("//a |") {
                continue;
            }
            let r = report(q);
            assert!(r.is_empty_query(), "{q} should be provably empty: {r:?}");
            assert!(
                matches!(r.const_result, Some(Value::NodeSet(ref s)) if s.is_empty()),
                "{q} should const-fold to the empty node set"
            );
        }
    }

    #[test]
    fn does_not_flag_satisfiable_queries() {
        for q in [
            "//a",
            "//a/b[c]",
            "/self::node()",
            "//@id",
            "//@id/..",              // parent of an attribute exists
            "//text()/self::node()", // text survives self::node()
            "//text()/following::*", // leaves have following nodes
            "//a[position() = 2]",
            "//a[not(b)]",
            "//a/self::*",      // wildcard overlaps name tests
            "//a | /parent::*", // one union branch satisfiable
            "count(//b)",
            "//chapter[title = 'Two']",
        ] {
            let r = report(q);
            assert!(!r.is_empty_query(), "{q} wrongly marked empty: {r:?}");
        }
    }

    #[test]
    fn scalar_wrappers_const_fold() {
        assert_eq!(report("count(//text()/child::*)").const_result, Some(Value::Number(0.0)));
        assert_eq!(report("boolean(/@x)").const_result, Some(Value::Boolean(false)));
        assert_eq!(report("not(/@x)").const_result, Some(Value::Boolean(true)));
        assert_eq!(report("count(//a)").const_result, None);
        // Scalar folds are reported as const-result warnings.
        assert!(report("count(/@x)")
            .diagnostics
            .iter()
            .any(|d| d.code == "const-result" && d.severity == Severity::Warning));
    }

    #[test]
    fn unknown_functions_are_errors() {
        let r = report("//a[string-join(b, ',')]");
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.code == "unknown-function" && d.severity == Severity::Error),
            "{r:?}"
        );
        assert_eq!(r.max_severity(), Some(Severity::Error));
        assert!(report("//a[contains(b, 'x')]")
            .diagnostics
            .iter()
            .all(|d| d.code != "unknown-function"));
    }

    #[test]
    fn empty_subpaths_warn_without_emptying_the_query() {
        let r = report("//a[b/self::c or d]");
        assert!(!r.is_empty_query(), "{r:?}");
        assert!(r.diagnostics.iter().any(|d| d.code == "empty-subpath"), "{r:?}");
    }

    #[test]
    fn reverse_axes_rewrite_and_classify_as_buffering() {
        let r = report("//author/parent::book");
        let f = r.forward_expr.as_ref().expect("forwardize applies");
        assert_eq!(f.to_string(), "/descendant-or-self::book[boolean(child::author)]");
        assert!(r.streams_via_rewrite);
        assert!(matches!(r.streamability, Streamability::NeedsBuffering(_)), "{r:?}");
        assert!(r.diagnostics.iter().any(|d| d.code == "reverse-axes-rewritten"));
    }

    #[test]
    fn streamability_lattice() {
        assert!(matches!(report("//a/b").streamability, Streamability::Streamable));
        assert!(matches!(report("//a[b]").streamability, Streamability::NeedsBuffering(_)));
        assert!(matches!(report("//b[1]").streamability, Streamability::NeedsBuffering(_)));
        // preceding:: forwardizes to following-inside-a-predicate, which
        // the matcher rejects: in-memory only.
        assert!(matches!(report("//c/preceding::a").streamability, Streamability::InMemoryOnly(_)));
        assert!(matches!(report("count(//a)").streamability, Streamability::InMemoryOnly(_)));
        assert!(matches!(report("a/b").streamability, Streamability::InMemoryOnly(_)));
    }

    #[test]
    fn stats_fold() {
        let a = AnalysisStats::of(&report("//a/b"));
        let b = AnalysisStats::of(&report("//text()/child::*"));
        let s = a.plus(b);
        assert_eq!(s.analyzed, 2);
        assert_eq!(s.provably_empty, 1);
        // Streamability is orthogonal to emptiness: the empty query is
        // still (vacuously) a streamable forward spine.
        assert_eq!(s.streamable, 2);
        assert!(s.warnings >= 1);
    }

    #[test]
    fn diagnostics_render_with_severity_and_code() {
        let r = report("//text()/child::*");
        let d = r.diagnostics.iter().find(|d| d.code == "empty-query").unwrap();
        assert!(d.to_string().starts_with("warning[empty-query]:"), "{d}");
    }
}
