//! The fragment lattice of Figure 1:
//!
//! ```text
//!            Full XPath — polynomial time
//!           ↗                          ↖
//!   XPatterns — O(n)      Extended Wadler Fragment — O(n²) time, O(n) space
//!           ↖                          ↗
//!            Core XPath — O(n)   (also subsumed by XSLT Patterns'98)
//! ```
//!
//! [`classify`] returns the most specific fragment containing a query,
//! which [`crate::engine`] uses to pick the best evaluation algorithm.

use xpath_syntax::Expr;

use crate::corexpath;
use crate::wadler;

/// The fragments of Figure 1, ordered from most to least specific.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fragment {
    /// Core XPath (§10.1) — linear time `O(|D|·|Q|)`.
    CoreXPath,
    /// XPatterns (§10.2) — linear time `O(|D|·|Q|)`.
    XPatterns,
    /// Extended Wadler (§11.1) — linear space, quadratic time.
    ExtendedWadler,
    /// Full XPath 1.0 — polynomial time (MinContext bounds).
    FullXPath,
}

impl Fragment {
    /// Human-readable name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Fragment::CoreXPath => "Core XPath",
            Fragment::XPatterns => "XPatterns",
            Fragment::ExtendedWadler => "Extended Wadler Fragment",
            Fragment::FullXPath => "Full XPath",
        }
    }

    /// The paper's complexity headline for the fragment (data complexity).
    pub fn complexity(self) -> &'static str {
        match self {
            Fragment::CoreXPath | Fragment::XPatterns => "time O(n)",
            Fragment::ExtendedWadler => "time O(n^2), space O(n)",
            Fragment::FullXPath => "polynomial time",
        }
    }
}

/// Detailed classification result.
#[derive(Clone, Debug)]
pub struct Classification {
    /// The most specific fragment containing the query.
    pub fragment: Fragment,
    /// Extended-Wadler restriction violations (empty iff the query is in
    /// the fragment); useful diagnostics for query authors.
    pub wadler_violations: Vec<String>,
}

/// Classify a (normalized) expression into the Figure 1 lattice.
pub fn classify(e: &Expr) -> Classification {
    let wadler_violations = wadler::violations(e);
    let fragment = if corexpath::is_core_xpath(e) {
        Fragment::CoreXPath
    } else if corexpath::is_xpatterns(e) {
        Fragment::XPatterns
    } else if wadler_violations.is_empty() {
        Fragment::ExtendedWadler
    } else {
        Fragment::FullXPath
    };
    Classification { fragment, wadler_violations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_syntax::parse_normalized;

    fn frag(q: &str) -> Fragment {
        classify(&parse_normalized(q).unwrap()).fragment
    }

    #[test]
    fn lattice_examples() {
        // Core XPath: pure paths + boolean predicates.
        assert_eq!(
            frag("/descendant::a/child::b[child::c or not(following::*)]"),
            Fragment::CoreXPath
        );
        assert_eq!(frag("//a//b"), Fragment::CoreXPath);
        // XPatterns: id heads and =s predicates.
        assert_eq!(frag("id('x')/child::a"), Fragment::XPatterns);
        assert_eq!(frag("//a[b = 'v']"), Fragment::XPatterns);
        // Extended Wadler: position arithmetic, but no data extraction.
        assert_eq!(frag("//a[position() != last()]"), Fragment::ExtendedWadler);
        assert_eq!(frag("//a[position() > last() * 0.5]"), Fragment::ExtendedWadler);
        // Full XPath: count/sum/string/nset-nset comparisons.
        assert_eq!(frag("//a[count(b) > 1]"), Fragment::FullXPath);
        assert_eq!(frag("//a[b = c]"), Fragment::FullXPath);
        assert_eq!(frag("//a[string(b) = 'x']"), Fragment::FullXPath);
        assert_eq!(frag("sum(//a)"), Fragment::FullXPath);
    }

    #[test]
    fn core_is_subset_of_both_parents() {
        // Figure 1: every Core XPath query is also XPatterns and Extended
        // Wadler.
        for q in ["//a/b", "/descendant::a[not(child::b)]", "//a[b and c]/following::d"] {
            let e = parse_normalized(q).unwrap();
            assert!(corexpath::is_core_xpath(&e), "{q}");
            assert!(corexpath::is_xpatterns(&e), "{q}");
            assert!(wadler::is_extended_wadler(&e), "{q}");
        }
    }

    #[test]
    fn names_and_complexities() {
        assert_eq!(Fragment::CoreXPath.name(), "Core XPath");
        assert_eq!(Fragment::XPatterns.complexity(), "time O(n)");
        assert_eq!(Fragment::ExtendedWadler.complexity(), "time O(n^2), space O(n)");
        assert_eq!(Fragment::FullXPath.complexity(), "polynomial time");
    }

    #[test]
    fn violations_reported_for_full_xpath() {
        let c = classify(&parse_normalized("//a[count(b) > 1]").unwrap());
        assert_eq!(c.fragment, Fragment::FullXPath);
        assert!(!c.wadler_violations.is_empty());
    }

    #[test]
    fn experiment_queries_classification() {
        // Experiment 1 queries are Core XPath (pure antagonist paths).
        assert_eq!(frag("//a/b/parent::a/b"), Fragment::CoreXPath);
        // Experiment 2 queries use nset = 'c' → XPatterns.
        assert_eq!(frag("//*[parent::a/child::* = 'c']"), Fragment::XPatterns);
        // Experiment 3 queries use count() → Full XPath.
        assert_eq!(frag("//a/b[count(parent::a/b) > 1]"), Fragment::FullXPath);
        // Experiment 4 queries are Core XPath.
        assert_eq!(frag("//a//b[ancestor::a//b]/ancestor::a//b"), Fragment::CoreXPath);
    }
}
