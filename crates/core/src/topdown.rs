//! Top-down evaluation of XPath (paper §7, Figure 7).
//!
//! The bottom-up algorithm of §6 computes many context-value-table rows that
//! are never used. The top-down algorithm keeps the context-value-table
//! *principle* — every subexpression is evaluated at most once per distinct
//! context — but computes only reachable contexts, by **vector computation**:
//!
//! * `S↓ : LocationPath → List(2^dom) → List(2^dom)` maps a list of
//!   node sets to the list of result node sets (Figure 7);
//! * `E↓ : Expression → List(C) → List(XPathType)` evaluates an expression
//!   simultaneously for a whole list of contexts, applying each operator's
//!   vectorized form `Op⟨⟩` pointwise.
//!
//! Worst-case `O(|D|⁴·|Q|²)` time and `O(|D|³·|Q|²)` space (Theorem 7.5);
//! the context lists are deduplicated before recursive calls, which is what
//! makes the bound hold.

use std::collections::HashMap;

use xpath_syntax::{Axis, BinaryOp, Expr, LocationPath, PathStart, Step};
use xpath_xml::{Document, NodeId};

use crate::context::{Context, EvalBudget, EvalError, EvalResult};
use crate::eval_common::{apply_binary, position_of, predicate_holds, step_candidates};
use crate::functions;
use crate::nodeset::NodeSet;
use crate::value::Value;

/// The top-down vectorized evaluator.
pub struct TopDownEvaluator<'d> {
    doc: &'d Document,
    /// Deadline/cancellation budget, polled before every vectorized
    /// location step (each an `O(|D|·l)` unit).
    eval_budget: EvalBudget,
}

impl<'d> TopDownEvaluator<'d> {
    /// Create an evaluator over `doc`.
    pub fn new(doc: &'d Document) -> Self {
        TopDownEvaluator { doc, eval_budget: EvalBudget::unlimited() }
    }

    /// Attach a deadline/cancellation [`EvalBudget`], polled before every
    /// vectorized location step.
    #[must_use]
    pub fn with_eval_budget(mut self, budget: EvalBudget) -> Self {
        self.eval_budget = budget;
        self
    }

    /// Evaluate `query` in a single context.
    pub fn evaluate(&self, query: &Expr, ctx: Context) -> EvalResult<Value> {
        let mut v = self.e_down(query, &[ctx])?;
        Ok(v.pop().expect("one context in, one value out"))
    }

    /// `E↓[[e]](c1, …, cl)` (Definition 7.1).
    pub fn e_down(&self, e: &Expr, ctxs: &[Context]) -> EvalResult<Vec<Value>> {
        match e {
            // E↓[[π]](⟨x1,k1,n1⟩,…) := S↓[[π]]({x1}, …, {xl}).
            Expr::Path(p) => {
                let singletons: Vec<NodeSet> =
                    ctxs.iter().map(|c| NodeSet::singleton(c.node)).collect();
                let sets = self.s_down_path(p, singletons, ctxs)?;
                Ok(sets.into_iter().map(Value::NodeSet).collect())
            }
            Expr::Filter { primary, predicates } => {
                let base = self.e_down(primary, ctxs)?;
                let mut sets = Vec::with_capacity(base.len());
                for v in base {
                    sets.push(v.into_node_set().ok_or_else(|| {
                        EvalError::TypeMismatch(
                            "predicates require a node-set primary expression".into(),
                        )
                    })?);
                }
                let sets = self.filter_sets_forward(sets, predicates)?;
                Ok(sets.into_iter().map(Value::NodeSet).collect())
            }
            Expr::Number(v) => Ok(vec![Value::Number(*v); ctxs.len()]),
            Expr::Literal(s) => Ok(vec![Value::String(s.clone()); ctxs.len()]),
            Expr::Var(name) => Err(EvalError::UnboundVariable(name.clone())),
            Expr::Neg(inner) => {
                let vs = self.e_down(inner, ctxs)?;
                Ok(vs.into_iter().map(|v| Value::Number(-v.to_number(self.doc))).collect())
            }
            // F[[Op]]⟨⟩ — pointwise application of the effective semantics.
            Expr::Binary { op, left, right } => {
                let ls = self.e_down(left, ctxs)?;
                let rs = self.e_down(right, ctxs)?;
                ls.into_iter()
                    .zip(rs)
                    .map(|(l, r)| match op {
                        BinaryOp::And => Ok(Value::Boolean(l.to_boolean() && r.to_boolean())),
                        BinaryOp::Or => Ok(Value::Boolean(l.to_boolean() || r.to_boolean())),
                        _ => apply_binary(self.doc, *op, l, r),
                    })
                    .collect()
            }
            Expr::Call { name, args } => {
                let mut arg_vecs: Vec<Vec<Value>> = Vec::with_capacity(args.len());
                for a in args {
                    arg_vecs.push(self.e_down(a, ctxs)?);
                }
                ctxs.iter()
                    .enumerate()
                    .map(|(i, c)| {
                        let argv: Vec<Value> = arg_vecs.iter().map(|col| col[i].clone()).collect();
                        functions::apply(self.doc, name, argv, c)
                    })
                    .collect()
            }
        }
    }

    /// `S↓[[π]](X1, …, Xk)` (Figure 7). `ctxs` carries the originating
    /// contexts so a `PathStart::Expr` head can be evaluated.
    fn s_down_path(
        &self,
        p: &LocationPath,
        inputs: Vec<NodeSet>,
        ctxs: &[Context],
    ) -> EvalResult<Vec<NodeSet>> {
        let start_sets: Vec<NodeSet> = match &p.start {
            // S↓[[/π]](X1,…,Xk) := S↓[[π]]({root}, …, {root}).
            PathStart::Root => vec![NodeSet::singleton(self.doc.root()); inputs.len()],
            PathStart::ContextNode => inputs,
            PathStart::Expr(head) => {
                let vs = self.e_down(head, ctxs)?;
                let mut sets = Vec::with_capacity(vs.len());
                for v in vs {
                    sets.push(v.into_node_set().ok_or_else(|| {
                        EvalError::TypeMismatch("path start must evaluate to a node set".into())
                    })?);
                }
                sets
            }
        };
        self.s_down_steps(&p.steps, start_sets)
    }

    /// Composition of location steps: `S↓[[π1/π2]] = S↓[[π2]] ∘ S↓[[π1]]`.
    fn s_down_steps(&self, steps: &[Step], mut sets: Vec<NodeSet>) -> EvalResult<Vec<NodeSet>> {
        for step in steps {
            sets = self.location_step(step, &sets)?;
        }
        Ok(sets)
    }

    /// One location step `χ::t[e1]…[em]` on a vector of input sets —
    /// the core of Figure 7.
    fn location_step(&self, step: &Step, inputs: &[NodeSet]) -> EvalResult<Vec<NodeSet>> {
        self.eval_budget.check()?;
        // S := {⟨x, y⟩ | x ∈ ∪Xi, x χ y, y ∈ T(t)} — grouped by x. The
        // union of the input vector accumulates in-place on the hybrid set.
        let mut xs = NodeSet::new();
        for set in inputs {
            xs.union_with(set);
        }
        // S_x for each distinct source node, in document order (positional
        // per-group lists stay plain vectors for the predicate loop).
        let mut groups: Vec<(NodeId, Vec<NodeId>)> =
            xs.iter().map(|x| (x, step_candidates(self.doc, step.axis, &step.test, x))).collect();
        // Predicates in ascending order, each evaluated over the deduplicated
        // context list T (the vector computation).
        for pred in &step.predicates {
            groups = self.filter_groups(step.axis, groups, pred)?;
        }
        // R_i := {y | ⟨x, y⟩ ∈ S, x ∈ Xi}.
        let by_x: HashMap<NodeId, &Vec<NodeId>> = groups.iter().map(|(x, sx)| (*x, sx)).collect();
        let mut outputs = Vec::with_capacity(inputs.len());
        for xi in inputs {
            let mut r: Vec<NodeId> = Vec::new();
            for x in xi {
                if let Some(sx) = by_x.get(&x) {
                    r.extend_from_slice(sx);
                }
            }
            outputs.push(NodeSet::from_unsorted(r));
        }
        Ok(outputs)
    }

    /// Apply one predicate to every group: build the deduplicated context
    /// list `T = {CtS(x,y)}`, evaluate `E↓[[e]](t1,…,tl)` once, then filter.
    fn filter_groups(
        &self,
        axis: Axis,
        groups: Vec<(NodeId, Vec<NodeId>)>,
        pred: &Expr,
    ) -> EvalResult<Vec<(NodeId, Vec<NodeId>)>> {
        let mut t: Vec<Context> = Vec::new();
        let mut index: HashMap<Context, usize> = HashMap::new();
        let mut group_ctx: Vec<Vec<usize>> = Vec::with_capacity(groups.len());
        for (_, sx) in &groups {
            let len = sx.len();
            let mut idxs = Vec::with_capacity(len);
            for (j, &y) in sx.iter().enumerate() {
                let c = Context::new(y, position_of(axis, j, len), len.max(1) as u32);
                let id = *index.entry(c).or_insert_with(|| {
                    t.push(c);
                    t.len() - 1
                });
                idxs.push(id);
            }
            group_ctx.push(idxs);
        }
        let rs = self.e_down(pred, &t)?;
        let mut out = Vec::with_capacity(groups.len());
        for ((x, sx), idxs) in groups.into_iter().zip(group_ctx) {
            let kept: Vec<NodeId> = sx
                .into_iter()
                .zip(idxs)
                .filter(|&(_, ci)| predicate_holds(&rs[ci], t[ci].position))
                .map(|(y, _)| y)
                .collect();
            out.push((x, kept));
        }
        Ok(out)
    }

    /// Filter-expression predicates: forward positions within each set,
    /// with the same batched predicate evaluation.
    fn filter_sets_forward(
        &self,
        mut sets: Vec<NodeSet>,
        predicates: &[Expr],
    ) -> EvalResult<Vec<NodeSet>> {
        for pred in predicates {
            let mut t: Vec<Context> = Vec::new();
            let mut index: HashMap<Context, usize> = HashMap::new();
            let mut set_ctx: Vec<Vec<usize>> = Vec::with_capacity(sets.len());
            for s in &sets {
                let len = s.len();
                let mut idxs = Vec::with_capacity(len);
                for (j, y) in s.iter().enumerate() {
                    let c = Context::new(y, (j + 1) as u32, len.max(1) as u32);
                    let id = *index.entry(c).or_insert_with(|| {
                        t.push(c);
                        t.len() - 1
                    });
                    idxs.push(id);
                }
                set_ctx.push(idxs);
            }
            let rs = self.e_down(pred, &t)?;
            sets = sets
                .into_iter()
                .zip(set_ctx)
                .map(|(s, idxs)| {
                    s.into_iter()
                        .zip(idxs)
                        .filter(|&(_, ci)| predicate_holds(&rs[ci], t[ci].position))
                        .map(|(y, _)| y)
                        .collect()
                })
                .collect();
        }
        Ok(sets)
    }
}

/// Convenience: evaluate a query string with the top-down evaluator.
pub fn evaluate_str(doc: &Document, query: &str, ctx: Context) -> EvalResult<Value> {
    let e =
        xpath_syntax::parse_normalized(query).map_err(|err| EvalError::Parse(err.to_string()))?;
    TopDownEvaluator::new(doc).evaluate(&e, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveEvaluator;
    use xpath_syntax::parse_normalized;
    use xpath_xml::generate::{doc_bookstore, doc_figure8, doc_flat, doc_flat_text};

    fn run(doc: &Document, q: &str) -> Value {
        evaluate_str(doc, q, Context::of(doc.root())).unwrap_or_else(|e| panic!("{q}: {e}"))
    }

    #[test]
    fn example_7_3() {
        // Same query as Example 6.4: over DOC(4) with context ⟨a,1,1⟩,
        // descendant::b/following-sibling::*[position() != last()] = {b2,b3}.
        let d = doc_flat(4);
        let a = d.document_element().unwrap();
        let v = evaluate_str(
            &d,
            "descendant::b/following-sibling::*[position() != last()]",
            Context::of(a),
        )
        .unwrap();
        let bs: Vec<NodeId> = d.children(a).collect();
        assert_eq!(v, Value::NodeSet(vec![bs[1], bs[2]].into()));
    }

    #[test]
    fn example_7_2_shape() {
        let d = doc_figure8();
        // The Example 7.2 query (adapted labels exist in Figure 8): it must
        // evaluate without error and agree with the naive oracle.
        let q = "/descendant::b[count(descendant::c/child::d) + position() < last()]/child::d";
        let e = parse_normalized(q).unwrap();
        let td = TopDownEvaluator::new(&d).evaluate(&e, Context::of(d.root())).unwrap();
        let nv = NaiveEvaluator::new(&d).evaluate(&e, Context::of(d.root())).unwrap();
        assert_eq!(td, nv);
    }

    #[test]
    fn example_8_1_query() {
        let d = doc_figure8();
        let v = run(
            &d,
            "/descendant::*/descendant::*[position() > last() * 0.5 or string(self::*) = '100']",
        );
        let expect: Vec<NodeId> = ["13", "14", "21", "22", "23", "24"]
            .iter()
            .map(|i| d.element_by_id(i).unwrap())
            .collect();
        assert_eq!(v, Value::NodeSet(expect.into()));
    }

    #[test]
    fn agrees_with_naive_on_corpus() {
        let docs = [doc_flat(4), doc_flat_text(3), doc_figure8(), doc_bookstore()];
        let queries = [
            "//a/b",
            "//b[1]",
            "//b[last()]",
            "//*[parent::a/child::* = 'c']",
            "//a/b[count(parent::a/b) > 1]",
            "count(//b/following::b)",
            "//b//d",
            "(//c | //d)[2]",
            "id('12 24')",
            "//*[@id = '22']/parent::*",
            "sum(//d)",
            "//*[position() = last()]",
            "//section/book[2]/title",
            "//book[author/last = 'Koch']/@id",
            "//*[starts-with(name(), 'b')]",
            "string(//book[1]/title)",
            "//b[preceding-sibling::b]",
            "//d/ancestor::b",
            "//c/following::d",
            "//d[not(following-sibling::*)]",
        ];
        for d in &docs {
            for q in queries {
                let e = parse_normalized(q).unwrap();
                let naive = NaiveEvaluator::new(d).evaluate(&e, Context::of(d.root())).unwrap();
                let td = TopDownEvaluator::new(d).evaluate(&e, Context::of(d.root())).unwrap();
                assert!(naive.semantically_equal(&td), "query {q} on {d:?}: {naive:?} vs {td:?}");
            }
        }
    }

    #[test]
    fn experiment1_is_polynomial_here() {
        // The antagonist Experiment-1 query family that is exponential for
        // the naive evaluator runs instantly top-down even at depth 40.
        let d = doc_flat(2);
        let mut q = String::from("//a/b");
        for _ in 0..40 {
            q.push_str("/parent::a/b");
        }
        let v = run(&d, &q);
        assert_eq!(v.as_node_set().unwrap().len(), 2);
    }

    #[test]
    fn deep_following_chain() {
        let d = doc_flat(20);
        let q = format!("count(//b{})", "/following::b".repeat(10));
        // Each following step keeps the suffix; count = number of b's
        // reachable via 10 following steps = 20 - 10 = 10 from the first b.
        let v = run(&d, &q);
        assert_eq!(v, Value::Number(10.0));
    }

    #[test]
    fn vectorized_positions_inside_nested_predicates() {
        let d = doc_bookstore();
        let e = parse_normalized("//section[book[2][@year > 2000]]/@name").unwrap();
        let td = TopDownEvaluator::new(&d).evaluate(&e, Context::of(d.root())).unwrap();
        let nv = NaiveEvaluator::new(&d).evaluate(&e, Context::of(d.root())).unwrap();
        assert_eq!(td, nv);
        assert_eq!(td.to_xpath_string(&d), "databases");
    }
}
