//! Comparison semantics: the `RelOp`/`EqOp`/`GtOp` rows of Table II.
//!
//! One documented deviation from the paper's (simplified) Table II: for
//! `GtOp` (`< <= > >=`) with node-set operands we follow the W3C rule the
//! paper defers to — string values are converted to numbers — while `EqOp`
//! (`= !=`) compares string values as strings, exactly as in Table II.

use xpath_syntax::BinaryOp;
use xpath_xml::Document;

use crate::value::{str_to_number, Value};

/// Is `op` one of `= !=`?
fn is_eq_op(op: BinaryOp) -> bool {
    matches!(op, BinaryOp::Eq | BinaryOp::Ne)
}

fn num_cmp(op: BinaryOp, a: f64, b: f64) -> bool {
    match op {
        BinaryOp::Eq => a == b,
        BinaryOp::Ne => a != b,
        BinaryOp::Lt => a < b,
        BinaryOp::Le => a <= b,
        BinaryOp::Gt => a > b,
        BinaryOp::Ge => a >= b,
        _ => unreachable!("not a comparison operator"),
    }
}

fn str_cmp(op: BinaryOp, a: &str, b: &str) -> bool {
    match op {
        BinaryOp::Eq => a == b,
        BinaryOp::Ne => a != b,
        // GtOp on strings compares the numeric conversions (W3C §3.4).
        _ => num_cmp(op, str_to_number(a), str_to_number(b)),
    }
}

fn bool_cmp(op: BinaryOp, a: bool, b: bool) -> bool {
    match op {
        BinaryOp::Eq => a == b,
        BinaryOp::Ne => a != b,
        _ => num_cmp(op, a as u8 as f64, b as u8 as f64),
    }
}

/// Mirror a comparison operator: `a op b ⇔ b mirror(op) a`.
fn mirror(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::Le => BinaryOp::Ge,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::Ge => BinaryOp::Le,
        other => other,
    }
}

/// Evaluate `l op r` per Table II.
///
/// # Panics
/// Panics if `op` is not a comparison operator.
pub fn compare(doc: &Document, op: BinaryOp, l: &Value, r: &Value) -> bool {
    assert!(op.is_relational(), "compare called with {op:?}");
    match (l, r) {
        // F[[RelOp : nset × nset]]: ∃ n1 ∈ S1, n2 ∈ S2 with matching
        // string values (strings for EqOp, numbers for GtOp).
        (Value::NodeSet(s1), Value::NodeSet(s2)) => {
            if is_eq_op(op) {
                // For = / != an O(|S1|+|S2|) hash-based check.
                if s1.is_empty() || s2.is_empty() {
                    return false;
                }
                let set1: std::collections::HashSet<&str> =
                    s1.iter().map(|n| doc.string_value(n)).collect();
                match op {
                    BinaryOp::Eq => s2.iter().any(|n| set1.contains(doc.string_value(n))),
                    _ => {
                        // != : ∃ pair with different values. False only if
                        // every value on both sides is the single same string.
                        let set2: std::collections::HashSet<&str> =
                            s2.iter().map(|n| doc.string_value(n)).collect();
                        set1.len() > 1 || set2.len() > 1 || set1 != set2
                    }
                }
            } else {
                let nums2: Vec<f64> =
                    s2.iter().map(|n| str_to_number(doc.string_value(n))).collect();
                s1.iter().any(|n1| {
                    let v1 = str_to_number(doc.string_value(n1));
                    nums2.iter().any(|&v2| num_cmp(op, v1, v2))
                })
            }
        }
        // F[[RelOp : nset × num]]: ∃ n ∈ S : to_number(strval(n)) RelOp v.
        (Value::NodeSet(s), Value::Number(v)) => {
            s.iter().any(|n| num_cmp(op, str_to_number(doc.string_value(n)), *v))
        }
        (Value::Number(v), Value::NodeSet(s)) => {
            s.iter().any(|n| num_cmp(mirror(op), str_to_number(doc.string_value(n)), *v))
        }
        // F[[RelOp : nset × str]]: ∃ n ∈ S : strval(n) RelOp s.
        (Value::NodeSet(s), Value::String(t)) => {
            s.iter().any(|n| str_cmp(op, doc.string_value(n), t))
        }
        (Value::String(t), Value::NodeSet(s)) => {
            s.iter().any(|n| str_cmp(mirror(op), doc.string_value(n), t))
        }
        // F[[RelOp : nset × bool]]: boolean(S) RelOp b.
        (Value::NodeSet(s), Value::Boolean(b)) => bool_cmp(op, !s.is_empty(), *b),
        (Value::Boolean(b), Value::NodeSet(s)) => bool_cmp(op, *b, !s.is_empty()),
        // Scalar cases.
        (l, r) => {
            if is_eq_op(op) {
                // F[[EqOp : bool × (str∪num∪bool)]], then numbers, then strings.
                match (l, r) {
                    (Value::Boolean(_), _) | (_, Value::Boolean(_)) => {
                        bool_cmp(op, l.to_boolean(), r.to_boolean())
                    }
                    (Value::Number(_), _) | (_, Value::Number(_)) => {
                        num_cmp(op, l.to_number(doc), r.to_number(doc))
                    }
                    _ => str_cmp(op, &l.to_xpath_string(doc), &r.to_xpath_string(doc)),
                }
            } else {
                // F[[GtOp]]: number(x1) GtOp number(x2).
                num_cmp(op, l.to_number(doc), r.to_number(doc))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_xml::generate::doc_flat_text;
    use xpath_xml::{Document, NodeId};

    fn doc() -> Document {
        doc_flat_text(3)
    }

    fn bset(d: &Document) -> crate::nodeset::NodeSet {
        let a = d.document_element().unwrap();
        d.children(a).collect()
    }

    #[test]
    fn nset_vs_string_eq() {
        let d = doc();
        let s = Value::NodeSet(bset(&d));
        assert!(compare(&d, BinaryOp::Eq, &s, &Value::String("c".into())));
        assert!(!compare(&d, BinaryOp::Eq, &s, &Value::String("z".into())));
        // != true because some node's value differs from "z".
        assert!(compare(&d, BinaryOp::Ne, &s, &Value::String("z".into())));
        // != false only when every node equals the string... here all are
        // "c", so "!= 'c'" is false.
        assert!(!compare(&d, BinaryOp::Ne, &s, &Value::String("c".into())));
    }

    #[test]
    fn empty_nset_comparisons_are_false() {
        let d = doc();
        let e = Value::NodeSet(crate::nodeset::NodeSet::new());
        for op in [BinaryOp::Eq, BinaryOp::Ne, BinaryOp::Lt, BinaryOp::Gt] {
            assert!(!compare(&d, op, &e, &Value::String("c".into())), "{op:?}");
            assert!(!compare(&d, op, &e, &Value::Number(0.0)), "{op:?}");
            assert!(!compare(&d, op, &e, &e), "{op:?}");
        }
        // But against booleans the nset converts to false.
        assert!(compare(&d, BinaryOp::Eq, &e, &Value::Boolean(false)));
        assert!(compare(&d, BinaryOp::Ne, &e, &Value::Boolean(true)));
    }

    #[test]
    fn nset_vs_number() {
        let d = Document::parse_str("<a><b>1</b><b>5</b></a>").unwrap();
        let s = Value::NodeSet(bset(&d));
        assert!(compare(&d, BinaryOp::Eq, &s, &Value::Number(5.0)));
        assert!(compare(&d, BinaryOp::Lt, &s, &Value::Number(2.0)));
        assert!(!compare(&d, BinaryOp::Gt, &s, &Value::Number(5.0)));
        assert!(compare(&d, BinaryOp::Ge, &s, &Value::Number(5.0)));
        // Mirrored: 2 < {1,5} via 5; 5 > {1,5} via 1; 6 ≤ {1,5} has no witness.
        assert!(compare(&d, BinaryOp::Lt, &Value::Number(2.0), &s));
        assert!(compare(&d, BinaryOp::Gt, &Value::Number(5.0), &s));
        assert!(!compare(&d, BinaryOp::Le, &Value::Number(6.0), &s));
    }

    #[test]
    fn nset_vs_nset() {
        let d = Document::parse_str("<a><b>1</b><b>2</b><c>2</c><c>3</c></a>").unwrap();
        let a = d.document_element().unwrap();
        let kids: Vec<NodeId> = d.children(a).collect();
        let bs = Value::NodeSet(kids[0..2].to_vec().into());
        let cs = Value::NodeSet(kids[2..4].to_vec().into());
        assert!(compare(&d, BinaryOp::Eq, &bs, &cs)); // both contain "2"
        assert!(compare(&d, BinaryOp::Ne, &bs, &cs));
        assert!(compare(&d, BinaryOp::Lt, &bs, &cs));
        assert!(compare(&d, BinaryOp::Gt, &cs, &bs));
        // {1,2} > {2,3}: 2 > ... no pair with b > c? 2 > 2 false, 2 > 3
        // false, 1 > anything false → false... wait 2 > 2 is false but is
        // there any pair? No. Actually {1,2} vs {2,3}: no b-value exceeds a
        // c-value, so > is false.
        assert!(!compare(&d, BinaryOp::Gt, &bs, &cs));
    }

    #[test]
    fn nset_ne_nset_single_equal_value() {
        let d = Document::parse_str("<a><b>x</b><c>x</c></a>").unwrap();
        let a = d.document_element().unwrap();
        let kids: Vec<NodeId> = d.children(a).collect();
        let bs = Value::NodeSet(vec![kids[0]].into());
        let cs = Value::NodeSet(vec![kids[1]].into());
        assert!(compare(&d, BinaryOp::Eq, &bs, &cs));
        assert!(!compare(&d, BinaryOp::Ne, &bs, &cs), "all values identical");
    }

    #[test]
    fn scalar_eq_type_ladder() {
        let d = doc();
        // Boolean dominates.
        assert!(compare(&d, BinaryOp::Eq, &Value::Boolean(true), &Value::Number(7.0)));
        assert!(compare(&d, BinaryOp::Eq, &Value::Boolean(false), &Value::String("".into())));
        // Number next: "1" = 1.
        assert!(compare(&d, BinaryOp::Eq, &Value::Number(1.0), &Value::String("1".into())));
        assert!(!compare(&d, BinaryOp::Eq, &Value::Number(1.0), &Value::String("x".into())));
        // Strings last.
        assert!(compare(&d, BinaryOp::Eq, &Value::String("q".into()), &Value::String("q".into())));
    }

    #[test]
    fn gtop_is_numeric() {
        let d = doc();
        assert!(compare(&d, BinaryOp::Lt, &Value::String("2".into()), &Value::String("10".into())));
        assert!(
            !compare(&d, BinaryOp::Lt, &Value::String("abc".into()), &Value::String("abd".into())),
            "non-numeric strings compare as NaN → false"
        );
        assert!(compare(&d, BinaryOp::Le, &Value::Boolean(false), &Value::Boolean(true)));
    }

    #[test]
    fn nan_semantics() {
        let d = doc();
        let nan = Value::Number(f64::NAN);
        assert!(!compare(&d, BinaryOp::Eq, &nan, &nan));
        assert!(compare(&d, BinaryOp::Ne, &nan, &nan));
        assert!(!compare(&d, BinaryOp::Lt, &nan, &Value::Number(1.0)));
        assert!(!compare(&d, BinaryOp::Ge, &nan, &Value::Number(1.0)));
    }
}
