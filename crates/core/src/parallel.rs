//! Sharded parallel CVT evaluation: split the node-id universe into
//! contiguous ranges, run per-step passes per shard on a small scoped
//! thread pool, and merge with word-parallel bitset unions.
//!
//! The paper's evaluators are built from per-step **context-value-table
//! passes** whose node-id-indexed rows are embarrassingly data-parallel:
//! the bottom-up per-node table fills ([`crate::bottomup`]) touch each
//! row independently, and the Core XPath `E1`/`S←` axis passes
//! ([`crate::corexpath`]) distribute over input union
//! (`χ(S) = ∪ᵢ χ(S ∩ rangeᵢ)`). Every building block is pure and
//! side-effect free (`bulk::axis_set_planned`, the hybrid
//! [`NodeSet`] algebra), so shards can run concurrently with **no
//! synchronization besides the join**.
//!
//! # Shard / merge invariants
//!
//! * Shards partition the id universe into contiguous, **word-aligned**
//!   ranges ([`xpath_xml::nodeset::shard_ranges`]), so dense per-shard
//!   results never share a bitset word across a boundary.
//! * Axis passes shard their **input** set; per-shard results may overlap
//!   (ancestor chains from different shards meet) and are merged with
//!   [`NodeSet::union_shards`] — correctness needs only distributivity
//!   over input union, which holds for every axis function (each is a
//!   per-node union).
//! * Row passes ([`map_rows`] / [`try_map_rows`]) shard their **output**
//!   rows; shards produce disjoint row ranges that concatenate in order,
//!   so the merged pass is bit-identical to the serial one.
//! * Worker threads are spawned per pass with [`std::thread::scope`]
//!   (no pool state, no new dependencies); the caller's thread runs the
//!   first shard, so `shards = k` spawns `k − 1` workers.
//! * Per-shard [`KernelCounters`] records merge losslessly: a pass
//!   sharded `k` ways records each shard's kernel pick individually plus
//!   one `record_sharded(k)`, and those flow into `CompiledQuery::
//!   planner_stats` / `QueryCache::planner_stats` like any other tally.
//!
//! # When the planner refuses to spawn
//!
//! Spawning is **cost-gated per pass** by
//! [`CostModel::pick_shards`]: the divisible work saved must repay
//! [`CostModel::spawn_ns`] per extra worker plus the word-parallel merge
//! at the join ([`CostModel::merge_word_ns`]). Concretely the planner
//! refuses whenever
//!
//! * the thread budget is 1 (explicit `--threads 1`, `GKP_THREADS=1`, or
//!   a single-core machine),
//! * a row pass has fewer than [`CostModel::row_shard_crossover`] rows
//!   (~600 at the calibrated constants), or
//! * an axis pass has fewer than [`CostModel::axis_shard_crossover`]
//!   input nodes — note this grows with the universe, because every
//!   extra shard pays its own dense materialization and merge.
//!
//! A refused pass runs serially on the caller's thread through exactly
//! the code the Adaptive backend runs, so a 1-shard configuration is the
//! Adaptive engine, bit for bit and (within noise) nanosecond for
//! nanosecond.
//!
//! The thread budget resolves as: explicit request (e.g. `xpq
//! --threads N`, [`crate::query::Compiler::threads`]) > the
//! [`THREADS_ENV`] environment variable > `std::thread::
//! available_parallelism` capped at [`MAX_AUTO_THREADS`].

use std::sync::OnceLock;

use xpath_axes::{bulk, CostModel, KernelCounters};
use xpath_syntax::Axis;
use xpath_xml::nodeset::shard_ranges;
use xpath_xml::{Document, NodeSet};

/// Environment variable bounding the auto-resolved thread budget, e.g.
/// `GKP_THREADS=4`. `GKP_THREADS=1` disables sharding process-wide.
pub const THREADS_ENV: &str = "GKP_THREADS";

/// Cap on the auto-resolved budget: CVT passes are memory-bound, so
/// fan-out past a few cores buys little and the spawn gate would mostly
/// refuse the extra shards anyway.
pub const MAX_AUTO_THREADS: usize = 8;

/// Resolve a requested thread budget: an explicit `n ≥ 1` wins; `0`
/// (auto) reads [`THREADS_ENV`] once per process, falling back to
/// [`std::thread::available_parallelism`] capped at [`MAX_AUTO_THREADS`].
pub fn resolve_threads(requested: u32) -> usize {
    if requested >= 1 {
        return requested as usize;
    }
    static AUTO: OnceLock<usize> = OnceLock::new();
    *AUTO.get_or_init(|| {
        match std::env::var(THREADS_ENV).ok().and_then(|v| v.trim().parse::<usize>().ok()) {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism().map_or(1, |n| n.get().min(MAX_AUTO_THREADS)),
        }
    })
}

/// Run `f` once per `(shard_index, lo, hi)` range on a scoped thread
/// pool — `ranges.len() − 1` spawned workers, the caller's thread runs
/// the first shard — returning the results in range order. A panicking
/// shard propagates after the scope joins.
pub fn run_sharded<T, F>(ranges: &[(u32, u32)], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, u32, u32) -> T + Sync,
{
    if ranges.len() <= 1 {
        return ranges.iter().map(|&(lo, hi)| f(0, lo, hi)).collect();
    }
    let f = &f;
    std::thread::scope(|scope| {
        let workers: Vec<_> = ranges[1..]
            .iter()
            .enumerate()
            .map(|(i, &(lo, hi))| scope.spawn(move || f(i + 1, lo, hi)))
            .collect();
        let mut out = Vec::with_capacity(ranges.len());
        out.push(f(0, ranges[0].0, ranges[0].1));
        for w in workers {
            out.push(w.join().expect("shard worker panicked"));
        }
        out
    })
}

/// How many shards an axis pass over `input_len` source nodes in a
/// `universe`-id document should use under `model`, at most `threads`
/// (1 = the planner refuses to spawn).
pub fn plan_axis_shards(
    universe: u32,
    input_len: usize,
    threads: usize,
    model: &CostModel,
) -> usize {
    if threads <= 1 || universe == 0 || input_len == 0 {
        return 1;
    }
    let words = universe as f64 / 64.0;
    // Divisible: the per-input staircase/dispatch work. Fixed per extra
    // shard: its own dense materialization plus the merge at the join.
    let divisible = model.input_ns * input_len as f64;
    let per_shard = (model.dense_word_ns + model.merge_word_ns) * words;
    model.pick_shards(divisible, per_shard, threads)
}

/// How many shards a CVT row pass of `rows` rows should use under
/// `model`, at most `threads` (1 = the planner refuses to spawn).
pub fn plan_row_shards(rows: usize, threads: usize, model: &CostModel) -> usize {
    if threads <= 1 || rows == 0 {
        return 1;
    }
    model.pick_shards(rows as f64 * model.cvt_row_ns(), 0.0, threads)
}

/// Cost-gated sharded forward axis pass — the parallel form of
/// [`bulk::axis_set_planned`]. When the gate approves, the input set is
/// split over word-aligned id ranges, each shard runs the adaptive
/// kernel planner on its slice concurrently
/// ([`bulk::axis_set_planned_range`]), and the per-shard results merge
/// word-parallel; otherwise the pass runs serially on the caller's
/// thread. Each shard's kernel pick (and the shard count) is recorded
/// into `counters` when given.
pub fn axis_set_sharded(
    doc: &Document,
    axis: Axis,
    set: &NodeSet,
    threads: usize,
    model: &CostModel,
    counters: Option<&KernelCounters>,
) -> NodeSet {
    let universe = doc.len() as u32;
    let shards = plan_axis_shards(universe, set.len(), threads, model);
    // Word alignment can collapse an approved split on a tiny universe
    // (one bitset word cannot divide): a single range runs — and is
    // recorded — as a serial pass.
    let ranges = if shards > 1 { shard_ranges(universe, shards) } else { Vec::new() };
    if ranges.len() <= 1 {
        let (out, kernel) = bulk::axis_set_planned(doc, axis, set, model);
        if let Some(c) = counters {
            c.record(kernel);
        }
        return out;
    }
    let parts = run_sharded(&ranges, |_, lo, hi| {
        bulk::axis_set_planned_range(doc, axis, set, lo, hi, model)
    });
    record_shard_parts(counters, &parts);
    NodeSet::union_shards(parts.into_iter().map(|(s, _)| s))
}

/// Cost-gated sharded inverse axis pass (`χ⁻¹`, the `S←` step unit) —
/// the parallel form of [`bulk::inverse_axis_set_planned`]. The
/// attribute/namespace/id inverses stay serial (they are sparse
/// link-array walks with no divisible bulk).
pub fn inverse_axis_set_sharded(
    doc: &Document,
    axis: Axis,
    set: &NodeSet,
    threads: usize,
    model: &CostModel,
    counters: Option<&KernelCounters>,
) -> NodeSet {
    let universe = doc.len() as u32;
    let shards = match axis {
        Axis::Attribute | Axis::Namespace | Axis::Id => 1,
        _ => plan_axis_shards(universe, set.len(), threads, model),
    };
    let ranges = if shards > 1 { shard_ranges(universe, shards) } else { Vec::new() };
    if ranges.len() <= 1 {
        let (out, kernel) = bulk::inverse_axis_set_planned(doc, axis, set, model);
        if let Some(c) = counters {
            c.record(kernel);
        }
        return out;
    }
    let parts = run_sharded(&ranges, |_, lo, hi| {
        bulk::inverse_axis_set_planned_range(doc, axis, set, lo, hi, model)
    });
    record_shard_parts(counters, &parts);
    NodeSet::union_shards(parts.into_iter().map(|(s, _)| s))
}

fn record_shard_parts(counters: Option<&KernelCounters>, parts: &[(NodeSet, xpath_axes::Kernel)]) {
    if let Some(c) = counters {
        c.record_sharded(parts.len());
        for (_, kernel) in parts {
            c.record(*kernel);
        }
    }
}

/// Shard an infallible CVT row pass over `[0, rows)`: run `f` per
/// contiguous row range — each returning its rows in ascending order —
/// and concatenate. With `shards ≤ 1` this is just `f(0, rows)`.
pub fn map_rows<T, F>(rows: u32, shards: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u32, u32) -> Vec<T> + Sync,
{
    if shards <= 1 {
        return f(0, rows);
    }
    let parts = run_sharded(&chunk_ranges(rows, shards), |_, lo, hi| f(lo, hi));
    let mut out = Vec::with_capacity(rows as usize);
    for p in parts {
        out.extend(p);
    }
    out
}

/// [`map_rows`] for fallible passes: every shard runs to completion (the
/// scope joins all workers), then the first error in row order wins.
pub fn try_map_rows<T, E, F>(rows: u32, shards: usize, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(u32, u32) -> Result<Vec<T>, E> + Sync,
{
    if shards <= 1 {
        return f(0, rows);
    }
    let parts = run_sharded(&chunk_ranges(rows, shards), |_, lo, hi| f(lo, hi));
    let mut out = Vec::with_capacity(rows as usize);
    for p in parts {
        out.extend(p?);
    }
    Ok(out)
}

/// Split `[0, items)` into at most `shards` near-equal contiguous ranges
/// (no word alignment — unlike [`shard_ranges`], these partition plain
/// indices: CVT table rows, or the query list of a
/// [`batch::QuerySet`](crate::batch::QuerySet) fanning out one query per
/// worker).
pub fn chunk_ranges(items: u32, shards: usize) -> Vec<(u32, u32)> {
    if items == 0 || shards <= 1 {
        return vec![(0, items)];
    }
    let per_shard = items.div_ceil(shards as u32).max(1);
    let mut out = Vec::with_capacity(shards);
    let mut lo = 0u32;
    while lo < items {
        let hi = (lo + per_shard).min(items);
        out.push((lo, hi));
        lo = hi;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_xml::generate::{doc_balanced, doc_random, RandomDocConfig};
    use xpath_xml::NodeId;

    /// Spawn/merge-free model: the gate always approves the full budget.
    fn always_shard() -> CostModel {
        CostModel { spawn_ns: 1e-9, merge_word_ns: 1e-9, ..CostModel::CALIBRATED }
    }

    #[test]
    fn resolve_threads_explicit_wins() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(1), 1);
        assert!(resolve_threads(0) >= 1, "auto resolves to at least one thread");
    }

    #[test]
    fn row_passes_concatenate_in_order() {
        for shards in [1usize, 2, 3, 8, 64] {
            let got = map_rows(100, shards, |lo, hi| (lo..hi).collect::<Vec<u32>>());
            assert_eq!(got, (0..100).collect::<Vec<u32>>(), "{shards} shards");
        }
        // Fallible: all shards join, first error in row order wins.
        let err = try_map_rows(100, 4, |lo, hi| {
            if lo >= 50 {
                Err(format!("shard at {lo}"))
            } else {
                Ok((lo..hi).collect::<Vec<u32>>())
            }
        });
        assert_eq!(err, Err("shard at 50".to_string()));
        assert_eq!(try_map_rows(0, 4, |_, _| Ok::<_, ()>(Vec::<u32>::new())), Ok(Vec::new()));
    }

    #[test]
    fn sharded_axis_passes_match_serial_on_every_axis() {
        let model = always_shard();
        for seed in 0..4u64 {
            let doc =
                doc_random(seed, &RandomDocConfig { elements: 80, ..RandomDocConfig::default() });
            let n = doc.len() as u32;
            let ids: Vec<NodeId> = doc.all_nodes().filter(|x| x.0 % 3 != 1).collect();
            for set in [NodeSet::from_sorted(ids.clone()), NodeSet::from_sorted(ids).densify(n)] {
                for axis in Axis::STANDARD {
                    let want = bulk::axis_set_planned(&doc, axis, &set, &model).0;
                    let want_inv = bulk::inverse_axis_set_planned(&doc, axis, &set, &model).0;
                    for threads in [1usize, 2, 4, 8] {
                        let got = axis_set_sharded(&doc, axis, &set, threads, &model, None);
                        assert_eq!(got, want, "{axis:?} fwd, {threads} threads, seed {seed}");
                        let got = inverse_axis_set_sharded(&doc, axis, &set, threads, &model, None);
                        assert_eq!(got, want_inv, "{axis:?} inv, {threads} threads, seed {seed}");
                    }
                }
            }
        }
    }

    #[test]
    fn shard_counters_record_per_shard_kernels() {
        let doc = doc_balanced(4, 5, &["a", "b", "c", "d"]);
        let all: NodeSet = doc.all_nodes().collect();
        let model = always_shard();
        let counters = KernelCounters::new();
        axis_set_sharded(&doc, Axis::Descendant, &all, 4, &model, Some(&counters));
        let s = counters.snapshot();
        assert_eq!(s.sharded_passes, 1);
        assert!(s.shards_spawned >= 2, "{s:?}");
        assert_eq!(s.total(), s.shards_spawned, "one kernel record per shard");
    }

    #[test]
    fn single_word_universe_never_records_a_sharded_pass() {
        // A ≤64-id universe is one bitset word: word alignment collapses
        // any approved split to a single range, which must run — and be
        // recorded — as a plain serial pass, even under an always-shard
        // model with a wide budget.
        let doc = doc_balanced(2, 4, &["a", "b"]);
        assert!(doc.len() <= 64, "test needs a one-word universe");
        let all: NodeSet = doc.all_nodes().collect();
        let counters = KernelCounters::new();
        axis_set_sharded(&doc, Axis::Descendant, &all, 8, &always_shard(), Some(&counters));
        inverse_axis_set_sharded(&doc, Axis::Ancestor, &all, 8, &always_shard(), Some(&counters));
        let s = counters.snapshot();
        assert_eq!(s.sharded_passes, 0, "{s:?}");
        assert_eq!(s.total(), 2, "one serial kernel record per pass: {s:?}");
    }

    #[test]
    fn calibrated_gate_refuses_small_passes() {
        let doc = doc_balanced(3, 4, &["a", "b"]);
        let all: NodeSet = doc.all_nodes().collect();
        let counters = KernelCounters::new();
        // A ~120-node pass is far below the spawn crossover: the planner
        // must refuse and run the exact Adaptive path.
        axis_set_sharded(&doc, Axis::Descendant, &all, 8, CostModel::global(), Some(&counters));
        let s = counters.snapshot();
        assert_eq!((s.sharded_passes, s.total()), (0, 1), "{s:?}");
    }
}
