//! The XPath 1.0 value model (paper §5, Table III): the four expression
//! types `num`, `str`, `bool`, `nset` and the conversion functions
//! `to_number`, `to_string`, `boolean` with full IEEE-754/NaN semantics.

use std::fmt;

use xpath_xml::{Document, NodeId};

use crate::nodeset::NodeSet;

/// An XPath 1.0 value.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// IEEE-754 double (type `num`).
    Number(f64),
    /// Character string (type `str`).
    String(String),
    /// Boolean (type `bool`).
    Boolean(bool),
    /// Node set in document order (type `nset`).
    NodeSet(NodeSet),
}

impl Value {
    /// The `boolean` conversion function (Table II):
    /// * `num` → true iff not ±0 and not NaN;
    /// * `str` → true iff non-empty;
    /// * `nset` → true iff non-empty.
    pub fn to_boolean(&self) -> bool {
        match self {
            Value::Number(v) => *v != 0.0 && !v.is_nan(),
            Value::String(s) => !s.is_empty(),
            Value::Boolean(b) => *b,
            Value::NodeSet(s) => !s.is_empty(),
        }
    }

    /// The `number` conversion function (Table II):
    /// * `str` → `to_number(s)`;
    /// * `bool` → 1 or 0;
    /// * `nset` → `number(string(S))`.
    pub fn to_number(&self, doc: &Document) -> f64 {
        match self {
            Value::Number(v) => *v,
            Value::String(s) => str_to_number(s),
            Value::Boolean(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            Value::NodeSet(s) => str_to_number(&nodeset_to_string(doc, s)),
        }
    }

    /// The `string` conversion function (Table II):
    /// * `num` → `to_string(v)`;
    /// * `bool` → `"true"` / `"false"`;
    /// * `nset` → string value of the first node in document order, `""` if
    ///   empty.
    pub fn to_xpath_string(&self, doc: &Document) -> String {
        match self {
            Value::Number(v) => number_to_string(*v),
            Value::String(s) => s.clone(),
            Value::Boolean(b) => if *b { "true" } else { "false" }.to_string(),
            Value::NodeSet(s) => nodeset_to_string(doc, s),
        }
    }

    /// Borrow the node set, if this value is one.
    pub fn as_node_set(&self) -> Option<&NodeSet> {
        match self {
            Value::NodeSet(s) => Some(s),
            _ => None,
        }
    }

    /// Take the node set out of the value, if it is one.
    pub fn into_node_set(self) -> Option<NodeSet> {
        match self {
            Value::NodeSet(s) => Some(s),
            _ => None,
        }
    }

    /// Equality for differential testing: like `==`, but `NaN` equals `NaN`
    /// (two evaluators both producing NaN agree semantically).
    pub fn semantically_equal(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Number(a), Value::Number(b)) => a == b || (a.is_nan() && b.is_nan()),
            (a, b) => a == b,
        }
    }

    /// A short type name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Boolean(_) => "boolean",
            Value::NodeSet(_) => "node-set",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Number(v) => f.write_str(&number_to_string(*v)),
            Value::String(s) => f.write_str(s),
            Value::Boolean(b) => write!(f, "{b}"),
            Value::NodeSet(s) => {
                f.write_str("{")?;
                for (i, n) in s.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{n}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// `string(nset)`: string value of the first node (document order), or "".
pub fn nodeset_to_string(doc: &Document, s: &NodeSet) -> String {
    s.first().map(|n| doc.string_value(n).to_string()).unwrap_or_default()
}

/// String value of a node as an XPath string value (paper `strval`).
pub fn node_string_value(doc: &Document, n: NodeId) -> String {
    doc.string_value(n).to_string()
}

/// `to_number(str)`: XPath 1.0 number syntax — optional whitespace, optional
/// `-`, digits and at most one `.`; anything else is NaN. (No exponent
/// notation, no `+`, unlike Rust's `f64::parse`.)
pub fn str_to_number(s: &str) -> f64 {
    let t = s.trim_matches([' ', '\t', '\r', '\n']);
    if t.is_empty() {
        return f64::NAN;
    }
    let body = t.strip_prefix('-').unwrap_or(t);
    if body.is_empty() {
        return f64::NAN;
    }
    let mut dot_seen = false;
    let mut digits = false;
    for c in body.chars() {
        match c {
            '0'..='9' => digits = true,
            '.' if !dot_seen => dot_seen = true,
            _ => return f64::NAN,
        }
    }
    if !digits {
        return f64::NAN;
    }
    t.parse::<f64>().unwrap_or(f64::NAN)
}

/// `to_string(num)`: XPath 1.0 number formatting — NaN, ±Infinity, integers
/// without a decimal point, and otherwise decimal notation without an
/// exponent.
pub fn number_to_string(v: f64) -> String {
    if v.is_nan() {
        return "NaN".to_string();
    }
    if v.is_infinite() {
        return if v > 0.0 { "Infinity" } else { "-Infinity" }.to_string();
    }
    if v == 0.0 {
        return "0".to_string(); // both +0 and -0 print as "0"
    }
    if v.fract() == 0.0 && v.abs() < 9.007_199_254_740_992e15 {
        return format!("{}", v as i64);
    }
    let s = format!("{v}");
    if !s.contains(['e', 'E']) {
        return s;
    }
    // Expand exponent notation into plain decimal form.
    let mut out = format!("{v:.17}");
    if out.contains('.') {
        while out.ends_with('0') {
            out.pop();
        }
        if out.ends_with('.') {
            out.pop();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_xml::generate::doc_flat_text;

    #[test]
    fn str_to_number_xpath_syntax() {
        assert_eq!(str_to_number("12"), 12.0);
        assert_eq!(str_to_number(" 12 "), 12.0);
        assert_eq!(str_to_number("-3.5"), -3.5);
        assert_eq!(str_to_number(".5"), 0.5);
        assert_eq!(str_to_number("5."), 5.0);
        assert!(str_to_number("").is_nan());
        assert!(str_to_number("abc").is_nan());
        assert!(str_to_number("1e3").is_nan(), "exponent notation is not XPath");
        assert!(str_to_number("+1").is_nan(), "leading + is not XPath");
        assert!(str_to_number("1.2.3").is_nan());
        assert!(str_to_number("-").is_nan());
        assert!(str_to_number(".").is_nan());
        assert!(str_to_number("12 13").is_nan());
    }

    #[test]
    fn number_to_string_rules() {
        assert_eq!(number_to_string(f64::NAN), "NaN");
        assert_eq!(number_to_string(f64::INFINITY), "Infinity");
        assert_eq!(number_to_string(f64::NEG_INFINITY), "-Infinity");
        assert_eq!(number_to_string(0.0), "0");
        assert_eq!(number_to_string(-0.0), "0");
        assert_eq!(number_to_string(5.0), "5");
        assert_eq!(number_to_string(-17.0), "-17");
        assert_eq!(number_to_string(1.5), "1.5");
        assert_eq!(number_to_string(0.5), "0.5");
        assert_eq!(number_to_string(1e20), "100000000000000000000");
    }

    #[test]
    fn roundtrip_small_numbers() {
        for v in [0.0, 1.0, -1.0, 0.25, 1234.5, -0.125] {
            assert_eq!(str_to_number(&number_to_string(v)), v);
        }
    }

    #[test]
    fn boolean_conversion() {
        assert!(!Value::Number(0.0).to_boolean());
        assert!(!Value::Number(-0.0).to_boolean());
        assert!(!Value::Number(f64::NAN).to_boolean());
        assert!(Value::Number(0.1).to_boolean());
        assert!(Value::Number(f64::INFINITY).to_boolean());
        assert!(!Value::String(String::new()).to_boolean());
        assert!(Value::String("false".into()).to_boolean(), "any non-empty string is true");
        assert!(!Value::NodeSet(NodeSet::new()).to_boolean());
    }

    #[test]
    fn nodeset_conversions_use_first_node() {
        let d = doc_flat_text(3); // root, a, (b c)*3
        let a = d.document_element().unwrap();
        let bs: NodeSet = d.children(a).collect();
        let v = Value::NodeSet(bs.clone());
        assert_eq!(v.to_xpath_string(&d), "c");
        assert!(v.to_number(&d).is_nan());
        let empty = Value::NodeSet(NodeSet::new());
        assert_eq!(empty.to_xpath_string(&d), "");
        assert!(empty.to_number(&d).is_nan());
    }

    #[test]
    fn display() {
        assert_eq!(Value::Number(2.5).to_string(), "2.5");
        assert_eq!(Value::Boolean(true).to_string(), "true");
        assert_eq!(Value::String("x".into()).to_string(), "x");
        assert_eq!(Value::NodeSet(vec![NodeId(1), NodeId(3)].into()).to_string(), "{n1, n3}");
    }
}
