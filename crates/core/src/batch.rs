//! Batched multi-query evaluation: compile N queries into one immutable
//! [`QuerySet`] and amortize a single document traversal over the whole
//! batch.
//!
//! The paper's set-at-a-time Core XPath algorithm (§10) amortizes one
//! traversal over a whole *context set*; a production engine serving many
//! concurrent queries amortizes the same traversal over *many queries at
//! once*. A [`QuerySetBuilder`] compiles raw strings (or adopts cached
//! [`Arc<CompiledQuery>`] handles from a
//! [`QueryCache`](crate::cache::QueryCache)) into a `Send + Sync`
//! [`QuerySet`]; [`QuerySet::evaluate_all`] then runs the batch in one of
//! three modes, picked per document by the calibrated
//! [`CostModel`] (see [`CostModel::pick_batch_mode`]):
//!
//! * **lock-step shared** ([`BatchMode::LockStepShared`]) — every compiled
//!   Core XPath / XPatterns spine advances one step per round, and all
//!   axis applications go through a per-evaluation [`AxisMemo`] keyed by
//!   `(axis, node-test, input-set memo key)` ([`NodeSet::memo_key`]):
//!   identical applications across the batch run **once**. Equal inputs
//!   (in the same representation) key equally, so sharing cascades down
//!   shared spine prefixes step by step, and the document-global `T(t)`,
//!   predicate (`E1`) and `=s` scans dedupe across every position in
//!   the batch.
//! * **per-query sharded** ([`BatchMode::PerQuerySharded`]) — nothing to
//!   share, but a multi-thread budget: the batch fans out one chunk of
//!   queries per scoped worker ([`crate::parallel::run_sharded`]), each
//!   evaluated exactly as an independent evaluation would be.
//! * **serial** ([`BatchMode::Serial`]) — N independent evaluations on
//!   the caller's thread, the fallback when neither sharing nor spawning
//!   repays its overhead.
//!
//! # Memo-key semantics
//!
//! A memo entry is keyed by a 64-bit splitmix64 chain over the operation
//! kind, the axis, the node test, and the input set's content hash
//! ([`NodeSet::memo_key`]) — *not* the input set itself. Sparse inputs
//! hash their raw id slice directly (one mix per id, never materializing
//! bitset words), so keying a small frontier costs `O(len)` with a tiny
//! constant; a key mismatch across representations is just a miss, never
//! a wrong answer. Distinct sets collide with probability ~2⁻⁶⁴ per
//! pair; the differential suite (`tests/batch_differential.rs`) pins
//! batched results bit-identical to independent evaluation across
//! documents, batch shapes and thread budgets. Non-fragment queries
//! (strategies outside Core XPath / XPatterns) always run their normal
//! engines — batching never changes any result, only how often a pass
//! runs.
//!
//! # When sharing wins
//!
//! A memo hit saves a whole axis pass (`O(|D|/64)` words or worse); a
//! memo probe costs a hash-map lookup plus fingerprinting the input
//! (`O(|D|/64)` with a much smaller constant —
//! [`CostModel::memo_unit_ns`] vs [`CostModel::shared_pass_ns`]).
//! Lock-step sharing therefore pays once a few percent of the batch's
//! step units repeat ([`CostModel::batch_share_crossover`]); batches of
//! unrelated queries fall back to sharding or serial evaluation. The
//! decision — and the memo hit counts — surface in
//! [`BatchStats`], [`QuerySet::planner_stats`] and `xpq --explain`.
//!
//! ```
//! use xpath_core::batch::QuerySetBuilder;
//! use xpath_xml::Document;
//!
//! let set = QuerySetBuilder::new()
//!     .query("//b")
//!     .query("//b/c")
//!     .query("count(//b)")
//!     .build()
//!     .unwrap();
//! let doc = Document::parse_str("<a><b><c/></b><b/></a>").unwrap();
//! let out = set.evaluate_all(&doc);
//! assert_eq!(out.len(), 3);
//! assert_eq!(out.results()[2].as_ref().unwrap().to_string(), "2");
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use xpath_axes::{BatchMode, CostModel, KernelCounters, KernelCounts};
use xpath_syntax::{Axis, NodeTest};
use xpath_xml::rng::splitmix64;
use xpath_xml::Document;

use crate::context::{Context, EvalBudget, EvalResult};
use crate::corexpath::{AxisBackend, CorePred, CoreQuery, CoreXPathEvaluator, EqTest};
use crate::nodeset::NodeSet;
use crate::plan::Strategy;
use crate::query::{CompiledQuery, Compiler};
use crate::value::Value;

/// One splitmix64 chaining step for memo keys.
#[inline]
fn mix(h: u64, v: u64) -> u64 {
    splitmix64(h ^ v)
}

/// Hash a value through its `Debug` rendering — derived `Debug` output is
/// a faithful structural rendering of the compiled-query types, so equal
/// structures hash equally (process-local keys only).
fn hash_debug<T: std::fmt::Debug>(v: &T) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    format!("{v:?}").hash(&mut h);
    h.finish()
}

// Memo operation kinds (part of the key, so a forward step and an inverse
// pass over the same input never alias).
const OP_STEP: u64 = 0x5354_4550; // forward step: axis + node test
const OP_TSET: u64 = 0x5453_4554; // document-global T(t)
const OP_INV: u64 = 0x2049_4e56; // inverse axis pass χ⁻¹
const OP_PRED: u64 = 0x5052_4544; // document-global E1[[pred]]
const OP_EQ: u64 = 0x2045_5120; // document-global =s scan

/// The per-evaluation axis-result memo behind
/// [`BatchMode::LockStepShared`]: maps
/// `(operation, axis, node-test, input-memo-key)` keys to finished
/// [`NodeSet`]s so each distinct application runs once per batch
/// evaluation. Thread-safe (`Mutex`-guarded map, atomic counters);
/// results are computed outside the lock.
#[derive(Debug, Default)]
pub struct AxisMemo {
    map: Mutex<HashMap<u64, NodeSet>>,
    /// Structural hashes of node tests / predicates, cached by address:
    /// the compiled structures are pinned by the batch's
    /// `Arc<CompiledQuery>` handles, which outlive every memo the set
    /// uses (the shared scratch memo lives as long as the `QuerySet`
    /// itself), so an address uniquely identifies one structure and
    /// repeat probes skip the `Debug`-render hash entirely.
    ptr_hashes: Mutex<HashMap<usize, u64>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl AxisMemo {
    /// An empty memo. [`QuerySet::evaluate_all`] reuses one per set
    /// (resetting it with [`AxisMemo::begin_evaluation`] each round) —
    /// entries are only valid for a single document.
    pub fn new() -> AxisMemo {
        AxisMemo::default()
    }

    /// Reset for a new evaluation round: drop the previous round's
    /// entries (their node-set buffers recycle into the thread-local
    /// shelves; the map keeps its capacity for reuse) and zero the
    /// hit/miss counters. The structural ptr-hash cache survives — the
    /// structures it keys are pinned by the owning set's
    /// `Arc<CompiledQuery>` handles for the memo's whole life.
    pub fn begin_evaluation(&self) {
        self.map.lock().expect("axis memo poisoned").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Applications served from the memo so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Applications that had to run their pass (and seeded the memo).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// [`hash_debug`] with the result cached by the value's address (see
    /// `ptr_hashes`): the render runs once per distinct structure per
    /// evaluation, not once per probe.
    fn structural_hash<T: std::fmt::Debug>(&self, v: &T) -> u64 {
        let addr = std::ptr::from_ref(v) as usize;
        if let Some(&h) = self.ptr_hashes.lock().expect("axis memo poisoned").get(&addr) {
            return h;
        }
        let h = hash_debug(v);
        self.ptr_hashes.lock().expect("axis memo poisoned").insert(addr, h);
        h
    }

    fn get_or(
        &self,
        key: u64,
        counters: &KernelCounters,
        compute: impl FnOnce() -> NodeSet,
    ) -> NodeSet {
        if let Some(hit) = self.map.lock().expect("axis memo poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            counters.record_memo_hit();
            return hit.clone();
        }
        // Compute outside the lock: passes can be long, and predicate
        // computation recurses back into the memo.
        let out = compute();
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.map.lock().expect("axis memo poisoned").insert(key, out.clone());
        out
    }

    pub(crate) fn step(
        &self,
        axis: Axis,
        test: &NodeTest,
        input: &NodeSet,
        counters: &KernelCounters,
        compute: impl FnOnce() -> NodeSet,
    ) -> NodeSet {
        let key = mix(mix(mix(OP_STEP, axis as u64), self.structural_hash(test)), input.memo_key());
        self.get_or(key, counters, compute)
    }

    pub(crate) fn t_set(
        &self,
        axis: Axis,
        test: &NodeTest,
        counters: &KernelCounters,
        compute: impl FnOnce() -> NodeSet,
    ) -> NodeSet {
        let key = mix(mix(OP_TSET, axis as u64), self.structural_hash(test));
        self.get_or(key, counters, compute)
    }

    pub(crate) fn inverse(
        &self,
        axis: Axis,
        input: &NodeSet,
        counters: &KernelCounters,
        compute: impl FnOnce() -> NodeSet,
    ) -> NodeSet {
        let key = mix(mix(OP_INV, axis as u64), input.memo_key());
        self.get_or(key, counters, compute)
    }

    pub(crate) fn pred(
        &self,
        pred: &CorePred,
        counters: &KernelCounters,
        compute: impl FnOnce() -> NodeSet,
    ) -> NodeSet {
        let key = mix(OP_PRED, self.structural_hash(pred));
        self.get_or(key, counters, compute)
    }

    pub(crate) fn eq(
        &self,
        eq: &EqTest,
        counters: &KernelCounters,
        compute: impl FnOnce() -> NodeSet,
    ) -> NodeSet {
        let key = mix(OP_EQ, self.structural_hash(eq));
        self.get_or(key, counters, compute)
    }
}

/// Builder for a [`QuerySet`]: collects raw query strings (compiled with
/// this builder's [`Compiler`]) and already-compiled
/// [`Arc<CompiledQuery>`] handles, in order.
///
/// ```
/// use std::sync::Arc;
/// use xpath_core::batch::QuerySetBuilder;
/// use xpath_core::cache::QueryCache;
/// use xpath_core::query::Compiler;
///
/// let cache = QueryCache::new(64);
/// let compiler = Compiler::new();
/// let cached = cache.get_or_compile(&compiler, "//b[c]").unwrap();
/// let set = QuerySetBuilder::with_compiler(compiler)
///     .query("//b")                // compiled by the builder
///     .compiled(Arc::clone(&cached)) // adopted from the cache
///     .build()
///     .unwrap();
/// assert_eq!(set.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct QuerySetBuilder {
    compiler: Compiler,
    threads: Option<u32>,
    mode: Option<BatchMode>,
    cost: Option<CostModel>,
    pending: Vec<Pending>,
}

#[derive(Clone, Debug)]
enum Pending {
    Text(String),
    Handle(Arc<CompiledQuery>),
}

impl QuerySetBuilder {
    /// A builder compiling raw strings with default [`Compiler`] settings.
    pub fn new() -> QuerySetBuilder {
        QuerySetBuilder::default()
    }

    /// A builder compiling raw strings with a configured [`Compiler`]
    /// (optimizer, strategy, bindings, thread budget — the compiler's
    /// budget also becomes the batch default unless
    /// [`QuerySetBuilder::threads`] overrides it).
    pub fn with_compiler(compiler: Compiler) -> QuerySetBuilder {
        QuerySetBuilder { compiler, ..QuerySetBuilder::default() }
    }

    /// Append one raw query string (compiled at [`QuerySetBuilder::build`]
    /// time; compile errors surface there, identifying the query).
    pub fn query(mut self, text: impl Into<String>) -> QuerySetBuilder {
        self.pending.push(Pending::Text(text.into()));
        self
    }

    /// Append several raw query strings.
    pub fn queries<I, S>(mut self, texts: I) -> QuerySetBuilder
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.pending.extend(texts.into_iter().map(|t| Pending::Text(t.into())));
        self
    }

    /// Append an already-compiled query handle (e.g. from
    /// [`QueryCache::get_or_compile`](crate::cache::QueryCache::get_or_compile)
    /// or [`QueryCache::get_or_compile_many`](crate::cache::QueryCache::get_or_compile_many)).
    /// No recompilation happens; the handle is shared.
    pub fn compiled(mut self, query: Arc<CompiledQuery>) -> QuerySetBuilder {
        self.pending.push(Pending::Handle(query));
        self
    }

    /// Thread budget for batch evaluation: `0` auto-resolves
    /// (`GKP_THREADS` / the machine), `1` keeps everything on the
    /// caller's thread. Defaults to the builder compiler's budget. The
    /// budget gates [`BatchMode::PerQuerySharded`] and the parallel axis
    /// passes inside lock-step evaluation; it never changes results.
    pub fn threads(mut self, threads: u32) -> QuerySetBuilder {
        self.threads = Some(threads);
        self
    }

    /// Pin the evaluation mode instead of letting
    /// [`CostModel::pick_batch_mode`] decide per document. Any mode is
    /// bit-identical to the others; pinning exists for tests, benchmarks
    /// and callers that know their workload.
    pub fn mode(mut self, mode: BatchMode) -> QuerySetBuilder {
        self.mode = Some(mode);
        self
    }

    /// Override the cost model driving the mode decision (tests,
    /// calibration; defaults to [`CostModel::global`]).
    pub fn cost_model(mut self, model: CostModel) -> QuerySetBuilder {
        self.cost = Some(model);
        self
    }

    /// Number of queries queued so far.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no queries are queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Compile every queued string, adopt every handle, analyze the
    /// batch's shared structure, and freeze the result into an immutable
    /// [`QuerySet`]. Fails on the first compile error.
    pub fn build(self) -> EvalResult<QuerySet> {
        let queries: Vec<Arc<CompiledQuery>> = self
            .pending
            .into_iter()
            .map(|p| match p {
                Pending::Text(t) => self.compiler.compile(&t).map(Arc::new),
                Pending::Handle(h) => Ok(h),
            })
            .collect::<EvalResult<_>>()?;
        let sharing = analyze_sharing(&queries);
        Ok(QuerySet {
            queries,
            threads: self.threads.unwrap_or_else(|| self.compiler.configured_threads()),
            mode: self.mode,
            cost: self.cost.unwrap_or(*CostModel::global()),
            sharing,
            kernels: Arc::new(KernelCounters::new()),
            scratch: Mutex::new(LockStepScratch::default()),
        })
    }
}

/// Reusable lock-step evaluation scratch, kept on the [`QuerySet`] so
/// repeated [`QuerySet::evaluate_all`] calls reach an allocation-free
/// steady state: the memo map keeps its capacity (and its structural
/// ptr-hash cache) across rounds, and the arena's slot vector replaces
/// the per-call `states` allocation. Guarded by a `try_lock` — a
/// concurrent evaluation on another thread simply takes a fresh scratch.
#[derive(Debug, Default)]
struct LockStepScratch {
    memo: Arc<AxisMemo>,
    arena: crate::pool::NodeSetArena,
}

/// Static sharing profile of a batch, computed once at build time: how
/// many spine-step and predicate units the batch contains, and how many
/// of them repeat across queries (identical spine prefixes, identical
/// predicate paths) — each repeat is an axis pass the lock-step memo
/// will serve without re-running.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchSharing {
    /// Step + predicate units across all fragment-engine queries (each
    /// pays one memo probe under lock-step evaluation).
    pub total_units: usize,
    /// Units duplicated across the batch (guaranteed memo hits).
    pub shared_units: usize,
    /// Queries running on the Core XPath / XPatterns fragment engines —
    /// the ones that can share axis passes.
    pub fragment_queries: usize,
}

/// The compiled Core XPath / XPatterns program of a query, if it runs on
/// a fragment engine (only those share axis passes).
fn fragment_program(q: &CompiledQuery) -> Option<&CoreQuery> {
    match q.strategy() {
        Strategy::CoreXPath | Strategy::XPatterns => q.plan().algebra(),
        _ => None,
    }
}

fn analyze_sharing(queries: &[Arc<CompiledQuery>]) -> BatchSharing {
    let mut out = BatchSharing::default();
    let mut seen_prefixes: HashSet<u64> = HashSet::new();
    let mut seen_preds: HashSet<u64> = HashSet::new();
    for q in queries {
        let Some(program) = fragment_program(q) else { continue };
        out.fragment_queries += 1;
        // Chain step hashes down the spine: a step unit repeats exactly
        // when its whole prefix (start + steps so far, predicates
        // included) repeats — which is when the lock-step memo is
        // guaranteed to hit it.
        let mut h = hash_debug(&program.path.start);
        for step in &program.path.steps {
            h = mix(h, hash_debug(step));
            out.total_units += 1;
            if !seen_prefixes.insert(h) {
                out.shared_units += 1;
            }
            // Predicates are document-global (E1 ignores the context
            // set), so they dedupe across any position in any query.
            for pred in &step.preds {
                out.total_units += 1;
                if !seen_preds.insert(hash_debug(pred)) {
                    out.shared_units += 1;
                }
            }
        }
    }
    out
}

/// An immutable, `Send + Sync` batch of compiled queries. Built by
/// [`QuerySetBuilder`]; evaluate with [`QuerySet::evaluate_all`] against
/// any number of documents from any number of threads.
#[derive(Debug)]
pub struct QuerySet {
    queries: Vec<Arc<CompiledQuery>>,
    threads: u32,
    mode: Option<BatchMode>,
    cost: CostModel,
    sharing: BatchSharing,
    /// Planner decisions accumulated across batch evaluations (batch
    /// evaluations record here, not into the member queries' per-handle
    /// tallies — shared passes cannot be attributed to one query).
    kernels: Arc<KernelCounters>,
    /// Reusable lock-step scratch (memo + arena), `try_lock`-guarded.
    scratch: Mutex<LockStepScratch>,
}

impl QuerySet {
    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The compiled queries, in input order.
    pub fn queries(&self) -> &[Arc<CompiledQuery>] {
        &self.queries
    }

    /// The configured thread budget (`0` = auto-resolve at evaluation).
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// The batch's static sharing profile (computed at build time).
    pub fn sharing(&self) -> BatchSharing {
        self.sharing
    }

    /// Axis-planner decisions accumulated across this batch's
    /// evaluations: kernel picks, sharded passes, and memo-shared
    /// applications. Complements the per-query
    /// [`CompiledQuery::planner_stats`] (which batch evaluations leave
    /// untouched).
    pub fn planner_stats(&self) -> KernelCounts {
        self.kernels.snapshot()
    }

    /// The [`BatchMode`] [`QuerySet::evaluate_all`] will use on a
    /// document of `universe` nodes under the current thread budget — the
    /// cost model's decision, unless a mode was pinned at build time.
    pub fn plan_mode(&self, universe: u32) -> BatchMode {
        if let Some(pinned) = self.mode {
            return pinned;
        }
        let threads = crate::parallel::resolve_threads(self.threads);
        // Divisible work estimate for the per-query fan-out: one axis
        // pass per fragment step unit, plus a CVT-row-scale estimate per
        // general-engine query (their evaluators materialize per-node
        // tables, far heavier than one pass).
        let fragment_ns = self.sharing.total_units as f64 * self.cost.shared_pass_ns(universe);
        let general = (self.len() - self.sharing.fragment_queries) as f64;
        let general_ns = general * self.cost.cvt_row_ns() * f64::from(universe);
        self.cost.pick_batch_mode(
            self.len(),
            self.sharing.shared_units,
            self.sharing.total_units,
            fragment_ns + general_ns,
            universe,
            threads,
        )
    }

    /// Evaluate every query against `doc` from the document root, in one
    /// batch pass. Per-query results come back in input order, each
    /// exactly what [`CompiledQuery::evaluate_root`] would have returned
    /// (bit-identical across all modes and thread budgets).
    pub fn evaluate_all(&self, doc: &Document) -> BatchResult {
        self.evaluate_all_at(doc, Context::of(doc.root()))
    }

    /// [`QuerySet::evaluate_all`] from an explicit context.
    pub fn evaluate_all_at(&self, doc: &Document, ctx: Context) -> BatchResult {
        self.evaluate_all_with(doc, ctx, &EvalBudget::unlimited())
    }

    /// [`QuerySet::evaluate_all_at`] under an [`EvalBudget`]: the budget
    /// is polled between lock-step rounds and between per-query
    /// evaluations (and inside each member query's own evaluation). When
    /// it trips, every not-yet-finished query's slot carries the trip
    /// error ([`crate::EvalError::Cancelled`] /
    /// [`crate::EvalError::DeadlineExceeded`]); already-finished results
    /// are kept. The batch never hangs past one round.
    pub fn evaluate_all_with(
        &self,
        doc: &Document,
        ctx: Context,
        budget: &EvalBudget,
    ) -> BatchResult {
        let mode = self.plan_mode(doc.len() as u32);
        match mode {
            BatchMode::LockStepShared => self.run_lock_step(doc, ctx, budget),
            BatchMode::PerQuerySharded => self.run_sharded(doc, ctx, budget),
            BatchMode::Serial => self.run_serial(doc, ctx, budget),
        }
    }

    /// One independent evaluation, recording planner decisions into the
    /// batch tally.
    fn eval_one(
        &self,
        doc: &Document,
        ctx: Context,
        i: usize,
        budget: &EvalBudget,
    ) -> EvalResult<Value> {
        budget.check()?;
        self.queries[i].plan().execute_recording_with(doc, ctx, &self.kernels, budget)
    }

    fn run_serial(&self, doc: &Document, ctx: Context, budget: &EvalBudget) -> BatchResult {
        let mut results = crate::pool::take_results();
        results.extend((0..self.len()).map(|i| self.eval_one(doc, ctx, i, budget)));
        BatchResult {
            results,
            stats: BatchStats {
                mode: BatchMode::Serial,
                queries: self.len(),
                fragment_queries: self.sharing.fragment_queries,
                memo_hits: 0,
                memo_misses: 0,
                workers: 1,
            },
        }
    }

    fn run_sharded(&self, doc: &Document, ctx: Context, budget: &EvalBudget) -> BatchResult {
        let threads = crate::parallel::resolve_threads(self.threads).min(self.len()).max(1);
        let ranges = crate::parallel::chunk_ranges(self.len() as u32, threads);
        let workers = ranges.len();
        let parts = crate::parallel::run_sharded(&ranges, |_, lo, hi| {
            (lo..hi).map(|i| self.eval_one(doc, ctx, i as usize, budget)).collect::<Vec<_>>()
        });
        let mut results = crate::pool::take_results();
        results.extend(parts.into_iter().flatten());
        BatchResult {
            results,
            stats: BatchStats {
                mode: BatchMode::PerQuerySharded,
                queries: self.len(),
                fragment_queries: self.sharing.fragment_queries,
                memo_hits: 0,
                memo_misses: 0,
                workers,
            },
        }
    }

    fn run_lock_step(&self, doc: &Document, ctx: Context, budget: &EvalBudget) -> BatchResult {
        // Reuse the set's scratch (memo map + slot arena) when it is
        // free; a concurrent evaluation on another thread falls back to
        // a fresh one rather than waiting.
        let mut fallback = None;
        let mut guard = self.scratch.try_lock().ok();
        let scratch = match guard.as_deref_mut() {
            Some(s) => s,
            None => fallback.get_or_insert_with(LockStepScratch::default),
        };
        scratch.memo.begin_evaluation();
        let memo = Arc::clone(&scratch.memo);
        let ev = CoreXPathEvaluator::with_backend(doc, AxisBackend::Parallel(self.threads))
            .with_cost_model(self.cost)
            .with_memo(Arc::clone(&memo));
        let ctx_nodes = [ctx.node];
        // Fragment queries advance lock-step; the rest run their normal
        // engines below.
        let states = scratch.arena.begin();
        states.extend(
            self.queries
                .iter()
                .map(|q| fragment_program(q).map(|cq| ev.start_set(&cq.path.start, &ctx_nodes))),
        );
        let rounds = self
            .queries
            .iter()
            .filter_map(|q| fragment_program(q).map(|cq| cq.path.steps.len()))
            .max()
            .unwrap_or(0);
        // Budget granularity: one lock-step round (a whole batch-wide
        // layer of axis passes). A trip poisons no state — every
        // unfinished slot just reports the trip error.
        let mut tripped = None;
        for k in 0..rounds {
            if let Err(e) = budget.check() {
                tripped = Some(e);
                break;
            }
            for (q, state) in self.queries.iter().zip(states.iter_mut()) {
                if let (Some(cq), Some(n)) = (fragment_program(q), state.as_mut()) {
                    if let Some(step) = cq.path.steps.get(k) {
                        *n = ev.advance_step(step, n);
                    }
                }
            }
        }
        let mut results = crate::pool::take_results();
        results.extend(self.queries.iter().zip(states.drain(..)).enumerate().map(
            |(i, (q, state))| match (&tripped, fragment_program(q), state) {
                (Some(e), ..) => Err(e.clone()),
                (None, Some(cq), Some(n)) => Ok(Value::NodeSet(ev.finish_path(&cq.path, n))),
                _ => self.eval_one(doc, ctx, i, budget),
            },
        ));
        self.kernels.merge(ev.kernel_counts());
        BatchResult {
            results,
            stats: BatchStats {
                mode: BatchMode::LockStepShared,
                queries: self.len(),
                fragment_queries: self.sharing.fragment_queries,
                memo_hits: memo.hits(),
                memo_misses: memo.misses(),
                workers: 1,
            },
        }
    }

    /// A rendered report of how this batch will evaluate on a document of
    /// `doc_size` nodes — the batch counterpart of
    /// [`crate::explain::explain`], surfaced by `xpq --explain` for batch
    /// invocations.
    pub fn explain(&self, doc_size: usize) -> String {
        crate::explain::explain_batch(self, doc_size)
    }

    /// The cost model driving this set's mode decisions.
    pub(crate) fn cost_model(&self) -> &CostModel {
        &self.cost
    }
}

/// Per-query results plus batch-level observability for one
/// [`QuerySet::evaluate_all`] call.
#[derive(Debug)]
pub struct BatchResult {
    results: Vec<EvalResult<Value>>,
    stats: BatchStats,
}

impl BatchResult {
    /// Per-query results, in the batch's input order. Each entry is
    /// exactly what the corresponding independent
    /// [`CompiledQuery::evaluate`] call would have produced — including
    /// per-query errors, which never abort the rest of the batch.
    pub fn results(&self) -> &[EvalResult<Value>] {
        &self.results
    }

    /// Consume into the per-query results. The vector becomes the
    /// caller's (it no longer returns to the recycling shelf on drop).
    pub fn into_results(mut self) -> Vec<EvalResult<Value>> {
        std::mem::take(&mut self.results)
    }

    /// Number of queries evaluated.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// Whether the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Batch-level statistics: the mode taken and the sharing achieved.
    pub fn stats(&self) -> &BatchStats {
        &self.stats
    }
}

impl Drop for BatchResult {
    /// Recycle the result vector (values first — their node-set buffers
    /// go back to the xml shelves) so the next batch evaluation on this
    /// thread starts with a warm buffer.
    fn drop(&mut self) {
        crate::pool::give_results(std::mem::take(&mut self.results));
    }
}

/// How one batch evaluation ran.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchStats {
    /// The evaluation mode the cost model picked (or the pinned one).
    pub mode: BatchMode,
    /// Queries in the batch.
    pub queries: usize,
    /// Queries that ran on the fragment engines (sharing-capable).
    pub fragment_queries: usize,
    /// Axis applications served from the shared memo (lock-step mode;
    /// zero elsewhere).
    pub memo_hits: u64,
    /// Axis applications that ran and seeded the memo (lock-step mode).
    pub memo_misses: u64,
    /// Scoped workers the batch fanned out across (sharded mode; 1
    /// elsewhere).
    pub workers: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_xml::generate::{doc_bookstore, doc_figure8};

    fn always_share() -> CostModel {
        CostModel { memo_probe_ns: 1e-9, fingerprint_word_ns: 1e-9, ..CostModel::CALIBRATED }
    }

    #[test]
    fn batch_matches_independent_evaluation_in_every_mode() {
        let d = doc_bookstore();
        let queries = [
            "//book[author]",
            "//book[author]/title",
            "//book[author]", // duplicate: full sharing
            "count(//book)",  // non-fragment: normal engine inside the batch
            "//section/book[title = 'XPath Processing']",
        ];
        let independent: Vec<Value> = queries
            .iter()
            .map(|q| Compiler::new().compile(q).unwrap().evaluate_root(&d).unwrap())
            .collect();
        for mode in [BatchMode::LockStepShared, BatchMode::PerQuerySharded, BatchMode::Serial] {
            for threads in [1u32, 4] {
                let set = QuerySetBuilder::new()
                    .queries(queries)
                    .mode(mode)
                    .threads(threads)
                    .build()
                    .unwrap();
                let out = set.evaluate_all(&d);
                assert_eq!(out.stats().mode, mode);
                assert_eq!(out.len(), queries.len());
                for (i, r) in out.results().iter().enumerate() {
                    assert_eq!(
                        r.as_ref().unwrap(),
                        &independent[i],
                        "{mode:?}/{threads}t diverges on {}",
                        queries[i]
                    );
                }
            }
        }
    }

    #[test]
    fn lock_step_shares_duplicate_prefixes() {
        let d = doc_figure8();
        let set = QuerySetBuilder::new()
            .query("//b/c")
            .query("//b/d")
            .query("//b/c") // exact duplicate
            .cost_model(always_share())
            .build()
            .unwrap();
        assert!(set.sharing().shared_units > 0, "{:?}", set.sharing());
        assert_eq!(set.plan_mode(d.len() as u32), BatchMode::LockStepShared);
        let out = set.evaluate_all(&d);
        assert!(out.stats().memo_hits > 0, "{:?}", out.stats());
        // The duplicate shares everything: its step count in hits.
        assert_eq!(out.results()[0].as_ref().unwrap(), out.results()[2].as_ref().unwrap());
        // The batch tally surfaces the shared applications.
        assert_eq!(set.planner_stats().memo_hits, out.stats().memo_hits);
    }

    #[test]
    fn cost_model_falls_back_when_nothing_repeats() {
        // Disjoint single-step queries on a tiny document: sharing cannot
        // pay, and one thread rules out the fan-out.
        let set =
            QuerySetBuilder::new().query("//b").query("count(//c)").threads(1).build().unwrap();
        assert_eq!(set.plan_mode(100), BatchMode::Serial);
        // A single query is serial even when pinned sharing would win.
        let one = QuerySetBuilder::new().query("//b").build().unwrap();
        assert_eq!(one.plan_mode(1 << 20), BatchMode::Serial);
    }

    #[test]
    fn build_reports_the_failing_query() {
        let err = QuerySetBuilder::new().query("//b").query("//[").build();
        assert!(matches!(err, Err(crate::context::EvalError::Parse(_))));
    }

    #[test]
    fn per_query_errors_do_not_abort_the_batch() {
        let d = doc_bookstore();
        let budgeted = Compiler::new().naive_budget(1).default_strategy(Strategy::Naive);
        let exhausted =
            Arc::new(budgeted.compile("//book/ancestor::*/descendant::*/ancestor::*").unwrap());
        let set =
            QuerySetBuilder::new().query("count(//book)").compiled(exhausted).build().unwrap();
        let out = set.evaluate_all(&d);
        assert!(out.results()[0].is_ok());
        assert!(matches!(out.results()[1], Err(crate::context::EvalError::BudgetExhausted)));
    }

    #[test]
    fn empty_batch_is_fine() {
        let d = doc_bookstore();
        let set = QuerySetBuilder::new().build().unwrap();
        assert!(set.is_empty());
        let out = set.evaluate_all(&d);
        assert!(out.is_empty());
        assert_eq!(out.stats().mode, BatchMode::Serial);
    }

    #[test]
    fn query_set_is_send_sync_and_reusable_across_documents() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QuerySet>();
        let set =
            Arc::new(QuerySetBuilder::new().query("count(//b)").query("//b").build().unwrap());
        std::thread::scope(|s| {
            for docs in [2, 3] {
                let set = Arc::clone(&set);
                s.spawn(move || {
                    let xml = format!("<a>{}</a>", "<b/>".repeat(docs));
                    let d = Document::parse_str(&xml).unwrap();
                    let out = set.evaluate_all(&d);
                    assert_eq!(out.results()[0].as_ref().unwrap().to_string(), docs.to_string());
                    assert_eq!(
                        out.results()[1].as_ref().unwrap(),
                        &Value::NodeSet(
                            d.all_nodes().filter(|&n| d.name(n) == Some("b")).collect::<NodeSet>()
                        )
                    );
                });
            }
        });
    }
}
