//! A sharded, thread-safe LRU cache of compiled queries.
//!
//! Production XPath services see the same query texts millions of times
//! (the paper's static phase is pure overhead after the first sight).
//! [`QueryCache`] memoizes [`Compiler::compile`] results behind
//! `Arc<CompiledQuery>` handles, keyed by **query text + compiler
//! options**, so concurrent workers compile once and evaluate everywhere:
//!
//! ```
//! use std::sync::Arc;
//! use std::thread;
//! use xpath_core::cache::QueryCache;
//! use xpath_core::query::Compiler;
//! use xpath_xml::Document;
//!
//! let cache = Arc::new(QueryCache::new(256));
//! let compiler = Compiler::new();
//! // Warm the cache first: two workers racing on a query's very first
//! // sight may both compile it (see `get_or_compile`).
//! cache.get_or_compile(&compiler, "count(//b)").unwrap();
//! thread::scope(|s| {
//!     for _ in 0..4 {
//!         let (cache, compiler) = (Arc::clone(&cache), compiler.clone());
//!         s.spawn(move || {
//!             let d = Document::parse_str("<a><b/><b/></a>").unwrap();
//!             let q = cache.get_or_compile(&compiler, "count(//b)").unwrap();
//!             assert_eq!(q.evaluate_root(&d).unwrap().to_string(), "2");
//!         });
//!     }
//! });
//! assert_eq!(cache.stats().misses, 1); // compiled exactly once…
//! assert_eq!(cache.stats().hits, 4);   // …reused everywhere else
//! ```
//!
//! The key space is split across independently locked shards (reads and
//! writes on different shards never contend); each shard evicts its own
//! least-recently-used entry when full.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::context::EvalResult;
use crate::query::{CompiledQuery, Compiler};

/// Default number of shards for [`QueryCache::new`].
const DEFAULT_SHARDS: usize = 8;

#[derive(Clone, PartialEq, Eq, Hash)]
struct Key {
    text: String,
    options: String,
}

struct Entry {
    query: Arc<CompiledQuery>,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    entries: HashMap<Key, Entry>,
    clock: u64,
}

impl Shard {
    fn touch(&mut self, key: &Key) -> Option<Arc<CompiledQuery>> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(key).map(|e| {
            e.last_used = clock;
            Arc::clone(&e.query)
        })
    }

    fn insert(&mut self, key: Key, query: Arc<CompiledQuery>, capacity: usize) -> bool {
        self.clock += 1;
        let mut evicted = false;
        if !self.entries.contains_key(&key) && self.entries.len() >= capacity {
            // Evict the least-recently-used entry. A linear scan is fine:
            // shards hold at most `capacity` entries and eviction only
            // happens on insert of a never-seen query.
            if let Some(lru) =
                self.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                self.entries.remove(&lru);
                evicted = true;
            }
        }
        self.entries.insert(key, Entry { query, last_used: self.clock });
        evicted
    }
}

/// Cache observability counters (monotonic since construction, except
/// `entries`, which is the current resident count).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Compiled queries currently resident.
    pub entries: usize,
}

/// A sharded LRU cache mapping (query text, compiler options) to shared
/// [`CompiledQuery`] handles. All methods take `&self`; the cache is
/// `Send + Sync` and meant to be shared (e.g. in an `Arc`) across worker
/// threads.
pub struct QueryCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl QueryCache {
    /// A cache holding up to `capacity` compiled queries across the
    /// default 8 shards (capacity is rounded up to a multiple of the
    /// shard count).
    pub fn new(capacity: usize) -> QueryCache {
        QueryCache::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count. `shards = 1` gives globally
    /// exact LRU order (useful in tests); more shards trade LRU precision
    /// for less lock contention.
    pub fn with_shards(capacity: usize, shards: usize) -> QueryCache {
        let shards = shards.max(1);
        let shard_capacity = capacity.div_ceil(shards).max(1);
        QueryCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &Key) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Return the cached compilation of `query` under `compiler`'s
    /// options, compiling and caching it on first sight. Compilation
    /// errors are returned and **not** cached.
    ///
    /// Compilation runs outside the shard lock, so a slow compile never
    /// blocks unrelated lookups on the same shard. Two threads racing on
    /// the same new query may both compile, but the loser discards its
    /// result and returns the winner's handle (lost-race discard), so all
    /// holders of one key share a single `Arc` and per-query planner
    /// tallies are never split across duplicate handles. `misses` counts
    /// compilations actually run, so a race shows up as two misses and
    /// one resident entry — the stats stay exact.
    pub fn get_or_compile(
        &self,
        compiler: &Compiler,
        query: &str,
    ) -> EvalResult<Arc<CompiledQuery>> {
        self.get_or_compile_keyed(compiler, &compiler.options_fingerprint(), query)
    }

    /// [`QueryCache::get_or_compile`] with the compiler's
    /// [`Compiler::options_fingerprint`] precomputed by the caller —
    /// hot paths that reuse one compiler (e.g. the `Engine` facade)
    /// compute the fingerprint once instead of re-rendering the options
    /// on every lookup. `fingerprint` must be the fingerprint of
    /// `compiler`, or cache entries will alias across option sets.
    pub fn get_or_compile_keyed(
        &self,
        compiler: &Compiler,
        fingerprint: &str,
        query: &str,
    ) -> EvalResult<Arc<CompiledQuery>> {
        self.get_or_insert_with(fingerprint, query, || compiler.compile(query))
    }

    /// Resolve a whole batch of query texts in one call, compiling each
    /// on first sight — the compiler's options fingerprint is rendered
    /// once for the batch. The returned handles are in input order and
    /// ready for
    /// [`QuerySetBuilder::compiled`](crate::batch::QuerySetBuilder::compiled),
    /// so a service can assemble a [`QuerySet`](crate::batch::QuerySet)
    /// from its hot cache without recompiling anything. Fails on the
    /// first compile error (earlier successful compilations stay cached).
    pub fn get_or_compile_many(
        &self,
        compiler: &Compiler,
        queries: &[&str],
    ) -> EvalResult<Vec<Arc<CompiledQuery>>> {
        let fingerprint = compiler.options_fingerprint();
        queries.iter().map(|q| self.get_or_compile_keyed(compiler, &fingerprint, q)).collect()
    }

    /// The primitive behind both `get_or_compile` variants: look up
    /// `(query, fingerprint)` and run `compile` only on a miss, so hit
    /// paths pay no compiler clone or option re-rendering. `fingerprint`
    /// must uniquely determine what `compile` produces.
    pub fn get_or_insert_with(
        &self,
        fingerprint: &str,
        query: &str,
        compile: impl FnOnce() -> EvalResult<CompiledQuery>,
    ) -> EvalResult<Arc<CompiledQuery>> {
        let key = Key { text: query.to_string(), options: fingerprint.to_string() };
        let shard = self.shard_for(&key);
        if let Some(hit) = shard.lock().expect("query cache poisoned").touch(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        // Miss: compile OUTSIDE the lock (a slow compile must not block
        // this shard's unrelated lookups, and racing compilers must not
        // serialize). `misses` counts compilations actually run.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let compiled = Arc::new(compile()?);
        let mut locked = shard.lock().expect("query cache poisoned");
        // Lost-race discard: if another thread inserted this key while we
        // compiled, drop our duplicate and hand out the winner's Arc so
        // every caller shares one handle (and one planner tally). The
        // re-check is not counted as a hit — this lookup already missed.
        if let Some(winner) = locked.touch(&key) {
            return Ok(winner);
        }
        let evicted = locked.insert(key, Arc::clone(&compiled), self.shard_capacity);
        drop(locked);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        Ok(compiled)
    }

    /// Aggregate adaptive axis-planner decisions across every resident
    /// compiled query: how the fleet's axis applications split between
    /// the per-node, sparse-staircase and dense word-parallel kernels.
    /// (Evicted queries take their tallies with them.)
    pub fn planner_stats(&self) -> xpath_axes::KernelCounts {
        self.shards
            .iter()
            .flat_map(|s| {
                let shard = s.lock().expect("query cache poisoned");
                shard.entries.values().map(|e| e.query.planner_stats()).collect::<Vec<_>>()
            })
            .fold(xpath_axes::KernelCounts::default(), xpath_axes::KernelCounts::plus)
    }

    /// Aggregate static-analysis verdicts across every resident compiled
    /// query: how many are provably empty, const-folded, reverse-axis
    /// rewritten, and how the fleet splits across the streamability
    /// lattice. The analyzer's counterpart of [`QueryCache::planner_stats`].
    pub fn analysis_stats(&self) -> crate::analyze::AnalysisStats {
        self.shards
            .iter()
            .flat_map(|s| {
                let shard = s.lock().expect("query cache poisoned");
                shard
                    .entries
                    .values()
                    .map(|e| crate::analyze::AnalysisStats::of(e.query.report()))
                    .collect::<Vec<_>>()
            })
            .fold(crate::analyze::AnalysisStats::default(), crate::analyze::AnalysisStats::plus)
    }

    /// Current hit/miss/eviction counters and resident entry count.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }

    /// Number of compiled queries currently resident.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("query cache poisoned").entries.len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached query (counters are retained).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().expect("query cache poisoned");
            s.entries.clear();
        }
    }
}

impl Default for QueryCache {
    /// A production-sized default: 1024 entries across 8 shards.
    fn default() -> QueryCache {
        QueryCache::new(1024)
    }
}

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCache")
            .field("shards", &self.shards.len())
            .field("shard_capacity", &self.shard_capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_miss() {
        let cache = QueryCache::new(8);
        let c = Compiler::new();
        let a = cache.get_or_compile(&c, "//b").unwrap();
        let b = cache.get_or_compile(&c, "//b").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must reuse the compilation");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn options_are_part_of_the_key() {
        let cache = QueryCache::new(8);
        let plain = Compiler::new();
        let opt = Compiler::new().optimize(true);
        let a = cache.get_or_compile(&plain, "//b/self::node()").unwrap();
        let b = cache.get_or_compile(&opt, "//b/self::node()").unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_in_a_single_shard() {
        let cache = QueryCache::with_shards(2, 1);
        let c = Compiler::new();
        cache.get_or_compile(&c, "//a").unwrap();
        cache.get_or_compile(&c, "//b").unwrap();
        // Touch //a so //b is the LRU entry.
        cache.get_or_compile(&c, "//a").unwrap();
        cache.get_or_compile(&c, "//c").unwrap(); // evicts //b
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
        cache.get_or_compile(&c, "//a").unwrap(); // still resident
        assert_eq!(cache.stats().hits, 2);
        cache.get_or_compile(&c, "//b").unwrap(); // gone: recompiles
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = QueryCache::new(8);
        let c = Compiler::new();
        assert!(cache.get_or_compile(&c, "//[").is_err());
        assert!(cache.is_empty());
        assert!(cache.get_or_compile(&c, "//[").is_err());
        assert_eq!(cache.stats().misses, 2, "errors recompile every time");
    }

    #[test]
    fn planner_stats_aggregate_across_resident_queries() {
        use xpath_xml::generate::doc_bookstore;
        let cache = QueryCache::new(8);
        let c = Compiler::new();
        let d = doc_bookstore();
        let a = cache.get_or_compile(&c, "//book[author]").unwrap();
        let b = cache.get_or_compile(&c, "//book/title").unwrap();
        a.evaluate_root(&d).unwrap();
        b.evaluate_root(&d).unwrap();
        let total = cache.planner_stats().total();
        assert_eq!(
            total,
            a.planner_stats().total() + b.planner_stats().total(),
            "cache aggregates per-query planner tallies"
        );
        assert!(total > 0);
    }

    #[test]
    fn slow_compile_does_not_block_the_shard() {
        // Regression: the shard mutex used to be held across compilation,
        // so one slow compile starved every lookup hashing to the same
        // shard. With compilation outside the lock, an unrelated lookup
        // on the single shard must complete while a compile is parked on
        // the barrier — if the lock were held, this test would deadlock.
        use std::sync::Barrier;
        use std::thread;
        let cache = QueryCache::with_shards(8, 1);
        let gate = Barrier::new(2);
        thread::scope(|s| {
            s.spawn(|| {
                cache
                    .get_or_insert_with("fp", "//slow", || {
                        gate.wait(); // parked mid-compile until main passes
                        Compiler::new().compile("//slow")
                    })
                    .unwrap();
            });
            // Same (only) shard, different key: must not block.
            cache.get_or_compile(&Compiler::new(), "//other").unwrap();
            gate.wait();
        });
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn racing_compiles_coalesce_with_exact_stats() {
        // Two threads racing on the same new key: both compile (the
        // barrier proves both are inside `compile` concurrently, i.e.
        // neither holds the shard lock), the insert loser discards its
        // result, and both callers get the same Arc.
        use std::sync::Barrier;
        use std::thread;
        let cache = QueryCache::with_shards(8, 1);
        let rendezvous = Barrier::new(2);
        let handles: Vec<Arc<CompiledQuery>> = thread::scope(|s| {
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    s.spawn(|| {
                        cache
                            .get_or_insert_with("fp", "//b", || {
                                rendezvous.wait();
                                Compiler::new().compile("//b")
                            })
                            .unwrap()
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().unwrap()).collect()
        });
        assert!(
            Arc::ptr_eq(&handles[0], &handles[1]),
            "the race loser must return the winner's handle"
        );
        let s = cache.stats();
        // Exact stats: two compilations ran (two misses), no phantom
        // hits, one resident entry.
        assert_eq!((s.misses, s.hits, s.entries), (2, 0, 1));
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache = QueryCache::new(8);
        let c = Compiler::new();
        cache.get_or_compile(&c, "//a").unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }
}
