//! Helpers shared by all evaluators: strict binary operators, predicate
//! truth, and location-step expansion (axis + node test).

use xpath_syntax::{Axis, BinaryOp, NodeTest};
use xpath_xml::{Document, NodeId};

use crate::compare::compare;
use crate::context::{EvalError, EvalResult};
use crate::node_test;
use crate::nodeset::NodeSet;
use crate::value::Value;

/// Apply a non-lazy binary operator (`ArithOp`, comparisons, `|`).
/// `and`/`or` are handled by the evaluators themselves (short-circuit).
pub fn apply_binary(doc: &Document, op: BinaryOp, l: Value, r: Value) -> EvalResult<Value> {
    if op.is_relational() {
        return Ok(Value::Boolean(compare(doc, op, &l, &r)));
    }
    match op {
        BinaryOp::Union => match (l, r) {
            (Value::NodeSet(a), Value::NodeSet(b)) => Ok(Value::NodeSet(a.union(&b))),
            (l, r) => Err(EvalError::TypeMismatch(format!(
                "'|' requires node sets, got {} and {}",
                l.type_name(),
                r.type_name()
            ))),
        },
        BinaryOp::And | BinaryOp::Or => Ok(Value::Boolean(match op {
            BinaryOp::And => l.to_boolean() && r.to_boolean(),
            _ => l.to_boolean() || r.to_boolean(),
        })),
        // F[[ArithOp : num × num → num]](v1, v2) := v1 ArithOp v2.
        _ => {
            let a = l.to_number(doc);
            let b = r.to_number(doc);
            Ok(Value::Number(match op {
                BinaryOp::Add => a + b,
                BinaryOp::Sub => a - b,
                BinaryOp::Mul => a * b,
                // XPath div/mod follow IEEE 754 (mod is the remainder with
                // the sign of the dividend, like Rust's `%`).
                BinaryOp::Div => a / b,
                BinaryOp::Mod => a % b,
                _ => unreachable!("arith op"),
            }))
        }
    }
}

/// Predicate truth at a given context position (W3C §2.4): a number value
/// `v` is true iff `position() = v`; any other value converts via
/// `boolean()`. Normalized queries only produce boolean predicates, for
/// which this coincides with `to_boolean`.
pub fn predicate_holds(value: &Value, position: u32) -> bool {
    match value {
        Value::Number(v) => *v == position as f64,
        other => other.to_boolean(),
    }
}

/// Expand one location step's axis and node test from a single context
/// node: `{y | x χ y, y ∈ T(t)}`, sorted in document order.
pub fn step_candidates(doc: &Document, axis: Axis, test: &NodeTest, x: NodeId) -> Vec<NodeId> {
    let mut v = xpath_axes::axis_from(doc, axis, x);
    node_test::filter(doc, axis, test, &mut v);
    v
}

/// Set-at-a-time counterpart of [`step_candidates`]:
/// `{y | ∃x ∈ S: x χ y, y ∈ T(t)}` via the adaptive axis engine (the
/// cost-based kernel planner of `xpath_axes::cost`), in document order.
/// This is the predicate-free step expansion every set-level evaluator
/// shares. Runs at the process-default thread budget: the axis pass may
/// shard across scoped workers when the cost model's spawn gate approves
/// (see [`crate::parallel`]); on a 1-thread budget it is exactly the
/// serial adaptive application.
pub fn step_candidates_set(doc: &Document, axis: Axis, test: &NodeTest, s: &NodeSet) -> NodeSet {
    step_candidates_set_sharded(doc, axis, test, s, crate::parallel::resolve_threads(0))
}

/// [`step_candidates_set`] with an explicit shard budget (`threads = 1`
/// keeps the pass serial; sharding remains cost-gated per pass).
pub fn step_candidates_set_sharded(
    doc: &Document,
    axis: Axis,
    test: &NodeTest,
    s: &NodeSet,
    threads: usize,
) -> NodeSet {
    let mut out = crate::parallel::axis_set_sharded(
        doc,
        axis,
        s,
        threads,
        xpath_axes::CostModel::global(),
        None,
    );
    node_test::filter_set(doc, axis, test, &mut out);
    out
}

/// Context position of the j-th element (0-based, document order) of a
/// step-result set of size `len`, respecting `<doc,χ` (§4): forward axes
/// count from the front, reverse axes from the back.
#[inline]
pub fn position_of(axis: Axis, j: usize, len: usize) -> u32 {
    if axis.is_forward() {
        (j + 1) as u32
    } else {
        (len - j) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_xml::generate::doc_flat;

    #[test]
    fn arithmetic() {
        let d = doc_flat(1);
        let n = |v| Value::Number(v);
        let run = |op, a, b| apply_binary(&d, op, n(a), n(b)).unwrap().to_number(&d);
        assert_eq!(run(BinaryOp::Add, 2.0, 3.0), 5.0);
        assert_eq!(run(BinaryOp::Sub, 2.0, 3.0), -1.0);
        assert_eq!(run(BinaryOp::Mul, 2.0, 3.0), 6.0);
        assert_eq!(run(BinaryOp::Div, 3.0, 2.0), 1.5);
        assert_eq!(run(BinaryOp::Mod, 5.0, 2.0), 1.0);
        assert_eq!(run(BinaryOp::Mod, -5.0, 2.0), -1.0, "mod keeps dividend sign");
        assert!(run(BinaryOp::Div, 1.0, 0.0).is_infinite());
        assert!(run(BinaryOp::Mod, 1.0, 0.0).is_nan());
    }

    #[test]
    fn arithmetic_coerces_strings() {
        let d = doc_flat(1);
        let v =
            apply_binary(&d, BinaryOp::Add, Value::String("2".into()), Value::String("3".into()))
                .unwrap();
        assert_eq!(v, Value::Number(5.0));
    }

    #[test]
    fn union_requires_nodesets() {
        let d = doc_flat(1);
        assert!(apply_binary(
            &d,
            BinaryOp::Union,
            Value::Number(1.0),
            Value::NodeSet(NodeSet::new())
        )
        .is_err());
        let v = apply_binary(
            &d,
            BinaryOp::Union,
            Value::NodeSet(NodeSet::singleton(NodeId(1))),
            Value::NodeSet(vec![NodeId(0), NodeId(2)].into()),
        )
        .unwrap();
        assert_eq!(v, Value::NodeSet(vec![NodeId(0), NodeId(1), NodeId(2)].into()));
    }

    #[test]
    fn predicate_number_is_position_test() {
        assert!(predicate_holds(&Value::Number(3.0), 3));
        assert!(!predicate_holds(&Value::Number(3.0), 2));
        assert!(predicate_holds(&Value::Boolean(true), 9));
        assert!(!predicate_holds(&Value::String("".into()), 1));
        assert!(predicate_holds(&Value::String("x".into()), 1));
    }

    #[test]
    fn positions_respect_axis_direction() {
        assert_eq!(position_of(Axis::Child, 0, 3), 1);
        assert_eq!(position_of(Axis::Child, 2, 3), 3);
        assert_eq!(position_of(Axis::Ancestor, 0, 3), 3);
        assert_eq!(position_of(Axis::Ancestor, 2, 3), 1);
    }
}
