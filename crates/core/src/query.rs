//! The two-phase query API: [`Compiler`] (static phase) and
//! [`CompiledQuery`] (reusable runtime handle).
//!
//! The paper separates XPath processing into a cheap document-independent
//! static phase — parse, normalize, rewrite, Figure-1 classification,
//! algorithm selection, fragment compilation — and a runtime phase that
//! walks a concrete tree. This module makes that split the public API:
//!
//! ```
//! use xpath_core::query::Compiler;
//! use xpath_core::Strategy;
//! use xpath_xml::Document;
//!
//! // Compile once (no document needed)…
//! let q = Compiler::new().compile("count(//b)").unwrap();
//! assert_eq!(q.strategy(), Strategy::OptMinContext);
//!
//! // …evaluate many times, against any documents, from any thread.
//! let d1 = Document::parse_str("<a><b/><b/></a>").unwrap();
//! let d2 = Document::parse_str("<a><b/><b/><b/></a>").unwrap();
//! assert_eq!(q.evaluate_root(&d1).unwrap().to_string(), "2");
//! assert_eq!(q.evaluate_root(&d2).unwrap().to_string(), "3");
//! ```
//!
//! [`CompiledQuery`] is immutable and `Send + Sync`; share it across
//! worker threads directly or via [`crate::cache::QueryCache`], which
//! amortizes compilation across an entire fleet of workers.

use std::fmt;

use xpath_syntax::{normalize, Bindings, Expr};
use xpath_xml::Document;

use crate::context::{Context, EvalBudget, EvalError, EvalResult};
use crate::cursor::{NodeCursor, QueryCursor};
use crate::fragment::{Classification, Fragment};
use crate::nodeset::NodeSet;
use crate::plan::{Plan, Strategy};
use crate::value::Value;
use xpath_xml::NodeId;

/// Builder for the static phase: configures how queries are compiled.
///
/// A `Compiler` is cheap to clone and carries no document state. The same
/// compiler can compile any number of queries.
#[derive(Clone, Debug, Default)]
pub struct Compiler {
    optimize: bool,
    default_strategy: Strategy,
    naive_budget: Option<u64>,
    threads: u32,
    bindings: Bindings,
}

impl Compiler {
    /// A compiler with default settings: no rewrite pass, automatic
    /// (Figure-1) strategy selection, unbounded naive evaluation, no
    /// variable bindings.
    pub fn new() -> Compiler {
        Compiler::default()
    }

    /// Enable or disable the semantics-preserving rewrite pass
    /// ([`xpath_syntax::rewrite`]): `//`-step merging, `self::node()`
    /// elimination, constant folding.
    pub fn optimize(mut self, on: bool) -> Compiler {
        self.optimize = on;
        self
    }

    /// The strategy compiled queries run with. [`Strategy::Auto`] (the
    /// default) classifies each query per Figure 1 and picks the best
    /// algorithm; explicit fragment strategies reject outside queries at
    /// compile time.
    pub fn default_strategy(mut self, strategy: Strategy) -> Compiler {
        self.default_strategy = strategy;
        self
    }

    /// Bound the exponential naive baseline to `budget` location steps
    /// (evaluation fails with [`EvalError::BudgetExhausted`] beyond it).
    pub fn naive_budget(mut self, budget: u64) -> Compiler {
        self.naive_budget = Some(budget);
        self
    }

    /// Shard budget for the parallel CVT layer compiled queries evaluate
    /// with: `0` (the default) auto-resolves from `GKP_THREADS` / the
    /// machine's parallelism, `1` keeps every pass serial, higher values
    /// cap the per-pass scoped thread pool. Sharding stays cost-gated per
    /// pass either way — see [`crate::parallel`] — and never changes
    /// results, only the route taken.
    pub fn threads(mut self, threads: u32) -> Compiler {
        self.threads = threads;
        self
    }

    /// Variable bindings substituted during normalization (the paper
    /// assumes bindings are inlined before evaluation).
    pub fn bindings(mut self, bindings: &Bindings) -> Compiler {
        self.bindings = bindings.clone();
        self
    }

    /// Static phase only, up to the AST: parse, normalize (inlining this
    /// compiler's bindings), and apply the rewrite pass if enabled.
    pub fn parse(&self, query: &str) -> EvalResult<Expr> {
        let e = xpath_syntax::parse(query).map_err(|e| EvalError::Parse(e.to_string()))?;
        let e = normalize::normalize_with(&e, &self.bindings)
            .map_err(|e| EvalError::Parse(e.to_string()))?;
        Ok(if self.optimize { xpath_syntax::rewrite::optimize(&e) } else { e })
    }

    /// Run the full static phase: parse, normalize, rewrite, classify,
    /// resolve the strategy, and compile fragment artifacts eagerly.
    ///
    /// Parse and normalization failures surface as [`EvalError::Parse`];
    /// a query outside an explicitly requested fragment surfaces as
    /// [`EvalError::UnsupportedFragment`] — both at compile time.
    pub fn compile(&self, query: &str) -> EvalResult<CompiledQuery> {
        let expr = self.parse(query)?;
        let plan =
            Plan::build_with_threads(expr, self.default_strategy, self.naive_budget, self.threads)?;
        Ok(CompiledQuery {
            text: query.to_string(),
            optimized: self.optimize,
            plan,
            kernels: std::sync::Arc::new(xpath_axes::KernelCounters::new()),
        })
    }

    /// A stable fingerprint of this compiler's settings, used with the
    /// query text as the [`crate::cache::QueryCache`] key. Two compilers
    /// with equal fingerprints produce identical compiled queries.
    pub fn options_fingerprint(&self) -> String {
        // Bindings has no Hash/Eq, and its HashMap iteration order varies
        // per instance — render the entries in sorted name order instead.
        format!(
            "opt={};strat={:?};budget={:?};thr={};bind={:?}",
            self.optimize,
            self.default_strategy,
            self.naive_budget,
            self.threads,
            self.bindings.sorted()
        )
    }

    /// The configured naive-evaluator budget, if any.
    pub(crate) fn configured_naive_budget(&self) -> Option<u64> {
        self.naive_budget
    }

    /// The configured shard budget (`0` = auto) — the default a
    /// [`QuerySetBuilder`](crate::batch::QuerySetBuilder) built from this
    /// compiler inherits.
    pub(crate) fn configured_threads(&self) -> u32 {
        self.threads
    }
}

/// An immutable, document-independent compiled query.
///
/// Produced by [`Compiler::compile`]; holds the full static-phase output
/// (normalized expression, classification, resolved strategy, precompiled
/// fragment artifacts) and no document references, so one instance
/// evaluates against any document from any thread.
#[derive(Clone, Debug)]
pub struct CompiledQuery {
    text: String,
    optimized: bool,
    plan: Plan,
    /// Adaptive axis-planner decisions accumulated across evaluations.
    /// Shared by clones (and thus by every holder of a cached handle), so
    /// the [`crate::cache::QueryCache`] can aggregate per-query planner
    /// behaviour fleet-wide.
    kernels: std::sync::Arc<xpath_axes::KernelCounters>,
}

impl CompiledQuery {
    /// Compile with default [`Compiler`] settings.
    pub fn compile(query: &str) -> EvalResult<CompiledQuery> {
        Compiler::new().compile(query)
    }

    /// The original query text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Whether the rewrite pass ran during compilation.
    pub fn optimized(&self) -> bool {
        self.optimized
    }

    /// The normalized (and possibly rewritten) expression.
    pub fn expr(&self) -> &Expr {
        &self.plan.expr
    }

    /// The resolved strategy this query runs with (never
    /// [`Strategy::Auto`]).
    pub fn strategy(&self) -> Strategy {
        self.plan.strategy
    }

    /// The Figure-1 fragment the query falls into.
    pub fn fragment(&self) -> Fragment {
        self.plan.classification.fragment
    }

    /// The full Figure-1 classification, including Extended-Wadler
    /// violation diagnostics.
    pub fn classification(&self) -> &Classification {
        &self.plan.classification
    }

    /// The underlying execution plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The static-analysis report computed at compile time: satisfiability
    /// verdict, reverse-axis rewrite, streamability classification and
    /// lint diagnostics (see [`crate::analyze`]).
    pub fn report(&self) -> &crate::analyze::QueryReport {
        self.plan.report()
    }

    /// The adaptive axis-planner decisions this query's evaluations have
    /// made so far: how many axis applications ran on the per-node loop,
    /// the sparse staircase and the dense word-parallel kernel. Zero for
    /// strategies outside the Core XPath / XPatterns fragment engines.
    pub fn planner_stats(&self) -> xpath_axes::KernelCounts {
        self.kernels.snapshot()
    }

    /// Evaluate against `doc` from an explicit context (runtime phase
    /// only).
    pub fn evaluate(&self, doc: &Document, ctx: Context) -> EvalResult<Value> {
        self.plan.execute_recording(doc, ctx, &self.kernels)
    }

    /// Evaluate against `doc` from the document root.
    pub fn evaluate_root(&self, doc: &Document) -> EvalResult<Value> {
        self.evaluate(doc, Context::of(doc.root()))
    }

    /// Evaluate a node-set query at the root of `doc` and return the
    /// matching nodes.
    pub fn select(&self, doc: &Document) -> EvalResult<NodeSet> {
        into_node_set(self.evaluate_root(doc)?)
    }

    /// Evaluate a node-set query from an explicit context.
    pub fn select_at(&self, doc: &Document, ctx: Context) -> EvalResult<NodeSet> {
        into_node_set(self.evaluate(doc, ctx)?)
    }

    /// Evaluate the same plan against many documents (at each root),
    /// amortizing the static phase across the batch. Fails fast on the
    /// first evaluation error.
    pub fn evaluate_many(&self, docs: &[&Document]) -> EvalResult<Vec<Value>> {
        docs.iter().map(|doc| self.evaluate_root(doc)).collect()
    }

    // ----- lazy / budgeted evaluation (tier 4) -----

    /// [`CompiledQuery::evaluate`] under an [`EvalBudget`]: every
    /// strategy polls the budget at its pass boundaries and fails with
    /// [`EvalError::Cancelled`] / [`EvalError::DeadlineExceeded`] once it
    /// trips — partial work is discarded, the query handle stays valid.
    pub fn evaluate_with(
        &self,
        doc: &Document,
        ctx: Context,
        budget: &EvalBudget,
    ) -> EvalResult<Value> {
        self.plan.execute_recording_with(doc, ctx, &self.kernels, budget)
    }

    /// Does the query match at least one node from the root context?
    /// Early-exits on the first witness when the spine is streamable
    /// (never materializes the full answer).
    pub fn exists(&self, doc: &Document) -> EvalResult<bool> {
        self.exists_at(doc, Context::of(doc.root()))
    }

    /// [`CompiledQuery::exists`] from an explicit context.
    pub fn exists_at(&self, doc: &Document, ctx: Context) -> EvalResult<bool> {
        Ok(self.first_at(doc, ctx)?.is_some())
    }

    /// The first matching node in document order, early-exiting like
    /// [`CompiledQuery::exists`].
    pub fn first(&self, doc: &Document) -> EvalResult<Option<NodeId>> {
        self.first_at(doc, Context::of(doc.root()))
    }

    /// [`CompiledQuery::first`] from an explicit context.
    pub fn first_at(&self, doc: &Document, ctx: Context) -> EvalResult<Option<NodeId>> {
        self.select_lazy_with(doc, ctx, EvalBudget::unlimited(), Some(1)).next()
    }

    /// A lazy [`NodeCursor`] over the matches from the root context:
    /// nodes are produced in document order, block by block, and a caller
    /// that stops pulling never pays for the rest of the document (when
    /// the spine streams — see [`crate::cursor`] for the dispatch rules).
    pub fn select_lazy<'q, 'd>(&'q self, doc: &'d Document) -> QueryCursor<'q, 'd> {
        self.select_lazy_at(doc, Context::of(doc.root()))
    }

    /// [`CompiledQuery::select_lazy`] from an explicit context.
    pub fn select_lazy_at<'q, 'd>(
        &'q self,
        doc: &'d Document,
        ctx: Context,
    ) -> QueryCursor<'q, 'd> {
        self.select_lazy_with(doc, ctx, EvalBudget::unlimited(), None)
    }

    /// The general lazy entry point: an explicit [`EvalBudget`] plus an
    /// optional *take hint* — how many nodes the caller expects to pull
    /// (`Some(1)` for `exists`/`first`, `None` for a full drain). The
    /// hint feeds [`CostModel::pick_lazy`](xpath_axes::CostModel::pick_lazy),
    /// which arbitrates between the lazy pipeline and the materializing
    /// fallback; the choice never changes the nodes produced, only when
    /// the work happens. Construction is infallible — evaluation errors
    /// surface on the first pull.
    pub fn select_lazy_with<'q, 'd>(
        &'q self,
        doc: &'d Document,
        ctx: Context,
        budget: EvalBudget,
        take_hint: Option<usize>,
    ) -> QueryCursor<'q, 'd> {
        if self.lazy_eligible() {
            let path = &self.plan.algebra().expect("lazy_eligible checked algebra").path;
            let universe = doc.len() as u32;
            if xpath_axes::CostModel::global().pick_lazy(universe, take_hint) {
                return QueryCursor::lazy(doc, path, ctx, budget);
            }
        }
        QueryCursor::materializing(doc, &self.plan, self.kernels.clone(), ctx, budget)
    }

    /// Can this query run on the lazy cursor pipeline at all (fragment
    /// strategy, compiled algebra, fully streamable spine)? The cost
    /// model may still choose to materialize small documents — see
    /// [`CompiledQuery::select_lazy_with`].
    pub fn lazy_eligible(&self) -> bool {
        matches!(self.plan.strategy, Strategy::CoreXPath | Strategy::XPatterns)
            && self.plan.report().const_result.is_none()
            && self.plan.algebra().is_some_and(|q| QueryCursor::spine_is_streamable(&q.path))
    }
}

impl fmt::Display for CompiledQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} via {:?}]",
            self.text,
            self.plan.classification.fragment.name(),
            self.plan.strategy
        )
    }
}

pub(crate) fn into_node_set(v: Value) -> EvalResult<NodeSet> {
    match v {
        Value::NodeSet(s) => Ok(s),
        other => {
            Err(EvalError::TypeMismatch(format!("expected a node set, got {}", other.type_name())))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_xml::generate::{doc_bookstore, doc_figure8};

    #[test]
    fn compile_once_evaluate_many_documents() {
        let q = CompiledQuery::compile("count(//*)").unwrap();
        let d1 = doc_bookstore();
        let d2 = doc_figure8();
        let vs = q.evaluate_many(&[&d1, &d2]).unwrap();
        assert_eq!(vs.len(), 2);
        assert_ne!(vs[0], vs[1], "different documents, different counts");
    }

    #[test]
    fn parse_errors_surface_as_parse_at_compile_time() {
        assert!(matches!(CompiledQuery::compile("//["), Err(EvalError::Parse(_))));
        assert!(matches!(Compiler::new().compile("//book[$undefined]"), Err(EvalError::Parse(_))));
    }

    #[test]
    fn fragment_rejection_is_a_compile_error() {
        let c = Compiler::new().default_strategy(Strategy::CoreXPath);
        assert!(matches!(c.compile("count(//book)"), Err(EvalError::UnsupportedFragment(_))));
        // The same query compiles fine under Auto.
        assert!(Compiler::new().compile("count(//book)").is_ok());
    }

    #[test]
    fn bindings_are_inlined_at_compile_time() {
        let b = Bindings::new().number("y", 2000.0);
        let q = Compiler::new().bindings(&b).compile("count(//book[@year > $y])").unwrap();
        let d = doc_bookstore();
        assert_eq!(q.evaluate_root(&d).unwrap(), Value::Number(2.0));
    }

    #[test]
    fn optimize_flag_rewrites() {
        let plain = CompiledQuery::compile("//b/self::node()/c").unwrap();
        let opt = Compiler::new().optimize(true).compile("//b/self::node()/c").unwrap();
        assert!(opt.optimized());
        assert_ne!(plain.expr(), opt.expr(), "rewrite should eliminate self::node()");
        let d = doc_figure8();
        assert!(opt
            .evaluate_root(&d)
            .unwrap()
            .semantically_equal(&plain.evaluate_root(&d).unwrap()));
    }

    #[test]
    fn options_fingerprint_is_deterministic_across_rebuilt_bindings() {
        // HashMap iteration order varies per instance; the fingerprint
        // must not (it is the cache key).
        let build = || {
            Compiler::new()
                .bindings(&Bindings::new().number("a", 1.0).string("b", "x").boolean("c", true))
        };
        let fp = build().options_fingerprint();
        for _ in 0..20 {
            assert_eq!(build().options_fingerprint(), fp);
        }
        // Insertion order must not matter either.
        let reordered = Compiler::new()
            .bindings(&Bindings::new().boolean("c", true).string("b", "x").number("a", 1.0));
        assert_eq!(reordered.options_fingerprint(), fp);
    }

    #[test]
    fn planner_stats_accumulate_across_evaluations_and_clones() {
        let d = doc_bookstore();
        let q = CompiledQuery::compile("//book[author]").unwrap();
        assert_eq!(q.planner_stats().total(), 0);
        q.evaluate_root(&d).unwrap();
        let after_one = q.planner_stats().total();
        assert!(after_one > 0, "Core XPath evaluations record kernel decisions");
        // Clones share the tally (the cache hands out shared handles).
        let clone = q.clone();
        clone.evaluate_root(&d).unwrap();
        assert_eq!(q.planner_stats().total(), after_one * 2);
        // Non-fragment strategies record nothing.
        let scalar = CompiledQuery::compile("count(//book)").unwrap();
        scalar.evaluate_root(&d).unwrap();
        assert_eq!(scalar.planner_stats().total(), 0);
    }

    #[test]
    fn thread_budget_is_compiled_in_and_result_invariant() {
        let d = doc_bookstore();
        let serial = Compiler::new().threads(1).compile("//book[author]").unwrap();
        let wide = Compiler::new().threads(8).compile("//book[author]").unwrap();
        assert_eq!(serial.plan().threads(), 1);
        assert_eq!(wide.plan().threads(), 8);
        // The budget is part of the cache key (distinct compiled plans)…
        assert_ne!(
            Compiler::new().threads(1).options_fingerprint(),
            Compiler::new().threads(8).options_fingerprint()
        );
        // …but never part of the answer.
        assert_eq!(wide.evaluate_root(&d).unwrap(), serial.evaluate_root(&d).unwrap());
    }

    #[test]
    fn select_type_checks() {
        let d = doc_bookstore();
        let q = CompiledQuery::compile("//book").unwrap();
        assert_eq!(q.select(&d).unwrap().len(), 4);
        let scalar = CompiledQuery::compile("count(//book)").unwrap();
        assert!(matches!(scalar.select(&d), Err(EvalError::TypeMismatch(_))));
    }

    #[test]
    fn display_names_fragment_and_strategy() {
        let q = CompiledQuery::compile("//book[author]").unwrap();
        let s = q.to_string();
        assert!(s.contains("Core XPath") && s.contains("CoreXPath"), "{s}");
    }
}
