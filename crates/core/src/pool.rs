//! The "data pool" evaluator (paper §9): the naive recursive evaluation
//! strategy of existing processors, retrofitted with the context-value-table
//! principle via memoization — Algorithm 9.1.
//!
//! Before evaluating any subexpression `e` for a context `⟨x,k,n⟩`, the
//! retrieval procedure checks the pool for a triple `⟨e, c, v⟩`; after a
//! miss, the storage procedure records the computed value. Location-path
//! *suffixes* are additionally pooled per context node (`P[[π]]` depends on
//! the node only, §9.2), which removes the exponential recursion of
//! `process-location-step` entirely. Theorem 9.2: polynomial combined
//! complexity.
//!
//! This evaluator is the "Xalan + data pool" system of Table V / Figure 12;
//! [`crate::naive`] is "Xalan classic".
//!
//! The module also hosts [`NodeSetArena`], the *runtime* pooling facade:
//! a per-evaluation arena over the thread-local buffer shelves of
//! [`xpath_xml::pool`] that gives the fragment engines and the batch
//! layer an allocation-free steady state (reset-and-reuse slot storage
//! plus shelf-miss accounting).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

use xpath_syntax::{BinaryOp, Expr, LocationPath, PathStart, Step};
use xpath_xml::{Document, NodeId};

use crate::context::{Context, EvalBudget, EvalError, EvalResult};
use crate::eval_common::{apply_binary, position_of, predicate_holds, step_candidates};
use crate::functions;
use crate::nodeset::NodeSet;
use crate::value::Value;

/// Statistics about pool effectiveness (returned by
/// [`PoolEvaluator::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Pool hits (retrievals that avoided recomputation).
    pub hits: u64,
    /// Pool misses (evaluations that were stored).
    pub misses: u64,
    /// Location-step applications actually performed.
    pub steps_applied: u64,
}

/// The memoized recursive evaluator of §9.
pub struct PoolEvaluator<'d> {
    doc: &'d Document,
    /// ⟨e, c⟩ → v for general expressions; keyed by the subexpression's
    /// address within the query AST (stable for the evaluation's lifetime).
    expr_pool: RefCell<HashMap<(usize, Context), Value>>,
    /// ⟨π-suffix, x⟩ → node set for location-path suffixes.
    path_pool: RefCell<HashMap<(usize, usize, NodeId), NodeSet>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
    steps_applied: Cell<u64>,
    budget: Option<Cell<u64>>,
    /// Deadline/cancellation budget, polled alongside the step budget.
    eval_budget: EvalBudget,
}

impl<'d> PoolEvaluator<'d> {
    /// Create a pool evaluator over `doc`.
    pub fn new(doc: &'d Document) -> Self {
        PoolEvaluator {
            doc,
            expr_pool: RefCell::new(HashMap::new()),
            path_pool: RefCell::new(HashMap::new()),
            hits: Cell::new(0),
            misses: Cell::new(0),
            steps_applied: Cell::new(0),
            budget: None,
            eval_budget: EvalBudget::unlimited(),
        }
    }

    /// Like [`PoolEvaluator::new`] with a location-step budget (to
    /// demonstrate that the budget is *not* hit where the naive evaluator
    /// exhausts it).
    pub fn with_budget(doc: &'d Document, budget: u64) -> Self {
        let mut e = Self::new(doc);
        e.budget = Some(Cell::new(budget));
        e
    }

    /// Attach a deadline/cancellation [`EvalBudget`], polled at every
    /// location-step application.
    #[must_use]
    pub fn with_eval_budget(mut self, budget: EvalBudget) -> Self {
        self.eval_budget = budget;
        self
    }

    /// Pool statistics.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            steps_applied: self.steps_applied.get(),
        }
    }

    /// Evaluate `query` in context `ctx`. The pool persists across calls on
    /// the same evaluator (same document), mirroring §9's per-query data
    /// pool when one evaluator is used per query.
    pub fn evaluate(&self, query: &Expr, ctx: Context) -> EvalResult<Value> {
        self.eval(query, ctx)
    }

    fn charge(&self) -> EvalResult<()> {
        self.steps_applied.set(self.steps_applied.get() + 1);
        self.eval_budget.check()?;
        if let Some(b) = &self.budget {
            if b.get() == 0 {
                return Err(EvalError::BudgetExhausted);
            }
            b.set(b.get() - 1);
        }
        Ok(())
    }

    /// Algorithm 9.1: `atomic-evaluation-CVT`.
    fn eval(&self, e: &Expr, ctx: Context) -> EvalResult<Value> {
        // Constants need no pooling.
        match e {
            Expr::Number(v) => return Ok(Value::Number(*v)),
            Expr::Literal(s) => return Ok(Value::String(s.clone())),
            Expr::Var(name) => return Err(EvalError::UnboundVariable(name.clone())),
            _ => {}
        }
        let key = (e as *const Expr as usize, ctx);
        if let Some(v) = self.expr_pool.borrow().get(&key) {
            self.hits.set(self.hits.get() + 1);
            return Ok(v.clone()); // retrieval procedure
        }
        self.misses.set(self.misses.get() + 1);
        let v = self.eval_uncached(e, ctx)?; // basic evaluation step
        self.expr_pool.borrow_mut().insert(key, v.clone()); // storage procedure
        Ok(v)
    }

    fn eval_uncached(&self, e: &Expr, ctx: Context) -> EvalResult<Value> {
        match e {
            Expr::Path(p) => Ok(Value::NodeSet(self.eval_path(p, ctx)?)),
            Expr::Filter { primary, predicates } => {
                let base = self.eval(primary, ctx)?;
                let Some(base_set) = base.into_node_set() else {
                    return Err(EvalError::TypeMismatch(
                        "predicates require a node-set primary expression".into(),
                    ));
                };
                let mut set = base_set.into_vec();
                for pred in predicates {
                    let len = set.len();
                    let mut kept = Vec::with_capacity(len);
                    for (j, &y) in set.iter().enumerate() {
                        let pos = (j + 1) as u32;
                        let v = self.eval(pred, Context::new(y, pos, len.max(1) as u32))?;
                        if predicate_holds(&v, pos) {
                            kept.push(y);
                        }
                    }
                    set = kept;
                }
                Ok(Value::NodeSet(NodeSet::from_sorted(set)))
            }
            Expr::Binary { op: BinaryOp::And, left, right } => {
                let l = self.eval(left, ctx)?;
                if !l.to_boolean() {
                    return Ok(Value::Boolean(false));
                }
                Ok(Value::Boolean(self.eval(right, ctx)?.to_boolean()))
            }
            Expr::Binary { op: BinaryOp::Or, left, right } => {
                let l = self.eval(left, ctx)?;
                if l.to_boolean() {
                    return Ok(Value::Boolean(true));
                }
                Ok(Value::Boolean(self.eval(right, ctx)?.to_boolean()))
            }
            Expr::Binary { op, left, right } => {
                let l = self.eval(left, ctx)?;
                let r = self.eval(right, ctx)?;
                apply_binary(self.doc, *op, l, r)
            }
            Expr::Neg(inner) => Ok(Value::Number(-self.eval(inner, ctx)?.to_number(self.doc))),
            Expr::Call { name, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, ctx)?);
                }
                functions::apply(self.doc, name, vals, &ctx)
            }
            Expr::Number(_) | Expr::Literal(_) | Expr::Var(_) => unreachable!("handled in eval"),
        }
    }

    fn eval_path(&self, p: &LocationPath, ctx: Context) -> EvalResult<NodeSet> {
        let starts: NodeSet = match &p.start {
            PathStart::Root => NodeSet::singleton(self.doc.root()),
            PathStart::ContextNode => NodeSet::singleton(ctx.node),
            PathStart::Expr(e) => self.eval(e, ctx)?.into_node_set().ok_or_else(|| {
                EvalError::TypeMismatch("path start must evaluate to a node set".into())
            })?,
        };
        let pid = p as *const LocationPath as usize;
        let mut out = NodeSet::new();
        for x in starts {
            out.union_with(&self.eval_steps(pid, &p.steps, 0, x)?);
        }
        Ok(out)
    }

    /// `P[[π-suffix]](x)`, pooled per (suffix, context node) — §9.2's
    /// treatment of location paths.
    fn eval_steps(&self, pid: usize, steps: &[Step], idx: usize, x: NodeId) -> EvalResult<NodeSet> {
        if idx == steps.len() {
            return Ok(NodeSet::singleton(x));
        }
        let key = (pid, idx, x);
        if let Some(s) = self.path_pool.borrow().get(&key) {
            self.hits.set(self.hits.get() + 1);
            return Ok(s.clone());
        }
        self.misses.set(self.misses.get() + 1);
        self.charge()?;
        let step = &steps[idx];
        let mut s = step_candidates(self.doc, step.axis, &step.test, x);
        for pred in &step.predicates {
            let len = s.len();
            let mut kept = Vec::with_capacity(len);
            for (j, &y) in s.iter().enumerate() {
                let pos = position_of(step.axis, j, len);
                let v = self.eval(pred, Context::new(y, pos, len.max(1) as u32))?;
                if predicate_holds(&v, pos) {
                    kept.push(y);
                }
            }
            s = kept;
        }
        let mut out = NodeSet::new();
        for y in s {
            out.union_with(&self.eval_steps(pid, steps, idx + 1, y)?);
        }
        self.path_pool.borrow_mut().insert(key, out.clone());
        Ok(out)
    }
}

/// Convenience: evaluate a query string with the pool evaluator.
pub fn evaluate_str(doc: &Document, query: &str, ctx: Context) -> EvalResult<Value> {
    let e =
        xpath_syntax::parse_normalized(query).map_err(|err| EvalError::Parse(err.to_string()))?;
    PoolEvaluator::new(doc).evaluate(&e, ctx)
}

// ---------------------------------------------------------------------------
// NodeSetArena: the per-evaluation transient-set arena
// ---------------------------------------------------------------------------

/// A per-evaluation arena for transient [`NodeSet`]s and evaluation
/// scratch, built on the thread-local recycling shelves of
/// [`xpath_xml::pool`].
///
/// The engines churn through short-lived node sets — one per axis
/// application, per predicate pass, per lock-step batch round. Every
/// [`NodeSet`] already returns its buffer to the thread-local shelves on
/// drop; the arena adds the *evaluation-scoped* pieces on top:
///
/// * a reusable slot vector for the lock-step batch rounds —
///   [`NodeSetArena::begin`] recycles whatever the previous round left
///   behind and hands back the cleared vector, capacity retained;
/// * reset-and-reuse observability — [`NodeSetArena::shelf_misses`]
///   reports how many buffer requests since the last
///   [`begin`](NodeSetArena::begin) had to touch the system allocator.
///   Zero once the shelves are warm: that is the allocation-free steady
///   state the `alloc_steady_state` regression test pins.
///
/// The arena is owned by one evaluation at a time; the batch layer guards
/// its shared instance with a `Mutex` and falls back to a fresh arena
/// under contention (see `QuerySet::evaluate_all`).
#[derive(Debug, Default)]
pub struct NodeSetArena {
    slots: Vec<Option<NodeSet>>,
    baseline: xpath_xml::pool::PoolStats,
}

impl NodeSetArena {
    /// An empty arena.
    pub fn new() -> NodeSetArena {
        NodeSetArena::default()
    }

    /// Start an evaluation round: recycle any node sets still parked in
    /// the slot vector (their buffers return to the shelves), re-baseline
    /// the allocation stats, and hand the cleared vector — capacity
    /// retained across rounds — to the caller to fill.
    pub fn begin(&mut self) -> &mut Vec<Option<NodeSet>> {
        self.slots.clear();
        self.baseline = xpath_xml::pool::stats();
        &mut self.slots
    }

    /// A pooled transient set in the vector representation.
    pub fn transient(&self) -> NodeSet {
        NodeSet::new()
    }

    /// A pooled empty dense set over `[0, universe)`.
    pub fn dense(&self, universe: u32) -> NodeSet {
        NodeSet::empty_dense(universe)
    }

    /// Buffer requests since the last [`begin`](NodeSetArena::begin) that
    /// missed this thread's shelves and hit the system allocator. Zero in
    /// steady state.
    pub fn shelf_misses(&self) -> u64 {
        xpath_xml::pool::stats().misses.saturating_sub(self.baseline.misses)
    }
}

// Shelf of recycled per-query result vectors (the backing store of a
// `BatchResult`), so repeated `QuerySet::evaluate_all` calls reuse one
// buffer per thread instead of allocating a fresh vector per batch.
thread_local! {
    static RESULT_SHELF: RefCell<Vec<Vec<EvalResult<Value>>>> = const { RefCell::new(Vec::new()) };
}

/// How many result vectors a thread keeps (batches rarely nest).
const MAX_POOLED_RESULTS: usize = 8;

/// Take a recycled result vector, or a fresh (empty, capacity-0) one.
pub(crate) fn take_results() -> Vec<EvalResult<Value>> {
    RESULT_SHELF.try_with(|s| s.borrow_mut().pop()).ok().flatten().unwrap_or_default()
}

/// Return a result vector for reuse. Elements are cleared *before* the
/// shelf borrow (dropping their values recycles node-set buffers into the
/// xml shelves); capacity-0 vectors are rejected.
pub(crate) fn give_results(mut v: Vec<EvalResult<Value>>) {
    v.clear();
    if v.capacity() == 0 {
        return;
    }
    let _ = RESULT_SHELF.try_with(|s| {
        let mut shelf = s.borrow_mut();
        if shelf.len() < MAX_POOLED_RESULTS {
            shelf.push(v);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveEvaluator;
    use xpath_syntax::parse_normalized;
    use xpath_xml::generate::{doc_bookstore, doc_figure8, doc_flat, doc_flat_text};

    #[test]
    fn agrees_with_naive_on_corpus() {
        let docs = [doc_flat(4), doc_flat_text(3), doc_figure8(), doc_bookstore()];
        let queries = [
            "//a/b",
            "//b[1]",
            "//*[parent::a/child::* = 'c']",
            "//a/b[count(parent::a/b) > 1]",
            "(//c | //d)[last()]",
            "id('12 24')/parent::*",
            "//*[@id = '22']",
            "sum(//d) + count(//c)",
            "//section/book[2]/title",
            "//d/ancestor::b",
            "//b[preceding-sibling::b][following-sibling::b]",
        ];
        for d in &docs {
            for q in queries {
                let e = parse_normalized(q).unwrap();
                let naive = NaiveEvaluator::new(d).evaluate(&e, Context::of(d.root())).unwrap();
                let pool = PoolEvaluator::new(d).evaluate(&e, Context::of(d.root())).unwrap();
                assert!(naive.semantically_equal(&pool), "query {q}: {naive:?} vs {pool:?}");
            }
        }
    }

    #[test]
    fn pool_makes_experiment1_linear() {
        // Experiment 1 family: exponential for naive, polynomial with the
        // pool. Compare step counts at the same depth.
        let d = doc_flat(2);
        let mut q = String::from("//a/b");
        for _ in 0..12 {
            q.push_str("/parent::a/b");
        }
        let e = parse_normalized(&q).unwrap();

        let naive = NaiveEvaluator::new(&d);
        naive.evaluate(&e, Context::of(d.root())).unwrap();
        let naive_steps = naive.steps_applied();

        let pool = PoolEvaluator::new(&d);
        pool.evaluate(&e, Context::of(d.root())).unwrap();
        let pool_steps = pool.stats().steps_applied;

        assert!(
            naive_steps > 50 * pool_steps,
            "expected exponential vs linear gap: naive={naive_steps}, pool={pool_steps}"
        );
    }

    #[test]
    fn pool_makes_experiment3_polynomial() {
        // The IE6 count-nesting family of Experiment 3 / Table V.
        let d = doc_flat(10);
        let mut q = String::from("count(parent::a/b) > 1");
        for _ in 0..4 {
            q = format!("count(parent::a/b[{q}]) > 1");
        }
        let q = format!("//a/b[{q}]");
        let e = parse_normalized(&q).unwrap();

        let pool = PoolEvaluator::new(&d);
        let v = pool.evaluate(&e, Context::of(d.root())).unwrap();
        assert_eq!(v.as_node_set().unwrap().len(), 10);
        let stats = pool.stats();
        assert!(stats.hits > 0, "pool should see repeated contexts: {stats:?}");

        let naive = NaiveEvaluator::new(&d);
        naive.evaluate(&e, Context::of(d.root())).unwrap();
        assert!(
            naive.steps_applied() > 10 * stats.steps_applied,
            "naive {} vs pool {}",
            naive.steps_applied(),
            stats.steps_applied
        );
    }

    #[test]
    fn budget_not_hit_with_pool() {
        let d = doc_flat(2);
        let mut q = String::from("//a/b");
        for _ in 0..20 {
            q.push_str("/parent::a/b");
        }
        let e = parse_normalized(&q).unwrap();
        // Budget that the naive evaluator blows through immediately.
        let naive = NaiveEvaluator::with_budget(&d, 1000);
        assert_eq!(naive.evaluate(&e, Context::of(d.root())), Err(EvalError::BudgetExhausted));
        let pool = PoolEvaluator::with_budget(&d, 1000);
        assert!(pool.evaluate(&e, Context::of(d.root())).is_ok());
    }

    #[test]
    fn positional_queries_with_pool() {
        let d = doc_flat(6);
        for q in ["//b[3]", "//b[last()]", "//b[position() != last()]"] {
            let e = parse_normalized(q).unwrap();
            let naive = NaiveEvaluator::new(&d).evaluate(&e, Context::of(d.root())).unwrap();
            let pool = PoolEvaluator::new(&d).evaluate(&e, Context::of(d.root())).unwrap();
            assert!(naive.semantically_equal(&pool), "{q}");
        }
    }
}
