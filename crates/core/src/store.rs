//! [`DocumentStore`] — a directory of named, mmap-backed document
//! snapshots with generational reload.
//!
//! The store manages a directory in which each logical document name
//! `d` corresponds to one snapshot file `d.gksnap` in the format of
//! `xpath_xml::snap`. Opening a name yields an `Arc<Document>` whose
//! arenas are views into the mapped file — no parse, no copy — and the
//! store caches that handle so repeated opens are a metadata `stat`
//! plus an `Arc` clone.
//!
//! # Generational reload
//!
//! Snapshots are published atomically: [`DocumentStore::publish`]
//! serializes into a temp file in the same directory and
//! `rename(2)`s it over the target, so readers only ever observe a
//! complete snapshot. Each cached entry remembers the *generation* of
//! the file it mapped — `(len, mtime, ino)` — and [`DocumentStore::open`]
//! re-stats the file on every call: if the generation moved (a new
//! snapshot was published over the name), the old mapping is dropped
//! from the cache and the new file is loaded. Readers still holding the
//! previous `Arc<Document>` keep a consistent view of the old
//! generation for as long as they keep the handle — the `mmap` lives
//! until the last `Arc` drops — which is exactly the crash-consistent
//! snapshot-isolation story of an append-only store, without any
//! locking between readers and the publisher.
//!
//! # Names
//!
//! Logical names are path-less identifiers (`[A-Za-z0-9._-]+`, not
//! starting with a dot): the store derives the file name, so callers
//! can't escape the store directory via `..` or absolute paths.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use xpath_xml::snap::{self, OpenOptions, SnapError, SnapshotInfo};
use xpath_xml::Document;

/// Extension of snapshot files managed by a store.
pub const SNAPSHOT_EXT: &str = "gksnap";

/// Errors from [`DocumentStore`] operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// The logical name contains characters outside `[A-Za-z0-9._-]`,
    /// is empty, or starts with a dot.
    InvalidName(String),
    /// No snapshot is published under the requested name.
    NotFound(String),
    /// The snapshot file exists but failed to open or verify.
    Snapshot(SnapError),
    /// Filesystem errors outside snapshot decoding (stat, temp file,
    /// rename, directory creation).
    Io(io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::InvalidName(name) => {
                write!(f, "invalid document name {name:?} (want [A-Za-z0-9._-]+, no leading dot)")
            }
            StoreError::NotFound(name) => write!(f, "no snapshot published under {name:?}"),
            StoreError::Snapshot(e) => write!(f, "snapshot error: {e}"),
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Snapshot(e) => Some(e),
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SnapError> for StoreError {
    fn from(e: SnapError) -> StoreError {
        match e {
            SnapError::Io(io) => StoreError::Io(io),
            other => StoreError::Snapshot(other),
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// Identity of one on-disk snapshot generation: `(len, mtime, ino)`.
///
/// `rename(2)` replaces the directory entry with a different inode, so
/// a publish always changes the generation even when the new snapshot
/// happens to have identical length and a colliding mtime.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Generation {
    len: u64,
    mtime: (i64, i64),
    ino: u64,
}

impl Generation {
    fn of(meta: &fs::Metadata) -> Generation {
        #[cfg(unix)]
        {
            use std::os::unix::fs::MetadataExt;
            Generation {
                len: meta.len(),
                mtime: (meta.mtime(), meta.mtime_nsec()),
                ino: meta.ino(),
            }
        }
        #[cfg(not(unix))]
        {
            let mtime = meta
                .modified()
                .ok()
                .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
                .map_or((0, 0), |d| (d.as_secs() as i64, i64::from(d.subsec_nanos())));
            Generation { len: meta.len(), mtime, ino: 0 }
        }
    }
}

struct CacheEntry {
    generation: Generation,
    doc: Arc<Document>,
}

/// Counters describing how a store's cache has behaved (see
/// [`DocumentStore::stats`]).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct StoreStats {
    /// Opens served from the cache (generation unchanged).
    pub hits: u64,
    /// Opens that loaded a name not in the cache.
    pub misses: u64,
    /// Opens that found a newer generation on disk and remapped.
    pub reloads: u64,
    /// Snapshots published (streamed to a temp file and renamed in).
    pub publishes: u64,
}

/// A directory of named document snapshots, opened as shared
/// mmap-backed [`Document`]s (see the [module docs](self)).
pub struct DocumentStore {
    dir: PathBuf,
    open_options: OpenOptions,
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    cache: HashMap<String, CacheEntry>,
    stats: StoreStats,
}

impl fmt::Debug for DocumentStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DocumentStore")
            .field("dir", &self.dir)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl DocumentStore {
    /// Open a store over `dir`, creating the directory if needed.
    pub fn open(dir: impl Into<PathBuf>) -> Result<DocumentStore, StoreError> {
        DocumentStore::open_with(dir, OpenOptions::default())
    }

    /// Like [`DocumentStore::open`], with explicit snapshot open
    /// options (e.g. `verify: true` for deep verification on every
    /// load, or `mmap: false` to always read into heap memory).
    pub fn open_with(
        dir: impl Into<PathBuf>,
        open_options: OpenOptions,
    ) -> Result<DocumentStore, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DocumentStore { dir, open_options, inner: Mutex::new(Inner::default()) })
    }

    /// The directory this store manages.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The snapshot file path a logical name maps to.
    pub fn path_of(&self, name: &str) -> Result<PathBuf, StoreError> {
        validate_name(name)?;
        Ok(self.dir.join(format!("{name}.{SNAPSHOT_EXT}")))
    }

    /// Open the current generation of `name` as a shared document.
    ///
    /// Re-stats the snapshot file on every call; if a newer generation
    /// has been [published](DocumentStore::publish) the old mapping is
    /// evicted and the new file loaded. Handles returned earlier stay
    /// valid (they pin their own generation's mapping).
    pub fn open_doc(&self, name: &str) -> Result<Arc<Document>, StoreError> {
        let path = self.path_of(name)?;
        let meta = match fs::metadata(&path) {
            Ok(m) => m,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(StoreError::NotFound(name.to_owned()));
            }
            Err(e) => return Err(StoreError::Io(e)),
        };
        let generation = Generation::of(&meta);
        let mut inner = self.inner.lock().unwrap();
        match inner.cache.get(name) {
            Some(entry) if entry.generation == generation => {
                let doc = Arc::clone(&entry.doc);
                inner.stats.hits += 1;
                return Ok(doc);
            }
            _ => {}
        }
        let reload = inner.cache.contains_key(name);
        // Load outside nothing: the lock is held across the load so two
        // racing opens of the same new generation map the file once.
        let doc = Arc::new(snap::load_with(&path, &self.open_options)?);
        if reload {
            inner.stats.reloads += 1;
        } else {
            inner.stats.misses += 1;
        }
        inner.cache.insert(name.to_owned(), CacheEntry { generation, doc: Arc::clone(&doc) });
        Ok(doc)
    }

    /// Serialize `doc` as the new generation of `name`, atomically.
    ///
    /// Streams the encoding into a temp file in the store directory
    /// section-by-section (`snap::write` never buffers the whole image
    /// in memory), syncs it, and `rename`s it over `<name>.gksnap`:
    /// readers observe either the old complete snapshot or the new
    /// complete snapshot, never a partial write.
    pub fn publish(&self, name: &str, doc: &Document) -> Result<SnapshotInfo, StoreError> {
        let path = self.path_of(name)?;
        let tmp = self.dir.join(format!(".{name}.{SNAPSHOT_EXT}.tmp"));
        let info = match snap::write(doc, &tmp) {
            Ok(info) => info,
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                return Err(e.into());
            }
        };
        if let Err(e) = fs::rename(&tmp, &path) {
            let _ = fs::remove_file(&tmp);
            return Err(StoreError::Io(e));
        }
        self.inner.lock().unwrap().stats.publishes += 1;
        Ok(info)
    }

    /// Remove the snapshot published under `name` (and any cached
    /// mapping). Returns `true` if a file was removed.
    pub fn remove(&self, name: &str) -> Result<bool, StoreError> {
        let path = self.path_of(name)?;
        self.inner.lock().unwrap().cache.remove(name);
        match fs::remove_file(&path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(StoreError::Io(e)),
        }
    }

    /// Logical names currently published in the store directory,
    /// sorted.
    pub fn names(&self) -> Result<Vec<String>, StoreError> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let file_name = entry.file_name();
            let Some(file) = file_name.to_str() else { continue };
            let Some(stem) = file.strip_suffix(&format!(".{SNAPSHOT_EXT}")) else { continue };
            if validate_name(stem).is_ok() {
                names.push(stem.to_owned());
            }
        }
        names.sort_unstable();
        Ok(names)
    }

    /// Drop all cached mappings (documents already handed out stay
    /// valid). Subsequent opens re-load from disk.
    pub fn evict_all(&self) {
        self.inner.lock().unwrap().cache.clear();
    }

    /// Cache behaviour counters since the store was opened.
    pub fn stats(&self) -> StoreStats {
        self.inner.lock().unwrap().stats
    }
}

fn validate_name(name: &str) -> Result<(), StoreError> {
    let ok = !name.is_empty()
        && !name.starts_with('.')
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'));
    if ok {
        Ok(())
    } else {
        Err(StoreError::InvalidName(name.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_xml::generate::{doc_bookstore, doc_figure8};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gkp_store_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn publish_then_open_roundtrips_and_hits_cache() {
        let dir = temp_dir("roundtrip");
        let store = DocumentStore::open(&dir).unwrap();
        let doc = doc_figure8();
        let info = store.publish("fig8", &doc).unwrap();
        assert_eq!(info.nodes as usize, doc.len());

        let a = store.open_doc("fig8").unwrap();
        let b = store.open_doc("fig8").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), doc.len());
        assert_eq!(a.serialize(a.root()), doc.serialize(doc.root()));
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.reloads), (1, 1, 0));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn republish_triggers_generational_reload() {
        let dir = temp_dir("reload");
        let store = DocumentStore::open(&dir).unwrap();
        store.publish("d", &doc_figure8()).unwrap();
        let old = store.open_doc("d").unwrap();
        let old_len = old.len();

        store.publish("d", &doc_bookstore()).unwrap();
        let new = store.open_doc("d").unwrap();
        assert!(!Arc::ptr_eq(&old, &new));
        assert_eq!(new.serialize(new.root()), {
            let b = doc_bookstore();
            b.serialize(b.root())
        });
        // The handle from the old generation still reads consistently.
        assert_eq!(old.len(), old_len);
        assert_eq!(old.serialize(old.root()), {
            let f = doc_figure8();
            f.serialize(f.root())
        });
        assert_eq!(store.stats().reloads, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn names_listing_and_remove() {
        let dir = temp_dir("names");
        let store = DocumentStore::open(&dir).unwrap();
        store.publish("b", &doc_figure8()).unwrap();
        store.publish("a", &doc_figure8()).unwrap();
        assert_eq!(store.names().unwrap(), vec!["a".to_owned(), "b".to_owned()]);
        assert!(store.remove("a").unwrap());
        assert!(!store.remove("a").unwrap());
        assert_eq!(store.names().unwrap(), vec!["b".to_owned()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_names_are_rejected() {
        let dir = temp_dir("badnames");
        let store = DocumentStore::open(&dir).unwrap();
        for bad in ["", "..", ".hidden", "a/b", "a\\b", "x y", "é"] {
            assert!(
                matches!(store.open_doc(bad), Err(StoreError::InvalidName(_))),
                "{bad:?} should be rejected"
            );
        }
        assert!(matches!(store.open_doc("absent"), Err(StoreError::NotFound(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_doc_is_mmap_backed_by_default() {
        let dir = temp_dir("mmap");
        let store = DocumentStore::open(&dir).unwrap();
        store.publish("d", &doc_figure8()).unwrap();
        let doc = store.open_doc("d").unwrap();
        // On Linux with mmap available the load is zero-copy; the
        // owned-buffer fallback still yields a correct document.
        if std::env::var_os(xpath_xml::NO_MMAP_ENV).is_none() && cfg!(target_os = "linux") {
            assert!(doc.is_mapped());
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
