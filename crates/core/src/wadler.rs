//! The **Extended Wadler Fragment** (paper §11.1): the large fragment of
//! XPath evaluable in linear space and quadratic time, and the bottom-up
//! backward evaluation of the location paths it permits.
//!
//! The fragment is defined by three restrictions:
//!
//! * **Restriction 1** — no document-data-selecting functions
//!   (`local-name`, `namespace-uri`, `name`, `string`, `number`,
//!   `string-length`, `normalize-space`), so scalar values have
//!   document-independent size;
//! * **Restriction 2** — no `nset RelOp nset`, no `count`/`sum`, and in
//!   `nset RelOp scalar` the scalar must not depend on any context;
//! * **Restriction 3** — in `id(id(…(c)…))` with scalar `c`, `c` must not
//!   depend on any context.
//!
//! Under these restrictions every inner location path occurs as
//! `boolean(π)` or `π RelOp c` and can be evaluated **backwards**: start
//! from the target set `Y` and propagate through the inverse axes
//! (`eval_bottomup_path` / `propagate_path_backwards`, Appendix A), storing
//! only node sets — linear space. Theorem 11.3: `O(|D|·|Q|²)` space,
//! `O(|D|²·|Q|²)` time.

use xpath_syntax::{static_type, BinaryOp, Expr, ExprType, LocationPath, PathStart, Step};
use xpath_xml::NodeId;

use crate::bottomup::CvTable;
use crate::compare::compare;
use crate::context::{Context, EvalError, EvalResult};
use crate::eval_common::{position_of, predicate_holds, step_candidates};
use crate::mincontext::MinContextEvaluator;
use crate::naive::NaiveEvaluator;
use crate::node_test;
use crate::nodeset::NodeSet;
use crate::relev::{relev, Relev};
use crate::value::Value;

/// Functions banned by Restriction 1.
pub const RESTRICTION1_FUNCTIONS: &[&str] = &[
    "local-name",
    "namespace-uri",
    "name",
    "string",
    "number",
    "string-length",
    "normalize-space",
];

/// Check membership in the Extended Wadler fragment; returns the list of
/// restriction violations (empty = inside the fragment).
pub fn violations(e: &Expr) -> Vec<String> {
    let mut out = Vec::new();
    e.walk(&mut |x| check_node(x, &mut out));
    out
}

/// Is the expression inside the Extended Wadler fragment?
pub fn is_extended_wadler(e: &Expr) -> bool {
    violations(e).is_empty()
}

fn check_node(e: &Expr, out: &mut Vec<String>) {
    match e {
        Expr::Call { name, args } => {
            if RESTRICTION1_FUNCTIONS.contains(&name.as_str()) {
                out.push(format!("Restriction 1: {name}() selects document data"));
            }
            if name == "count" || name == "sum" {
                out.push(format!("Restriction 2: {name}() is not allowed"));
            }
            if name == "id" {
                if let Some(arg) = args.first() {
                    if static_type(arg) != ExprType::Nset && relev(arg) != Relev::NONE {
                        out.push(
                            "Restriction 3: id(c) requires a context-independent scalar".into(),
                        );
                    }
                }
            }
        }
        Expr::Binary { op, left, right } if op.is_relational() => {
            let lt = static_type(left);
            let rt = static_type(right);
            match (lt, rt) {
                (ExprType::Nset, ExprType::Nset) => {
                    out.push("Restriction 2: nset RelOp nset is not allowed".into());
                }
                (ExprType::Nset, _) if relev(right) != Relev::NONE => {
                    out.push(
                        "Restriction 2: nset RelOp scalar requires a context-independent scalar"
                            .into(),
                    );
                }
                (_, ExprType::Nset) if relev(left) != Relev::NONE => {
                    out.push(
                        "Restriction 2: scalar RelOp nset requires a context-independent scalar"
                            .into(),
                    );
                }
                _ => {}
            }
        }
        Expr::Binary { op, left, right }
            if op.is_arithmetic()
            // Arithmetic over node sets implies an implicit number(nset):
            // barred for the same reason as Restriction 1.
            && (static_type(left) == ExprType::Nset || static_type(right) == ExprType::Nset) =>
        {
            out.push("Restriction 1: implicit number(nset) in arithmetic".into());
        }
        Expr::Neg(inner) if static_type(inner) == ExprType::Nset => {
            out.push("Restriction 1: implicit number(nset) in negation".into());
        }
        _ => {}
    }
}

/// Is `e` a "bottom-up location path" occurrence: `boolean(π)` or
/// `π RelOp c` with a context-independent scalar `c` (§11.1)? Returns the
/// path, the comparison (if any) and whether the path is the left operand.
pub(crate) fn bottomup_candidate(e: &Expr) -> Option<BottomUpForm<'_>> {
    match e {
        Expr::Call { name, args } if name == "boolean" && args.len() == 1 => {
            if let Expr::Path(p) = &args[0] {
                if path_is_propagatable(p) {
                    return Some(BottomUpForm { path: p, cmp: None });
                }
            }
            None
        }
        Expr::Binary { op, left, right } if op.is_relational() => {
            let (p, c, path_left) = match (&**left, &**right) {
                (Expr::Path(p), c) => (p, c, true),
                (c, Expr::Path(p)) => (p, c, false),
                _ => return None,
            };
            if static_type(c) == ExprType::Nset
                && !matches!(c, Expr::Call { name, .. } if name == "id")
            {
                return None; // nset RelOp nset handled by the general engine
            }
            if relev(c) != Relev::NONE || !path_is_propagatable(p) {
                return None;
            }
            Some(BottomUpForm {
                path: p,
                cmp: Some(Comparison { op: *op, constant: c, path_left }),
            })
        }
        _ => None,
    }
}

/// A recognized `boolean(π)` / `π RelOp c` occurrence.
pub(crate) struct BottomUpForm<'e> {
    pub path: &'e LocationPath,
    pub cmp: Option<Comparison<'e>>,
}

/// The `RelOp c` part.
pub(crate) struct Comparison<'e> {
    pub op: BinaryOp,
    pub constant: &'e Expr,
    /// Whether the path is the left operand (`π RelOp c` vs `c RelOp π`).
    pub path_left: bool,
}

fn path_is_propagatable(p: &LocationPath) -> bool {
    match &p.start {
        PathStart::Root | PathStart::ContextNode => true,
        // Context-independent heads (e.g. id('c')) behave like '/'.
        PathStart::Expr(head) => relev(head) == Relev::NONE,
    }
}

impl<'d> MinContextEvaluator<'d> {
    /// Appendix A `eval_bottomup_path`: build the full `dom → bool` table
    /// for a `boolean(π)` / `π RelOp c` expression by backward propagation.
    pub(crate) fn eval_bottomup_expr(&self, e: &Expr) -> EvalResult<CvTable> {
        let doc = self.document();
        let form = bottomup_candidate(e).ok_or_else(|| {
            EvalError::UnsupportedFragment("not a bottom-up location path occurrence".into())
        })?;

        // Step 1: the initial node set Y.
        let (y0, bool_cmp): (NodeSet, Option<(BinaryOp, bool, bool)>) = match &form.cmp {
            None => (doc.all_nodes().collect(), None),
            Some(cmp) => {
                // c is context-independent: evaluate it once.
                let c_val =
                    NaiveEvaluator::new(doc).evaluate(cmp.constant, Context::of(doc.root()))?;
                if let Value::Boolean(b) = c_val {
                    // "π RelOp c with c of type bool is treated like
                    //  boolean(π) RelOp c."
                    (doc.all_nodes().collect(), Some((cmp.op, b, cmp.path_left)))
                } else {
                    // Y := {y | ⟨strval(y)⟩ RelOp c} — realized through the
                    // Table II comparison of the singleton node set, which
                    // also covers the constant-nset case of the appendix.
                    let mut y = Vec::new();
                    for n in doc.all_nodes() {
                        let lhs = Value::NodeSet(NodeSet::singleton(n));
                        let holds = if cmp.path_left {
                            compare(doc, cmp.op, &lhs, &c_val)
                        } else {
                            compare(doc, cmp.op, &c_val, &lhs)
                        };
                        if holds {
                            y.push(n);
                        }
                    }
                    (NodeSet::from_sorted(y), None)
                }
            }
        };

        // Step 2: propagate Y backwards through the path.
        let x = self.propagate_path_backwards(form.path, y0)?;

        // Fill table(N) ⊆ dom × {true, false}.
        let mut table = CvTable::new(Relev::CN);
        let mut xi = x.iter().peekable();
        for n in doc.all_nodes() {
            let inside = match xi.peek() {
                Some(&h) if h == n => {
                    xi.next();
                    true
                }
                _ => false,
            };
            let value = match bool_cmp {
                None => inside,
                Some((op, b, path_left)) => {
                    let l = Value::Boolean(inside);
                    let r = Value::Boolean(b);
                    if path_left {
                        compare(doc, op, &l, &r)
                    } else {
                        compare(doc, op, &r, &l)
                    }
                }
            };
            table.insert(Context::of(n), Value::Boolean(value));
        }
        Ok(table)
    }

    /// Appendix A `propagate_path_backwards`: `X := {x | ∃y ∈ Y reachable
    /// from x via π}`, processing location steps from last to first with
    /// inverse axes. Linear space; each step costs `O(|D|)` (cn-only
    /// predicates) or `O(|D|²)` (positional predicates).
    pub(crate) fn propagate_path_backwards(
        &self,
        p: &LocationPath,
        y: NodeSet,
    ) -> EvalResult<NodeSet> {
        let doc = self.document();
        let mut acc = y;
        for step in p.steps.iter().rev() {
            acc = self.propagate_step_backwards(step, acc)?;
        }
        match &p.start {
            PathStart::ContextNode => Ok(acc),
            // "this is the top of an absolute location path": every node
            // qualifies iff the root does.
            PathStart::Root => {
                if acc.contains(doc.root()) {
                    Ok(NodeSet::full(doc.len() as u32))
                } else {
                    Ok(NodeSet::new())
                }
            }
            PathStart::Expr(head) => {
                // Context-independent head: qualifies everywhere iff some
                // head node survives the propagation.
                let head_val = NaiveEvaluator::new(doc).evaluate(head, Context::of(doc.root()))?;
                let set = head_val.into_node_set().ok_or_else(|| {
                    EvalError::TypeMismatch("path start must evaluate to a node set".into())
                })?;
                if acc.intersect(&set).is_empty() {
                    Ok(NodeSet::new())
                } else {
                    Ok(NodeSet::full(doc.len() as u32))
                }
            }
        }
    }

    /// One backward step `χ::t[e1]…[eq]` against target set `acc`.
    fn propagate_step_backwards(&self, step: &Step, acc: NodeSet) -> EvalResult<NodeSet> {
        let doc = self.document();
        // Y' := {y ∈ Y | node test t holds}.
        let mut y1 = acc;
        node_test::filter_set(doc, step.axis, &step.test, &mut y1);
        for pred in &step.predicates {
            // Tables for predicate parts that only need the context node.
            // Candidates may include nodes outside Y' (they participate in
            // position counting), so cover the whole inverse image's
            // candidate space: all nodes matching the test.
            let cover = NodeSet::from_sorted(node_test::matching_set(doc, step.axis, &step.test));
            self.eval_by_cnode_only(pred, &cover)?;
        }
        if step.predicates.iter().all(|p| !relev(p).has_pos_or_size()) {
            // Y'' := {y ∈ Y' | all predicates hold}; R := χ⁻¹(Y'').
            let mut y2 = Vec::with_capacity(y1.len());
            'outer: for node in &y1 {
                for pred in &step.predicates {
                    let v = self.eval_single_context(pred, Context::of(node))?;
                    if !predicate_holds(&v, 1) {
                        continue 'outer;
                    }
                }
                y2.push(node);
            }
            Ok(xpath_axes::bulk::inverse_axis_set_adaptive(
                doc,
                step.axis,
                &NodeSet::from_sorted(y2),
            ))
        } else {
            // Positional predicates: loop over candidate sources
            // X' = χ⁻¹(Y') and apply the predicates with full positional
            // semantics over each source's complete candidate set. (The
            // appendix intersects with Y' before counting positions; we
            // filter over the full candidate set, which is the semantics of
            // Figure 5 — positions are counted among all siblings, not only
            // those leading to Y.)
            let x1 = xpath_axes::bulk::inverse_axis_set_adaptive(doc, step.axis, &y1);
            let mut r: Vec<NodeId> = Vec::new();
            for src in &x1 {
                let mut z = step_candidates(doc, step.axis, &step.test, src);
                for pred in &step.predicates {
                    let m = z.len();
                    let mut kept = Vec::with_capacity(m);
                    for (j, &node) in z.iter().enumerate() {
                        let pos = position_of(step.axis, j, m);
                        let v = self
                            .eval_single_context(pred, Context::new(node, pos, m.max(1) as u32))?;
                        if predicate_holds(&v, pos) {
                            kept.push(node);
                        }
                    }
                    z = kept;
                }
                if z.iter().any(|&n| y1.contains(n)) {
                    r.push(src);
                }
            }
            Ok(NodeSet::from_unsorted(r))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xpath_syntax::parse_normalized;
    use xpath_xml::generate::{doc_figure8, doc_flat};
    use xpath_xml::NodeId;

    #[test]
    fn fragment_membership() {
        let w = |q: &str| is_extended_wadler(&parse_normalized(q).unwrap());
        // Inside the fragment.
        assert!(w("//a[boolean(child::b)]"));
        assert!(w("//a[b = 'x']"));
        assert!(w("//a[position() != last()]"));
        assert!(w("//a[position() > last() * 0.5]"));
        assert!(w("//a[b = 3][preceding::c]"));
        assert!(w("//a[not(b) and c = 'y' or position() = 1]"));
        // Outside.
        assert!(!w("//a[count(b) > 1]"), "count violates R2");
        assert!(!w("sum(//a)"), "sum violates R2");
        assert!(!w("//a[b = c]"), "nset RelOp nset violates R2");
        assert!(!w("//a[string(b) = 'x']"), "string() violates R1");
        assert!(!w("//a[name() = 'a']"), "name() violates R1");
        assert!(!w("//a[b = position()]"), "scalar depends on context (R2)");
        assert!(!w("//a[b + 1 > 2]"), "implicit number(nset)");
        assert!(!w("//a[id(string(.)) = 'x']"), "string violates R1 inside id");
    }

    #[test]
    fn restriction3() {
        let e = parse_normalized("//a[boolean(id('c1'))]").unwrap();
        assert!(violations(&e).is_empty());
        // id over a path argument is fine (treated as a path, Lemma 10.6).
        let e = parse_normalized("//a[boolean(id(//b))]").unwrap();
        assert!(violations(&e).is_empty());
    }

    #[test]
    fn violations_are_descriptive() {
        let e = parse_normalized("count(//a[string(b) = c])").unwrap();
        let v = violations(&e);
        assert!(v.iter().any(|m| m.contains("Restriction 1")), "{v:?}");
        assert!(v.iter().any(|m| m.contains("Restriction 2")), "{v:?}");
    }

    #[test]
    fn candidate_recognition() {
        let e = parse_normalized("//a[boolean(following::d)]").unwrap();
        // Find the boolean(...) predicate inside.
        let mut found = 0;
        e.walk(&mut |x| {
            if bottomup_candidate(x).is_some() {
                found += 1;
            }
        });
        assert_eq!(found, 1);

        let e = parse_normalized("//a[b = 'x' or 3 > c]").unwrap();
        let mut found = 0;
        e.walk(&mut |x| {
            if bottomup_candidate(x).is_some() {
                found += 1;
            }
        });
        assert_eq!(found, 2, "both orientations recognized");

        // position()-dependent constant is not a candidate.
        let e = parse_normalized("//a[b = position()]").unwrap();
        let mut found = 0;
        e.walk(&mut |x| {
            if bottomup_candidate(x).is_some() {
                found += 1;
            }
        });
        assert_eq!(found, 0);
    }

    #[test]
    fn backward_propagation_example_11_2_inner_path() {
        // From Example 11.2: E14 = preceding-sibling::*/preceding::* = 100
        // propagates Y = {x14, x24} backwards to {x23, x24}.
        let d = doc_figure8();
        let mc = MinContextEvaluator::new(&d);
        let e = parse_normalized("preceding-sibling::*/preceding::* = 100").unwrap();
        let table = mc.eval_bottomup_expr(&e).unwrap();
        let truthy: Vec<NodeId> = d
            .all_nodes()
            .filter(|&n| matches!(table.value_at(Context::of(n)), Some(Value::Boolean(true))))
            .collect();
        assert_eq!(truthy, vec![d.element_by_id("23").unwrap(), d.element_by_id("24").unwrap()]);
    }

    #[test]
    fn backward_propagation_boolean_form() {
        let d = doc_flat(4);
        let mc = MinContextEvaluator::new(&d);
        let e = parse_normalized("boolean(following-sibling::b)").unwrap();
        let table = mc.eval_bottomup_expr(&e).unwrap();
        let a = d.document_element().unwrap();
        let bs: Vec<NodeId> = d.children(a).collect();
        // All but the last b have a following sibling b.
        for (i, &b) in bs.iter().enumerate() {
            let v = table.value_at(Context::of(b)).unwrap();
            assert_eq!(v, &Value::Boolean(i + 1 < bs.len()), "b{i}");
        }
    }

    #[test]
    fn backward_propagation_absolute_path() {
        let d = doc_flat(3);
        let mc = MinContextEvaluator::new(&d);
        // /descendant::b exists → true for every context node.
        let e = parse_normalized("boolean(/descendant::b)").unwrap();
        let t = mc.eval_bottomup_expr(&e).unwrap();
        for n in d.all_nodes() {
            assert_eq!(t.value_at(Context::of(n)).unwrap(), &Value::Boolean(true));
        }
        let e = parse_normalized("boolean(/descendant::zzz)").unwrap();
        let mc2 = MinContextEvaluator::new(&d);
        let t = mc2.eval_bottomup_expr(&e).unwrap();
        for n in d.all_nodes() {
            assert_eq!(t.value_at(Context::of(n)).unwrap(), &Value::Boolean(false));
        }
    }
}
