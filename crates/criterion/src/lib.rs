//! Offline stand-in for the [Criterion](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The container this workspace builds in has no registry access, so the
//! real `criterion` crate cannot be fetched. This shim implements the
//! API subset the `xpath-bench` benches use — `Criterion`,
//! `benchmark_group`, `sample_size` / `warm_up_time` / `measurement_time`,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros —
//! with plain wall-clock sampling: warm up for the configured duration,
//! then take `sample_size` samples and report min / mean / max time per
//! iteration on stdout.
//!
//! Swap this path dependency for the real crate when registry access is
//! available; the bench sources compile against either.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendered with `Display` (e.g. an input size).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("naive", 14)` → `naive/14`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id with no function name, just a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] runs and times the
/// routine.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Filled in by `iter`: per-iteration times of the measured samples.
    samples: Vec<Duration>,
}

impl Bencher<'_> {
    /// Run `routine` repeatedly: first for the warm-up duration, then
    /// `sample_size` timed samples spread over the measurement duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up clock expires (at least once).
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.config.warm_up_time {
                break;
            }
        }
        let warm_elapsed = warm_start.elapsed();

        // Estimate iterations per sample so all samples roughly fill the
        // measurement window.
        let per_iter = warm_elapsed.as_secs_f64() / warm_iters as f64;
        let samples = self.config.sample_size.max(1);
        let budget = self.config.measurement_time.as_secs_f64() / samples as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / iters_per_sample as u32);
        }
    }
}

#[derive(Clone)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(400),
        }
    }
}

/// A named collection of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// How long to run the routine before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Total time budget over which the samples are spread.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Benchmark a routine identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut b = Bencher { config: &self.config, samples: Vec::new() };
        f(&mut b);
        report(&self.name, &id.to_string(), &b.samples);
        self
    }

    /// Benchmark a routine that takes a borrowed input.
    // By-value `id` mirrors the real criterion signature — the shim must
    // stay call-compatible with the upstream crate.
    #[allow(clippy::needless_pass_by_value)]
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut b = Bencher { config: &self.config, samples: Vec::new() };
        f(&mut b, input);
        report(&self.name, &id.to_string(), &b.samples);
        self
    }

    /// End the group (results are reported eagerly; this is a no-op kept
    /// for API compatibility).
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!("{group}/{id}: [{min:?} {mean:?} {max:?}] ({} samples)", samples.len());
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), config: Config::default(), _criterion: self }
    }

    /// Benchmark a single routine outside a group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let config = Config::default();
        let mut b = Bencher { config: &config, samples: Vec::new() };
        f(&mut b);
        report("bench", &id.to_string(), &b.samples);
        self
    }
}

/// Define a benchmark group function, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the given groups, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let config = Config {
            sample_size: 4,
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(4),
        };
        let mut b = Bencher { config: &config, samples: Vec::new() };
        let mut n = 0u64;
        b.iter(|| n = n.wrapping_add(1));
        assert_eq!(b.samples.len(), 4);
        assert!(n > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("naive", 14).to_string(), "naive/14");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
